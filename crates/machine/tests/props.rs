//! Property tests for the machine substrate.

use machine::isa::{Instr, Program};
use machine::seg::{SegReg, Segment, SegmentKind};
use proptest::prelude::*;

/// Strategy producing any instruction, privileged or not.
fn any_instr() -> impl Strategy<Value = Instr> {
    let reg = 0u8..8;
    prop_oneof![
        Just(Instr::Nop),
        (reg.clone(), any::<u32>()).prop_map(|(r, i)| Instr::MovImm(r, i)),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| Instr::MovReg(a, b)),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| Instr::Add(a, b)),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| Instr::Sub(a, b)),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| Instr::Xor(a, b)),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| Instr::Load(a, b)),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| Instr::Store(a, b)),
        any::<i32>().prop_map(Instr::Jmp),
        (reg.clone(), any::<i32>()).prop_map(|(r, o)| Instr::Jz(r, o)),
        reg.clone().prop_map(Instr::Push),
        reg.clone().prop_map(Instr::Pop),
        any::<u32>().prop_map(Instr::Call),
        Just(Instr::Ret),
        any::<u8>().prop_map(Instr::Trap),
        Just(Instr::Halt),
        (0u8..3, reg.clone()).prop_map(|(s, r)| Instr::LoadSegReg(
            SegReg::from_u8(s).unwrap(),
            r
        )),
        Just(Instr::Cli),
        Just(Instr::Sti),
        reg.clone().prop_map(Instr::LoadPageTable),
        (reg.clone(), any::<u16>()).prop_map(|(r, p)| Instr::IoIn(r, p)),
        (reg, any::<u16>()).prop_map(|(r, p)| Instr::IoOut(r, p)),
        Just(Instr::Iret),
    ]
}

proptest! {
    /// Every instruction survives an encode/decode round trip.
    #[test]
    fn instr_roundtrip(i in any_instr()) {
        prop_assert_eq!(Instr::decode(i.encode()), Some(i));
    }

    /// Whole programs survive byte serialisation.
    #[test]
    fn program_roundtrip(instrs in prop::collection::vec(any_instr(), 0..200)) {
        let p = Program::new(instrs);
        prop_assert_eq!(Program::from_bytes(&p.to_bytes()), Some(p));
    }

    /// `contains_privileged` over decoded text agrees with scanning the
    /// instruction list directly — i.e. nothing is lost in the byte form.
    #[test]
    fn privilege_scan_survives_bytes(instrs in prop::collection::vec(any_instr(), 0..100)) {
        let p = Program::new(instrs.clone());
        let via_bytes = Program::from_bytes(&p.to_bytes()).unwrap();
        prop_assert_eq!(
            via_bytes.contains_privileged(),
            instrs.iter().any(|i| i.is_privileged())
        );
    }

    /// Segment translation never produces an address outside [base, base+limit].
    #[test]
    fn translate_stays_in_bounds(
        base in 0u32..1_000_000,
        limit in 0u32..100_000,
        off in any::<u32>(),
        len in 0u32..64,
    ) {
        let s = Segment { base, limit, kind: SegmentKind::Data };
        if let Some(phys) = s.translate(off, len) {
            prop_assert!(phys >= base);
            prop_assert!(u64::from(phys) + u64::from(len) <= u64::from(base) + u64::from(limit));
        } else {
            // Rejection is only legitimate when the access really overflows.
            prop_assert!(off.checked_add(len).is_none_or(|end| end > limit));
        }
    }
}

mod isolation {
    use machine::cost::CostModel;
    use machine::cpu::{Cpu, Mode};
    use machine::isa::{Instr, Program};
    use machine::seg::{SegReg, Segment, SegmentKind, SegmentTable};
    use proptest::prelude::*;

    /// Unprivileged instructions that move data around.
    fn data_instr() -> impl Strategy<Value = Instr> {
        let reg = 0u8..8;
        prop_oneof![
            (reg.clone(), any::<u32>()).prop_map(|(r, i)| Instr::MovImm(r, i)),
            (reg.clone(), reg.clone()).prop_map(|(a, b)| Instr::Add(a, b)),
            (reg.clone(), reg.clone()).prop_map(|(a, b)| Instr::Load(a, b)),
            (reg.clone(), reg.clone()).prop_map(|(a, b)| Instr::Store(a, b)),
            (reg.clone(), reg).prop_map(|(a, b)| Instr::Xor(a, b)),
        ]
    }

    proptest! {
        /// Segmentation isolation: whatever an unprivileged program does —
        /// including faulting — bytes outside its data+stack segments are
        /// bit-for-bit unchanged. This is the property that lets SISR drop
        /// the kernel-mode split.
        #[test]
        fn stores_cannot_escape_the_segment(
            body in prop::collection::vec(data_instr(), 0..60),
        ) {
            const DATA_BASE: usize = 1000;
            const DATA_LIMIT: usize = 256;
            const STACK_BASE: usize = 2000;
            const STACK_LIMIT: usize = 256;
            let mut segs = SegmentTable::new();
            let data = segs
                .install(Segment { base: DATA_BASE as u32, limit: DATA_LIMIT as u32, kind: SegmentKind::Data })
                .unwrap();
            let stack = segs
                .install(Segment { base: STACK_BASE as u32, limit: STACK_LIMIT as u32, kind: SegmentKind::Stack })
                .unwrap();
            let mut cpu = Cpu::new(4096, Mode::User, CostModel::pentium());
            cpu.load_selector(SegReg::Ds, data);
            cpu.load_selector(SegReg::Ss, stack);
            let before: Vec<u8> = cpu.memory().to_vec();
            let mut text = body;
            text.push(Instr::Halt);
            let _ = cpu.run(&Program::new(text), &segs, 10_000);
            for (i, (&b, &a)) in before.iter().zip(cpu.memory()).enumerate() {
                let in_data = (DATA_BASE..DATA_BASE + DATA_LIMIT).contains(&i);
                let in_stack = (STACK_BASE..STACK_BASE + STACK_LIMIT).contains(&i);
                if !in_data && !in_stack {
                    prop_assert_eq!(b, a, "byte {} outside segments changed", i);
                }
            }
        }
    }
}
