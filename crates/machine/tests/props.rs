//! Property tests for the machine substrate.
//!
//! Randomised suites are opt-in: `cargo test -p machine --features slow-props`.
#![cfg(feature = "slow-props")]

use adm_rng::{run_cases, Pcg32};
use machine::isa::{Instr, Program};
use machine::seg::{SegReg, Segment, SegmentKind};

fn reg(rng: &mut Pcg32) -> u8 {
    rng.below(8) as u8
}

/// Any instruction, privileged or not.
fn any_instr(rng: &mut Pcg32) -> Instr {
    match rng.below(23) {
        0 => Instr::Nop,
        1 => Instr::MovImm(reg(rng), rng.next_u32()),
        2 => Instr::MovReg(reg(rng), reg(rng)),
        3 => Instr::Add(reg(rng), reg(rng)),
        4 => Instr::Sub(reg(rng), reg(rng)),
        5 => Instr::Xor(reg(rng), reg(rng)),
        6 => Instr::Load(reg(rng), reg(rng)),
        7 => Instr::Store(reg(rng), reg(rng)),
        8 => Instr::Jmp(rng.next_u32() as i32),
        9 => Instr::Jz(reg(rng), rng.next_u32() as i32),
        10 => Instr::Push(reg(rng)),
        11 => Instr::Pop(reg(rng)),
        12 => Instr::Call(rng.next_u32()),
        13 => Instr::Ret,
        14 => Instr::Trap(rng.below(256) as u8),
        15 => Instr::Halt,
        16 => Instr::LoadSegReg(SegReg::from_u8(rng.below(3) as u8).unwrap(), reg(rng)),
        17 => Instr::Cli,
        18 => Instr::Sti,
        19 => Instr::LoadPageTable(reg(rng)),
        20 => Instr::IoIn(reg(rng), rng.below(1 << 16) as u16),
        21 => Instr::IoOut(reg(rng), rng.below(1 << 16) as u16),
        _ => Instr::Iret,
    }
}

fn instr_vec(rng: &mut Pcg32, max_len: usize) -> Vec<Instr> {
    let n = rng.index(max_len + 1);
    (0..n).map(|_| any_instr(rng)).collect()
}

/// Every instruction survives an encode/decode round trip.
#[test]
fn instr_roundtrip() {
    run_cases(0x15a1, 2048, |rng| {
        let i = any_instr(rng);
        assert_eq!(Instr::decode(i.encode()), Some(i));
    });
}

/// Whole programs survive byte serialisation.
#[test]
fn program_roundtrip() {
    run_cases(0x15a2, 256, |rng| {
        let p = Program::new(instr_vec(rng, 200));
        assert_eq!(Program::from_bytes(&p.to_bytes()), Some(p));
    });
}

/// `contains_privileged` over decoded text agrees with scanning the
/// instruction list directly — i.e. nothing is lost in the byte form.
#[test]
fn privilege_scan_survives_bytes() {
    run_cases(0x15a3, 256, |rng| {
        let instrs = instr_vec(rng, 100);
        let p = Program::new(instrs.clone());
        let via_bytes = Program::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(via_bytes.contains_privileged(), instrs.iter().any(|i| i.is_privileged()));
    });
}

/// Segment translation never produces an address outside [base, base+limit].
#[test]
fn translate_stays_in_bounds() {
    run_cases(0x15a4, 2048, |rng| {
        let base = rng.range_u32(0, 1_000_000);
        let limit = rng.range_u32(0, 100_000);
        let off = rng.next_u32();
        let len = rng.range_u32(0, 64);
        let s = Segment { base, limit, kind: SegmentKind::Data };
        if let Some(phys) = s.translate(off, len) {
            assert!(phys >= base);
            assert!(u64::from(phys) + u64::from(len) <= u64::from(base) + u64::from(limit));
        } else {
            // Rejection is only legitimate when the access really overflows.
            assert!(off.checked_add(len).is_none_or(|end| end > limit));
        }
    });
}

mod isolation {
    use super::{reg, Pcg32};
    use adm_rng::run_cases;
    use machine::cost::CostModel;
    use machine::cpu::{Cpu, Mode};
    use machine::isa::{Instr, Program};
    use machine::seg::{SegReg, Segment, SegmentKind, SegmentTable};

    /// Unprivileged instructions that move data around.
    fn data_instr(rng: &mut Pcg32) -> Instr {
        match rng.below(5) {
            0 => Instr::MovImm(reg(rng), rng.next_u32()),
            1 => Instr::Add(reg(rng), reg(rng)),
            2 => Instr::Load(reg(rng), reg(rng)),
            3 => Instr::Store(reg(rng), reg(rng)),
            _ => Instr::Xor(reg(rng), reg(rng)),
        }
    }

    /// Segmentation isolation: whatever an unprivileged program does —
    /// including faulting — bytes outside its data+stack segments are
    /// bit-for-bit unchanged. This is the property that lets SISR drop
    /// the kernel-mode split.
    #[test]
    fn stores_cannot_escape_the_segment() {
        run_cases(0x15a5, 256, |rng| {
            const DATA_BASE: usize = 1000;
            const DATA_LIMIT: usize = 256;
            const STACK_BASE: usize = 2000;
            const STACK_LIMIT: usize = 256;
            let mut segs = SegmentTable::new();
            let data = segs
                .install(Segment {
                    base: DATA_BASE as u32,
                    limit: DATA_LIMIT as u32,
                    kind: SegmentKind::Data,
                })
                .unwrap();
            let stack = segs
                .install(Segment {
                    base: STACK_BASE as u32,
                    limit: STACK_LIMIT as u32,
                    kind: SegmentKind::Stack,
                })
                .unwrap();
            let mut cpu = Cpu::new(4096, Mode::User, CostModel::pentium());
            cpu.load_selector(SegReg::Ds, data);
            cpu.load_selector(SegReg::Ss, stack);
            let before: Vec<u8> = cpu.memory().to_vec();
            let mut text: Vec<Instr> = (0..rng.index(60)).map(|_| data_instr(rng)).collect();
            text.push(Instr::Halt);
            let _ = cpu.run(&Program::new(text), &segs, 10_000);
            for (i, (&b, &a)) in before.iter().zip(cpu.memory()).enumerate() {
                let in_data = (DATA_BASE..DATA_BASE + DATA_LIMIT).contains(&i);
                let in_stack = (STACK_BASE..STACK_BASE + STACK_LIMIT).contains(&i);
                if !in_data && !in_stack {
                    assert_eq!(b, a, "byte {i} outside segments changed");
                }
            }
        });
    }
}
