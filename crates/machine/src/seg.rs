//! Segmentation memory protection — the model Go!/SISR uses.
//!
//! SISR's unit of protection is the *component*: each component instance owns
//! a data segment, each component type owns a code segment, and a thread
//! carries a stack segment. Protection holds because (a) every memory access
//! is checked against the current segment's base/limit, and (b) segment
//! registers can only be loaded by privileged instructions, which the SISR
//! scanner guarantees are absent from component text — only the ORB can
//! retarget them.
//!
//! The descriptor table here plays the role of the IA32 GDT. Crucially for
//! the paper's memory claim, a descriptor is a few words, not a page table:
//! protection state per interface is ~32 bytes versus ≥4 KiB-granular page
//! structures (see `gokernel::orb::InterfaceDescriptor`).

/// Which segment register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegReg {
    /// Code segment register.
    Cs = 0,
    /// Data segment register.
    Ds = 1,
    /// Stack segment register.
    Ss = 2,
}

impl SegReg {
    /// Decode from a byte (for [`crate::isa::Instr::decode`]).
    #[must_use]
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(SegReg::Cs),
            1 => Some(SegReg::Ds),
            2 => Some(SegReg::Ss),
            _ => None,
        }
    }
}

/// What a segment may be used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentKind {
    /// Executable, read-only.
    Code,
    /// Readable and writable data.
    Data,
    /// Readable and writable, grows-down stack.
    Stack,
}

/// A segment descriptor: a base/limit pair plus a kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First byte of the segment in simulated physical memory.
    pub base: u32,
    /// Length of the segment in bytes; offsets `0..limit` are valid.
    pub limit: u32,
    /// What the segment may be used for.
    pub kind: SegmentKind,
}

impl Segment {
    /// Translate a segment-relative offset to a physical address, checking
    /// the limit. This is the per-access protection check.
    #[must_use]
    pub fn translate(&self, offset: u32, len: u32) -> Option<u32> {
        let end = offset.checked_add(len)?;
        if end <= self.limit {
            Some(self.base.wrapping_add(offset))
        } else {
            None
        }
    }

    /// Size of an encoded descriptor in bytes. Matches IA32's 8-byte GDT
    /// entries; the paper's "32 bytes per interface" is four such words
    /// (code seg, data seg, entry point, type/rights).
    pub const DESCRIPTOR_BYTES: u32 = 8;
}

/// A selector naming a descriptor in a [`SegmentTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Selector(pub u16);

/// Errors raised by the segmentation unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegError {
    /// The selector does not name a live descriptor.
    BadSelector(Selector),
    /// Access beyond a segment's limit.
    LimitViolation {
        /// Offending selector.
        selector: Selector,
        /// Offset that was attempted.
        offset: u32,
    },
    /// A segment was used for an access its kind forbids (e.g. writing the
    /// code segment).
    KindViolation {
        /// Offending selector.
        selector: Selector,
        /// Kind of the segment as declared.
        kind: SegmentKind,
    },
    /// The table is full.
    TableFull,
}

/// The descriptor table (GDT analogue).
///
/// Slots are allocated and freed as components are loaded and unloaded;
/// freed slots are reused, and a generation check is deliberately *not*
/// modelled (the ORB is trusted and single-threaded per CPU in Go!).
#[derive(Debug, Clone, Default)]
pub struct SegmentTable {
    slots: Vec<Option<Segment>>,
}

impl SegmentTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a descriptor, returning its selector.
    ///
    /// # Errors
    /// [`SegError::TableFull`] when all 65 536 slots are in use.
    pub fn install(&mut self, seg: Segment) -> Result<Selector, SegError> {
        if let Some(idx) = self.slots.iter().position(Option::is_none) {
            self.slots[idx] = Some(seg);
            return Ok(Selector(idx as u16));
        }
        if self.slots.len() > usize::from(u16::MAX) {
            return Err(SegError::TableFull);
        }
        self.slots.push(Some(seg));
        Ok(Selector((self.slots.len() - 1) as u16))
    }

    /// Remove a descriptor.
    ///
    /// # Errors
    /// [`SegError::BadSelector`] if the slot is not live.
    pub fn remove(&mut self, sel: Selector) -> Result<Segment, SegError> {
        let slot = self.slots.get_mut(usize::from(sel.0)).ok_or(SegError::BadSelector(sel))?;
        slot.take().ok_or(SegError::BadSelector(sel))
    }

    /// Look up a descriptor.
    ///
    /// # Errors
    /// [`SegError::BadSelector`] if the slot is not live.
    pub fn lookup(&self, sel: Selector) -> Result<Segment, SegError> {
        self.slots.get(usize::from(sel.0)).and_then(|s| *s).ok_or(SegError::BadSelector(sel))
    }

    /// Check and translate an access of `len` bytes at `offset` through
    /// selector `sel`, requiring the segment kind to permit `write`.
    ///
    /// # Errors
    /// Any of the [`SegError`] protection violations.
    pub fn access(
        &self,
        sel: Selector,
        offset: u32,
        len: u32,
        write: bool,
        execute: bool,
    ) -> Result<u32, SegError> {
        let seg = self.lookup(sel)?;
        let kind_ok = match seg.kind {
            SegmentKind::Code => execute && !write,
            SegmentKind::Data | SegmentKind::Stack => !execute,
        };
        if !kind_ok {
            return Err(SegError::KindViolation { selector: sel, kind: seg.kind });
        }
        seg.translate(offset, len).ok_or(SegError::LimitViolation { selector: sel, offset })
    }

    /// Number of live descriptors.
    #[must_use]
    pub fn live(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Bytes of protection state this table consumes (live descriptors only)
    /// — the quantity behind the paper's "32 bytes per interface" comparison.
    #[must_use]
    pub fn protection_bytes(&self) -> u64 {
        self.live() as u64 * u64::from(Segment::DESCRIPTOR_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_seg(base: u32, limit: u32) -> Segment {
        Segment { base, limit, kind: SegmentKind::Data }
    }

    #[test]
    fn translate_checks_limit_inclusive_of_length() {
        let s = data_seg(0x1000, 16);
        assert_eq!(s.translate(0, 4), Some(0x1000));
        assert_eq!(s.translate(12, 4), Some(0x100c));
        assert_eq!(s.translate(13, 4), None, "crosses the limit");
        assert_eq!(s.translate(16, 0), Some(0x1010), "zero-length at limit ok");
    }

    #[test]
    fn translate_rejects_offset_overflow() {
        let s = data_seg(0, u32::MAX);
        assert_eq!(s.translate(u32::MAX, 4), None);
    }

    #[test]
    fn install_lookup_remove_cycle() {
        let mut t = SegmentTable::new();
        let a = t.install(data_seg(0, 64)).unwrap();
        let b = t.install(data_seg(64, 64)).unwrap();
        assert_ne!(a, b);
        assert_eq!(t.lookup(a).unwrap().base, 0);
        assert_eq!(t.live(), 2);
        t.remove(a).unwrap();
        assert_eq!(t.lookup(a), Err(SegError::BadSelector(a)));
        // Freed slot is reused.
        let c = t.install(data_seg(128, 64)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn access_enforces_kind() {
        let mut t = SegmentTable::new();
        let code = t.install(Segment { base: 0, limit: 64, kind: SegmentKind::Code }).unwrap();
        let data = t.install(data_seg(64, 64)).unwrap();
        // Executing code: fine. Writing code: violation.
        assert!(t.access(code, 0, 8, false, true).is_ok());
        assert!(matches!(t.access(code, 0, 8, true, false), Err(SegError::KindViolation { .. })));
        // Executing data: violation. Writing data: fine.
        assert!(matches!(t.access(data, 0, 8, false, true), Err(SegError::KindViolation { .. })));
        assert!(t.access(data, 0, 8, true, false).is_ok());
    }

    #[test]
    fn access_enforces_limit() {
        let mut t = SegmentTable::new();
        let d = t.install(data_seg(0, 32)).unwrap();
        assert!(matches!(
            t.access(d, 30, 4, false, false),
            Err(SegError::LimitViolation { offset: 30, .. })
        ));
    }

    #[test]
    fn protection_bytes_counts_live_descriptors() {
        let mut t = SegmentTable::new();
        let a = t.install(data_seg(0, 1)).unwrap();
        t.install(data_seg(1, 1)).unwrap();
        assert_eq!(t.protection_bytes(), 16);
        t.remove(a).unwrap();
        assert_eq!(t.protection_bytes(), 8);
    }
}
