//! Cycle cost model.
//!
//! Every primitive operation the simulated machine (and the kernels built on
//! it) can perform has a cycle cost. The defaults are calibrated against
//! published Pentium-era numbers — the hardware generation the paper's Go!
//! prototype ran on — because Table 1 is denominated in cycles of that era:
//!
//! * `int n` / `iret` pair ≈ 100+ cycles on a Pentium (Liedtke's L4 papers
//!   put the bare hardware trap cost at ~107 cycles round trip);
//! * a segment-register load is a handful of cycles — the paper itself says a
//!   full Go! context switch (three segment loads) "amounts to only 3 cycles
//!   on a Pentium", i.e. ~1 cycle per load;
//! * `mov %cr3` (page-table switch) is ~36 cycles, but its real cost is the
//!   TLB refill that follows: tens of entries × ~30 cycles a walk;
//! * cache-hit loads/stores are 1–2 cycles; a scheduler pass on a 1990s BSD
//!   is hundreds of instructions.
//!
//! Kernels never add raw numbers to the counter; they *charge* named
//! primitives. That keeps the accounting auditable: the per-kernel totals in
//! Table 1 can be decomposed primitive-by-primitive (see
//! `gokernel::breakdown`).

/// A quantity of CPU cycles.
pub type Cycles = u64;

/// Per-primitive cycle costs. All fields are public so experiments can
/// re-calibrate (e.g. to model a machine with costlier traps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// One ALU operation (add/sub/xor/compare) on registers.
    pub alu: Cycles,
    /// A load that hits the L1 cache.
    pub load: Cycles,
    /// A store that hits the L1 cache.
    pub store: Cycles,
    /// A taken branch, call or return (predicted).
    pub branch: Cycles,
    /// A mispredicted or indirect branch.
    pub branch_indirect: Cycles,
    /// Copying one 32-bit word between buffers (load+store+loop overhead).
    pub copy_word: Cycles,
    /// Hardware trap entry: `int n` — pipeline flush, privilege check,
    /// stack switch, vector fetch.
    pub trap_enter: Cycles,
    /// Hardware trap exit: `iret`.
    pub trap_exit: Cycles,
    /// Loading one segment register (descriptor fetch + protection check).
    pub seg_reg_load: Cycles,
    /// Loading the page-table base register (`mov %cr3`), *excluding* refill.
    pub page_table_switch: Cycles,
    /// Refilling one TLB entry after a flush (page-table walk).
    pub tlb_refill_entry: Cycles,
    /// Saving or restoring a full integer register file to/from memory.
    pub regfile_save: Cycles,
    /// Saving or restoring FPU state (traditional kernels do this lazily at
    /// best; BSD-era RPC paths frequently paid it).
    pub fpu_save: Cycles,
    /// One run-queue / scheduler bookkeeping step (dequeue, priority
    /// recompute, accounting).
    pub sched_step: Cycles,
    /// One cache-line miss. Crossing into a large kernel evicts and reloads
    /// its text/data working set; the L4 literature identifies this — not the
    /// trap itself — as the dominant cost of big-kernel IPC.
    pub cache_miss: Cycles,
    /// Transferring one 4 KiB page between memory and stable storage: DMA
    /// setup, the transfer itself, and the completion interrupt. The database
    /// machine's buffer pool charges this on every pool miss and dirty-page
    /// writeback.
    pub page_io: Cycles,
    /// Forcing the sequential log tail to stable storage — a short, seekless
    /// write plus the barrier. The write-ahead log charges this once per
    /// commit (group-commit amortisation is a calibration experiment, not a
    /// default).
    pub log_force: Cycles,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::pentium()
    }
}

impl CostModel {
    /// The default calibration: a ~200 MHz Pentium-class machine, the
    /// hardware generation behind the paper's Table 1.
    #[must_use]
    pub fn pentium() -> Self {
        Self {
            alu: 1,
            load: 2,
            store: 2,
            branch: 1,
            branch_indirect: 5,
            copy_word: 3,
            trap_enter: 70,
            trap_exit: 36,
            seg_reg_load: 1,
            page_table_switch: 36,
            tlb_refill_entry: 30,
            regfile_save: 40,
            fpu_save: 150,
            sched_step: 25,
            cache_miss: 20,
            page_io: 1_200,
            log_force: 400,
        }
    }

    /// A calibration for a hypothetical modern deep-pipeline machine where
    /// traps and TLB refills are relatively *more* expensive — used by the
    /// ablation benches to show Table 1's gap widens, not narrows.
    #[must_use]
    pub fn deep_pipeline() -> Self {
        Self {
            alu: 1,
            load: 4,
            store: 4,
            branch: 1,
            branch_indirect: 20,
            copy_word: 4,
            trap_enter: 400,
            trap_exit: 200,
            seg_reg_load: 2,
            page_table_switch: 100,
            tlb_refill_entry: 80,
            regfile_save: 60,
            fpu_save: 250,
            sched_step: 40,
            cache_miss: 100,
            page_io: 2_400,
            log_force: 600,
        }
    }
}

/// A named primitive the machine can charge for. Kernels account in these
/// units so every cycle in a Table 1 row is attributable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// See [`CostModel::alu`].
    Alu,
    /// See [`CostModel::load`].
    Load,
    /// See [`CostModel::store`].
    Store,
    /// See [`CostModel::branch`].
    Branch,
    /// See [`CostModel::branch_indirect`].
    BranchIndirect,
    /// Copy `n` 32-bit words.
    CopyWords(u32),
    /// See [`CostModel::trap_enter`].
    TrapEnter,
    /// See [`CostModel::trap_exit`].
    TrapExit,
    /// See [`CostModel::seg_reg_load`].
    SegRegLoad,
    /// See [`CostModel::page_table_switch`].
    PageTableSwitch,
    /// Refill `n` TLB entries.
    TlbRefill(u32),
    /// See [`CostModel::regfile_save`].
    RegfileSave,
    /// See [`CostModel::fpu_save`].
    FpuSave,
    /// `n` scheduler bookkeeping steps.
    SchedSteps(u32),
    /// `n` cache-line misses (cold kernel working set after a domain switch).
    CacheMisses(u32),
    /// Transfer `n` pages between memory and stable storage.
    PageIo(u32),
    /// See [`CostModel::log_force`].
    LogForce,
}

impl Primitive {
    /// The cost of this primitive under a model.
    #[must_use]
    pub fn cost(self, m: &CostModel) -> Cycles {
        match self {
            Primitive::Alu => m.alu,
            Primitive::Load => m.load,
            Primitive::Store => m.store,
            Primitive::Branch => m.branch,
            Primitive::BranchIndirect => m.branch_indirect,
            Primitive::CopyWords(n) => m.copy_word * Cycles::from(n),
            Primitive::TrapEnter => m.trap_enter,
            Primitive::TrapExit => m.trap_exit,
            Primitive::SegRegLoad => m.seg_reg_load,
            Primitive::PageTableSwitch => m.page_table_switch,
            Primitive::TlbRefill(n) => m.tlb_refill_entry * Cycles::from(n),
            Primitive::RegfileSave => m.regfile_save,
            Primitive::FpuSave => m.fpu_save,
            Primitive::SchedSteps(n) => m.sched_step * Cycles::from(n),
            Primitive::CacheMisses(n) => m.cache_miss * Cycles::from(n),
            Primitive::PageIo(n) => m.page_io * Cycles::from(n),
            Primitive::LogForce => m.log_force,
        }
    }

    /// A short label for breakdown reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Primitive::Alu => "alu",
            Primitive::Load => "load",
            Primitive::Store => "store",
            Primitive::Branch => "branch",
            Primitive::BranchIndirect => "branch-indirect",
            Primitive::CopyWords(_) => "copy",
            Primitive::TrapEnter => "trap-enter",
            Primitive::TrapExit => "trap-exit",
            Primitive::SegRegLoad => "seg-reg-load",
            Primitive::PageTableSwitch => "page-table-switch",
            Primitive::TlbRefill(_) => "tlb-refill",
            Primitive::RegfileSave => "regfile-save",
            Primitive::FpuSave => "fpu-save",
            Primitive::SchedSteps(_) => "sched",
            Primitive::CacheMisses(_) => "cache-miss",
            Primitive::PageIo(_) => "page-io",
            Primitive::LogForce => "log-force",
        }
    }
}

/// A cycle counter that records both the running total and a per-primitive
/// breakdown, so a Table 1 row can be decomposed and audited.
#[derive(Debug, Clone, Default)]
pub struct CycleCounter {
    total: Cycles,
    breakdown: Vec<(&'static str, Cycles)>,
}

impl CycleCounter {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge one primitive under the given model.
    pub fn charge(&mut self, p: Primitive, model: &CostModel) {
        let c = p.cost(model);
        self.total += c;
        let label = p.label();
        if let Some(slot) = self.breakdown.iter_mut().find(|(l, _)| *l == label) {
            slot.1 += c;
        } else {
            self.breakdown.push((label, c));
        }
    }

    /// Charge many primitives.
    pub fn charge_all(&mut self, ps: &[Primitive], model: &CostModel) {
        for &p in ps {
            self.charge(p, model);
        }
    }

    /// Total cycles charged so far.
    #[must_use]
    pub fn total(&self) -> Cycles {
        self.total
    }

    /// Per-primitive breakdown, in first-charge order.
    #[must_use]
    pub fn breakdown(&self) -> &[(&'static str, Cycles)] {
        &self.breakdown
    }

    /// Reset to zero, keeping capacity.
    pub fn reset(&mut self) {
        self.total = 0;
        self.breakdown.clear();
    }

    /// Cycles elapsed since a snapshot taken with [`Self::total`].
    #[must_use]
    pub fn since(&self, snapshot: Cycles) -> Cycles {
        self.total - snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_pentium() {
        assert_eq!(CostModel::default(), CostModel::pentium());
    }

    #[test]
    fn paper_claim_three_cycle_context_switch() {
        // "loading new values into code, data, and stack segment registers
        // implements a context switch (which amounts to only 3 cycles)".
        let m = CostModel::pentium();
        let switch = 3 * Primitive::SegRegLoad.cost(&m);
        assert_eq!(switch, 3);
    }

    #[test]
    fn counter_accumulates_and_breaks_down() {
        let m = CostModel::pentium();
        let mut c = CycleCounter::new();
        c.charge(Primitive::TrapEnter, &m);
        c.charge(Primitive::TrapExit, &m);
        c.charge(Primitive::TrapEnter, &m);
        assert_eq!(c.total(), 70 + 36 + 70);
        let bd = c.breakdown();
        assert_eq!(bd.iter().find(|(l, _)| *l == "trap-enter").unwrap().1, 140);
        assert_eq!(bd.iter().find(|(l, _)| *l == "trap-exit").unwrap().1, 36);
    }

    #[test]
    fn parameterised_primitives_scale() {
        let m = CostModel::pentium();
        assert_eq!(Primitive::CopyWords(10).cost(&m), 30);
        assert_eq!(Primitive::TlbRefill(20).cost(&m), 600);
        assert_eq!(Primitive::SchedSteps(4).cost(&m), 100);
        assert_eq!(Primitive::PageIo(3).cost(&m), 3_600);
    }

    #[test]
    fn page_io_dwarfs_the_commit_force() {
        // Sanity on the storage calibration: one page transfer costs more
        // than the seekless log force, on both machines — the buffer pool
        // exists precisely because of this gap.
        for m in [CostModel::pentium(), CostModel::deep_pipeline()] {
            assert!(Primitive::PageIo(1).cost(&m) > Primitive::LogForce.cost(&m));
        }
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = CostModel::deep_pipeline();
        let mut c = CycleCounter::new();
        c.charge_all(
            &[
                Primitive::TrapEnter,
                Primitive::CopyWords(8),
                Primitive::SchedSteps(3),
                Primitive::TrapExit,
                Primitive::RegfileSave,
            ],
            &m,
        );
        let sum: Cycles = c.breakdown().iter().map(|(_, v)| v).sum();
        assert_eq!(sum, c.total());
    }

    #[test]
    fn since_measures_deltas() {
        let m = CostModel::pentium();
        let mut c = CycleCounter::new();
        c.charge(Primitive::Alu, &m);
        let snap = c.total();
        c.charge(Primitive::TrapEnter, &m);
        assert_eq!(c.since(snap), 70);
    }

    #[test]
    fn reset_clears_everything() {
        let m = CostModel::pentium();
        let mut c = CycleCounter::new();
        c.charge(Primitive::FpuSave, &m);
        c.reset();
        assert_eq!(c.total(), 0);
        assert!(c.breakdown().is_empty());
    }
}
