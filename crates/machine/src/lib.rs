//! # machine — a cycle-accounted simulated machine substrate
//!
//! The paper's Table 1 reports RPC cost **in CPU cycles** for four OS
//! protection models running on Pentium-class IA32 hardware. We do not have
//! that hardware, so this crate provides the substitution: a small simulated
//! machine with
//!
//! * a compact **instruction set** ([`isa`]) that distinguishes *privileged*
//!   instructions (segment-register loads, interrupt control, page-table
//!   loads, I/O) from unprivileged ones — the raw material of SISR's
//!   load-time code scanning;
//! * **segmentation** protection ([`seg`]) — base/limit-checked segments and
//!   a descriptor table, the protection model Go! uses;
//! * **paging** protection ([`paging`]) — page tables, a TLB with flush and
//!   refill costs, the protection model traditional kernels use;
//! * a **trap vector** ([`trap`]) and user/kernel **processor modes**,
//!   which trap-based kernels pay for on every boundary crossing;
//! * a **CPU** ([`cpu`]) that executes programs against those protection
//!   models, faulting exactly where real hardware would; and
//! * a **cost model** ([`cost`]) with per-primitive cycle costs calibrated
//!   against published Pentium-era micro-architectural numbers.
//!
//! Kernels in the `gokernel` crate are built *on top of* this substrate: each
//! kernel's RPC path executes a concrete sequence of these primitives, and
//! the cycle totals of Table 1 emerge from the *length and composition of the
//! path*, not from hard-coded totals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod cpu;
pub mod isa;
pub mod paging;
pub mod seg;
pub mod trap;

pub use cost::{CostModel, CycleCounter, Cycles};
pub use cpu::{Cpu, CpuError, Mode};
pub use isa::{Flow, Instr, Program};
pub use paging::{AddressSpace, Tlb, PAGE_SIZE};
pub use seg::{Segment, SegmentKind, SegmentTable, Selector};
pub use trap::{TrapKind, TrapVector};
