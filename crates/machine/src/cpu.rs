//! The simulated CPU.
//!
//! Executes [`Program`]s against the segmentation unit and the cost model,
//! faulting exactly where real hardware would:
//!
//! * a privileged instruction in user mode raises a privilege violation —
//!   this is the behaviour SISR *replaces* with load-time scanning, and the
//!   property tests in `gokernel` verify the two mechanisms agree;
//! * loads/stores are limit- and kind-checked through the current data or
//!   stack segment;
//! * `Trap(n)` suspends execution and reports the trap to the caller (the
//!   kernel being simulated).

use crate::cost::{CostModel, CycleCounter, Cycles, Primitive};
use crate::isa::{Instr, Program, NUM_REGS};
use crate::seg::{SegError, SegReg, SegmentTable, Selector};
use crate::trap::TrapKind;

/// Processor mode. Go!/SISR machines run everything in a single mode;
/// trap-based kernels split user from kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Unprivileged.
    User,
    /// Privileged.
    Kernel,
}

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// `Halt` executed.
    Halted,
    /// A software trap; the kernel should service it and may resume.
    Trap(u8),
    /// The step budget ran out (runaway program).
    OutOfFuel,
}

/// A fault: the hardware refused to continue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuError {
    /// Privileged instruction in user mode.
    PrivilegeViolation {
        /// Program counter of the offending instruction.
        pc: u32,
        /// The instruction itself.
        instr: Instr,
    },
    /// A segmentation violation.
    Segment(SegError),
    /// Control transfer outside the text section.
    BadPc(u32),
    /// Pop or Ret on an empty stack.
    StackUnderflow,
    /// The machine-level stack overflowed its segment.
    StackOverflow,
}

impl From<SegError> for CpuError {
    fn from(e: SegError) -> Self {
        CpuError::Segment(e)
    }
}

impl CpuError {
    /// The trap this fault would raise on a trap-based kernel.
    #[must_use]
    pub fn trap_kind(&self) -> TrapKind {
        match self {
            CpuError::PrivilegeViolation { .. } => TrapKind::PrivilegeViolation,
            _ => TrapKind::SegmentFault,
        }
    }
}

/// The CPU state: registers, segment selectors, physical memory, mode, and
/// the cycle counter every executed instruction charges into.
#[derive(Debug)]
pub struct Cpu {
    /// General-purpose registers.
    pub regs: [u32; NUM_REGS],
    mode: Mode,
    cs: Option<Selector>,
    ds: Option<Selector>,
    ss: Option<Selector>,
    mem: Vec<u8>,
    call_stack: Vec<u32>,
    /// Stack pointer (offset into the stack segment), grows up in this model.
    sp: u32,
    counter: CycleCounter,
    model: CostModel,
    pending: Option<Pending>,
}

impl Cpu {
    /// A CPU with `mem_bytes` of physical memory, starting in the given mode.
    #[must_use]
    pub fn new(mem_bytes: usize, mode: Mode, model: CostModel) -> Self {
        Self {
            regs: [0; NUM_REGS],
            mode,
            cs: None,
            ds: None,
            ss: None,
            mem: vec![0; mem_bytes],
            call_stack: Vec::new(),
            sp: 0,
            counter: CycleCounter::new(),
            model,
            pending: None,
        }
    }

    /// Current mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Switch mode (only the simulated kernel calls this, on trap entry/exit).
    pub fn set_mode(&mut self, mode: Mode) {
        self.mode = mode;
    }

    /// Point a segment register at a selector without executing an
    /// instruction — used by kernels when setting up a domain. Charges the
    /// descriptor-load cost.
    pub fn load_selector(&mut self, reg: SegReg, sel: Selector) {
        self.counter.charge(Primitive::SegRegLoad, &self.model);
        match reg {
            SegReg::Cs => self.cs = Some(sel),
            SegReg::Ds => self.ds = Some(sel),
            SegReg::Ss => self.ss = Some(sel),
        }
    }

    /// The selector currently in a segment register.
    #[must_use]
    pub fn selector(&self, reg: SegReg) -> Option<Selector> {
        match reg {
            SegReg::Cs => self.cs,
            SegReg::Ds => self.ds,
            SegReg::Ss => self.ss,
        }
    }

    /// Total cycles this CPU has charged.
    #[must_use]
    pub fn cycles(&self) -> Cycles {
        self.counter.total()
    }

    /// Mutable access to the cycle counter (kernels charge primitives here).
    pub fn counter_mut(&mut self) -> &mut CycleCounter {
        &mut self.counter
    }

    /// The cycle counter.
    #[must_use]
    pub fn counter(&self) -> &CycleCounter {
        &self.counter
    }

    /// The cost model.
    #[must_use]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Read-only view of physical memory — for isolation verification: a
    /// program running behind segment `[base, base+limit)` must leave every
    /// byte outside that window untouched.
    #[must_use]
    pub fn memory(&self) -> &[u8] {
        &self.mem
    }

    fn read_u32(&mut self, segs: &SegmentTable, sel: Selector, off: u32) -> Result<u32, CpuError> {
        let phys = segs.access(sel, off, 4, false, false)? as usize;
        if phys + 4 > self.mem.len() {
            return Err(CpuError::Segment(SegError::LimitViolation { selector: sel, offset: off }));
        }
        self.counter.charge(Primitive::Load, &self.model);
        Ok(u32::from_le_bytes([
            self.mem[phys],
            self.mem[phys + 1],
            self.mem[phys + 2],
            self.mem[phys + 3],
        ]))
    }

    fn write_u32(
        &mut self,
        segs: &SegmentTable,
        sel: Selector,
        off: u32,
        val: u32,
    ) -> Result<(), CpuError> {
        let phys = segs.access(sel, off, 4, true, false)? as usize;
        if phys + 4 > self.mem.len() {
            return Err(CpuError::Segment(SegError::LimitViolation { selector: sel, offset: off }));
        }
        self.counter.charge(Primitive::Store, &self.model);
        self.mem[phys..phys + 4].copy_from_slice(&val.to_le_bytes());
        Ok(())
    }

    /// Run `program` from `pc = 0` until halt, trap, fault, or fuel
    /// exhaustion. Loads and stores go through the current `ds` selector;
    /// push/pop through `ss`.
    ///
    /// # Errors
    /// A [`CpuError`] fault, including privilege violations in user mode —
    /// the hardware behaviour SISR's scanner makes unreachable for verified
    /// components.
    pub fn run(
        &mut self,
        program: &Program,
        segs: &SegmentTable,
        fuel: u32,
    ) -> Result<Stop, CpuError> {
        self.run_from(program, segs, 0, fuel)
    }

    /// Like [`Self::run`] but starting at an arbitrary entry point — the ORB
    /// dispatches calls to per-interface entry offsets within a type's text.
    ///
    /// # Errors
    /// See [`Self::run`].
    pub fn run_from(
        &mut self,
        program: &Program,
        segs: &SegmentTable,
        entry: u32,
        fuel: u32,
    ) -> Result<Stop, CpuError> {
        let text = program.instrs();
        let mut pc: u32 = entry;
        for _ in 0..fuel {
            let Some(&instr) = text.get(pc as usize) else {
                return Err(CpuError::BadPc(pc));
            };
            if instr.is_privileged() && self.mode == Mode::User {
                return Err(CpuError::PrivilegeViolation { pc, instr });
            }
            pc = self.step(instr, pc, segs)?;
            match self.pending {
                Some(Pending::Halt) => {
                    self.pending = None;
                    return Ok(Stop::Halted);
                }
                Some(Pending::Trap(n)) => {
                    self.pending = None;
                    return Ok(Stop::Trap(n));
                }
                None => {}
            }
        }
        Ok(Stop::OutOfFuel)
    }

    fn step(&mut self, instr: Instr, pc: u32, segs: &SegmentTable) -> Result<u32, CpuError> {
        let m = self.model.clone();
        let mut next = pc.wrapping_add(1);
        match instr {
            Instr::Nop => self.counter.charge(Primitive::Alu, &m),
            Instr::MovImm(d, i) => {
                self.counter.charge(Primitive::Alu, &m);
                self.regs[d as usize] = i;
            }
            Instr::MovReg(d, s) => {
                self.counter.charge(Primitive::Alu, &m);
                self.regs[d as usize] = self.regs[s as usize];
            }
            Instr::Add(d, s) => {
                self.counter.charge(Primitive::Alu, &m);
                self.regs[d as usize] = self.regs[d as usize].wrapping_add(self.regs[s as usize]);
            }
            Instr::Sub(d, s) => {
                self.counter.charge(Primitive::Alu, &m);
                self.regs[d as usize] = self.regs[d as usize].wrapping_sub(self.regs[s as usize]);
            }
            Instr::Xor(d, s) => {
                self.counter.charge(Primitive::Alu, &m);
                self.regs[d as usize] ^= self.regs[s as usize];
            }
            Instr::Load(d, a) => {
                let sel = self.ds.ok_or(CpuError::Segment(SegError::BadSelector(Selector(0))))?;
                let off = self.regs[a as usize];
                self.regs[d as usize] = self.read_u32(segs, sel, off)?;
            }
            Instr::Store(a, s) => {
                let sel = self.ds.ok_or(CpuError::Segment(SegError::BadSelector(Selector(0))))?;
                let off = self.regs[a as usize];
                let val = self.regs[s as usize];
                self.write_u32(segs, sel, off, val)?;
            }
            Instr::Jmp(off) => {
                self.counter.charge(Primitive::Branch, &m);
                next = add_signed(pc, off);
            }
            Instr::Jz(r, off) => {
                self.counter.charge(Primitive::Branch, &m);
                if self.regs[r as usize] == 0 {
                    next = add_signed(pc, off);
                }
            }
            Instr::Push(r) => {
                let sel = self.ss.ok_or(CpuError::StackOverflow)?;
                let off = self.sp;
                let val = self.regs[r as usize];
                self.write_u32(segs, sel, off, val).map_err(|_| CpuError::StackOverflow)?;
                self.sp += 4;
            }
            Instr::Pop(r) => {
                if self.sp < 4 {
                    return Err(CpuError::StackUnderflow);
                }
                let sel = self.ss.ok_or(CpuError::StackUnderflow)?;
                self.sp -= 4;
                let off = self.sp;
                self.regs[r as usize] = self.read_u32(segs, sel, off)?;
            }
            Instr::Call(t) => {
                self.counter.charge(Primitive::Branch, &m);
                self.call_stack.push(next);
                next = t;
            }
            Instr::Ret => {
                self.counter.charge(Primitive::BranchIndirect, &m);
                next = self.call_stack.pop().ok_or(CpuError::StackUnderflow)?;
            }
            Instr::Trap(n) => {
                self.pending = Some(Pending::Trap(n));
            }
            Instr::Halt => {
                self.pending = Some(Pending::Halt);
            }
            // Privileged — only reachable in kernel mode (checked in run()).
            Instr::LoadSegReg(sr, r) => {
                let sel = Selector(self.regs[r as usize] as u16);
                self.load_selector(sr, sel);
            }
            Instr::Cli | Instr::Sti => self.counter.charge(Primitive::Alu, &m),
            Instr::LoadPageTable(_) => self.counter.charge(Primitive::PageTableSwitch, &m),
            Instr::IoIn(r, _) => {
                self.counter.charge(Primitive::Load, &m);
                self.regs[r as usize] = 0;
            }
            Instr::IoOut(_, _) => self.counter.charge(Primitive::Store, &m),
            Instr::Iret => self.counter.charge(Primitive::TrapExit, &m),
        }
        Ok(next)
    }
}

/// Deferred stop reason set by `step`, consumed by `run`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    Halt,
    Trap(u8),
}

fn add_signed(pc: u32, off: i32) -> u32 {
    pc.wrapping_add(off as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seg::{Segment, SegmentKind};

    fn setup() -> (Cpu, SegmentTable) {
        let mut segs = SegmentTable::new();
        let data = segs.install(Segment { base: 0, limit: 256, kind: SegmentKind::Data }).unwrap();
        let stack =
            segs.install(Segment { base: 256, limit: 256, kind: SegmentKind::Stack }).unwrap();
        let mut cpu = Cpu::new(4096, Mode::User, CostModel::pentium());
        cpu.load_selector(SegReg::Ds, data);
        cpu.load_selector(SegReg::Ss, stack);
        (cpu, segs)
    }

    #[test]
    fn arithmetic_and_halt() {
        let (mut cpu, segs) = setup();
        let p = Program::new(vec![
            Instr::MovImm(0, 40),
            Instr::MovImm(1, 2),
            Instr::Add(0, 1),
            Instr::Halt,
        ]);
        assert_eq!(cpu.run(&p, &segs, 100), Ok(Stop::Halted));
        assert_eq!(cpu.regs[0], 42);
    }

    #[test]
    fn load_store_roundtrip_through_segment() {
        let (mut cpu, segs) = setup();
        let p = Program::new(vec![
            Instr::MovImm(0, 16), // address
            Instr::MovImm(1, 99), // value
            Instr::Store(0, 1),
            Instr::MovImm(2, 0),
            Instr::Load(2, 0),
            Instr::Halt,
        ]);
        cpu.run(&p, &segs, 100).unwrap();
        assert_eq!(cpu.regs[2], 99);
    }

    #[test]
    fn privileged_instruction_faults_in_user_mode() {
        let (mut cpu, segs) = setup();
        let p = Program::new(vec![Instr::Nop, Instr::Cli, Instr::Halt]);
        let err = cpu.run(&p, &segs, 100).unwrap_err();
        assert_eq!(err, CpuError::PrivilegeViolation { pc: 1, instr: Instr::Cli });
        assert_eq!(err.trap_kind(), TrapKind::PrivilegeViolation);
    }

    #[test]
    fn privileged_instruction_allowed_in_kernel_mode() {
        let (mut cpu, segs) = setup();
        cpu.set_mode(Mode::Kernel);
        let p = Program::new(vec![Instr::Cli, Instr::Sti, Instr::Halt]);
        assert_eq!(cpu.run(&p, &segs, 100), Ok(Stop::Halted));
    }

    #[test]
    fn out_of_segment_store_faults() {
        let (mut cpu, segs) = setup();
        let p = Program::new(vec![Instr::MovImm(0, 600), Instr::Store(0, 0), Instr::Halt]);
        assert!(matches!(cpu.run(&p, &segs, 100), Err(CpuError::Segment(_))));
    }

    #[test]
    fn trap_suspends_execution() {
        let (mut cpu, segs) = setup();
        let p = Program::new(vec![Instr::MovImm(0, 7), Instr::Trap(0x30)]);
        assert_eq!(cpu.run(&p, &segs, 100), Ok(Stop::Trap(0x30)));
        assert_eq!(cpu.regs[0], 7, "registers preserved across trap");
    }

    #[test]
    fn push_pop_and_calls() {
        let (mut cpu, segs) = setup();
        // main: push 5; call f(3); pop back; halt.   f: at index 5: add, ret.
        let p = Program::new(vec![
            Instr::MovImm(0, 5),
            Instr::Push(0),
            Instr::Call(5),
            Instr::Pop(1),
            Instr::Halt,
            // f:
            Instr::MovImm(2, 1),
            Instr::Ret,
        ]);
        cpu.run(&p, &segs, 100).unwrap();
        assert_eq!(cpu.regs[1], 5);
        assert_eq!(cpu.regs[2], 1);
    }

    #[test]
    fn pop_empty_stack_underflows() {
        let (mut cpu, segs) = setup();
        let p = Program::new(vec![Instr::Pop(0)]);
        assert_eq!(cpu.run(&p, &segs, 100), Err(CpuError::StackUnderflow));
    }

    #[test]
    fn runaway_program_runs_out_of_fuel() {
        let (mut cpu, segs) = setup();
        let p = Program::new(vec![Instr::Jmp(0)]);
        assert_eq!(cpu.run(&p, &segs, 10), Ok(Stop::OutOfFuel));
    }

    #[test]
    fn jump_off_text_is_bad_pc() {
        let (mut cpu, segs) = setup();
        let p = Program::new(vec![Instr::Jmp(100)]);
        assert!(matches!(cpu.run(&p, &segs, 10), Err(CpuError::BadPc(_))));
    }

    #[test]
    fn cycles_accumulate_per_instruction() {
        let (mut cpu, segs) = setup();
        let before = cpu.cycles();
        let p = Program::new(vec![Instr::Nop, Instr::Nop, Instr::Halt]);
        cpu.run(&p, &segs, 10).unwrap();
        assert_eq!(cpu.cycles() - before, 2, "two Nops at 1 cycle each; Halt free");
    }
}
