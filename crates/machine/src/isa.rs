//! The simulated instruction set.
//!
//! SISR (Software-based Instruction-Set Reduction) works by scanning a
//! component's text section at load time and rejecting it if it contains any
//! instruction that could subvert protection. For that to be meaningful the
//! machine needs a concrete instruction set in which "privileged" is a
//! decidable, syntactic property of an instruction — exactly as on IA32,
//! where `mov %ds`, `cli`, `lgdt`, `in`/`out` are identifiable opcodes.
//!
//! Instructions also have a fixed binary encoding ([`Instr::encode`] /
//! [`Instr::decode`]) so the scanner in `gokernel` can operate over raw text
//! bytes the way a real verifier would, and so a malicious component cannot
//! smuggle a privileged opcode past a scanner that only sees bytes.

use crate::seg::SegReg;

/// A register name. The machine has eight general-purpose registers,
/// mirroring IA32's `eax..edi`.
pub type Reg = u8;

/// Number of general-purpose registers.
pub const NUM_REGS: usize = 8;

/// One instruction of the simulated ISA.
///
/// The unprivileged subset is deliberately small but sufficient to express
/// real computation (ALU ops, memory access, control flow, procedure calls).
/// The privileged subset mirrors the IA32 instructions that SISR's scanner
/// must reject from user components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// No operation.
    Nop,
    /// `dst <- imm`.
    MovImm(Reg, u32),
    /// `dst <- src`.
    MovReg(Reg, Reg),
    /// `dst <- dst + src`, wrapping.
    Add(Reg, Reg),
    /// `dst <- dst - src`, wrapping.
    Sub(Reg, Reg),
    /// `dst <- dst ^ src`.
    Xor(Reg, Reg),
    /// `dst <- mem[addr_reg]` (a data-segment relative load).
    Load(Reg, Reg),
    /// `mem[addr_reg] <- src` (a data-segment relative store).
    Store(Reg, Reg),
    /// Relative jump: `pc <- pc + off` (off is in instructions).
    Jmp(i32),
    /// Conditional relative jump if `reg == 0`.
    Jz(Reg, i32),
    /// Push a register on the stack segment.
    Push(Reg),
    /// Pop a register off the stack segment.
    Pop(Reg),
    /// Call a procedure at an absolute instruction address in the current
    /// code segment; pushes the return address.
    Call(u32),
    /// Return from a procedure; pops the return address.
    Ret,
    /// Software trap (like IA32 `int n`): the only legal way for user code
    /// under a trap-based kernel to request service. Unprivileged.
    Trap(u8),
    /// Halt the CPU. Unprivileged programs use it to signal completion.
    Halt,

    // ---- privileged instructions (SISR scanner targets) ----
    /// Load a segment register from a general register holding a selector.
    /// This *is* the Go! context switch — and precisely the instruction SISR
    /// must prevent ordinary components from containing.
    LoadSegReg(SegReg, Reg),
    /// Disable interrupts (IA32 `cli`).
    Cli,
    /// Enable interrupts (IA32 `sti`).
    Sti,
    /// Load the page-table base register (IA32 `mov %cr3`), flushing the TLB.
    LoadPageTable(Reg),
    /// Read from an I/O port into a register.
    IoIn(Reg, u16),
    /// Write a register to an I/O port.
    IoOut(Reg, u16),
    /// Return from a trap handler (IA32 `iret`).
    Iret,
}

/// Control-flow classification of an instruction — what a load-time
/// verifier's CFG builder needs to know about where execution can go next.
///
/// The classification mirrors the CPU's `step` exactly: relative offsets are
/// in instruction units and wrap (like the hardware's 32-bit PC adder), calls
/// are absolute within the code segment, and `Trap`/`Halt` end the current
/// activation (a trap suspends to the kernel; whether it is ever resumed is
/// the kernel's business, not the verified component's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Falls through to `pc + 1`.
    Fall,
    /// Unconditional PC-relative jump by the offset.
    Jump(i32),
    /// Conditional PC-relative jump: either falls through or jumps.
    Branch(i32),
    /// Absolute call; the callee eventually returns to `pc + 1`.
    Call(u32),
    /// Pops the call stack.
    Ret,
    /// Ends the activation (`Halt`, `Trap`).
    Exit,
}

/// A PC-relative branch target, computed exactly as the CPU computes it: a
/// wrapping 32-bit add in instruction units.
#[must_use]
pub fn rel_target(pc: u32, off: i32) -> u32 {
    pc.wrapping_add(off as u32)
}

impl Instr {
    /// Whether this instruction is privileged, i.e. may only execute in
    /// kernel mode on a trap-based kernel, and must be absent from any
    /// SISR-verified component text.
    #[must_use]
    pub fn is_privileged(self) -> bool {
        matches!(
            self,
            Instr::LoadSegReg(_, _)
                | Instr::Cli
                | Instr::Sti
                | Instr::LoadPageTable(_)
                | Instr::IoIn(_, _)
                | Instr::IoOut(_, _)
                | Instr::Iret
        )
    }

    /// The control-flow class of this instruction (see [`Flow`]).
    ///
    /// Privileged instructions never reach a verifier's CFG builder (the
    /// decode pass rejects them first); classifying them as [`Flow::Fall`]
    /// keeps this function total.
    #[must_use]
    pub fn flow(self) -> Flow {
        match self {
            Instr::Jmp(off) => Flow::Jump(off),
            Instr::Jz(_, off) => Flow::Branch(off),
            Instr::Call(t) => Flow::Call(t),
            Instr::Ret => Flow::Ret,
            Instr::Halt | Instr::Trap(_) => Flow::Exit,
            _ => Flow::Fall,
        }
    }

    /// Encode the instruction into its fixed 8-byte binary form:
    /// `[opcode, a, b, imm0, imm1, imm2, imm3, 0]`.
    #[must_use]
    pub fn encode(self) -> [u8; 8] {
        let (op, a, b, imm): (u8, u8, u8, u32) = match self {
            Instr::Nop => (0x00, 0, 0, 0),
            Instr::MovImm(d, i) => (0x01, d, 0, i),
            Instr::MovReg(d, s) => (0x02, d, s, 0),
            Instr::Add(d, s) => (0x03, d, s, 0),
            Instr::Sub(d, s) => (0x04, d, s, 0),
            Instr::Xor(d, s) => (0x05, d, s, 0),
            Instr::Load(d, a_) => (0x06, d, a_, 0),
            Instr::Store(a_, s) => (0x07, a_, s, 0),
            Instr::Jmp(off) => (0x08, 0, 0, off as u32),
            Instr::Jz(r, off) => (0x09, r, 0, off as u32),
            Instr::Push(r) => (0x0a, r, 0, 0),
            Instr::Pop(r) => (0x0b, r, 0, 0),
            Instr::Call(t) => (0x0c, 0, 0, t),
            Instr::Ret => (0x0d, 0, 0, 0),
            Instr::Trap(n) => (0x0e, n, 0, 0),
            Instr::Halt => (0x0f, 0, 0, 0),
            Instr::LoadSegReg(sr, r) => (0x80, sr as u8, r, 0),
            Instr::Cli => (0x81, 0, 0, 0),
            Instr::Sti => (0x82, 0, 0, 0),
            Instr::LoadPageTable(r) => (0x83, r, 0, 0),
            Instr::IoIn(r, p) => (0x84, r, 0, u32::from(p)),
            Instr::IoOut(r, p) => (0x85, r, 0, u32::from(p)),
            Instr::Iret => (0x86, 0, 0, 0),
        };
        let i = imm.to_le_bytes();
        [op, a, b, i[0], i[1], i[2], i[3], 0]
    }

    /// Decode an instruction from its 8-byte binary form.
    ///
    /// Returns `None` for undefined opcodes or malformed operands — a real
    /// verifier must treat undecodable bytes as a rejection, never as a
    /// silently-skipped gap.
    #[must_use]
    pub fn decode(bytes: [u8; 8]) -> Option<Instr> {
        let (op, a, b) = (bytes[0], bytes[1], bytes[2]);
        let imm = u32::from_le_bytes([bytes[3], bytes[4], bytes[5], bytes[6]]);
        let reg_ok = |r: u8| (r as usize) < NUM_REGS;
        let instr = match op {
            0x00 => Instr::Nop,
            0x01 if reg_ok(a) => Instr::MovImm(a, imm),
            0x02 if reg_ok(a) && reg_ok(b) => Instr::MovReg(a, b),
            0x03 if reg_ok(a) && reg_ok(b) => Instr::Add(a, b),
            0x04 if reg_ok(a) && reg_ok(b) => Instr::Sub(a, b),
            0x05 if reg_ok(a) && reg_ok(b) => Instr::Xor(a, b),
            0x06 if reg_ok(a) && reg_ok(b) => Instr::Load(a, b),
            0x07 if reg_ok(a) && reg_ok(b) => Instr::Store(a, b),
            0x08 => Instr::Jmp(imm as i32),
            0x09 if reg_ok(a) => Instr::Jz(a, imm as i32),
            0x0a if reg_ok(a) => Instr::Push(a),
            0x0b if reg_ok(a) => Instr::Pop(a),
            0x0c => Instr::Call(imm),
            0x0d => Instr::Ret,
            0x0e => Instr::Trap(a),
            0x0f => Instr::Halt,
            0x80 => Instr::LoadSegReg(SegReg::from_u8(a)?, if reg_ok(b) { b } else { return None }),
            0x81 => Instr::Cli,
            0x82 => Instr::Sti,
            0x83 if reg_ok(a) => Instr::LoadPageTable(a),
            0x84 if reg_ok(a) => Instr::IoIn(a, imm as u16),
            0x85 if reg_ok(a) => Instr::IoOut(a, imm as u16),
            0x86 => Instr::Iret,
            _ => return None,
        };
        Some(instr)
    }
}

/// A program: a text section of decoded instructions.
///
/// Components carry their text both decoded (for execution) and encoded (for
/// the SISR scanner, which must work from bytes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    text: Vec<Instr>,
}

impl Program {
    /// Build a program from instructions.
    #[must_use]
    pub fn new(text: Vec<Instr>) -> Self {
        Self { text }
    }

    /// The instructions.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.text
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Serialise the text section to bytes (8 bytes per instruction).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.text.len() * 8);
        for i in &self.text {
            out.extend_from_slice(&i.encode());
        }
        out
    }

    /// Deserialise a text section from bytes.
    ///
    /// Returns `None` if the byte length is not a multiple of 8 or any
    /// 8-byte word fails to decode.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if !bytes.len().is_multiple_of(8) {
            return None;
        }
        let mut text = Vec::with_capacity(bytes.len() / 8);
        for chunk in bytes.chunks_exact(8) {
            let mut w = [0u8; 8];
            w.copy_from_slice(chunk);
            text.push(Instr::decode(w)?);
        }
        Some(Self { text })
    }

    /// Whether any instruction in the text is privileged.
    #[must_use]
    pub fn contains_privileged(&self) -> bool {
        self.text.iter().any(|i| i.is_privileged())
    }

    /// The statically-known successor PCs of the instruction at `pc`, in the
    /// order the CPU would prefer them (fall-through first). Targets are
    /// *not* bounds-checked — a verifier wants the raw values so it can
    /// report exactly which edge escapes the text. `Ret` has no static
    /// successors (its target lives on the call stack), and an out-of-range
    /// `pc` has none.
    #[must_use]
    pub fn successors(&self, pc: u32) -> Vec<u32> {
        let Some(&instr) = self.text.get(pc as usize) else {
            return Vec::new();
        };
        match instr.flow() {
            Flow::Fall => vec![pc.wrapping_add(1)],
            Flow::Jump(off) => vec![rel_target(pc, off)],
            Flow::Branch(off) => vec![pc.wrapping_add(1), rel_target(pc, off)],
            Flow::Call(t) => vec![t],
            Flow::Ret | Flow::Exit => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<Instr> {
        vec![
            Instr::Nop,
            Instr::MovImm(3, 0xdead_beef),
            Instr::MovReg(1, 2),
            Instr::Add(0, 7),
            Instr::Sub(4, 4),
            Instr::Xor(5, 6),
            Instr::Load(2, 3),
            Instr::Store(3, 2),
            Instr::Jmp(-5),
            Instr::Jz(1, 9),
            Instr::Push(6),
            Instr::Pop(6),
            Instr::Call(42),
            Instr::Ret,
            Instr::Trap(0x30),
            Instr::Halt,
            Instr::LoadSegReg(SegReg::Cs, 1),
            Instr::LoadSegReg(SegReg::Ds, 2),
            Instr::LoadSegReg(SegReg::Ss, 3),
            Instr::Cli,
            Instr::Sti,
            Instr::LoadPageTable(0),
            Instr::IoIn(1, 0x3f8),
            Instr::IoOut(2, 0x3f8),
            Instr::Iret,
        ]
    }

    #[test]
    fn encode_decode_roundtrip_all_variants() {
        for i in all_variants() {
            assert_eq!(Instr::decode(i.encode()), Some(i), "{i:?}");
        }
    }

    #[test]
    fn privileged_classification_matches_spec() {
        let priv_count = all_variants().iter().filter(|i| i.is_privileged()).count();
        // 3 seg-reg loads + cli + sti + lpt + in + out + iret = 9.
        assert_eq!(priv_count, 9);
        assert!(!Instr::Trap(0).is_privileged(), "traps are how user code *enters* the kernel");
    }

    #[test]
    fn undefined_opcode_rejected() {
        assert_eq!(Instr::decode([0x7f, 0, 0, 0, 0, 0, 0, 0]), None);
        assert_eq!(Instr::decode([0xff, 0, 0, 0, 0, 0, 0, 0]), None);
    }

    #[test]
    fn out_of_range_register_rejected() {
        // MovImm with register 8 (only 0..=7 exist).
        assert_eq!(Instr::decode([0x01, 8, 0, 0, 0, 0, 0, 0]), None);
        // LoadSegReg with bad segment register code.
        assert_eq!(Instr::decode([0x80, 9, 0, 0, 0, 0, 0, 0]), None);
    }

    #[test]
    fn program_bytes_roundtrip() {
        let p = Program::new(all_variants());
        let bytes = p.to_bytes();
        assert_eq!(Program::from_bytes(&bytes), Some(p));
    }

    #[test]
    fn program_from_misaligned_bytes_fails() {
        assert_eq!(Program::from_bytes(&[0u8; 7]), None);
        assert!(Program::from_bytes(&[]).is_some(), "empty program is valid");
    }

    #[test]
    fn contains_privileged_detects_deep_instruction() {
        let mut text = vec![Instr::Nop; 100];
        assert!(!Program::new(text.clone()).contains_privileged());
        text.push(Instr::Cli);
        assert!(Program::new(text).contains_privileged());
    }

    #[test]
    fn flow_classification_matches_cpu_semantics() {
        assert_eq!(Instr::Nop.flow(), Flow::Fall);
        assert_eq!(Instr::Load(0, 1).flow(), Flow::Fall);
        assert_eq!(Instr::Jmp(-3).flow(), Flow::Jump(-3));
        assert_eq!(Instr::Jz(2, 5).flow(), Flow::Branch(5));
        assert_eq!(Instr::Call(9).flow(), Flow::Call(9));
        assert_eq!(Instr::Ret.flow(), Flow::Ret);
        assert_eq!(Instr::Halt.flow(), Flow::Exit);
        assert_eq!(Instr::Trap(0x30).flow(), Flow::Exit);
    }

    #[test]
    fn rel_target_wraps_like_the_pc_adder() {
        assert_eq!(rel_target(10, -3), 7);
        assert_eq!(rel_target(0, -1), u32::MAX, "backward wrap matches add_signed");
        assert_eq!(rel_target(u32::MAX, 1), 0);
    }

    #[test]
    fn successors_enumerate_cfg_edges() {
        let p = Program::new(vec![
            Instr::Nop,      // 0 -> 1
            Instr::Jz(0, 2), // 1 -> 2, 3
            Instr::Jmp(-2),  // 2 -> 0
            Instr::Call(6),  // 3 -> 6 (returns to 4)
            Instr::Halt,     // 4 -> (exit)
            Instr::Nop,      // 5 -> 6
            Instr::Ret,      // 6 -> (call stack)
        ]);
        assert_eq!(p.successors(0), vec![1]);
        assert_eq!(p.successors(1), vec![2, 3]);
        assert_eq!(p.successors(2), vec![0]);
        assert_eq!(p.successors(3), vec![6]);
        assert_eq!(p.successors(4), Vec::<u32>::new());
        assert_eq!(p.successors(6), Vec::<u32>::new());
        assert_eq!(p.successors(99), Vec::<u32>::new(), "out-of-range pc has no edges");
    }
}
