//! Trap vector and mode-crossing accounting.
//!
//! Trap-based kernels (BSD, Mach, L4) enter the kernel through a hardware
//! trap: the CPU flushes its pipeline, switches to the kernel stack, and
//! vectors through a table. SISR's whole point is to make this machinery
//! unnecessary for component invocation — Go! has *no* processor-mode split,
//! so this module is only exercised by the comparator kernels.

use crate::cost::{CostModel, CycleCounter, Primitive};

/// The cause of a trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapKind {
    /// A software trap (`Trap(n)` instruction) — a system call.
    Syscall(u8),
    /// A privileged instruction executed in user mode.
    PrivilegeViolation,
    /// A segmentation limit or kind violation.
    SegmentFault,
    /// A page-protection violation.
    PageFault,
    /// A hardware device interrupt.
    Interrupt(u8),
}

/// A trap vector: maps syscall/interrupt numbers to handler identifiers,
/// and charges the hardware's entry/exit costs.
#[derive(Debug, Clone, Default)]
pub struct TrapVector {
    handlers: Vec<(u8, &'static str)>,
}

impl TrapVector {
    /// An empty vector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a handler name for a vector number.
    pub fn install(&mut self, vector: u8, handler: &'static str) {
        if let Some(slot) = self.handlers.iter_mut().find(|(v, _)| *v == vector) {
            slot.1 = handler;
        } else {
            self.handlers.push((vector, handler));
        }
    }

    /// Look up the handler for a vector number.
    #[must_use]
    pub fn handler(&self, vector: u8) -> Option<&'static str> {
        self.handlers.iter().find(|(v, _)| *v == vector).map(|(_, h)| *h)
    }

    /// Charge the hardware cost of entering a trap handler.
    pub fn charge_enter(counter: &mut CycleCounter, model: &CostModel) {
        counter.charge(Primitive::TrapEnter, model);
    }

    /// Charge the hardware cost of returning from a trap handler.
    pub fn charge_exit(counter: &mut CycleCounter, model: &CostModel) {
        counter.charge(Primitive::TrapExit, model);
    }

    /// Charge a full round trip (enter + exit).
    pub fn charge_round_trip(counter: &mut CycleCounter, model: &CostModel) {
        Self::charge_enter(counter, model);
        Self::charge_exit(counter, model);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_and_lookup() {
        let mut v = TrapVector::new();
        v.install(0x30, "ipc");
        v.install(0x80, "syscall");
        assert_eq!(v.handler(0x30), Some("ipc"));
        assert_eq!(v.handler(0x80), Some("syscall"));
        assert_eq!(v.handler(0x00), None);
    }

    #[test]
    fn reinstall_replaces() {
        let mut v = TrapVector::new();
        v.install(1, "a");
        v.install(1, "b");
        assert_eq!(v.handler(1), Some("b"));
    }

    #[test]
    fn round_trip_costs_enter_plus_exit() {
        let m = CostModel::pentium();
        let mut c = CycleCounter::new();
        TrapVector::charge_round_trip(&mut c, &m);
        assert_eq!(c.total(), m.trap_enter + m.trap_exit);
    }
}
