//! Paging memory protection — the model traditional kernels use.
//!
//! BSD, Mach and L4 all protect address spaces with page tables. Two costs of
//! that choice matter for the paper's argument:
//!
//! 1. **Time.** Switching protection domains means loading a new page-table
//!    base, which flushes the TLB; the cycles show up as refills over the new
//!    working set. (Go! switches protection with three 1-cycle segment
//!    loads instead.)
//! 2. **Space.** The granule of protection is a page (4 KiB) and the mapping
//!    structures themselves cost a page-table page per 4 MiB region — versus
//!    Go!'s 32-byte interface descriptors. This is the "around two orders of
//!    magnitude improvement" the paper claims.

use crate::cost::{CostModel, CycleCounter, Primitive};

/// Bytes per page.
pub const PAGE_SIZE: u32 = 4096;

/// Entries per page-table page (matches IA32: 1024 × 4-byte entries).
pub const ENTRIES_PER_TABLE: u32 = 1024;

/// Protection bits on a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFlags {
    /// Writable.
    pub write: bool,
    /// Accessible from user mode.
    pub user: bool,
}

/// A virtual page number.
pub type Vpn = u32;
/// A physical frame number.
pub type Pfn = u32;

/// Errors raised by the paging unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageError {
    /// No mapping for the page.
    NotMapped(Vpn),
    /// Write to a read-only page.
    ReadOnly(Vpn),
    /// User-mode access to a supervisor page.
    Supervisor(Vpn),
}

/// An address space: a sparse map from virtual page to physical frame.
///
/// Sparse `Vec` of (vpn, pfn, flags) kept sorted — address spaces here hold
/// tens of mappings, and a sorted vec beats a hash map at that size.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    maps: Vec<(Vpn, Pfn, PageFlags)>,
}

impl AddressSpace {
    /// An empty address space.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Map a page, replacing any existing mapping.
    pub fn map(&mut self, vpn: Vpn, pfn: Pfn, flags: PageFlags) {
        match self.maps.binary_search_by_key(&vpn, |e| e.0) {
            Ok(i) => self.maps[i] = (vpn, pfn, flags),
            Err(i) => self.maps.insert(i, (vpn, pfn, flags)),
        }
    }

    /// Remove a mapping; returns whether one existed.
    pub fn unmap(&mut self, vpn: Vpn) -> bool {
        match self.maps.binary_search_by_key(&vpn, |e| e.0) {
            Ok(i) => {
                self.maps.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Translate a page, checking protection.
    ///
    /// # Errors
    /// [`PageError`] protection violations.
    pub fn translate(&self, vpn: Vpn, write: bool, user: bool) -> Result<Pfn, PageError> {
        let (_, pfn, flags) = self.maps[self
            .maps
            .binary_search_by_key(&vpn, |e| e.0)
            .map_err(|_| PageError::NotMapped(vpn))?];
        if write && !flags.write {
            return Err(PageError::ReadOnly(vpn));
        }
        if user && !flags.user {
            return Err(PageError::Supervisor(vpn));
        }
        Ok(pfn)
    }

    /// Number of live mappings.
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.maps.len()
    }

    /// Bytes of mapping-structure overhead this address space consumes:
    /// one 4-byte entry per mapping plus one 4 KiB table page per distinct
    /// 4 MiB region touched (the IA32 two-level layout), plus the 4 KiB
    /// directory page.
    #[must_use]
    pub fn protection_bytes(&self) -> u64 {
        if self.maps.is_empty() {
            return 0;
        }
        let mut regions: Vec<u32> = self.maps.iter().map(|e| e.0 / ENTRIES_PER_TABLE).collect();
        regions.dedup();
        // directory page + one table page per region
        u64::from(PAGE_SIZE) * (1 + regions.len() as u64)
    }
}

/// A TLB model: tracks which translations are cached and charges refills.
///
/// Capacity and contents are modelled so a domain switch (flush) costs
/// refills proportional to the *working set touched afterwards*, which is
/// how the real cost manifests.
#[derive(Debug, Clone)]
pub struct Tlb {
    capacity: usize,
    entries: Vec<Vpn>,
    hits: u64,
    misses: u64,
}

impl Default for Tlb {
    fn default() -> Self {
        Self::new(64)
    }
}

impl Tlb {
    /// A TLB with the given entry capacity (Pentium data TLB: 64 entries).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self { capacity, entries: Vec::new(), hits: 0, misses: 0 }
    }

    /// Touch a page: on a miss, charge a refill walk to `counter` and cache
    /// the translation (FIFO eviction).
    pub fn touch(&mut self, vpn: Vpn, counter: &mut CycleCounter, model: &CostModel) {
        if self.entries.contains(&vpn) {
            self.hits += 1;
            return;
        }
        self.misses += 1;
        counter.charge(Primitive::TlbRefill(1), model);
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(vpn);
    }

    /// Flush all entries — what a page-table base load does on IA32 without
    /// tagged TLBs. The cost is paid later, as misses.
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Hit count since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of currently cached translations.
    #[must_use]
    pub fn cached(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RW_USER: PageFlags = PageFlags { write: true, user: true };
    const RO_USER: PageFlags = PageFlags { write: false, user: true };
    const RW_SUP: PageFlags = PageFlags { write: true, user: false };

    #[test]
    fn map_translate_unmap() {
        let mut a = AddressSpace::new();
        a.map(5, 100, RW_USER);
        assert_eq!(a.translate(5, true, true), Ok(100));
        assert!(a.unmap(5));
        assert_eq!(a.translate(5, false, true), Err(PageError::NotMapped(5)));
        assert!(!a.unmap(5));
    }

    #[test]
    fn protection_bits_enforced() {
        let mut a = AddressSpace::new();
        a.map(1, 10, RO_USER);
        a.map(2, 20, RW_SUP);
        assert_eq!(a.translate(1, true, true), Err(PageError::ReadOnly(1)));
        assert_eq!(a.translate(2, false, true), Err(PageError::Supervisor(2)));
        assert_eq!(a.translate(2, true, false), Ok(20));
    }

    #[test]
    fn remap_replaces() {
        let mut a = AddressSpace::new();
        a.map(1, 10, RO_USER);
        a.map(1, 11, RW_USER);
        assert_eq!(a.translate(1, true, true), Ok(11));
        assert_eq!(a.mapped_pages(), 1);
    }

    #[test]
    fn protection_bytes_page_granular() {
        let mut a = AddressSpace::new();
        assert_eq!(a.protection_bytes(), 0);
        a.map(0, 1, RW_USER);
        // directory + one table page even for a single mapping: 8 KiB.
        assert_eq!(a.protection_bytes(), 8192);
        // Second mapping in the same 4 MiB region: no new table page.
        a.map(1, 2, RW_USER);
        assert_eq!(a.protection_bytes(), 8192);
        // Mapping in a distant region: one more table page.
        a.map(5000, 3, RW_USER);
        assert_eq!(a.protection_bytes(), 12288);
    }

    #[test]
    fn tlb_charges_refills_after_flush() {
        let model = CostModel::pentium();
        let mut c = CycleCounter::new();
        let mut tlb = Tlb::new(4);
        for vpn in 0..4 {
            tlb.touch(vpn, &mut c, &model);
        }
        let warm = c.total();
        for vpn in 0..4 {
            tlb.touch(vpn, &mut c, &model); // all hits
        }
        assert_eq!(c.total(), warm);
        tlb.flush();
        for vpn in 0..4 {
            tlb.touch(vpn, &mut c, &model); // all refills again
        }
        assert_eq!(c.total(), warm + 4 * model.tlb_refill_entry);
        assert_eq!(tlb.hits(), 4);
        assert_eq!(tlb.misses(), 8);
    }

    #[test]
    fn tlb_evicts_fifo_at_capacity() {
        let model = CostModel::pentium();
        let mut c = CycleCounter::new();
        let mut tlb = Tlb::new(2);
        tlb.touch(1, &mut c, &model);
        tlb.touch(2, &mut c, &model);
        tlb.touch(3, &mut c, &model); // evicts 1
        assert_eq!(tlb.cached(), 2);
        tlb.touch(1, &mut c, &model); // miss again
        assert_eq!(tlb.misses(), 4);
    }
}
