//! Builders for the seven `sys.*` tables.
//!
//! Each builder freezes one subsystem's live state into a
//! [`datacomp::Table`] with a stable schema and deterministic row order,
//! ready for [`SysScan`](crate::SysScan) and the rest of the operator
//! algebra. Builders take the subsystem's public introspection types —
//! they never reach into private state, so anything a table serves is
//! equally available to ordinary code.

use compkit::journal::{AdaptationJournal, JournalRecord};
use compkit::AdaptivityManager;
use datacomp::{ColumnType, Schema, Table, Value};
use obs::span::{EventKind, TraceEvent};
use obs::MetricsSnapshot;
use patia::wheel::TimerWheel;
use patia::WheelArea;
use store::BufferPool;
use txn::{TransactionCore, TxnRecord};

/// Saturating `u64 → Value::Int` (registry counters can exceed `i64`).
fn int(v: u64) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// `sys.metrics`: one row per counter, gauge, and histogram component.
///
/// Schema: `kind` (`counter`/`gauge`/`histogram`), `name`, `key`
/// (`value` for scalars; `count`/`sum`/`min`/`max`/`b<idx>` for
/// histogram components), `value_int`, `value_float` (exactly one is
/// non-null: gauges fill the float, everything else the int). Rows come
/// out in the snapshot's name-sorted order, histogram buckets ascending.
///
/// # Panics
/// Never: rows are built to the schema.
#[must_use]
pub fn metrics_table(snap: &MetricsSnapshot) -> Table {
    let schema = Schema::new(&[
        ("kind", ColumnType::Str),
        ("name", ColumnType::Str),
        ("key", ColumnType::Str),
        ("value_int", ColumnType::Int),
        ("value_float", ColumnType::Float),
    ])
    .expect("sys.metrics schema is statically valid");
    let mut t = Table::new(schema);
    let mut push = |kind: &str, name: &str, key: &str, vi: Value, vf: Value| {
        t.insert(vec![
            Value::Str(kind.to_owned()),
            Value::Str(name.to_owned()),
            Value::Str(key.to_owned()),
            vi,
            vf,
        ])
        .expect("sys.metrics rows match their schema");
    };
    for (name, v) in &snap.counters {
        push("counter", name, "value", int(*v), Value::Null);
    }
    for (name, v) in &snap.gauges {
        push("gauge", name, "value", Value::Null, Value::float(*v));
    }
    for (name, h) in &snap.histograms {
        push("histogram", name, "count", int(h.count), Value::Null);
        push("histogram", name, "sum", int(h.sum), Value::Null);
        push("histogram", name, "min", int(h.min), Value::Null);
        push("histogram", name, "max", int(h.max), Value::Null);
        for (bucket, n) in &h.buckets {
            push("histogram", name, &format!("b{bucket}"), int(*n), Value::Null);
        }
    }
    t
}

/// `sys.spans`: one row per trace event, in completion order.
///
/// Schema: `seq` (position in the event log), `ts`, `dur`, `cat`,
/// `name`, `kind` (`complete`/`instant`), `args` (the rendered
/// `k=v` list, space-separated, empty string when the event has none).
///
/// # Panics
/// Never: rows are built to the schema.
#[must_use]
pub fn spans_table(events: &[TraceEvent]) -> Table {
    let schema = Schema::new(&[
        ("seq", ColumnType::Int),
        ("ts", ColumnType::Int),
        ("dur", ColumnType::Int),
        ("cat", ColumnType::Str),
        ("name", ColumnType::Str),
        ("kind", ColumnType::Str),
        ("args", ColumnType::Str),
    ])
    .expect("sys.spans schema is statically valid");
    let mut t = Table::new(schema);
    for (seq, e) in events.iter().enumerate() {
        let kind = match e.kind {
            EventKind::Complete => "complete",
            EventKind::Instant => "instant",
        };
        let args = e.args.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(" ");
        t.insert(vec![
            Value::Int(seq as i64),
            int(e.ts),
            int(e.dur),
            Value::Str(e.cat.to_owned()),
            Value::Str(e.name.clone()),
            Value::Str(kind.to_owned()),
            Value::Str(args),
        ])
        .expect("sys.spans rows match their schema");
    }
    t
}

/// `sys.supervision`: one row per watched peer — re-exported from
/// [`patia::rules`], which owns the schema because the declarative
/// switching rule filters these very rows.
pub use patia::rules::supervision_table;

/// `sys.switches`: the adaptation journal's history — summary stats
/// plus any live (uncheckpointed) records.
///
/// Schema: `kind` (`stat`/`record`), `name` (stat name, or the record's
/// tag: `intent`/`applied`/`undone`/`commit`/`abort`), `txn` (null for
/// stats), `value` (stat value; the record's step count or index),
/// `detail` (the record's rendered form; null for stats).
///
/// The journal truncates at every commit checkpoint, so after a healthy
/// run the `record` rows are empty and history lives in the stats:
/// `committed` / `rolled_back` come from the adaptivity manager,
/// `journal_appended` / `journal_truncations` / `journal_live` from the
/// journal's monotone counters.
///
/// # Panics
/// Never: rows are built to the schema.
#[must_use]
pub fn switches_table(
    committed: u64,
    rolled_back: u64,
    journal: Option<&AdaptationJournal>,
) -> Table {
    let schema = Schema::new(&[
        ("kind", ColumnType::Str),
        ("name", ColumnType::Str),
        ("txn", ColumnType::Int),
        ("value", ColumnType::Int),
        ("detail", ColumnType::Str),
    ])
    .expect("sys.switches schema is statically valid");
    let mut t = Table::new(schema);
    let mut stat = |name: &str, v: u64| {
        t.insert(vec![
            Value::Str("stat".to_owned()),
            Value::Str(name.to_owned()),
            Value::Null,
            int(v),
            Value::Null,
        ])
        .expect("sys.switches stat rows match their schema");
    };
    stat("committed", committed);
    stat("rolled_back", rolled_back);
    stat("journal_appended", journal.map_or(0, AdaptationJournal::appended_total));
    stat("journal_truncations", journal.map_or(0, AdaptationJournal::truncations));
    stat("journal_live", journal.map_or(0, |j| j.len() as u64));
    if let Some(j) = journal {
        for r in j.records() {
            let (name, txn, value) = match r {
                JournalRecord::Intent { txn, steps, .. } => ("intent", *txn, Some(*steps as u64)),
                JournalRecord::Applied { txn, index, .. } => ("applied", *txn, Some(*index as u64)),
                JournalRecord::Undone { txn, index } => ("undone", *txn, Some(*index as u64)),
                JournalRecord::Commit { txn } => ("commit", *txn, None),
                JournalRecord::Abort { txn } => ("abort", *txn, None),
            };
            t.insert(vec![
                Value::Str("record".to_owned()),
                Value::Str(name.to_owned()),
                int(txn),
                value.map_or(Value::Null, int),
                Value::Str(r.to_string()),
            ])
            .expect("sys.switches record rows match their schema");
        }
    }
    t
}

/// `sys.txns`: the unbundled transaction core's ledger — protocol stats
/// plus every live (untruncated) record of the unified transaction log.
///
/// Schema: `kind` (`stat`/`record`), `name` (stat name, or the record's
/// tag: `begin`/`intent`/`applied`/`undone`/`prepared`/`commit`/
/// `shard-committed`/`shard-aborted`/`end`), `gtxn` (null for stats),
/// `shard` (null for stats and coordinator records), `value` (stat
/// value; for records the shard count, declared steps, or step index),
/// `detail` (the record's rendered form; null for stats).
///
/// The stats mirror the lifetime counters the core and its log expose
/// (`committed`/`aborted`/`crashes`/`recoveries`/`in_doubt_resolved`,
/// `log_appended`/`log_truncations`/`log_live`, `locks_held`) plus the
/// legacy single-shard journal's live length (`journal_live`, from the
/// adaptivity manager the core unbundled) so one query screens both
/// generations of the switch machinery. After `truncate_ended` a
/// healthy log serves no `record` rows — exactly like `sys.switches`.
///
/// # Panics
/// Never: rows are built to the schema.
#[must_use]
pub fn txns_table(core: &TransactionCore, am: Option<&AdaptivityManager>) -> Table {
    let schema = Schema::new(&[
        ("kind", ColumnType::Str),
        ("name", ColumnType::Str),
        ("gtxn", ColumnType::Int),
        ("shard", ColumnType::Int),
        ("value", ColumnType::Int),
        ("detail", ColumnType::Str),
    ])
    .expect("sys.txns schema is statically valid");
    let mut t = Table::new(schema);
    let mut stat = |name: &str, v: u64| {
        t.insert(vec![
            Value::Str("stat".to_owned()),
            Value::Str(name.to_owned()),
            Value::Null,
            Value::Null,
            int(v),
            Value::Null,
        ])
        .expect("sys.txns stat rows match their schema");
    };
    stat("committed", core.committed());
    stat("aborted", core.aborted());
    stat("crashes", core.crashes());
    stat("recoveries", core.recoveries());
    stat("in_doubt_resolved", core.in_doubt_resolved());
    stat("log_appended", core.log().appended_total());
    stat("log_truncations", core.log().truncations());
    stat("log_live", core.log().len() as u64);
    stat("locks_held", core.locks().held_total() as u64);
    stat("journal_live", am.map_or(0, |m| m.journal_len() as u64));
    for r in core.log().records() {
        let (shard, value) = match r {
            TxnRecord::Begin { shards, .. } => (None, Some(shards.len() as u64)),
            TxnRecord::Intent { shard, steps, .. } => (Some(shard.0), Some(*steps as u64)),
            TxnRecord::Applied { shard, index, .. } | TxnRecord::Undone { shard, index, .. } => {
                (Some(shard.0), Some(*index as u64))
            }
            TxnRecord::Prepared { shard, .. }
            | TxnRecord::ShardCommitted { shard, .. }
            | TxnRecord::ShardAborted { shard, .. } => (Some(shard.0), None),
            TxnRecord::Commit { .. } | TxnRecord::End { .. } => (None, None),
        };
        t.insert(vec![
            Value::Str("record".to_owned()),
            Value::Str(r.tag().to_owned()),
            int(r.gtxn()),
            shard.map_or(Value::Null, |s| Value::Int(i64::from(s))),
            value.map_or(Value::Null, int),
            Value::Str(r.to_string()),
        ])
        .expect("sys.txns record rows match their schema");
    }
    t
}

/// `sys.pool`: one row per buffer-pool frame, in frame-index order.
///
/// Schema: `frame`, `page` (null for an empty frame), `dirty`,
/// `referenced` (clock policy's bit; null under LRU), `lru_stamp` (LRU
/// access stamp; null under clock).
///
/// # Panics
/// Never: rows are built to the schema.
#[must_use]
pub fn pool_table(pool: &BufferPool) -> Table {
    let schema = Schema::new(&[
        ("frame", ColumnType::Int),
        ("page", ColumnType::Int),
        ("dirty", ColumnType::Bool),
        ("referenced", ColumnType::Bool),
        ("lru_stamp", ColumnType::Int),
    ])
    .expect("sys.pool schema is statically valid");
    let mut t = Table::new(schema);
    for f in pool.frame_table() {
        t.insert(vec![
            Value::Int(f.frame as i64),
            f.page.map_or(Value::Null, |p| Value::Int(i64::from(p.0))),
            Value::Bool(f.dirty),
            f.referenced.map_or(Value::Null, Value::Bool),
            f.lru_stamp.map_or(Value::Null, int),
        ])
        .expect("sys.pool rows match their schema");
    }
    t
}

/// `sys.timers`: one row per populated wheel region, in the wheel's
/// fixed traversal order (`past`, then (level, slot) ascending, then
/// `overflow`).
///
/// Schema: `area` (`past`/`wheel`/`overflow`), `level` and `slot` (null
/// outside `wheel` rows), `live` (non-cancelled entries waiting there).
/// The `live` column always sums to the wheel's
/// [`len`](TimerWheel::len).
///
/// # Panics
/// Never: rows are built to the schema.
#[must_use]
pub fn timers_table<T>(wheel: &TimerWheel<T>) -> Table {
    let schema = Schema::new(&[
        ("area", ColumnType::Str),
        ("level", ColumnType::Int),
        ("slot", ColumnType::Int),
        ("live", ColumnType::Int),
    ])
    .expect("sys.timers schema is statically valid");
    let mut t = Table::new(schema);
    for o in wheel.occupancy() {
        let (level, slot) = match o.area {
            WheelArea::Wheel => (Value::Int(o.level as i64), Value::Int(o.slot as i64)),
            WheelArea::Past | WheelArea::Overflow => (Value::Null, Value::Null),
        };
        t.insert(vec![
            Value::Str(o.area.code_str().to_owned()),
            level,
            slot,
            Value::Int(o.live as i64),
        ])
        .expect("sys.timers rows match their schema");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{filter_count, sum_int};
    use obs::{CostModel, Obs, Primitive};
    use query::expr::Pred;
    use store::PolicyKind;

    #[test]
    fn metrics_table_explodes_histograms_in_registry_order() {
        let mut obs = Obs::new(CostModel::pentium());
        obs.metrics.counter_add("b.count", 2);
        obs.metrics.counter_add("a.count", 1);
        obs.metrics.gauge_set("util", 0.5);
        obs.metrics.observe("lat", 3);
        obs.metrics.observe("lat", 100);
        let t = metrics_table(&obs.metrics.snapshot());
        let names: Vec<String> = t
            .rows()
            .iter()
            .map(|r| match (&r[0], &r[1], &r[2]) {
                (Value::Str(k), Value::Str(n), Value::Str(key)) => format!("{k}:{n}:{key}"),
                _ => unreachable!("first three columns are strings"),
            })
            .collect();
        assert_eq!(
            names,
            [
                "counter:a.count:value",
                "counter:b.count:value",
                "gauge:util:value",
                "histogram:lat:count",
                "histogram:lat:sum",
                "histogram:lat:min",
                "histogram:lat:max",
                "histogram:lat:b2",
                "histogram:lat:b7",
            ]
        );
        let count = sum_int(&t, 3, Pred::eq(2, Value::Str("count".to_owned())), None);
        assert_eq!(count, 2, "the histogram recorded two observations");
    }

    #[test]
    fn spans_table_keeps_event_order_and_instant_kinds() {
        let mut obs = Obs::new(CostModel::pentium());
        let s = obs.begin("area", "outer");
        obs.charge(Primitive::Alu);
        obs.instant("mark", "hit", vec![("k", "v".to_owned())]);
        obs.end(s);
        let t = spans_table(obs.tracer.events());
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0][4], Value::Str("hit".to_owned()), "instants complete first");
        assert_eq!(t.rows()[0][5], Value::Str("instant".to_owned()));
        assert_eq!(t.rows()[0][6], Value::Str("k=v".to_owned()));
        assert_eq!(t.rows()[1][5], Value::Str("complete".to_owned()));
        assert_eq!(filter_count(&t, Pred::eq(5, Value::Str("instant".to_owned())), None), 1);
    }

    #[test]
    fn switches_table_serves_stats_and_live_records() {
        let t = switches_table(3, 1, None);
        assert_eq!(t.len(), 5, "five stat rows, no journal attached");
        assert_eq!(sum_int(&t, 3, Pred::eq(1, Value::Str("committed".to_owned())), None), 3);
        let mut j = AdaptationJournal::new();
        let txn = j.begin(2, 0);
        j.commit(txn);
        let t = switches_table(1, 0, Some(&j));
        let records = filter_count(&t, Pred::eq(0, Value::Str("record".to_owned())), None);
        assert_eq!(records, 2, "intent + commit are live until truncation");
        assert_eq!(sum_int(&t, 3, Pred::eq(1, Value::Str("journal_appended".to_owned())), None), 2);
    }

    #[test]
    fn txns_table_serves_protocol_stats_and_live_log_records() {
        use compkit::runtime::LiveComponent;
        use compkit::NoFaults;
        use patia::shard::{atom_instance, host_instance, route_binding};
        use patia::AtomId;
        use std::collections::BTreeMap;
        use txn::{DataComponent, NoTxnCrash, PlannedTxnCrash, ShardId, TxnCrashPoint};

        let handles = vec![
            patia::ShardHandle::new(0, "east", vec!["n1".into()]),
            patia::ShardHandle::new(1, "west", vec!["n2".into()]),
        ];
        let plans = patia::cross_shard_plans(&handles, AtomId(7), "n1", "n2");
        let mut shards: BTreeMap<u32, DataComponent> = BTreeMap::new();
        for (id, node) in [(0u32, "n1"), (1u32, "n2")] {
            let mut dc = DataComponent::new(ShardId(id));
            dc.runtime_mut()
                .start(
                    &host_instance(node),
                    LiveComponent { ty: "Host".into(), state: vec![id as u8], started_at: 0 },
                )
                .unwrap();
            shards.insert(id, dc);
        }
        let east = shards.get_mut(&0).unwrap().runtime_mut();
        east.start(
            &atom_instance(AtomId(7)),
            LiveComponent { ty: "Agent".into(), state: vec![7], started_at: 0 },
        )
        .unwrap();
        east.bind(route_binding(AtomId(7), "n1")).unwrap();

        let mut core = txn::TransactionCore::new();
        let mut hook = PlannedTxnCrash::new(TxnCrashPoint::BeforeDecision);
        let run = core.execute_cross_shard(&mut shards, &plans, 5, &mut NoFaults, &mut hook);
        assert!(run.is_err(), "planned crash fires before the decision");

        let t = txns_table(&core, None);
        assert_eq!(sum_int(&t, 4, Pred::eq(1, Value::Str("crashes".to_owned())), None), 1);
        assert_eq!(
            filter_count(&t, Pred::eq(1, Value::Str("prepared".to_owned())), None),
            2,
            "both shards voted before the coordinator crashed"
        );
        let records = filter_count(&t, Pred::eq(0, Value::Str("record".to_owned())), None);
        assert_eq!(records as usize, core.log().len(), "one record row per live log record");

        let report = core.recover(&mut shards, &mut NoTxnCrash);
        assert_eq!(
            report.in_doubt_resolved, 2,
            "both prepared shards consult the missing decision"
        );
        let t = txns_table(&core, None);
        assert_eq!(sum_int(&t, 4, Pred::eq(1, Value::Str("aborted".to_owned())), None), 1);
        assert_eq!(
            sum_int(&t, 4, Pred::eq(1, Value::Str("in_doubt_resolved".to_owned())), None),
            2
        );
        assert_eq!(
            sum_int(&t, 4, Pred::eq(1, Value::Str("log_live".to_owned())), None),
            0,
            "recovery ends the txn and truncation reclaims it"
        );
        assert_eq!(filter_count(&t, Pred::eq(0, Value::Str("record".to_owned())), None), 0);
        assert_eq!(sum_int(&t, 4, Pred::eq(1, Value::Str("journal_live".to_owned())), None), 0);
        assert_eq!(sum_int(&t, 4, Pred::eq(1, Value::Str("locks_held".to_owned())), None), 0);
    }

    #[test]
    fn pool_table_has_one_row_per_frame() {
        let mut pool = BufferPool::with_policy(3, PolicyKind::Clock);
        pool.create(store::PageId(7));
        let t = pool_table(&pool);
        assert_eq!(t.len(), 3);
        assert_eq!(t.rows()[0][1], Value::Int(7));
        assert_eq!(t.rows()[0][2], Value::Bool(true), "fresh pages are dirty");
        assert_eq!(t.rows()[1][1], Value::Null, "empty frames have no page");
        assert_eq!(filter_count(&t, Pred::eq(2, Value::Bool(true)), None), 1, "one dirty frame");
        assert_eq!(
            filter_count(&t, Pred::gt(1, Value::Int(-1)), None),
            1,
            "null pages fail every comparison, so only occupied frames match"
        );
    }

    #[test]
    fn timers_table_live_column_sums_to_wheel_len() {
        let mut w: TimerWheel<u8> = TimerWheel::new();
        w.schedule(3, 1);
        w.schedule(3, 2);
        w.schedule(5_000, 3);
        w.schedule(30_000_000, 4);
        let t = timers_table(&w);
        assert_eq!(sum_int(&t, 3, Pred::True, None) as usize, w.len());
        assert_eq!(filter_count(&t, Pred::eq(0, Value::Str("overflow".to_owned())), None), 1);
    }
}
