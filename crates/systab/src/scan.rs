//! The billed system-table scan, plus small query helpers the invariant
//! tiers share.

use datacomp::{Row, Schema, Table, Value};
use obs::{ObsHandle, Primitive};
use query::basic::Filter;
use query::expr::Pred;
use query::op::drain;
use query::{Operator, Poll, WorkCounter};

/// Budget for [`drain`] over system-table pipelines: scans never stall,
/// so any nonzero budget works; 64 keeps a misbehaving operator loud.
const DRAIN_BUDGET: u64 = 64;

/// A scan over a frozen system table. Identical to
/// [`query::source::TableScan`] in row order and [`WorkCounter`]
/// accounting, plus cycle billing: with a hub armed, every row served
/// charges one [`Primitive::Load`] and bumps the `systab.scan.rows`
/// counter — introspection pays its way through the same cost model as
/// the work it observes.
#[derive(Debug)]
pub struct SysScan {
    table: Table,
    pos: usize,
    work: WorkCounter,
    obs: Option<ObsHandle>,
}

impl SysScan {
    /// Scan `table` without cycle billing (work units still counted).
    #[must_use]
    pub fn new(table: Table, work: WorkCounter) -> Self {
        Self { table, pos: 0, work, obs: None }
    }

    /// Scan `table` billing one load per row into `obs`.
    #[must_use]
    pub fn billed(table: Table, work: WorkCounter, obs: ObsHandle) -> Self {
        Self { table, pos: 0, work, obs: Some(obs) }
    }
}

impl Operator for SysScan {
    fn schema(&self) -> &Schema {
        self.table.schema()
    }

    fn poll(&mut self) -> Poll {
        match self.table.rows().get(self.pos) {
            Some(row) => {
                self.pos += 1;
                self.work.moved(1);
                if let Some(h) = &self.obs {
                    let mut o = h.borrow_mut();
                    o.charge(Primitive::Load);
                    o.metrics.counter_add("systab.scan.rows", 1);
                }
                Poll::Ready(row.clone())
            }
            None => Poll::Done,
        }
    }
}

/// Scan a whole system table (billed when `obs` is given) and return
/// its rows. The workhorse of the invariant tiers.
#[must_use]
pub fn scan_rows(table: &Table, obs: Option<ObsHandle>) -> Vec<Row> {
    let work = WorkCounter::new();
    let mut scan = match obs {
        Some(h) => SysScan::billed(table.clone(), work, h),
        None => SysScan::new(table.clone(), work),
    };
    drain(&mut scan, DRAIN_BUDGET)
}

/// Count the rows of `table` matching `pred`, evaluated with the query
/// operators (scan → filter), billed when `obs` is given.
#[must_use]
pub fn filter_count(table: &Table, pred: Pred, obs: Option<ObsHandle>) -> u64 {
    let work = WorkCounter::new();
    let scan: Box<dyn Operator> = match obs {
        Some(h) => Box::new(SysScan::billed(table.clone(), work.clone(), h)),
        None => Box::new(SysScan::new(table.clone(), work.clone())),
    };
    let mut plan = Filter::new(scan, pred, work);
    drain(&mut plan, DRAIN_BUDGET).len() as u64
}

/// Sum an integer column of `table` over the rows matching `pred`
/// (`Null` cells contribute nothing), billed when `obs` is given.
#[must_use]
pub fn sum_int(table: &Table, col: usize, pred: Pred, obs: Option<ObsHandle>) -> i64 {
    let work = WorkCounter::new();
    let scan: Box<dyn Operator> = match obs {
        Some(h) => Box::new(SysScan::billed(table.clone(), work.clone(), h)),
        None => Box::new(SysScan::new(table.clone(), work.clone())),
    };
    let mut plan = Filter::new(scan, pred, work);
    drain(&mut plan, DRAIN_BUDGET)
        .iter()
        .filter_map(|row| match row.get(col) {
            Some(Value::Int(v)) => Some(*v),
            _ => None,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacomp::ColumnType;
    use obs::{CostModel, Obs};

    fn t() -> Table {
        let schema = Schema::new(&[("k", ColumnType::Int), ("v", ColumnType::Int)]).expect("valid");
        let mut t = Table::new(schema);
        for i in 0..5 {
            t.insert(vec![Value::Int(i), Value::Int(i * 10)]).expect("typed");
        }
        t
    }

    #[test]
    fn scan_preserves_row_order_and_counts_work() {
        let work = WorkCounter::new();
        let mut scan = SysScan::new(t(), work.clone());
        let rows = drain(&mut scan, DRAIN_BUDGET);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0][0], Value::Int(0));
        assert_eq!(rows[4][1], Value::Int(40));
        assert_eq!(work.snapshot().tuples_moved, 5);
    }

    #[test]
    fn billed_scans_charge_one_load_per_row() {
        let handle = Obs::new(CostModel::pentium()).into_handle();
        let before = handle.borrow().clock();
        let rows = scan_rows(&t(), Some(handle.clone()));
        let obs = Obs::try_unwrap(handle).expect("sole handle");
        assert_eq!(rows.len(), 5);
        assert_eq!(obs.metrics.counter("systab.scan.rows"), 5);
        assert!(obs.clock() > before, "every row costs cycles");
    }

    #[test]
    fn filter_count_and_sum_run_through_the_operators() {
        let table = t();
        let pred = Pred::gt(0, Value::Int(1));
        assert_eq!(filter_count(&table, pred.clone(), None), 3);
        assert_eq!(sum_int(&table, 1, pred, None), 90);
        assert_eq!(sum_int(&table, 1, Pred::True, None), 100);
    }
}
