//! System tables: the machine's own telemetry served as relational
//! tables through the [`query`] crate's operators.
//!
//! The paper argues the adaptation layer of a ubiquitous fleet should be
//! managed *as data*; DBOS and TabulaROSA (see `PAPERS.md`) push the
//! same thesis for operating systems at large. This crate applies it to
//! the reproduction itself: everything the platform already observes —
//! the metrics registry, the cycle-accounted span log, the supervisor's
//! circuit breakers, the adaptation journal, the unbundled transaction
//! core's log, the buffer-pool frame table, the event engine's timer
//! wheel — is rendered as seven virtual tables with stable schemas:
//!
//! | table             | one row per                 | source                      |
//! |-------------------|-----------------------------|-----------------------------|
//! | `sys.metrics`     | counter/gauge/histogram key | [`obs::MetricsSnapshot`]    |
//! | `sys.spans`       | trace event                 | [`obs::span::TraceEvent`]   |
//! | `sys.supervision` | watched peer                | [`patia::Supervisor`]       |
//! | `sys.switches`    | journal stat / live record  | [`compkit::journal`]        |
//! | `sys.txns`        | 2PC stat / live log record  | [`txn::TransactionCore`]    |
//! | `sys.pool`        | buffer-pool frame           | [`store::BufferPool`]       |
//! | `sys.timers`      | populated wheel region      | [`patia::TimerWheel`]       |
//!
//! Row order is deterministic (registry order, event order, name order,
//! frame order, slot order), so query results golden-pin like every
//! other artifact in the repo. [`SysScan`] is the billed source
//! operator: armed with an [`obs`] hub it charges one
//! [`Primitive::Load`](obs::Primitive) per row served, so introspection
//! itself shows up in the machine's cycle ledger — querying the machine
//! is work the machine performs.
//!
//! The loop is closed in [`patia::rules`]: the circuit-breaker screen on
//! BEST candidate lists is a declarative query over `sys.supervision`,
//! differential-tested byte-identical to the compiled-in filter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scan;
pub mod tables;

pub use scan::{filter_count, scan_rows, sum_int, SysScan};
pub use tables::{
    metrics_table, pool_table, spans_table, supervision_table, switches_table, timers_table,
    txns_table,
};
