//! A dependency-free benchmark harness exposing the subset of the
//! `criterion` API this workspace uses.
//!
//! The repository must build and bench with **zero external dependencies**
//! (no network at build time), so the `criterion` crate is replaced by this
//! drop-in shim: `Criterion`, `benchmark_group`, `bench_function`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!`/`criterion_main!`
//! macros. Bench sources only change their `use` line.
//!
//! Measurement model: each benchmark is warmed up, then timed over adaptive
//! batches until a wall-clock budget is spent; the median batch time is
//! reported. That is deliberately simpler than criterion (no bootstrap, no
//! outlier classification) but stable enough to compare the simulator's
//! relative costs, which is all the paper's tables need.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group, mirroring criterion's type.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self { name: format!("{name}/{parameter}") }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { name: s }
    }
}

/// Throughput annotation: lets a benchmark report bytes/s or elements/s.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// The timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
    measure_budget: Duration,
}

impl Bencher {
    /// Run `f` repeatedly and record its median per-iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and batch sizing: grow the batch until it runs >= 1ms.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
        }
        // Measure: repeat batches until the budget is spent.
        let mut samples: Vec<f64> = Vec::new();
        let start = Instant::now();
        while start.elapsed() < self.measure_budget || samples.len() < 5 {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() * 1e9 / batch as f64);
            if samples.len() >= 200 {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// A named collection of benchmarks, mirroring criterion's group object.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; the shim's sampling is adaptive
    /// so the count is only used to scale the measurement budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.measure_budget = Duration::from_millis((n as u64 * 5).clamp(25, 500));
        self
    }

    /// Annotate subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark and print its result.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { ns_per_iter: 0.0, measure_budget: self.criterion.measure_budget };
        f(&mut b);
        let mut line = format!("{}/{:<32} {:>12.1} ns/iter", self.name, id, b.ns_per_iter);
        if let Some(t) = self.throughput {
            let per_sec = match t {
                Throughput::Bytes(n) => {
                    format!("{:>10.1} MiB/s", n as f64 / b.ns_per_iter * 1e9 / (1 << 20) as f64)
                }
                Throughput::Elements(n) => {
                    format!("{:>10.0} elem/s", n as f64 / b.ns_per_iter * 1e9)
                }
            };
            line.push_str("  ");
            line.push_str(&per_sec);
        }
        println!("{line}");
        self
    }

    /// End the group (prints a separator, mirroring criterion's API).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The top-level harness object, mirroring criterion's `Criterion`.
#[derive(Debug)]
pub struct Criterion {
    measure_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { measure_budget: Duration::from_millis(120) }
    }
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup { name, throughput: None, criterion: self }
    }

    /// Run a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { ns_per_iter: 0.0, measure_budget: Duration::from_millis(5) };
        b.iter(|| std::hint::black_box(1u64.wrapping_mul(3)));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(10);
        let mut ran = false;
        group.bench_function(BenchmarkId::new("f", 1), |b| {
            ran = true;
            b.iter(|| 2 + 2);
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("scan", 64).to_string(), "scan/64");
        assert_eq!(BenchmarkId::from_parameter("go").to_string(), "go");
    }
}
