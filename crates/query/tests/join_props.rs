//! Property: every join operator — static or adaptive, stalled or not,
//! memory-starved or not — produces exactly the same multiset of results
//! as the naive nested-loop oracle.

use datacomp::{ColumnType, Row, Schema, Table, Value};
use proptest::prelude::*;
use query::adaptive::ripple::AggKind;
use query::adaptive::{RippleJoin, SymmetricHashJoin, XJoin};
use query::basic::{HashJoin, IndexNestedLoopJoin, NestedLoopJoin};
use query::op::{drain, Operator, WorkCounter};
use query::source::{ArrivalPattern, DelayedScan, TableScan};

fn table(keys: Vec<i64>) -> Table {
    let schema = Schema::new(&[("k", ColumnType::Int), ("v", ColumnType::Int)]).unwrap();
    let mut t = Table::new(schema);
    for (i, k) in keys.into_iter().enumerate() {
        t.insert(vec![Value::Int(k), Value::Int(i as i64)]).unwrap();
    }
    t
}

fn oracle(l: &Table, r: &Table) -> Vec<Row> {
    let mut out = Vec::new();
    for lr in l.rows() {
        for rr in r.rows() {
            if lr[0] == rr[0] {
                let mut row = lr.clone();
                row.extend_from_slice(rr);
                out.push(row);
            }
        }
    }
    out.sort();
    out
}

fn keys() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(0i64..8, 0..40)
}

fn pattern() -> impl Strategy<Value = ArrivalPattern> {
    (0u64..20, 1u64..8, 0u64..10)
        .prop_map(|(initial_delay, burst, gap)| ArrivalPattern { initial_delay, burst, gap })
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

proptest! {
    #[test]
    fn all_joins_agree_with_oracle(lk in keys(), rk in keys()) {
        let (l, r) = (table(lk), table(rk));
        let expected = oracle(&l, &r);
        let w = WorkCounter::new();
        let scan = |t: &Table| -> Box<dyn Operator> { Box::new(TableScan::new(t.clone(), w.clone())) };

        let mut nl = NestedLoopJoin::new(scan(&l), scan(&r), vec![0], vec![0], w.clone());
        prop_assert_eq!(sorted(drain(&mut nl, 10)), expected.clone());

        let mut hj = HashJoin::new(scan(&l), scan(&r), vec![0], vec![0], true, w.clone());
        prop_assert_eq!(sorted(drain(&mut hj, 10)), expected.clone());

        let mut ij = IndexNestedLoopJoin::new(scan(&l), &r, vec![0], &[0], w.clone());
        prop_assert_eq!(sorted(drain(&mut ij, 10)), expected.clone());

        let mut shj = SymmetricHashJoin::new(scan(&l), scan(&r), vec![0], vec![0], w.clone());
        prop_assert_eq!(sorted(drain(&mut shj, 10)), expected.clone());

        let mut rj = RippleJoin::new(scan(&l), scan(&r), vec![0], vec![0], 3, AggKind::Count, w.clone());
        prop_assert_eq!(sorted(drain(&mut rj, 10)), expected.clone());

        let mut xj = XJoin::new(scan(&l), scan(&r), vec![0], vec![0], 4, w.clone());
        prop_assert_eq!(sorted(drain(&mut xj, 100_000)), expected);
    }

    /// Adaptive joins stay correct when both sources stall arbitrarily and
    /// XJoin is memory-starved.
    #[test]
    fn adaptive_joins_survive_stalls(
        lk in keys(),
        rk in keys(),
        lpat in pattern(),
        rpat in pattern(),
        budget in 1usize..16,
    ) {
        let (l, r) = (table(lk), table(rk));
        let expected = oracle(&l, &r);
        let w = WorkCounter::new();
        let dl = || -> Box<dyn Operator> { Box::new(DelayedScan::new(l.clone(), lpat, w.clone())) };
        let dr = || -> Box<dyn Operator> { Box::new(DelayedScan::new(r.clone(), rpat, w.clone())) };

        let mut shj = SymmetricHashJoin::new(dl(), dr(), vec![0], vec![0], w.clone());
        prop_assert_eq!(sorted(drain(&mut shj, 100_000)), expected.clone());

        let mut xj = XJoin::new(dl(), dr(), vec![0], vec![0], budget, w.clone());
        prop_assert_eq!(sorted(drain(&mut xj, 100_000)), expected.clone());

        let mut rj = RippleJoin::new(dl(), dr(), vec![0], vec![0], 2, AggKind::Count, w.clone());
        prop_assert_eq!(sorted(drain(&mut rj, 100_000)), expected);
    }

    /// The adaptive executor produces oracle results for any staleness
    /// error, adapting or not.
    #[test]
    fn adaptive_exec_is_correct_for_any_staleness(
        lk in prop::collection::vec(0i64..12, 1..60),
        rk in prop::collection::vec(0i64..12, 1..60),
        error in 0.001f64..100.0,
        adapt in any::<bool>(),
    ) {
        let (l, r) = (table(lk), table(rk));
        let expected = oracle(&l, &r);
        let mut catalog = query::optimizer::Catalog::new();
        catalog.register_with_stale_stats("l", l, error);
        catalog.register_with_stale_stats("r", r, error);
        let w = WorkCounter::new();
        let exec = query::exec::AdaptiveJoinExec { safe_point_interval: 8, reopt_threshold: 3.0 };
        let (rows, report) = exec.run(&catalog, "l", "r", 0, 0, adapt, &w).unwrap();
        prop_assert_eq!(rows.len() as u64, report.rows_out);
        prop_assert_eq!(sorted(rows), expected);
    }
}
