//! Property: every join operator — static or adaptive, stalled or not,
//! memory-starved or not — produces exactly the same multiset of results
//! as the naive nested-loop oracle.
//!
//! Randomised suites are opt-in: `cargo test -p query --features slow-props`.
#![cfg(feature = "slow-props")]

use adm_rng::{run_cases, Pcg32};
use datacomp::{ColumnType, Row, Schema, Table, Value};
use query::adaptive::ripple::AggKind;
use query::adaptive::{RippleJoin, SymmetricHashJoin, XJoin};
use query::basic::{HashJoin, IndexNestedLoopJoin, NestedLoopJoin};
use query::op::{drain, Operator, WorkCounter};
use query::source::{ArrivalPattern, DelayedScan, TableScan};

fn table(keys: Vec<i64>) -> Table {
    let schema = Schema::new(&[("k", ColumnType::Int), ("v", ColumnType::Int)]).unwrap();
    let mut t = Table::new(schema);
    for (i, k) in keys.into_iter().enumerate() {
        t.insert(vec![Value::Int(k), Value::Int(i as i64)]).unwrap();
    }
    t
}

fn oracle(l: &Table, r: &Table) -> Vec<Row> {
    let mut out = Vec::new();
    for lr in l.rows() {
        for rr in r.rows() {
            if lr[0] == rr[0] {
                let mut row = lr.clone();
                row.extend_from_slice(rr);
                out.push(row);
            }
        }
    }
    out.sort();
    out
}

fn keys(rng: &mut Pcg32) -> Vec<i64> {
    (0..rng.index(40)).map(|_| rng.range_i64(0, 8)).collect()
}

fn pattern(rng: &mut Pcg32) -> ArrivalPattern {
    ArrivalPattern { initial_delay: rng.below(20), burst: rng.below(7) + 1, gap: rng.below(10) }
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

#[test]
fn all_joins_agree_with_oracle() {
    run_cases(0x701, 128, |rng| {
        let (l, r) = (table(keys(rng)), table(keys(rng)));
        let expected = oracle(&l, &r);
        let w = WorkCounter::new();
        let scan =
            |t: &Table| -> Box<dyn Operator> { Box::new(TableScan::new(t.clone(), w.clone())) };

        let mut nl = NestedLoopJoin::new(scan(&l), scan(&r), vec![0], vec![0], w.clone());
        assert_eq!(sorted(drain(&mut nl, 10)), expected);

        let mut hj = HashJoin::new(scan(&l), scan(&r), vec![0], vec![0], true, w.clone());
        assert_eq!(sorted(drain(&mut hj, 10)), expected);

        let mut ij = IndexNestedLoopJoin::new(scan(&l), &r, vec![0], &[0], w.clone());
        assert_eq!(sorted(drain(&mut ij, 10)), expected);

        let mut shj = SymmetricHashJoin::new(scan(&l), scan(&r), vec![0], vec![0], w.clone());
        assert_eq!(sorted(drain(&mut shj, 10)), expected);

        let mut rj =
            RippleJoin::new(scan(&l), scan(&r), vec![0], vec![0], 3, AggKind::Count, w.clone());
        assert_eq!(sorted(drain(&mut rj, 10)), expected);

        let mut xj = XJoin::new(scan(&l), scan(&r), vec![0], vec![0], 4, w.clone());
        assert_eq!(sorted(drain(&mut xj, 100_000)), expected);
    });
}

/// Adaptive joins stay correct when both sources stall arbitrarily and
/// XJoin is memory-starved.
#[test]
fn adaptive_joins_survive_stalls() {
    run_cases(0x702, 64, |rng| {
        let (l, r) = (table(keys(rng)), table(keys(rng)));
        let (lpat, rpat) = (pattern(rng), pattern(rng));
        let budget = rng.index(15) + 1;
        let expected = oracle(&l, &r);
        let w = WorkCounter::new();
        let dl = || -> Box<dyn Operator> { Box::new(DelayedScan::new(l.clone(), lpat, w.clone())) };
        let dr = || -> Box<dyn Operator> { Box::new(DelayedScan::new(r.clone(), rpat, w.clone())) };

        let mut shj = SymmetricHashJoin::new(dl(), dr(), vec![0], vec![0], w.clone());
        assert_eq!(sorted(drain(&mut shj, 100_000)), expected);

        let mut xj = XJoin::new(dl(), dr(), vec![0], vec![0], budget, w.clone());
        assert_eq!(sorted(drain(&mut xj, 100_000)), expected);

        let mut rj = RippleJoin::new(dl(), dr(), vec![0], vec![0], 2, AggKind::Count, w.clone());
        assert_eq!(sorted(drain(&mut rj, 100_000)), expected);
    });
}

/// The adaptive executor produces oracle results for any staleness
/// error, adapting or not.
#[test]
fn adaptive_exec_is_correct_for_any_staleness() {
    run_cases(0x703, 64, |rng| {
        let lk: Vec<i64> = (0..rng.index(59) + 1).map(|_| rng.range_i64(0, 12)).collect();
        let rk: Vec<i64> = (0..rng.index(59) + 1).map(|_| rng.range_i64(0, 12)).collect();
        let error = 0.001 + rng.f64() * 99.999;
        let adapt = rng.chance(0.5);
        let (l, r) = (table(lk), table(rk));
        let expected = oracle(&l, &r);
        let mut catalog = query::optimizer::Catalog::new();
        catalog.register_with_stale_stats("l", l, error);
        catalog.register_with_stale_stats("r", r, error);
        let w = WorkCounter::new();
        let exec = query::exec::AdaptiveJoinExec { safe_point_interval: 8, reopt_threshold: 3.0 };
        let (rows, report) = exec.run(&catalog, "l", "r", 0, 0, adapt, &w).unwrap();
        assert_eq!(rows.len() as u64, report.rows_out);
        assert_eq!(sorted(rows), expected);
    });
}
