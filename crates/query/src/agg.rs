//! Aggregation: grouped aggregates and *online* (anytime) aggregation.
//!
//! Section 2 notes that adaptive-operator work "is with relational data and
//! concerns aggregation queries" \[1, 15\]; Section 6 asks for it to be
//! broadened. [`HashAggregate`] is the blocking baseline;
//! [`OnlineAggregate`] wraps *any* operator and exposes a running estimate
//! after every input tuple — usable over a ripple join, a symmetric hash
//! join, or a plain scan, and robust to `Pending` sources (the estimate
//! simply pauses while the source stalls).

use crate::op::{Operator, Poll, WorkCounter};
use datacomp::{ColumnType, Row, Schema, Value};
use std::collections::BTreeMap;

/// An aggregate function over one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// COUNT(*) — the column index is ignored.
    Count,
    /// SUM(col).
    Sum(usize),
    /// AVG(col).
    Avg(usize),
    /// MIN(col).
    Min(usize),
    /// MAX(col).
    Max(usize),
}

/// Accumulator for one aggregate in one group.
#[derive(Debug, Clone, PartialEq)]
struct Acc {
    count: u64,
    sum: f64,
    min: Option<Value>,
    max: Option<Value>,
}

impl Acc {
    fn new() -> Self {
        Self { count: 0, sum: 0.0, min: None, max: None }
    }

    fn absorb(&mut self, f: AggFn, row: &Row) {
        self.count += 1;
        match f {
            AggFn::Count => {}
            AggFn::Sum(c) | AggFn::Avg(c) => {
                self.sum += row[c].as_f64().unwrap_or(0.0);
            }
            AggFn::Min(c) => {
                let v = &row[c];
                if !v.is_null() && self.min.as_ref().is_none_or(|m| v < m) {
                    self.min = Some(v.clone());
                }
            }
            AggFn::Max(c) => {
                let v = &row[c];
                if !v.is_null() && self.max.as_ref().is_none_or(|m| v > m) {
                    self.max = Some(v.clone());
                }
            }
        }
    }

    fn finish(&self, f: AggFn) -> Value {
        match f {
            AggFn::Count => Value::Int(self.count as i64),
            AggFn::Sum(_) => Value::float(self.sum),
            AggFn::Avg(_) => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::float(self.sum / self.count as f64)
                }
            }
            AggFn::Min(_) => self.min.clone().unwrap_or(Value::Null),
            AggFn::Max(_) => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// Blocking hash aggregation: `GROUP BY group_cols` computing `aggs`.
/// Output schema: group columns then one column per aggregate.
#[derive(Debug)]
pub struct HashAggregate {
    child: Box<dyn Operator>,
    group_cols: Vec<usize>,
    aggs: Vec<AggFn>,
    groups: BTreeMap<Vec<Value>, Vec<Acc>>,
    drained: bool,
    out: Vec<Row>,
    emit: usize,
    schema: Schema,
    work: WorkCounter,
}

impl HashAggregate {
    /// Build the operator.
    ///
    /// # Panics
    /// If a referenced column is out of the child's schema range.
    #[must_use]
    pub fn new(
        child: Box<dyn Operator>,
        group_cols: Vec<usize>,
        aggs: Vec<AggFn>,
        work: WorkCounter,
    ) -> Self {
        let src = child.schema().columns();
        let mut cols: Vec<(String, ColumnType)> =
            group_cols.iter().map(|&i| (src[i].name.clone(), src[i].ty)).collect();
        for (n, f) in aggs.iter().enumerate() {
            let (name, ty) = match f {
                AggFn::Count => (format!("count_{n}"), ColumnType::Int),
                AggFn::Sum(_) | AggFn::Avg(_) => (format!("agg_{n}"), ColumnType::Float),
                AggFn::Min(c) | AggFn::Max(c) => (format!("agg_{n}"), src[*c].ty),
            };
            cols.push((name, ty));
        }
        let refs: Vec<(&str, ColumnType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let schema = Schema::new(&refs).expect("generated names are unique");
        Self {
            child,
            group_cols,
            aggs,
            groups: BTreeMap::new(),
            drained: false,
            out: Vec::new(),
            emit: 0,
            schema,
            work,
        }
    }
}

impl Operator for HashAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self) -> Poll {
        while !self.drained {
            match self.child.poll() {
                Poll::Ready(row) => {
                    self.work.hash_probe(1);
                    let key: Vec<Value> = self.group_cols.iter().map(|&i| row[i].clone()).collect();
                    let accs =
                        self.groups.entry(key).or_insert_with(|| vec![Acc::new(); self.aggs.len()]);
                    for (acc, &f) in accs.iter_mut().zip(&self.aggs) {
                        acc.absorb(f, &row);
                    }
                }
                Poll::Pending => return Poll::Pending,
                Poll::Done => {
                    self.drained = true;
                    for (key, accs) in &self.groups {
                        let mut row = key.clone();
                        for (acc, &f) in accs.iter().zip(&self.aggs) {
                            row.push(acc.finish(f));
                        }
                        self.out.push(row);
                    }
                }
            }
        }
        if self.emit < self.out.len() {
            let r = self.out[self.emit].clone();
            self.emit += 1;
            self.work.moved(1);
            Poll::Ready(r)
        } else {
            Poll::Done
        }
    }
}

/// An anytime aggregate over a single (ungrouped) aggregate function:
/// consumes the child incrementally, exposing the exact running value and
/// a scaled estimate of the final value given a progress fraction.
#[derive(Debug)]
pub struct OnlineAggregate {
    child: Box<dyn Operator>,
    f: AggFn,
    acc: Acc,
    consumed: u64,
    done: bool,
}

impl OnlineAggregate {
    /// Wrap `child`.
    #[must_use]
    pub fn new(child: Box<dyn Operator>, f: AggFn) -> Self {
        Self { child, f, acc: Acc::new(), consumed: 0, done: false }
    }

    /// Pump one tuple from the child. Returns `false` once exhausted.
    pub fn step(&mut self) -> bool {
        if self.done {
            return false;
        }
        match self.child.poll() {
            Poll::Ready(row) => {
                self.acc.absorb(self.f, &row);
                self.consumed += 1;
                true
            }
            Poll::Pending => true,
            Poll::Done => {
                self.done = true;
                false
            }
        }
    }

    /// Tuples consumed so far.
    #[must_use]
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// The exact aggregate over the consumed prefix.
    #[must_use]
    pub fn running(&self) -> Value {
        self.acc.finish(self.f)
    }

    /// Scale the running value to an estimate of the final aggregate, given
    /// the fraction of input consumed. COUNT and SUM scale linearly; AVG,
    /// MIN and MAX are returned as-is (their running value *is* the
    /// estimator).
    #[must_use]
    pub fn estimate(&self, progress: f64) -> Value {
        let p = progress.clamp(f64::MIN_POSITIVE, 1.0);
        match self.f {
            AggFn::Count => Value::float(self.acc.count as f64 / p),
            AggFn::Sum(_) => Value::float(self.acc.sum / p),
            AggFn::Avg(_) | AggFn::Min(_) | AggFn::Max(_) => self.running(),
        }
    }

    /// Whether the input is exhausted (the estimate is now exact for
    /// COUNT/SUM at progress 1.0).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::drain;
    use crate::source::TableScan;
    use datacomp::Table;

    fn sales() -> Table {
        let schema =
            Schema::new(&[("city", ColumnType::Str), ("amount", ColumnType::Int)]).unwrap();
        let mut t = Table::new(schema);
        for (c, a) in [("london", 10), ("paris", 20), ("london", 30), ("rome", 5), ("paris", 40)] {
            t.insert(vec![Value::str(c), Value::Int(a)]).unwrap();
        }
        t
    }

    fn scan(t: Table, w: &WorkCounter) -> Box<dyn Operator> {
        Box::new(TableScan::new(t, w.clone()))
    }

    #[test]
    fn group_by_with_multiple_aggregates() {
        let w = WorkCounter::new();
        let mut agg = HashAggregate::new(
            scan(sales(), &w),
            vec![0],
            vec![AggFn::Count, AggFn::Sum(1), AggFn::Avg(1), AggFn::Min(1), AggFn::Max(1)],
            w.clone(),
        );
        let rows = drain(&mut agg, 0);
        assert_eq!(rows.len(), 3);
        let london = rows.iter().find(|r| r[0] == Value::str("london")).unwrap();
        assert_eq!(london[1], Value::Int(2));
        assert_eq!(london[2], Value::Float(40.0));
        assert_eq!(london[3], Value::Float(20.0));
        assert_eq!(london[4], Value::Int(10));
        assert_eq!(london[5], Value::Int(30));
        assert_eq!(agg.schema().arity(), 6);
    }

    #[test]
    fn global_aggregate_via_empty_group() {
        let w = WorkCounter::new();
        let mut agg = HashAggregate::new(scan(sales(), &w), vec![], vec![AggFn::Sum(1)], w.clone());
        let rows = drain(&mut agg, 0);
        assert_eq!(rows, vec![vec![Value::Float(105.0)]]);
    }

    #[test]
    fn empty_input_yields_no_groups() {
        let w = WorkCounter::new();
        let empty = Table::new(sales().schema().clone());
        let mut agg = HashAggregate::new(scan(empty, &w), vec![0], vec![AggFn::Count], w.clone());
        assert!(drain(&mut agg, 0).is_empty());
    }

    #[test]
    fn nulls_ignored_by_min_max() {
        let schema = Schema::new(&[("x", ColumnType::Int)]).unwrap();
        let mut t = Table::new(schema);
        t.insert(vec![Value::Null]).unwrap();
        t.insert(vec![Value::Int(4)]).unwrap();
        let w = WorkCounter::new();
        let mut agg =
            HashAggregate::new(scan(t, &w), vec![], vec![AggFn::Min(0), AggFn::Max(0)], w.clone());
        let rows = drain(&mut agg, 0);
        assert_eq!(rows[0], vec![Value::Int(4), Value::Int(4)]);
    }

    #[test]
    fn online_sum_estimate_converges() {
        let w = WorkCounter::new();
        let mut online = OnlineAggregate::new(scan(sales(), &w), AggFn::Sum(1));
        let total_rows = 5.0;
        let mut last_estimate = 0.0;
        while online.step() {
            let progress = online.consumed() as f64 / total_rows;
            if progress > 0.0 {
                last_estimate = match online.estimate(progress) {
                    Value::Float(f) => f,
                    other => panic!("{other:?}"),
                };
            }
        }
        assert!(online.is_done());
        assert_eq!(last_estimate, 105.0, "estimate exact at full progress");
        assert_eq!(online.running(), Value::Float(105.0));
    }

    #[test]
    fn online_count_scales_by_progress() {
        let w = WorkCounter::new();
        let mut online = OnlineAggregate::new(scan(sales(), &w), AggFn::Count);
        online.step();
        online.step(); // consumed 2 of 5
        assert_eq!(online.consumed(), 2);
        assert_eq!(online.estimate(0.4), Value::Float(5.0));
        assert_eq!(online.running(), Value::Int(2));
    }

    #[test]
    fn online_avg_is_its_own_estimator() {
        let w = WorkCounter::new();
        let mut online = OnlineAggregate::new(scan(sales(), &w), AggFn::Avg(1));
        online.step(); // london 10
        online.step(); // paris 20
        assert_eq!(online.estimate(0.4), Value::Float(15.0));
    }
}
