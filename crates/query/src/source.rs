//! Sources: table scans and the delayed/bursty sources that motivate
//! adaptive operators.
//!
//! "The nature of Internet applications querying data from highly
//! heterogeneous distributed databases over wide-area networks" (Section 2)
//! means sources stall: an initial connection delay, then bursts separated
//! by gaps. [`DelayedScan`] reproduces that deterministic shape so every
//! adaptive-vs-static comparison is repeatable.

use crate::op::{Operator, Poll, WorkCounter};
use datacomp::{Schema, Table};

/// A plain in-memory table scan: always ready.
#[derive(Debug, Clone)]
pub struct TableScan {
    table: Table,
    pos: usize,
    work: WorkCounter,
}

impl TableScan {
    /// Scan a table.
    #[must_use]
    pub fn new(table: Table, work: WorkCounter) -> Self {
        Self { table, pos: 0, work }
    }

    /// Rows delivered so far (the executor records this at safe points).
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Restart the scan from a recorded position (resuming from a safe
    /// point after a plan switch).
    pub fn seek(&mut self, pos: usize) {
        self.pos = pos.min(self.table.len());
    }
}

impl Operator for TableScan {
    fn schema(&self) -> &Schema {
        self.table.schema()
    }

    fn poll(&mut self) -> Poll {
        match self.table.rows().get(self.pos) {
            Some(r) => {
                self.pos += 1;
                self.work.moved(1);
                Poll::Ready(r.clone())
            }
            None => Poll::Done,
        }
    }
}

/// The arrival pattern of a remote source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalPattern {
    /// Polls before the first tuple arrives (connection + first byte).
    pub initial_delay: u64,
    /// Tuples delivered per burst.
    pub burst: u64,
    /// Polls of silence between bursts.
    pub gap: u64,
}

impl ArrivalPattern {
    /// A local source: no delays.
    #[must_use]
    pub fn immediate() -> Self {
        Self { initial_delay: 0, burst: u64::MAX, gap: 0 }
    }
}

/// A scan over a remote table with a deterministic arrival pattern.
#[derive(Debug, Clone)]
pub struct DelayedScan {
    table: Table,
    pos: usize,
    pattern: ArrivalPattern,
    clock: u64,
    delivered_in_burst: u64,
    next_ready_at: u64,
    work: WorkCounter,
}

impl DelayedScan {
    /// Scan `table` with `pattern`.
    #[must_use]
    pub fn new(table: Table, pattern: ArrivalPattern, work: WorkCounter) -> Self {
        Self {
            table,
            pos: 0,
            pattern,
            clock: 0,
            delivered_in_burst: 0,
            next_ready_at: pattern.initial_delay,
            work,
        }
    }

    /// Rows delivered so far.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl Operator for DelayedScan {
    fn schema(&self) -> &Schema {
        self.table.schema()
    }

    fn poll(&mut self) -> Poll {
        if self.pos >= self.table.len() {
            return Poll::Done;
        }
        self.clock += 1;
        if self.clock <= self.next_ready_at {
            self.work.stall();
            return Poll::Pending;
        }
        let row = self.table.rows()[self.pos].clone();
        self.pos += 1;
        self.work.moved(1);
        self.delivered_in_burst += 1;
        if self.delivered_in_burst >= self.pattern.burst {
            self.delivered_in_burst = 0;
            self.next_ready_at = self.clock + self.pattern.gap;
        }
        Poll::Ready(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::drain;
    use datacomp::{ColumnType, Value};

    fn table(n: i64) -> Table {
        let schema = Schema::new(&[("id", ColumnType::Int)]).unwrap();
        let mut t = Table::new(schema);
        for i in 0..n {
            t.insert(vec![Value::Int(i)]).unwrap();
        }
        t
    }

    #[test]
    fn table_scan_delivers_all_in_order() {
        let w = WorkCounter::new();
        let mut s = TableScan::new(table(5), w.clone());
        let rows = drain(&mut s, 0);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[3], vec![Value::Int(3)]);
        assert_eq!(w.snapshot().tuples_moved, 5);
        assert_eq!(s.poll(), Poll::Done, "stays done");
    }

    #[test]
    fn seek_rewinds_and_clamps() {
        let mut s = TableScan::new(table(5), WorkCounter::new());
        drain(&mut s, 0);
        s.seek(2);
        assert_eq!(drain(&mut s, 0).len(), 3);
        s.seek(100);
        assert_eq!(s.position(), 5);
    }

    #[test]
    fn delayed_scan_stalls_then_bursts() {
        let w = WorkCounter::new();
        let pat = ArrivalPattern { initial_delay: 3, burst: 2, gap: 2 };
        let mut s = DelayedScan::new(table(4), pat, w.clone());
        let mut trace = Vec::new();
        loop {
            match s.poll() {
                Poll::Ready(_) => trace.push('R'),
                Poll::Pending => trace.push('.'),
                Poll::Done => break,
            }
        }
        // 3 stalls, 2 rows, 2 stalls, 2 rows.
        assert_eq!(trace.iter().collect::<String>(), "...RR..RR");
        assert_eq!(w.snapshot().stalls, 5);
    }

    #[test]
    fn immediate_pattern_never_stalls() {
        let mut s = DelayedScan::new(table(10), ArrivalPattern::immediate(), WorkCounter::new());
        assert_eq!(drain(&mut s, 0).len(), 10);
    }
}
