//! Storage-backed scan: a source operator that reads rows out of the
//! `store` engine's record pages instead of an in-memory [`Table`].
//!
//! This is the query side of the paper's "database machine" slant: once
//! Atoms sit on slotted pages behind a buffer pool, the relational layer
//! should pull its tuples through the same machinery and pay the same
//! bill. A [`StoreScan`] walks the engine's key space in order; every
//! record fetch goes through the pool, so a cold scan charges page IO
//! (surfaced here as `unspill` work — tuples coming back from disk)
//! while a warm one is pure `moved` work.
//!
//! Rows cross the page boundary through a tagged little-endian codec
//! ([`encode_row`]/[`decode_row`]) so a stored table round-trips exactly.

use crate::op::{Operator, Poll, WorkCounter};
use datacomp::{Schema, Table, Value};
use store::{StorageEngine, StoreError, StoreOp, TxnSummary};

/// Encode one row as a self-describing byte record.
///
/// Layout (all little-endian): `u16` column count, then per value a tag
/// byte — 0 `Null`, 1 `Bool` (+1 byte), 2 `Int` (+8 bytes), 3 `Float`
/// (+8 bytes, IEEE bits), 4 `Str` (+`u16` length + UTF-8 bytes).
#[must_use]
pub fn encode_row(row: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + row.len() * 9);
    out.extend_from_slice(&(row.len() as u16).to_le_bytes());
    for v in row {
        match v {
            Value::Null => out.push(0),
            Value::Bool(b) => {
                out.push(1);
                out.push(u8::from(*b));
            }
            Value::Int(i) => {
                out.push(2);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(3);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(4);
                out.extend_from_slice(&(s.len() as u16).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
    out
}

/// Decode a record produced by [`encode_row`]. Returns `None` on any
/// malformed input: bad tag, truncated field, invalid UTF-8, or trailing
/// garbage.
#[must_use]
pub fn decode_row(bytes: &[u8]) -> Option<Vec<Value>> {
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        let s = bytes.get(*pos..*pos + n)?;
        *pos += n;
        Some(s)
    };
    let mut pos = 0;
    let cols = u16::from_le_bytes(take(&mut pos, 2)?.try_into().ok()?);
    let mut row = Vec::with_capacity(usize::from(cols));
    for _ in 0..cols {
        let tag = take(&mut pos, 1)?[0];
        row.push(match tag {
            0 => Value::Null,
            1 => match take(&mut pos, 1)?[0] {
                0 => Value::Bool(false),
                1 => Value::Bool(true),
                _ => return None,
            },
            2 => Value::Int(i64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?)),
            3 => Value::float(f64::from_bits(u64::from_le_bytes(
                take(&mut pos, 8)?.try_into().ok()?,
            ))),
            4 => {
                let len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().ok()?);
                Value::Str(String::from_utf8(take(&mut pos, usize::from(len))?.to_vec()).ok()?)
            }
            _ => return None,
        });
    }
    (pos == bytes.len()).then_some(row)
}

/// Persist every row of `table` into `engine` as one committed
/// transaction, keyed `base_key + row index`. The table can then be read
/// back with a [`StoreScan`] over `[base_key, base_key + len)`.
///
/// # Errors
/// [`StoreError`] from the storage transaction (e.g. an oversized row).
pub fn persist_table(
    table: &Table,
    base_key: u64,
    engine: &mut StorageEngine,
) -> Result<TxnSummary, StoreError> {
    let ops: Vec<StoreOp> = table
        .rows()
        .iter()
        .enumerate()
        .map(|(i, row)| StoreOp::Put { key: base_key + i as u64, value: encode_row(row) })
        .collect();
    engine.apply(&ops)
}

/// A scan over rows stored in a [`StorageEngine`], pulled through the
/// buffer pool one record per poll.
///
/// The scan owns its engine (the engine is a value type — scenarios clone
/// one in), fixes the key list at construction (`scan_range` over the
/// index), and decodes each record against `schema`. Work accounting:
/// `moved` per row, plus `unspill` when the fetch missed the pool and a
/// page had to come back from disk — the same ledger XJoin uses for
/// re-reading spilled partitions, because it is the same physical event.
#[derive(Debug, Clone)]
pub struct StoreScan {
    engine: StorageEngine,
    keys: Vec<u64>,
    pos: usize,
    schema: Schema,
    work: WorkCounter,
}

impl StoreScan {
    /// Scan every key in `[lo, hi]` (inclusive) that the engine holds.
    ///
    /// # Errors
    /// Returns `Err` if the engine is down (crashed and not recovered).
    pub fn new(
        engine: StorageEngine,
        lo: u64,
        hi: u64,
        schema: Schema,
        work: WorkCounter,
    ) -> Result<Self, StoreError> {
        let keys = engine.scan_range_keys(lo, hi)?;
        Ok(Self { engine, keys, pos: 0, schema, work })
    }

    /// Rows delivered so far.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Restart from a recorded position (safe-point resume after a plan
    /// switch, same contract as [`crate::source::TableScan::seek`]).
    pub fn seek(&mut self, pos: usize) {
        self.pos = pos.min(self.keys.len());
    }

    /// Pool statistics accumulated by this scan's engine.
    #[must_use]
    pub fn pool_stats(&self) -> store::PoolStats {
        self.engine.pool_stats()
    }
}

impl Operator for StoreScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self) -> Poll {
        let Some(&key) = self.keys.get(self.pos) else {
            return Poll::Done;
        };
        self.pos += 1;
        let (bytes, hit) = self
            .engine
            .get_traced(key)
            .expect("scan engine is down")
            .expect("scan key vanished: engine mutated under a running scan");
        if !hit {
            self.work.unspill(1);
        }
        let row = decode_row(&bytes).expect("stored record is not a valid row");
        self.schema.check(&row).expect("stored row does not match the scan schema");
        self.work.moved(1);
        Poll::Ready(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::drain;
    use datacomp::ColumnType;
    use store::PolicyKind;

    fn schema() -> Schema {
        Schema::new(&[("id", ColumnType::Int), ("name", ColumnType::Str)]).unwrap()
    }

    fn table(n: i64) -> Table {
        let mut t = Table::new(schema());
        for i in 0..n {
            t.insert(vec![Value::Int(i), Value::Str(format!("row-{i}"))]).unwrap();
        }
        t
    }

    /// Rows fat enough that a small table still spans several pages.
    fn fat_table(n: i64) -> Table {
        let mut t = Table::new(schema());
        for i in 0..n {
            t.insert(vec![Value::Int(i), Value::Str(format!("{i:0>200}"))]).unwrap();
        }
        t
    }

    #[test]
    fn row_codec_roundtrips_every_value_kind() {
        let row = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-7),
            Value::float(2.5),
            Value::Str("atoms".into()),
        ];
        assert_eq!(decode_row(&encode_row(&row)), Some(row));
        assert_eq!(decode_row(&encode_row(&[])), Some(vec![]));
    }

    #[test]
    fn row_codec_rejects_malformed_bytes() {
        let good = encode_row(&[Value::Int(9), Value::Str("x".into())]);
        assert_eq!(decode_row(&good[..good.len() - 1]), None, "truncated");
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(decode_row(&trailing), None, "trailing garbage");
        let mut bad_tag = good;
        bad_tag[2] = 9;
        assert_eq!(decode_row(&bad_tag), None, "unknown tag");
    }

    #[test]
    fn store_scan_reads_back_a_persisted_table() {
        let t = table(20);
        let mut engine = StorageEngine::with_policy(4, PolicyKind::Clock);
        persist_table(&t, 100, &mut engine).unwrap();
        let w = WorkCounter::new();
        let mut scan = StoreScan::new(engine, 100, 100 + 19, schema(), w.clone()).unwrap();
        let rows = drain(&mut scan, 0);
        assert_eq!(rows, t.rows());
        assert_eq!(w.snapshot().tuples_moved, 20);
        assert_eq!(scan.poll(), Poll::Done, "stays done");
    }

    #[test]
    fn scan_over_a_tiny_pool_faults_pages_in_as_unspills() {
        let t = fat_table(64);
        // ~220-byte records: the table spans several pages, while the
        // pool holds only two frames — a pass must fault pages back in.
        let mut engine = StorageEngine::with_policy(2, PolicyKind::Lru);
        persist_table(&t, 0, &mut engine).unwrap();
        let w = WorkCounter::new();
        let mut scan = StoreScan::new(engine, 0, 63, schema(), w.clone()).unwrap();
        let rows = drain(&mut scan, 0);
        assert_eq!(rows, t.rows());
        let cold = w.snapshot().unspills;
        assert!(cold > 0, "cold scan over a tiny pool must fault pages in");
        // Sequential access faults each page at most once per pass.
        scan.seek(0);
        drain(&mut scan, 0);
        assert!(w.snapshot().unspills <= cold * 2);
        assert_eq!(w.snapshot().tuples_moved, 128);
    }

    #[test]
    fn seek_resumes_mid_scan_at_a_safe_point() {
        let t = table(10);
        let mut engine = StorageEngine::with_policy(4, PolicyKind::Clock);
        persist_table(&t, 0, &mut engine).unwrap();
        let mut scan = StoreScan::new(engine, 0, 9, schema(), WorkCounter::new()).unwrap();
        drain(&mut scan, 0);
        scan.seek(7);
        let tail = drain(&mut scan, 0);
        assert_eq!(tail, t.rows()[7..].to_vec());
    }
}
