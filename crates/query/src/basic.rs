//! The static (non-adaptive) operators: the baselines the adaptive
//! operators are measured against, and the pieces the pre-optimiser chooses
//! between in Scenario 3 ("change the join's inner-loop to the outer-loop
//! or add an index to one of the tables").

use crate::expr::Pred;
use crate::op::{Operator, Poll, WorkCounter};
use datacomp::{Row, Schema, Table, Value};
use std::collections::HashMap;

/// Filter: passes rows satisfying a predicate.
#[derive(Debug)]
pub struct Filter {
    child: Box<dyn Operator>,
    pred: Pred,
    work: WorkCounter,
}

impl Filter {
    /// Filter `child` by `pred`.
    #[must_use]
    pub fn new(child: Box<dyn Operator>, pred: Pred, work: WorkCounter) -> Self {
        Self { child, pred, work }
    }
}

impl Operator for Filter {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn poll(&mut self) -> Poll {
        loop {
            match self.child.poll() {
                Poll::Ready(r) => {
                    self.work.compare(1);
                    if self.pred.eval(&r) {
                        return Poll::Ready(r);
                    }
                }
                other => return other,
            }
        }
    }
}

/// Project: keeps the named column indices, in order.
#[derive(Debug)]
pub struct Project {
    child: Box<dyn Operator>,
    cols: Vec<usize>,
    schema: Schema,
    work: WorkCounter,
}

impl Project {
    /// Project `child` to `cols`.
    ///
    /// # Panics
    /// If a column index is out of range for the child schema.
    #[must_use]
    pub fn new(child: Box<dyn Operator>, cols: Vec<usize>, work: WorkCounter) -> Self {
        let src = child.schema().columns();
        let picked: Vec<(&str, datacomp::ColumnType)> =
            cols.iter().map(|&i| (src[i].name.as_str(), src[i].ty)).collect();
        let schema = Schema::new(&picked).expect("projection of a valid schema is valid");
        Self { child, cols, schema, work }
    }
}

impl Operator for Project {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self) -> Poll {
        match self.child.poll() {
            Poll::Ready(r) => {
                self.work.moved(1);
                Poll::Ready(self.cols.iter().map(|&i| r[i].clone()).collect())
            }
            other => other,
        }
    }
}

fn key_of(row: &Row, cols: &[usize]) -> Vec<Value> {
    cols.iter().map(|&i| row[i].clone()).collect()
}

fn concat(l: &Row, r: &Row) -> Row {
    let mut out = Vec::with_capacity(l.len() + r.len());
    out.extend_from_slice(l);
    out.extend_from_slice(r);
    out
}

/// Block nested-loop equijoin: materialises the **inner** side, then loops
/// it per outer row. The pre-optimiser's choice of which side is inner is
/// exactly Scenario 3's "change the join's inner-loop to the outer-loop".
#[derive(Debug)]
pub struct NestedLoopJoin {
    outer: Box<dyn Operator>,
    inner: Box<dyn Operator>,
    outer_keys: Vec<usize>,
    inner_keys: Vec<usize>,
    inner_rows: Vec<Row>,
    inner_done: bool,
    current: Option<(Row, usize)>,
    schema: Schema,
    work: WorkCounter,
}

impl NestedLoopJoin {
    /// Join `outer ⋈ inner` on `outer_keys = inner_keys`.
    #[must_use]
    pub fn new(
        outer: Box<dyn Operator>,
        inner: Box<dyn Operator>,
        outer_keys: Vec<usize>,
        inner_keys: Vec<usize>,
        work: WorkCounter,
    ) -> Self {
        let schema = outer.schema().join(inner.schema());
        Self {
            outer,
            inner,
            outer_keys,
            inner_keys,
            inner_rows: Vec::new(),
            inner_done: false,
            current: None,
            schema,
            work,
        }
    }
}

impl Operator for NestedLoopJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self) -> Poll {
        // Phase 1: materialise the inner side.
        while !self.inner_done {
            match self.inner.poll() {
                Poll::Ready(r) => {
                    self.work.moved(1);
                    self.inner_rows.push(r);
                }
                Poll::Pending => return Poll::Pending,
                Poll::Done => self.inner_done = true,
            }
        }
        // Phase 2: loop inner per outer row.
        loop {
            if let Some((orow, idx)) = &mut self.current {
                while *idx < self.inner_rows.len() {
                    let irow = &self.inner_rows[*idx];
                    *idx += 1;
                    self.work.compare(1);
                    if key_of(orow, &self.outer_keys) == key_of(irow, &self.inner_keys) {
                        let out = concat(orow, irow);
                        return Poll::Ready(out);
                    }
                }
                self.current = None;
            }
            match self.outer.poll() {
                Poll::Ready(r) => {
                    self.work.moved(1);
                    self.current = Some((r, 0));
                }
                Poll::Pending => return Poll::Pending,
                Poll::Done => return Poll::Done,
            }
        }
    }
}

/// Index nested-loop equijoin: the inner side is a materialised table with
/// a prebuilt hash index — Scenario 3's "add an index to one of the tables".
#[derive(Debug)]
pub struct IndexNestedLoopJoin {
    outer: Box<dyn Operator>,
    index: HashMap<Vec<Value>, Vec<Row>>,
    outer_keys: Vec<usize>,
    pending: Vec<Row>,
    schema: Schema,
    work: WorkCounter,
}

impl IndexNestedLoopJoin {
    /// Build the index over `inner` (charged as hash inserts), then stream
    /// `outer` against it.
    #[must_use]
    pub fn new(
        outer: Box<dyn Operator>,
        inner: &Table,
        outer_keys: Vec<usize>,
        inner_keys: &[usize],
        work: WorkCounter,
    ) -> Self {
        let schema = outer.schema().join(inner.schema());
        let mut index: HashMap<Vec<Value>, Vec<Row>> = HashMap::new();
        for row in inner.rows() {
            work.hash_insert();
            index.entry(key_of(row, inner_keys)).or_default().push(row.clone());
        }
        Self { outer, index, outer_keys, pending: Vec::new(), schema, work }
    }
}

impl Operator for IndexNestedLoopJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self) -> Poll {
        loop {
            if let Some(r) = self.pending.pop() {
                return Poll::Ready(r);
            }
            match self.outer.poll() {
                Poll::Ready(orow) => {
                    self.work.moved(1);
                    self.work.hash_probe(1);
                    if let Some(matches) = self.index.get(&key_of(&orow, &self.outer_keys)) {
                        for irow in matches {
                            self.pending.push(concat(&orow, irow));
                        }
                    }
                }
                other => return other,
            }
        }
    }
}

/// Classic build-then-probe hash join: blocks until the **build** side is
/// exhausted — the behaviour that loses to pipelined joins when the build
/// side is a stalling remote source.
#[derive(Debug)]
pub struct HashJoin {
    build: Box<dyn Operator>,
    probe: Box<dyn Operator>,
    build_keys: Vec<usize>,
    probe_keys: Vec<usize>,
    table: HashMap<Vec<Value>, Vec<Row>>,
    build_done: bool,
    pending: Vec<Row>,
    schema: Schema,
    work: WorkCounter,
    /// Whether the build side is the left (schema order) side.
    build_is_left: bool,
}

impl HashJoin {
    /// Join with `build` as the hashed side. `build_is_left` controls output
    /// column order so results are comparable across operators.
    #[must_use]
    pub fn new(
        build: Box<dyn Operator>,
        probe: Box<dyn Operator>,
        build_keys: Vec<usize>,
        probe_keys: Vec<usize>,
        build_is_left: bool,
        work: WorkCounter,
    ) -> Self {
        let schema = if build_is_left {
            build.schema().join(probe.schema())
        } else {
            probe.schema().join(build.schema())
        };
        Self {
            build,
            probe,
            build_keys,
            probe_keys,
            table: HashMap::new(),
            build_done: false,
            pending: Vec::new(),
            schema,
            work,
            build_is_left,
        }
    }
}

impl Operator for HashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self) -> Poll {
        while !self.build_done {
            match self.build.poll() {
                Poll::Ready(r) => {
                    self.work.hash_insert();
                    self.table.entry(key_of(&r, &self.build_keys)).or_default().push(r);
                }
                Poll::Pending => return Poll::Pending,
                Poll::Done => self.build_done = true,
            }
        }
        loop {
            if let Some(r) = self.pending.pop() {
                return Poll::Ready(r);
            }
            match self.probe.poll() {
                Poll::Ready(prow) => {
                    self.work.moved(1);
                    self.work.hash_probe(1);
                    if let Some(matches) = self.table.get(&key_of(&prow, &self.probe_keys)) {
                        for brow in matches {
                            let out = if self.build_is_left {
                                concat(brow, &prow)
                            } else {
                                concat(&prow, brow)
                            };
                            self.pending.push(out);
                        }
                    }
                }
                other => return other,
            }
        }
    }
}

/// Sort: drains the child and emits in key order (ascending).
#[derive(Debug)]
pub struct Sort {
    child: Box<dyn Operator>,
    keys: Vec<usize>,
    buffered: Vec<Row>,
    drained: bool,
    emit: usize,
    work: WorkCounter,
}

impl Sort {
    /// Sort `child` by `keys`.
    #[must_use]
    pub fn new(child: Box<dyn Operator>, keys: Vec<usize>, work: WorkCounter) -> Self {
        Self { child, keys, buffered: Vec::new(), drained: false, emit: 0, work }
    }
}

impl Operator for Sort {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn poll(&mut self) -> Poll {
        while !self.drained {
            match self.child.poll() {
                Poll::Ready(r) => {
                    self.work.moved(1);
                    self.buffered.push(r);
                }
                Poll::Pending => return Poll::Pending,
                Poll::Done => {
                    self.drained = true;
                    let keys = self.keys.clone();
                    let n = self.buffered.len() as u64;
                    self.work.compare(n.saturating_mul(n.max(1).ilog2().into()));
                    self.buffered.sort_by_key(|a| key_of(a, &keys));
                }
            }
        }
        if self.emit < self.buffered.len() {
            let r = self.buffered[self.emit].clone();
            self.emit += 1;
            Poll::Ready(r)
        } else {
            Poll::Done
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::drain;
    use crate::source::TableScan;
    use datacomp::ColumnType;

    fn orders() -> Table {
        let schema = Schema::new(&[("oid", ColumnType::Int), ("cust", ColumnType::Int)]).unwrap();
        let mut t = Table::new(schema);
        for (o, c) in [(1, 10), (2, 20), (3, 10), (4, 30)] {
            t.insert(vec![Value::Int(o), Value::Int(c)]).unwrap();
        }
        t
    }

    fn customers() -> Table {
        let schema = Schema::new(&[("cid", ColumnType::Int), ("city", ColumnType::Str)]).unwrap();
        let mut t = Table::new(schema);
        for (c, city) in [(10, "london"), (20, "paris")] {
            t.insert(vec![Value::Int(c), Value::str(city)]).unwrap();
        }
        t
    }

    fn scan(t: Table, w: &WorkCounter) -> Box<dyn Operator> {
        Box::new(TableScan::new(t, w.clone()))
    }

    /// The oracle: orders ⋈ customers on cust=cid has 3 results.
    fn expected_join_size() -> usize {
        3
    }

    #[test]
    fn filter_and_project() {
        let w = WorkCounter::new();
        let f = Filter::new(scan(orders(), &w), Pred::eq(1, Value::Int(10)), w.clone());
        let mut p = Project::new(Box::new(f), vec![0], w);
        let rows = drain(&mut p, 0);
        assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
        assert_eq!(p.schema().arity(), 1);
    }

    #[test]
    fn nested_loop_join_matches_oracle() {
        let w = WorkCounter::new();
        let mut j = NestedLoopJoin::new(
            scan(orders(), &w),
            scan(customers(), &w),
            vec![1],
            vec![0],
            w.clone(),
        );
        let rows = drain(&mut j, 0);
        assert_eq!(rows.len(), expected_join_size());
        assert_eq!(j.schema().arity(), 4);
        // 4 outer rows × 2 inner rows compared.
        assert_eq!(w.snapshot().comparisons, 8);
    }

    #[test]
    fn hash_join_matches_oracle_both_build_sides() {
        for build_left in [true, false] {
            let w = WorkCounter::new();
            let (build, probe, bk, pk) = if build_left {
                (scan(orders(), &w), scan(customers(), &w), vec![1], vec![0])
            } else {
                (scan(customers(), &w), scan(orders(), &w), vec![0], vec![1])
            };
            let mut j = HashJoin::new(build, probe, bk, pk, build_left, w.clone());
            let mut rows = drain(&mut j, 0);
            rows.sort();
            assert_eq!(rows.len(), expected_join_size());
            if build_left {
                assert_eq!(rows[0][0], Value::Int(1), "left columns first");
            }
        }
    }

    #[test]
    fn index_join_matches_oracle_and_charges_index_build() {
        let w = WorkCounter::new();
        let inner = customers();
        let mut j = IndexNestedLoopJoin::new(scan(orders(), &w), &inner, vec![1], &[0], w.clone());
        let rows = drain(&mut j, 0);
        assert_eq!(rows.len(), expected_join_size());
        assert_eq!(w.snapshot().hash_inserts, 2, "index built over 2 customers");
        assert_eq!(w.snapshot().hash_probes, 4, "one probe per order");
    }

    #[test]
    fn joins_agree_on_content() {
        let run = |mk: &dyn Fn(WorkCounter) -> Box<dyn Operator>| {
            let w = WorkCounter::new();
            let mut op = mk(w);
            let mut rows = drain(&mut *op, 0);
            rows.sort();
            rows
        };
        let nl = run(&|w| {
            Box::new(NestedLoopJoin::new(
                scan(orders(), &w),
                scan(customers(), &w),
                vec![1],
                vec![0],
                w,
            ))
        });
        let hj = run(&|w| {
            Box::new(HashJoin::new(
                scan(orders(), &w),
                scan(customers(), &w),
                vec![1],
                vec![0],
                true,
                w,
            ))
        });
        let ij = run(&|w| {
            Box::new(IndexNestedLoopJoin::new(scan(orders(), &w), &customers(), vec![1], &[0], w))
        });
        assert_eq!(nl, hj);
        assert_eq!(nl, ij);
    }

    #[test]
    fn sort_orders_rows() {
        let w = WorkCounter::new();
        let mut s = Sort::new(scan(orders(), &w), vec![1, 0], w.clone());
        let rows = drain(&mut s, 0);
        let custs: Vec<i64> = rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
        assert_eq!(custs, vec![10, 10, 20, 30]);
    }

    #[test]
    fn empty_inputs_yield_empty_joins() {
        let w = WorkCounter::new();
        let empty = Table::new(customers().schema().clone());
        let mut j =
            HashJoin::new(scan(empty, &w), scan(orders(), &w), vec![0], vec![1], false, w.clone());
        assert!(drain(&mut j, 0).is_empty());
    }
}
