//! Intra-query adaptation: execution with safe points and mid-query
//! re-optimisation — Scenario 3 end to end.
//!
//! > "It becomes obvious that the original cost calculations need revised
//! > ... The query plan is revised to perhaps change the join's inner-loop
//! > to the outer-loop or add an index to one of the tables. The components
//! > that carry out this are called upon and linked into the query pipeline
//! > at run-time. ... The adaptivity manager brings the query to a
//! > consistent state maintained by the State Manager component. The query
//! > then continues from this point."
//!
//! [`AdaptiveJoinExec`] runs a two-table equijoin from a [`Catalog`] whose
//! visible statistics may be stale. Execution proceeds outer-row by
//! outer-row; every `safe_point_interval` outer rows it reaches a **safe
//! point**: observed cardinalities are compared against the optimiser's
//! beliefs, and if they are off by more than `reopt_threshold`, the
//! remaining work is re-planned with corrected estimates. A plan switch
//! replays no output: the consistent state (outer position, emitted count)
//! carries over, and the new operator state (e.g. a hash table) is built as
//! part of the switch — its cost lands in the same work counter, so the
//! adaptive-vs-static comparison is fair.

use crate::op::{Work, WorkCounter};
use crate::optimizer::{Catalog, JoinAlgo, JoinPlan, Optimizer};
use datacomp::{Row, Table, Value};
use std::collections::HashMap;
use std::fmt;

/// Execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Unknown table name.
    UnknownTable(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
        }
    }
}

impl std::error::Error for ExecError {}

/// What happened during one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// The pre-optimiser's choice.
    pub initial_algo: JoinAlgo,
    /// The algorithm that finished the query.
    pub final_algo: JoinAlgo,
    /// Outer position of the safe point where the switch happened.
    pub switched_at: Option<u64>,
    /// Result rows produced.
    pub rows_out: u64,
    /// Total work.
    pub work: Work,
    /// Number of re-plans.
    pub replans: u32,
}

/// The adaptive executor.
#[derive(Debug, Clone)]
pub struct AdaptiveJoinExec {
    /// Outer rows between safe points.
    pub safe_point_interval: u64,
    /// Misestimate factor (observed/believed or believed/observed) that
    /// triggers re-planning.
    pub reopt_threshold: f64,
}

impl Default for AdaptiveJoinExec {
    fn default() -> Self {
        Self { safe_point_interval: 64, reopt_threshold: 4.0 }
    }
}

/// The incremental execution state of the currently-chosen algorithm.
enum AlgoState {
    /// Inner side fully materialised; loop it per outer row.
    NestedLoop { inner: Vec<Row> },
    /// Hash table over the inner/build side; probe per outer row.
    Hashed { table: HashMap<Vec<Value>, Vec<Row>> },
}

/// Which catalog side plays "outer" for a given algorithm.
fn outer_is_left(algo: JoinAlgo) -> bool {
    match algo {
        JoinAlgo::NestedLoopInnerRight | JoinAlgo::HashBuildRight | JoinAlgo::IndexInnerRight => {
            true
        }
        JoinAlgo::NestedLoopInnerLeft | JoinAlgo::HashBuildLeft => false,
    }
}

impl AdaptiveJoinExec {
    /// Run `left ⋈ right` on `left_key = right_key`. With `adapt = false`
    /// the initial plan runs to completion regardless of what execution
    /// observes (the static baseline).
    ///
    /// # Errors
    /// [`ExecError::UnknownTable`].
    #[allow(clippy::too_many_arguments)] // the executor's full contract: query shape + adapt flag + counter
    pub fn run(
        &self,
        catalog: &Catalog,
        left: &str,
        right: &str,
        left_key: usize,
        right_key: usize,
        adapt: bool,
        work: &WorkCounter,
    ) -> Result<(Vec<Row>, ExecReport), ExecError> {
        let ltab = catalog.table(left).ok_or_else(|| ExecError::UnknownTable(left.to_owned()))?;
        let rtab = catalog.table(right).ok_or_else(|| ExecError::UnknownTable(right.to_owned()))?;
        let lstats = catalog.stats(left).ok_or_else(|| ExecError::UnknownTable(left.to_owned()))?;
        let rstats =
            catalog.stats(right).ok_or_else(|| ExecError::UnknownTable(right.to_owned()))?;

        let mut plan = Optimizer::plan_from_stats(lstats, rstats);
        let initial_algo = plan.algo;
        let mut state = Self::build_state(plan.algo, ltab, rtab, left_key, right_key, work);
        let mut out: Vec<Row> = Vec::new();
        let mut outer_pos: usize = 0;
        let mut switched_at = None;
        let mut replans = 0u32;

        loop {
            let (outer, outer_key, inner_len) = if outer_is_left(plan.algo) {
                (ltab, left_key, rtab.len())
            } else {
                (rtab, right_key, ltab.len())
            };
            if outer_pos >= outer.rows().len() {
                break;
            }
            // Process up to a safe point.
            let end = (outer_pos + self.safe_point_interval as usize).min(outer.rows().len());
            for row in &outer.rows()[outer_pos..end] {
                work.moved(1);
                let key: Vec<Value> = vec![row[outer_key].clone()];
                match &state {
                    AlgoState::NestedLoop { inner } => {
                        let inner_key = if outer_is_left(plan.algo) { right_key } else { left_key };
                        work.compare(inner.len() as u64);
                        for irow in inner {
                            if irow[inner_key] == row[outer_key] {
                                out.push(Self::emit(plan.algo, row, irow));
                            }
                        }
                    }
                    AlgoState::Hashed { table } => {
                        work.hash_probe(1);
                        if let Some(matches) = table.get(&key) {
                            for irow in matches {
                                out.push(Self::emit(plan.algo, row, irow));
                            }
                        }
                    }
                }
            }
            outer_pos = end;

            // Safe point: consistent state = (outer_pos, out). Re-optimise?
            if adapt && outer_pos < outer.rows().len() {
                let believed_outer =
                    if outer_is_left(plan.algo) { plan.est_left_rows } else { plan.est_right_rows };
                // Cardinality feedback: the scan has already delivered more
                // rows than the optimiser believed existed (or the believed
                // total is wildly above what the finished side produced).
                let observed = outer_pos as f64;
                let misestimate = observed > believed_outer * self.reopt_threshold
                    || believed_outer > outer.rows().len() as f64 * self.reopt_threshold;
                if misestimate {
                    // Revise with true cardinalities for the *remaining* work.
                    let remaining_outer = (outer.rows().len() - outer_pos) as f64;
                    let (l_rows, r_rows) = if outer_is_left(plan.algo) {
                        (remaining_outer, inner_len as f64)
                    } else {
                        (inner_len as f64, remaining_outer)
                    };
                    let revised = Optimizer::plan(l_rows, r_rows);
                    if revised.algo != plan.algo {
                        // The switch: keep (outer_pos, out); rebuild state.
                        // If the outer side flips we must restart the new
                        // outer from 0 — avoid that by only accepting plans
                        // that keep the same outer side.
                        if outer_is_left(revised.algo) == outer_is_left(plan.algo) {
                            replans += 1;
                            switched_at = Some(outer_pos as u64);
                            plan = JoinPlan {
                                algo: revised.algo,
                                est_cost: revised.est_cost,
                                est_left_rows: if outer_is_left(plan.algo) {
                                    outer.rows().len() as f64
                                } else {
                                    inner_len as f64
                                },
                                est_right_rows: if outer_is_left(plan.algo) {
                                    inner_len as f64
                                } else {
                                    outer.rows().len() as f64
                                },
                            };
                            state =
                                Self::build_state(plan.algo, ltab, rtab, left_key, right_key, work);
                        } else {
                            // Same-outer alternative: take the best plan
                            // among candidates preserving the outer side.
                            let keep: Vec<JoinAlgo> = crate::optimizer::ALL_ALGOS
                                .into_iter()
                                .filter(|&a| outer_is_left(a) == outer_is_left(plan.algo))
                                .collect();
                            let best = keep
                                .into_iter()
                                .min_by(|&a, &b| {
                                    crate::optimizer::algo_cost(a, l_rows, r_rows)
                                        .total_cmp(&crate::optimizer::algo_cost(b, l_rows, r_rows))
                                })
                                .expect("non-empty");
                            if best != plan.algo {
                                replans += 1;
                                switched_at = Some(outer_pos as u64);
                                plan.algo = best;
                                state = Self::build_state(
                                    plan.algo, ltab, rtab, left_key, right_key, work,
                                );
                            }
                        }
                    }
                }
            }
        }

        let report = ExecReport {
            initial_algo,
            final_algo: plan.algo,
            switched_at,
            rows_out: out.len() as u64,
            work: work.snapshot(),
            replans,
        };
        Ok((out, report))
    }

    fn emit(algo: JoinAlgo, outer: &Row, inner: &Row) -> Row {
        // Output is always (left ++ right) regardless of loop roles.
        let (l, r) = if outer_is_left(algo) { (outer, inner) } else { (inner, outer) };
        let mut out = Vec::with_capacity(l.len() + r.len());
        out.extend_from_slice(l);
        out.extend_from_slice(r);
        out
    }

    fn build_state(
        algo: JoinAlgo,
        ltab: &Table,
        rtab: &Table,
        left_key: usize,
        right_key: usize,
        work: &WorkCounter,
    ) -> AlgoState {
        let (inner, inner_key) =
            if outer_is_left(algo) { (rtab, right_key) } else { (ltab, left_key) };
        match algo {
            JoinAlgo::NestedLoopInnerRight | JoinAlgo::NestedLoopInnerLeft => {
                work.moved(inner.len() as u64);
                AlgoState::NestedLoop { inner: inner.rows().to_vec() }
            }
            JoinAlgo::HashBuildLeft | JoinAlgo::HashBuildRight | JoinAlgo::IndexInnerRight => {
                let mut table: HashMap<Vec<Value>, Vec<Row>> = HashMap::new();
                for row in inner.rows() {
                    work.hash_insert();
                    table.entry(vec![row[inner_key].clone()]).or_default().push(row.clone());
                }
                AlgoState::Hashed { table }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacomp::{ColumnType, Schema};

    fn table(n: i64, dup_every: i64) -> Table {
        let schema = Schema::new(&[("k", ColumnType::Int), ("v", ColumnType::Int)]).unwrap();
        let mut t = Table::new(schema);
        for i in 0..n {
            t.insert(vec![Value::Int(i % dup_every), Value::Int(i)]).unwrap();
        }
        t
    }

    /// Catalog whose stats believe both tables are a few rows when they
    /// are thousands — the Scenario 3 setup (stale statistics make nested
    /// loop look optimal).
    fn stale_catalog(left_n: i64, right_n: i64) -> Catalog {
        let mut c = Catalog::new();
        c.register_with_stale_stats("l", table(left_n, 50), 0.0025);
        c.register_with_stale_stats("r", table(right_n, 50), 0.0025);
        c
    }

    fn oracle_count(c: &Catalog) -> usize {
        let l = c.table("l").unwrap();
        let r = c.table("r").unwrap();
        l.rows().iter().map(|lr| r.rows().iter().filter(|rr| rr[0] == lr[0]).count()).sum()
    }

    #[test]
    fn static_and_adaptive_agree_on_results() {
        let c = stale_catalog(2_000, 2_000);
        let expected = oracle_count(&c);
        for adapt in [false, true] {
            let w = WorkCounter::new();
            let (rows, report) =
                AdaptiveJoinExec::default().run(&c, "l", "r", 0, 0, adapt, &w).unwrap();
            assert_eq!(rows.len(), expected, "adapt={adapt}");
            assert_eq!(report.rows_out as usize, expected);
        }
    }

    #[test]
    fn stale_stats_pick_a_bad_initial_plan() {
        let c = stale_catalog(2_000, 2_000);
        let w = WorkCounter::new();
        let (_, report) = AdaptiveJoinExec::default().run(&c, "l", "r", 0, 0, false, &w).unwrap();
        // Believing both sides are ~5 rows, nested loop looks cheap.
        assert!(
            matches!(
                report.initial_algo,
                JoinAlgo::NestedLoopInnerLeft | JoinAlgo::NestedLoopInnerRight
            ),
            "got {}",
            report.initial_algo
        );
    }

    #[test]
    fn adaptation_switches_and_wins() {
        let c = stale_catalog(2_000, 2_000);
        let ws = WorkCounter::new();
        let (_, static_report) =
            AdaptiveJoinExec::default().run(&c, "l", "r", 0, 0, false, &ws).unwrap();
        let wa = WorkCounter::new();
        let (_, adaptive_report) =
            AdaptiveJoinExec::default().run(&c, "l", "r", 0, 0, true, &wa).unwrap();
        assert!(adaptive_report.replans >= 1, "{adaptive_report:?}");
        assert!(adaptive_report.switched_at.is_some());
        assert_ne!(adaptive_report.final_algo, adaptive_report.initial_algo);
        let (s, a) = (static_report.work.total_ops(), adaptive_report.work.total_ops());
        assert!(a * 2 < s, "adaptive ({a}) should cost well under half of static ({s})");
    }

    #[test]
    fn fresh_stats_need_no_adaptation() {
        let mut c = Catalog::new();
        c.register("l", table(2_000, 50));
        c.register("r", table(2_000, 50));
        let w = WorkCounter::new();
        let (_, report) = AdaptiveJoinExec::default().run(&c, "l", "r", 0, 0, true, &w).unwrap();
        assert_eq!(report.replans, 0);
        assert_eq!(report.initial_algo, report.final_algo);
    }

    #[test]
    fn switch_happens_at_a_safe_point_boundary() {
        let c = stale_catalog(2_000, 2_000);
        let exec = AdaptiveJoinExec { safe_point_interval: 100, reopt_threshold: 4.0 };
        let w = WorkCounter::new();
        let (_, report) = exec.run(&c, "l", "r", 0, 0, true, &w).unwrap();
        let at = report.switched_at.expect("must switch");
        assert_eq!(at % 100, 0, "switch at {at} is not a safe point");
    }

    #[test]
    fn unknown_table_errors() {
        let c = Catalog::new();
        let w = WorkCounter::new();
        assert_eq!(
            AdaptiveJoinExec::default().run(&c, "x", "y", 0, 0, true, &w).unwrap_err(),
            ExecError::UnknownTable("x".into())
        );
    }

    #[test]
    fn overestimate_also_triggers_replan() {
        // Stats believe left is 100× larger: optimiser picks hash-build-
        // right (huge left probes). Execution notices the believed total
        // is absurd once the outer finishes early... here the outer IS the
        // left, so the executor sees outer finish at 20 rows; the revised
        // plan for remaining work is a no-op (query done). Just assert the
        // run completes correctly.
        let mut c = Catalog::new();
        c.register_with_stale_stats("l", table(20, 5), 100.0);
        c.register("r", table(2_000, 5));
        let w = WorkCounter::new();
        let (rows, _) = AdaptiveJoinExec::default().run(&c, "l", "r", 0, 0, true, &w).unwrap();
        assert_eq!(rows.len(), oracle_count(&c));
    }
}
