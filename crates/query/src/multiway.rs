//! Multi-way join planning: dynamic programming over left-deep orders.
//!
//! Scenario 3's query "involves heavy join processing"; a real
//! pre-optimiser must therefore order *chains* of joins, not just pick one
//! join's algorithm. [`plan_multiway`] runs the classic connected-subset
//! dynamic program over left-deep orders, estimating intermediate
//! cardinalities from (possibly stale) statistics with the uniformity
//! assumption; [`execute_order`] then runs any order for real, so the
//! planner's choice can be measured against every alternative — and
//! against what stale statistics trick it into.
//!
//! Scope: equijoins on column 0 of each base table (the generated
//! workloads' shape), left-deep trees, hash join per step. That is enough
//! to exhibit the phenomenon the paper needs — join order chosen from bad
//! statistics costs multiples of the true optimum.

use crate::op::WorkCounter;
use crate::optimizer::Catalog;
use datacomp::{Row, Table, Value};
use std::collections::HashMap;
use std::fmt;

/// A join query: tables and the edges connecting them (indices into
/// `tables`; each edge joins column 0 of both sides).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinGraph {
    /// Table names (resolved against a [`Catalog`]).
    pub tables: Vec<String>,
    /// Undirected join edges between table indices.
    pub edges: Vec<(usize, usize)>,
}

/// Planning errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiwayError {
    /// A table is missing from the catalog.
    UnknownTable(String),
    /// The join graph is disconnected (would need a cross product).
    Disconnected,
    /// Too many tables for the exact DP (subset enumeration).
    TooManyTables(usize),
}

impl fmt::Display for MultiwayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiwayError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            MultiwayError::Disconnected => write!(f, "join graph is disconnected"),
            MultiwayError::TooManyTables(n) => {
                write!(f, "{n} tables exceed the exact planner's limit (16)")
            }
        }
    }
}

impl std::error::Error for MultiwayError {}

/// A chosen left-deep order with its estimated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiwayPlan {
    /// Table indices in join order (first two are the initial join).
    pub order: Vec<usize>,
    /// Estimated total cost (work units).
    pub est_cost: f64,
    /// Estimated final cardinality.
    pub est_rows: f64,
}

/// Per-table beliefs used by the DP.
struct Beliefs {
    rows: Vec<f64>,
    distinct: Vec<f64>,
}

fn beliefs(catalog: &Catalog, graph: &JoinGraph) -> Result<Beliefs, MultiwayError> {
    let mut rows = Vec::with_capacity(graph.tables.len());
    let mut distinct = Vec::with_capacity(graph.tables.len());
    for name in &graph.tables {
        let stats = catalog.stats(name).ok_or_else(|| MultiwayError::UnknownTable(name.clone()))?;
        rows.push(stats.rows.max(1) as f64);
        let d = stats.columns.first().map_or(1, |c| c.distinct.max(1));
        distinct.push(d as f64);
    }
    Ok(Beliefs { rows, distinct })
}

/// Join-step cost model: hash-build the incoming table, probe the
/// intermediate, materialise the output.
fn step_cost(intermediate_rows: f64, table_rows: f64, out_rows: f64) -> f64 {
    200.0 + 2.0 * table_rows + 1.5 * intermediate_rows + out_rows
}

/// Estimated output cardinality of joining an intermediate (with
/// `inter_rows` rows and key-domain `inter_distinct`) against table `t`.
fn step_rows(inter_rows: f64, inter_distinct: f64, rows: f64, distinct: f64) -> (f64, f64) {
    let d = inter_distinct.max(distinct);
    ((inter_rows * rows / d).max(1.0), inter_distinct.min(distinct))
}

/// Exact DP over connected subsets for the cheapest left-deep order under
/// the catalog's (possibly stale) statistics.
///
/// # Errors
/// [`MultiwayError`] on unknown tables, disconnection, or > 16 tables.
pub fn plan_multiway(catalog: &Catalog, graph: &JoinGraph) -> Result<MultiwayPlan, MultiwayError> {
    let n = graph.tables.len();
    if n > 16 {
        return Err(MultiwayError::TooManyTables(n));
    }
    assert!(n >= 2, "a join needs at least two tables");
    let b = beliefs(catalog, graph)?;
    let connected = |set: u32, t: usize| -> bool {
        graph
            .edges
            .iter()
            .any(|&(x, y)| (set & (1 << x) != 0 && y == t) || (set & (1 << y) != 0 && x == t))
    };
    // state: subset -> (cost, rows, distinct, order)
    let mut best: HashMap<u32, (f64, f64, f64, Vec<usize>)> = HashMap::new();
    for (i, _) in graph.tables.iter().enumerate() {
        best.insert(1 << i, (0.0, b.rows[i], b.distinct[i], vec![i]));
    }
    for size in 2..=n {
        let states: Vec<u32> =
            best.keys().copied().filter(|s| s.count_ones() == size as u32 - 1).collect();
        for set in states {
            let (cost, rows, distinct, order) = best[&set].clone();
            for t in 0..n {
                if set & (1 << t) != 0 || !connected(set, t) {
                    continue;
                }
                let (out_rows, out_distinct) = step_rows(rows, distinct, b.rows[t], b.distinct[t]);
                let c = cost + step_cost(rows, b.rows[t], out_rows);
                let next = set | (1 << t);
                let entry = best.get(&next);
                if entry.is_none_or(|(ec, ..)| c < *ec) {
                    let mut o = order.clone();
                    o.push(t);
                    best.insert(next, (c, out_rows, out_distinct, o));
                }
            }
        }
    }
    let full = (1u32 << n) - 1;
    let (est_cost, est_rows, _, order) =
        best.get(&full).cloned().ok_or(MultiwayError::Disconnected)?;
    Ok(MultiwayPlan { order, est_cost, est_rows })
}

/// Execute a left-deep order for real (hash join per step), charging the
/// shared work counter. Returns the final row count.
///
/// The order must visit a connected prefix at every step; a disconnected
/// step is rejected (the DP never emits one).
///
/// # Errors
/// [`MultiwayError`] for unknown tables or disconnected orders.
pub fn execute_order(
    catalog: &Catalog,
    graph: &JoinGraph,
    order: &[usize],
    work: &WorkCounter,
) -> Result<u64, MultiwayError> {
    assert!(order.len() >= 2, "a join needs at least two tables");
    let fetch = |i: usize| -> Result<&Table, MultiwayError> {
        let name = &graph.tables[i];
        catalog.table(name).ok_or_else(|| MultiwayError::UnknownTable(name.clone()))
    };
    // The intermediate: rows plus, per base table joined so far, the offset
    // of its column 0 inside the row.
    let first = fetch(order[0])?;
    let mut inter: Vec<Row> = first.rows().to_vec();
    work.moved(inter.len() as u64);
    let mut key_offset: HashMap<usize, usize> = HashMap::from([(order[0], 0)]);
    let mut arity = first.schema().arity();

    for &t in &order[1..] {
        // Find the edge connecting t to the current set.
        let anchor = graph
            .edges
            .iter()
            .find_map(|&(x, y)| {
                if x == t && key_offset.contains_key(&y) {
                    Some(y)
                } else if y == t && key_offset.contains_key(&x) {
                    Some(x)
                } else {
                    None
                }
            })
            .ok_or(MultiwayError::Disconnected)?;
        let probe_col = key_offset[&anchor];
        let tab = fetch(t)?;
        // Build on the incoming table (col 0).
        let mut built: HashMap<Value, Vec<Row>> = HashMap::new();
        for row in tab.rows() {
            work.hash_insert();
            built.entry(row[0].clone()).or_default().push(row.clone());
        }
        let mut next = Vec::new();
        for row in &inter {
            work.hash_probe(1);
            if let Some(matches) = built.get(&row[probe_col]) {
                for m in matches {
                    let mut out = row.clone();
                    out.extend_from_slice(m);
                    next.push(out);
                }
            }
        }
        work.moved(next.len() as u64);
        key_offset.insert(t, arity);
        arity += tab.schema().arity();
        inter = next;
    }
    Ok(inter.len() as u64)
}

/// All left-deep orders whose every prefix is connected — the planner's
/// search space, for exhaustive comparison in tests and benches.
#[must_use]
pub fn all_connected_orders(graph: &JoinGraph) -> Vec<Vec<usize>> {
    let n = graph.tables.len();
    let mut out = Vec::new();
    let mut order = Vec::with_capacity(n);
    fn rec(graph: &JoinGraph, order: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        let n = graph.tables.len();
        if order.len() == n {
            out.push(order.clone());
            return;
        }
        for t in 0..n {
            if order.contains(&t) {
                continue;
            }
            let connected = order.is_empty()
                || graph.edges.iter().any(|&(x, y)| {
                    (order.contains(&x) && y == t) || (order.contains(&y) && x == t)
                });
            if connected {
                order.push(t);
                rec(graph, order, out);
                order.pop();
            }
        }
    }
    rec(graph, &mut order, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{gen_table, KeyDist};

    /// A chain a—b—c—d with very different sizes: the good order starts
    /// from the small end.
    fn chain_catalog(stale: f64) -> (Catalog, JoinGraph) {
        let mut c = Catalog::new();
        let sizes = [("a", 20usize), ("b", 120), ("c", 400), ("d", 800)];
        for (i, (name, rows)) in sizes.iter().enumerate() {
            let t = gen_table(*rows, KeyDist::Uniform { domain: 50 }, 7 + i as u64);
            if (stale - 1.0).abs() < f64::EPSILON {
                c.register(name, t);
            } else {
                // Stale view: sizes scrambled — the big tables believed
                // tiny and vice versa.
                let err = if i >= 2 { stale } else { 1.0 / stale };
                c.register_with_stale_stats(name, t, err);
            }
        }
        let graph = JoinGraph {
            tables: vec!["a".into(), "b".into(), "c".into(), "d".into()],
            edges: vec![(0, 1), (1, 2), (2, 3)],
        };
        (c, graph)
    }

    #[test]
    fn planned_order_is_cheapest_in_its_own_model() {
        let (c, g) = chain_catalog(1.0);
        let plan = plan_multiway(&c, &g).unwrap();
        // Exhaustively re-cost every connected order under the same model;
        // the DP result must be minimal.
        let b = beliefs(&c, &g).unwrap();
        let cost_of = |order: &[usize]| -> f64 {
            let mut rows = b.rows[order[0]];
            let mut distinct = b.distinct[order[0]];
            let mut cost = 0.0;
            for &t in &order[1..] {
                let (r, d) = step_rows(rows, distinct, b.rows[t], b.distinct[t]);
                cost += step_cost(rows, b.rows[t], r);
                rows = r;
                distinct = d;
            }
            cost
        };
        let planned = cost_of(&plan.order);
        for o in all_connected_orders(&g) {
            assert!(planned <= cost_of(&o) + 1e-6, "{:?} beats planned {:?}", o, plan.order);
        }
        assert!((planned - plan.est_cost).abs() < 1e-6);
    }

    #[test]
    fn every_order_computes_the_same_result() {
        let (c, g) = chain_catalog(1.0);
        let mut counts = std::collections::BTreeSet::new();
        for o in all_connected_orders(&g) {
            let w = WorkCounter::new();
            counts.insert(execute_order(&c, &g, &o, &w).unwrap());
        }
        assert_eq!(counts.len(), 1, "join order must not change the answer");
    }

    #[test]
    fn fresh_stats_pick_a_near_optimal_measured_order() {
        let (c, g) = chain_catalog(1.0);
        let plan = plan_multiway(&c, &g).unwrap();
        let measure = |order: &[usize]| {
            let w = WorkCounter::new();
            execute_order(&c, &g, order, &w).unwrap();
            w.snapshot().total_ops()
        };
        let planned_work = measure(&plan.order);
        let best_work = all_connected_orders(&g).iter().map(|o| measure(o)).min().unwrap();
        assert!(
            planned_work as f64 <= best_work as f64 * 1.6,
            "planned {planned_work} vs best possible {best_work}"
        );
    }

    #[test]
    fn stale_stats_pick_a_measurably_worse_order_and_order_matters() {
        let (fresh_cat, g) = chain_catalog(1.0);
        let fresh_plan = plan_multiway(&fresh_cat, &g).unwrap();
        let (stale_cat, _) = chain_catalog(0.01);
        let stale_plan = plan_multiway(&stale_cat, &g).unwrap();
        assert_ne!(fresh_plan.order, stale_plan.order, "scrambled stats must flip the order");
        // Measure against the true data.
        let measure = |order: &[usize]| {
            let w = WorkCounter::new();
            execute_order(&fresh_cat, &g, order, &w).unwrap();
            w.snapshot().total_ops()
        };
        let fresh_work = measure(&fresh_plan.order);
        let stale_work = measure(&stale_plan.order);
        // Direction: the stale plan costs strictly more on the real data.
        assert!(
            stale_work as f64 > fresh_work as f64 * 1.15,
            "stale {stale_work} vs fresh {fresh_work}"
        );
        // Stakes: the orders the fresh planner avoids are catastrophically
        // worse — join order is worth multiples on this chain.
        let worst = all_connected_orders(&g).iter().map(|o| measure(o)).max().unwrap();
        assert!(worst as f64 > fresh_work as f64 * 4.0, "worst {worst} vs fresh {fresh_work}");
    }

    #[test]
    fn disconnected_graph_rejected() {
        let mut c = Catalog::new();
        c.register("a", gen_table(10, KeyDist::Uniform { domain: 5 }, 1));
        c.register("b", gen_table(10, KeyDist::Uniform { domain: 5 }, 2));
        c.register("x", gen_table(10, KeyDist::Uniform { domain: 5 }, 3));
        let g = JoinGraph {
            tables: vec!["a".into(), "b".into(), "x".into()],
            edges: vec![(0, 1)], // x floats free
        };
        assert_eq!(plan_multiway(&c, &g), Err(MultiwayError::Disconnected));
    }

    #[test]
    fn unknown_table_rejected() {
        let c = Catalog::new();
        let g = JoinGraph { tables: vec!["a".into(), "b".into()], edges: vec![(0, 1)] };
        assert!(matches!(plan_multiway(&c, &g), Err(MultiwayError::UnknownTable(_))));
    }

    #[test]
    fn connected_orders_enumeration_respects_the_chain() {
        let (_, g) = chain_catalog(1.0);
        let orders = all_connected_orders(&g);
        // Chain of 4: orders starting at an end (2 ends × 1 way) plus
        // inner starts; every prefix must be connected.
        assert!(orders.contains(&vec![0, 1, 2, 3]));
        assert!(orders.contains(&vec![3, 2, 1, 0]));
        assert!(!orders.iter().any(|o| o[..2] == [0, 2]), "0-2 not an edge");
        for o in &orders {
            assert_eq!(o.len(), 4);
        }
    }
}
