//! # query — a relational engine with adaptive operators
//!
//! Section 2 of the paper grounds its adaptivity story in the adaptive
//! query processing literature: "pipelined hash join \[31\], hash ripple join
//! \[14\] and the Xjoin \[29\]" and "Eddies \[1\]", and Section 6 calls for "more
//! work on adaptive data operators". Scenario 3 (*intra-query adaptation*)
//! needs an optimiser that misestimates from stale statistics and a
//! mid-query re-optimisation path through safe points. This crate builds all
//! of it from scratch:
//!
//! * [`expr`] — row predicates;
//! * [`op`] — the operator model: a *pull-with-pending* interface
//!   ([`op::Poll`]) so sources can stall the way wide-area sources do, plus
//!   a shared work counter every operator charges;
//! * [`source`] — table scans and delayed/bursty sources;
//! * [`store_scan`] — scans over records persisted in the `store` engine,
//!   pulling tuples through its buffer pool (page faults surface as
//!   `unspill` work);
//! * [`basic`] — filter, project, block nested-loop join (inner/outer
//!   swappable), index nested-loop, classic build-probe hash join, sort;
//! * [`adaptive`] — the adaptive operators:
//!   [`adaptive::shj`] symmetric pipelined hash join,
//!   [`adaptive::ripple`] block ripple join with online aggregation,
//!   [`adaptive::xjoin`] a 3-stage XJoin with memory overflow and a
//!   reactive stage that works during source stalls,
//!   [`adaptive::eddy`] an eddy routing tuples through predicates with
//!   lottery scheduling;
//! * [`agg`] — grouped aggregation and the anytime [`agg::OnlineAggregate`]
//!   (the §2 online-aggregation thread);
//! * [`optimizer`] — a cost-based pre-optimiser over (possibly stale)
//!   statistics;
//! * [`multiway`] — left-deep join-order planning by dynamic programming
//!   (Scenario 3's "heavy join processing" at chain scale);
//! * [`exec`] — execution with safe points and mid-query re-optimisation
//!   (Scenario 3's "change the join's inner-loop to the outer-loop or add
//!   an index to one of the tables").

//! ## Quick example
//!
//! A symmetric hash join streaming results while a source stalls:
//!
//! ```
//! use datacomp::{ColumnType, Schema, Table, Value};
//! use query::adaptive::SymmetricHashJoin;
//! use query::op::{drain, WorkCounter};
//! use query::source::{ArrivalPattern, DelayedScan, TableScan};
//!
//! let schema = Schema::new(&[("k", ColumnType::Int)]).unwrap();
//! let mut t = Table::new(schema);
//! for i in 0..10 {
//!     t.insert(vec![Value::Int(i % 3)]).unwrap();
//! }
//! let w = WorkCounter::new();
//! let slow = ArrivalPattern { initial_delay: 5, burst: 2, gap: 3 };
//! let mut join = SymmetricHashJoin::new(
//!     Box::new(TableScan::new(t.clone(), w.clone())),
//!     Box::new(DelayedScan::new(t, slow, w.clone())),
//!     vec![0],
//!     vec![0],
//!     w,
//! );
//! let rows = drain(&mut join, 1_000);
//! assert_eq!(rows.len(), 34); // 3 keys: 4*4 + 3*3 + 3*3
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod agg;
pub mod basic;
pub mod exec;
pub mod expr;
pub mod multiway;
pub mod op;
pub mod optimizer;
pub mod source;
pub mod store_scan;
pub mod workload;

pub use exec::{AdaptiveJoinExec, ExecReport};
pub use expr::Pred;
pub use op::{Operator, Poll, WorkCounter};
pub use optimizer::{Catalog, JoinAlgo, JoinPlan, Optimizer};
pub use store_scan::{decode_row, encode_row, persist_table, StoreScan};
