//! The block ripple join — Haas & Hellerstein \[14\] — with online
//! aggregation running estimates \[15\].
//!
//! The ripple join draws blocks from each input alternately, expanding a
//! rectangle in the cross-product space and joining each new block against
//! everything seen from the other side. Its purpose is **online
//! aggregation**: at any moment the fraction of the cross product explored
//! is known, so an aggregate over the join can be *estimated* long before
//! the join completes — the paper's "ability to cope with slightly
//! out-of-date data" and "result approximation" thread.
//!
//! [`RippleJoin::estimate`] scales the running aggregate by the unexplored
//! fraction, and reports the explored fraction as a confidence proxy.

use crate::op::{Operator, Poll, WorkCounter};
use datacomp::{Row, Schema, Value};

fn key_of(row: &Row, cols: &[usize]) -> Vec<Value> {
    cols.iter().map(|&i| row[i].clone()).collect()
}

/// Which aggregate the online estimator tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// COUNT(*) over join results.
    Count,
    /// SUM(col) over join results (column index in the join output).
    Sum(usize),
}

/// A running estimate of the aggregate over the *complete* join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineEstimate {
    /// The scaled-up estimate of the final aggregate.
    pub estimate: f64,
    /// The exact aggregate over results produced so far.
    pub running: f64,
    /// Fraction of the cross-product rectangle explored, in \[0, 1\].
    pub explored: f64,
}

/// The block ripple join.
#[derive(Debug)]
pub struct RippleJoin {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    left_rows: Vec<Row>,
    right_rows: Vec<Row>,
    left_done: bool,
    right_done: bool,
    /// Rows per block drawn from a side per step.
    block: usize,
    /// Next side to expand: true = left.
    expand_left: bool,
    pending: Vec<Row>,
    agg: AggKind,
    running: f64,
    /// Known/estimated input sizes for scaling (taken as "at least what
    /// we've seen" until a side completes).
    schema: Schema,
    work: WorkCounter,
}

impl RippleJoin {
    /// A block ripple join with the given block size.
    ///
    /// # Panics
    /// If `block` is zero.
    #[must_use]
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        block: usize,
        agg: AggKind,
        work: WorkCounter,
    ) -> Self {
        assert!(block > 0, "block size must be positive");
        let schema = left.schema().join(right.schema());
        Self {
            left,
            right,
            left_keys,
            right_keys,
            left_rows: Vec::new(),
            right_rows: Vec::new(),
            left_done: false,
            right_done: false,
            block,
            expand_left: true,
            pending: Vec::new(),
            agg,
            running: 0.0,
            schema,
            work,
        }
    }

    fn record(&mut self, out: &Row) {
        self.running += match self.agg {
            AggKind::Count => 1.0,
            AggKind::Sum(col) => out[col].as_f64().unwrap_or(0.0),
        };
    }

    /// The online estimate, scaled by the unexplored cross-product area.
    ///
    /// With `l` of `L` left rows and `r` of `R` right rows seen, the
    /// explored rectangle is `l·r / (L·R)`; under the ripple sampling
    /// assumption the final aggregate ≈ running / explored. Until a side is
    /// done its total is unknown; the estimator then uses the seen count as
    /// a lower bound, making the estimate conservative.
    #[must_use]
    pub fn estimate(
        &self,
        left_total_hint: Option<usize>,
        right_total_hint: Option<usize>,
    ) -> OnlineEstimate {
        let l_seen = self.left_rows.len().max(1);
        let r_seen = self.right_rows.len().max(1);
        let l_total = if self.left_done {
            self.left_rows.len()
        } else {
            left_total_hint.unwrap_or(self.left_rows.len())
        }
        .max(1);
        let r_total = if self.right_done {
            self.right_rows.len()
        } else {
            right_total_hint.unwrap_or(self.right_rows.len())
        }
        .max(1);
        let explored = (l_seen as f64 * r_seen as f64) / (l_total as f64 * r_total as f64);
        let explored = explored.min(1.0);
        OnlineEstimate {
            estimate: if explored > 0.0 { self.running / explored } else { 0.0 },
            running: self.running,
            explored,
        }
    }

    /// Expand one side by up to `block` rows, joining each new row against
    /// the other side's seen rows. Returns whether any source progress was
    /// made (false = the polled side stalled).
    fn expand(&mut self, left_side: bool) -> bool {
        let mut progressed = false;
        for _ in 0..self.block {
            let side = if left_side { &mut self.left } else { &mut self.right };
            match side.poll() {
                Poll::Ready(row) => {
                    progressed = true;
                    self.work.moved(1);
                    let (new_keys, other_rows, other_keys) = if left_side {
                        (&self.left_keys, &self.right_rows, &self.right_keys)
                    } else {
                        (&self.right_keys, &self.left_rows, &self.left_keys)
                    };
                    let key = key_of(&row, new_keys);
                    let mut produced = Vec::new();
                    for other in other_rows {
                        self.work.compare(1);
                        if key_of(other, other_keys) == key {
                            let out = if left_side {
                                let mut o = row.clone();
                                o.extend_from_slice(other);
                                o
                            } else {
                                let mut o = other.clone();
                                o.extend_from_slice(&row);
                                o
                            };
                            produced.push(out);
                        }
                    }
                    for out in produced {
                        self.record(&out);
                        self.pending.push(out);
                    }
                    if left_side {
                        self.left_rows.push(row);
                    } else {
                        self.right_rows.push(row);
                    }
                }
                Poll::Pending => break,
                Poll::Done => {
                    if left_side {
                        self.left_done = true;
                    } else {
                        self.right_done = true;
                    }
                    progressed = true;
                    break;
                }
            }
        }
        progressed
    }
}

impl Operator for RippleJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self) -> Poll {
        loop {
            if let Some(r) = self.pending.pop() {
                return Poll::Ready(r);
            }
            if self.left_done && self.right_done {
                return Poll::Done;
            }
            // Alternate sides; skip a finished side; fall back to the other
            // side when the preferred one stalls (ripple's corner-turn).
            let prefer_left = if self.left_done {
                false
            } else if self.right_done {
                true
            } else {
                self.expand_left
            };
            self.expand_left = !prefer_left;
            let progressed = self.expand(prefer_left) || {
                let other = !prefer_left;
                let other_done = if other { self.left_done } else { self.right_done };
                !other_done && self.expand(other)
            };
            if !progressed && self.pending.is_empty() {
                return Poll::Pending;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::HashJoin;
    use crate::op::drain;
    use crate::source::TableScan;
    use datacomp::{ColumnType, Table};

    fn table(n: i64, dup_every: i64) -> Table {
        let schema = Schema::new(&[("k", ColumnType::Int), ("v", ColumnType::Int)]).unwrap();
        let mut t = Table::new(schema);
        for i in 0..n {
            t.insert(vec![Value::Int(i % dup_every), Value::Int(i)]).unwrap();
        }
        t
    }

    fn oracle(l: &Table, r: &Table) -> Vec<Row> {
        let w = WorkCounter::new();
        let mut hj = HashJoin::new(
            Box::new(TableScan::new(l.clone(), w.clone())),
            Box::new(TableScan::new(r.clone(), w.clone())),
            vec![0],
            vec![0],
            true,
            w,
        );
        let mut rows = drain(&mut hj, 10);
        rows.sort();
        rows
    }

    #[test]
    fn matches_oracle() {
        let l = table(30, 5);
        let r = table(20, 5);
        let w = WorkCounter::new();
        let mut rj = RippleJoin::new(
            Box::new(TableScan::new(l.clone(), w.clone())),
            Box::new(TableScan::new(r.clone(), w.clone())),
            vec![0],
            vec![0],
            3,
            AggKind::Count,
            w,
        );
        let mut rows = drain(&mut rj, 10);
        rows.sort();
        assert_eq!(rows, oracle(&l, &r));
    }

    #[test]
    fn count_estimate_converges_to_truth() {
        let l = table(60, 6);
        let r = table(60, 6);
        let truth = oracle(&l, &r).len() as f64;
        let w = WorkCounter::new();
        let mut rj = RippleJoin::new(
            Box::new(TableScan::new(l, w.clone())),
            Box::new(TableScan::new(r, w.clone())),
            vec![0],
            vec![0],
            4,
            AggKind::Count,
            w,
        );
        let mut last_err = f64::INFINITY;
        let mut checks = 0;
        #[allow(clippy::while_let_loop)] // Done must break; the match arms differ in kind
        loop {
            match rj.poll() {
                Poll::Ready(_) | Poll::Pending => {
                    let est = rj.estimate(Some(60), Some(60));
                    if est.explored > 0.2 {
                        let err = (est.estimate - truth).abs() / truth;
                        // Uniform key distribution: estimate within 60%
                        // once a fifth of the rectangle is explored.
                        assert!(err < 0.6, "err {err} at explored {}", est.explored);
                        last_err = err;
                        checks += 1;
                    }
                }
                Poll::Done => break,
            }
        }
        assert!(checks > 0);
        let fin = rj.estimate(Some(60), Some(60));
        assert!((fin.estimate - truth).abs() < 1e-9, "final estimate exact: {fin:?}");
        assert!((fin.explored - 1.0).abs() < 1e-9);
        assert!(last_err < 1e-9);
    }

    #[test]
    fn sum_estimate_tracks_running_total() {
        let l = table(10, 2);
        let r = table(10, 2);
        let w = WorkCounter::new();
        // SUM over the left `v` column (index 1 of the join output).
        let mut rj = RippleJoin::new(
            Box::new(TableScan::new(l, w.clone())),
            Box::new(TableScan::new(r, w.clone())),
            vec![0],
            vec![0],
            2,
            AggKind::Sum(1),
            w,
        );
        let rows = drain(&mut rj, 10);
        let truth: f64 = rows.iter().map(|r| r[1].as_f64().unwrap()).sum();
        let est = rj.estimate(None, None);
        assert!((est.running - truth).abs() < 1e-9);
        assert!((est.estimate - truth).abs() < 1e-9, "complete join: estimate == truth");
    }

    #[test]
    fn explored_fraction_is_monotone() {
        let l = table(20, 4);
        let r = table(20, 4);
        let w = WorkCounter::new();
        let mut rj = RippleJoin::new(
            Box::new(TableScan::new(l, w.clone())),
            Box::new(TableScan::new(r, w.clone())),
            vec![0],
            vec![0],
            1,
            AggKind::Count,
            w,
        );
        let mut prev = 0.0;
        loop {
            match rj.poll() {
                Poll::Done => break,
                _ => {
                    let e = rj.estimate(Some(20), Some(20)).explored;
                    assert!(e >= prev - 1e-12);
                    prev = e;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_rejected() {
        let w = WorkCounter::new();
        let t = table(1, 1);
        let _ = RippleJoin::new(
            Box::new(TableScan::new(t.clone(), w.clone())),
            Box::new(TableScan::new(t, w.clone())),
            vec![0],
            vec![0],
            0,
            AggKind::Count,
            w,
        );
    }
}
