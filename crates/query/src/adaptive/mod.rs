//! Adaptive operators — the Section 2 lineage the paper builds on.
//!
//! * [`shj`] — the pipelined (symmetric) hash join of Wilschut & Apers \[31\];
//! * [`ripple`] — the (block) ripple join of Haas & Hellerstein \[14\], with
//!   online-aggregation running estimates \[15\];
//! * [`xjoin`] — Urhan & Franklin's XJoin \[29\]: symmetric hashing with
//!   memory overflow to disk partitions and a *reactive* stage that joins
//!   spilled partitions while both inputs stall;
//! * [`eddy`] — Avnur & Hellerstein's eddies \[1\]: per-tuple routing through
//!   a predicate pool with lottery scheduling.

pub mod eddy;
pub mod ripple;
pub mod shj;
pub mod xjoin;

pub use eddy::Eddy;
pub use ripple::RippleJoin;
pub use shj::SymmetricHashJoin;
pub use xjoin::XJoin;
