//! The pipelined (symmetric) hash join — Wilschut & Apers' dataflow join,
//! reference \[31\] of the paper.
//!
//! Both inputs are hashed as they arrive; each arriving tuple is inserted
//! into its side's table and immediately probed against the other side's.
//! Results therefore stream from the first moment both sides have matching
//! tuples — no build/probe barrier — and a stall on one input never blocks
//! progress on the other. That is exactly the property the paper's
//! inter-device queries need on wireless links.

use crate::op::{Operator, Poll, WorkCounter};
use datacomp::{Row, Schema, Value};
use std::collections::HashMap;

fn key_of(row: &Row, cols: &[usize]) -> Vec<Value> {
    cols.iter().map(|&i| row[i].clone()).collect()
}

/// The symmetric hash join.
#[derive(Debug)]
pub struct SymmetricHashJoin {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    left_table: HashMap<Vec<Value>, Vec<Row>>,
    right_table: HashMap<Vec<Value>, Vec<Row>>,
    left_done: bool,
    right_done: bool,
    pending: Vec<Row>,
    /// Alternate which side we poll first, for fairness.
    poll_left_first: bool,
    schema: Schema,
    work: WorkCounter,
}

impl SymmetricHashJoin {
    /// Join `left ⋈ right` on `left_keys = right_keys`.
    #[must_use]
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        work: WorkCounter,
    ) -> Self {
        let schema = left.schema().join(right.schema());
        Self {
            left,
            right,
            left_keys,
            right_keys,
            left_table: HashMap::new(),
            right_table: HashMap::new(),
            left_done: false,
            right_done: false,
            pending: Vec::new(),
            poll_left_first: true,
            schema,
            work,
        }
    }

    /// Tuples currently held in memory (both hash tables).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.left_table.values().map(Vec::len).sum::<usize>()
            + self.right_table.values().map(Vec::len).sum::<usize>()
    }

    fn absorb(&mut self, from_left: bool, row: Row) {
        self.work.hash_insert();
        self.work.hash_probe(1);
        if from_left {
            let key = key_of(&row, &self.left_keys);
            if let Some(matches) = self.right_table.get(&key) {
                for r in matches {
                    let mut out = row.clone();
                    out.extend_from_slice(r);
                    self.pending.push(out);
                }
            }
            self.left_table.entry(key).or_default().push(row);
        } else {
            let key = key_of(&row, &self.right_keys);
            if let Some(matches) = self.left_table.get(&key) {
                for l in matches {
                    let mut out = l.clone();
                    out.extend_from_slice(&row);
                    self.pending.push(out);
                }
            }
            self.right_table.entry(key).or_default().push(row);
        }
    }
}

impl Operator for SymmetricHashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self) -> Poll {
        loop {
            if let Some(r) = self.pending.pop() {
                self.work.moved(1);
                return Poll::Ready(r);
            }
            if self.left_done && self.right_done {
                return Poll::Done;
            }
            let mut progressed = false;
            let order = if self.poll_left_first { [true, false] } else { [false, true] };
            self.poll_left_first = !self.poll_left_first;
            for from_left in order {
                let done = if from_left { self.left_done } else { self.right_done };
                if done {
                    continue;
                }
                let side = if from_left { &mut self.left } else { &mut self.right };
                match side.poll() {
                    Poll::Ready(row) => {
                        self.absorb(from_left, row);
                        progressed = true;
                    }
                    Poll::Pending => {}
                    Poll::Done => {
                        if from_left {
                            self.left_done = true;
                        } else {
                            self.right_done = true;
                        }
                        progressed = true;
                    }
                }
                if !self.pending.is_empty() {
                    break;
                }
            }
            if !progressed && self.pending.is_empty() {
                return Poll::Pending;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::HashJoin;
    use crate::op::drain;
    use crate::source::{ArrivalPattern, DelayedScan, TableScan};
    use datacomp::{ColumnType, Table};

    fn table(pairs: &[(i64, i64)]) -> Table {
        let schema = Schema::new(&[("k", ColumnType::Int), ("v", ColumnType::Int)]).unwrap();
        let mut t = Table::new(schema);
        for (k, v) in pairs {
            t.insert(vec![Value::Int(*k), Value::Int(*v)]).unwrap();
        }
        t
    }

    fn left() -> Table {
        table(&[(1, 100), (2, 200), (2, 201), (3, 300)])
    }

    fn right() -> Table {
        table(&[(2, 9000), (3, 9001), (3, 9002), (4, 9003)])
    }

    /// left ⋈ right on k: keys 2 (2×1) and 3 (1×2) → 4 results.
    const EXPECTED: usize = 4;

    #[test]
    fn matches_static_hash_join_oracle() {
        let w = WorkCounter::new();
        let mut shj = SymmetricHashJoin::new(
            Box::new(TableScan::new(left(), w.clone())),
            Box::new(TableScan::new(right(), w.clone())),
            vec![0],
            vec![0],
            w,
        );
        let mut got = drain(&mut shj, 10);
        got.sort();
        let w2 = WorkCounter::new();
        let mut hj = HashJoin::new(
            Box::new(TableScan::new(left(), w2.clone())),
            Box::new(TableScan::new(right(), w2.clone())),
            vec![0],
            vec![0],
            true,
            w2,
        );
        let mut oracle = drain(&mut hj, 10);
        oracle.sort();
        assert_eq!(got.len(), EXPECTED);
        assert_eq!(got, oracle);
    }

    #[test]
    fn produces_results_before_either_side_finishes() {
        let w = WorkCounter::new();
        let mut shj = SymmetricHashJoin::new(
            Box::new(TableScan::new(left(), w.clone())),
            Box::new(TableScan::new(right(), w.clone())),
            vec![0],
            vec![0],
            w,
        );
        // Poll until the first result; count how many source tuples were
        // consumed (buffered) at that moment.
        let mut polls = 0;
        loop {
            polls += 1;
            match shj.poll() {
                Poll::Ready(_) => break,
                Poll::Pending => {}
                Poll::Done => panic!("join must produce {EXPECTED} rows"),
            }
            assert!(polls < 100);
        }
        assert!(
            shj.buffered() < left().len() + right().len(),
            "first result must arrive before both inputs are fully consumed"
        );
    }

    #[test]
    fn stalled_side_does_not_block_the_other() {
        let w = WorkCounter::new();
        // Right side stalls for 50 polls before its first tuple; left is
        // immediate. SHJ keeps absorbing left tuples during the stall.
        let slow = ArrivalPattern { initial_delay: 50, burst: u64::MAX, gap: 0 };
        let mut shj = SymmetricHashJoin::new(
            Box::new(TableScan::new(left(), w.clone())),
            Box::new(DelayedScan::new(right(), slow, w.clone())),
            vec![0],
            vec![0],
            w,
        );
        // After a handful of polls (≪ 50), all 4 left tuples are in memory.
        for _ in 0..6 {
            let _ = shj.poll();
        }
        assert!(shj.buffered() >= left().len());
        let got = drain(&mut shj, 200);
        assert_eq!(got.len(), EXPECTED);
    }

    #[test]
    fn empty_sides() {
        let w = WorkCounter::new();
        let empty = Table::new(left().schema().clone());
        let mut shj = SymmetricHashJoin::new(
            Box::new(TableScan::new(empty, w.clone())),
            Box::new(TableScan::new(right(), w.clone())),
            vec![0],
            vec![0],
            w,
        );
        assert!(drain(&mut shj, 10).is_empty());
    }

    #[test]
    fn duplicate_heavy_keys() {
        let w = WorkCounter::new();
        let l = table(&[(7, 1), (7, 2), (7, 3)]);
        let r = table(&[(7, 4), (7, 5)]);
        let mut shj = SymmetricHashJoin::new(
            Box::new(TableScan::new(l, w.clone())),
            Box::new(TableScan::new(r, w.clone())),
            vec![0],
            vec![0],
            w,
        );
        assert_eq!(drain(&mut shj, 10).len(), 6);
    }
}
