//! An eddy — Avnur & Hellerstein \[1\]: continuously adaptive routing of
//! tuples through a pool of operators.
//!
//! This eddy routes tuples through a pool of *selection* predicates, the
//! setting where the routing policy is cleanly observable. Each tuple
//! carries a done-set; the eddy picks the next predicate by the classic
//! rank rule — highest observed drop-rate per unit cost first — with
//! estimates updated after **every** evaluation. When the data's
//! characteristics drift mid-stream (the paper's "query's answer to change
//! as requirements change dynamically at run time" world), the routing
//! order re-sorts itself without replanning.
//!
//! The original eddy uses a randomised lottery; we use the deterministic
//! limit of the same idea (route to the current best rank) so simulations
//! are exactly reproducible. The adaptation dynamics — cheap and selective
//! predicates earn earlier positions as evidence accumulates — are the
//! same.

use crate::expr::Pred;
use crate::op::{Operator, Poll, WorkCounter};
use datacomp::Schema;

/// One predicate in the eddy's pool.
#[derive(Debug, Clone)]
pub struct EddyPred {
    /// The predicate.
    pub pred: Pred,
    /// Relative evaluation cost (work units per evaluation).
    pub cost: u64,
    seen: u64,
    dropped: u64,
}

impl EddyPred {
    /// A pool entry.
    #[must_use]
    pub fn new(pred: Pred, cost: u64) -> Self {
        Self { pred, cost, seen: 0, dropped: 0 }
    }

    /// Observed drop rate with optimistic prior (unseen predicates look
    /// 50/50 so they get tried early).
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        (self.dropped as f64 + 1.0) / (self.seen as f64 + 2.0)
    }

    /// The routing rank: drop-rate per unit cost, higher = route earlier.
    #[must_use]
    pub fn rank(&self) -> f64 {
        self.drop_rate() / self.cost.max(1) as f64
    }

    /// Evaluations so far.
    #[must_use]
    pub fn evaluations(&self) -> u64 {
        self.seen
    }
}

/// The eddy operator.
#[derive(Debug)]
pub struct Eddy {
    source: Box<dyn Operator>,
    pool: Vec<EddyPred>,
    work: WorkCounter,
}

impl Eddy {
    /// An eddy filtering `source` through `pool`.
    #[must_use]
    pub fn new(source: Box<dyn Operator>, pool: Vec<EddyPred>, work: WorkCounter) -> Self {
        Self { source, pool, work }
    }

    /// The pool, with its live statistics.
    #[must_use]
    pub fn pool(&self) -> &[EddyPred] {
        &self.pool
    }

    /// The indices of pool predicates in the order the eddy would route a
    /// fresh tuple right now.
    #[must_use]
    pub fn routing_order(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.pool.len()).collect();
        idx.sort_by(|&a, &b| self.pool[b].rank().total_cmp(&self.pool[a].rank()).then(a.cmp(&b)));
        idx
    }

    /// Total work units spent on predicate evaluation.
    #[must_use]
    pub fn eval_work(&self) -> u64 {
        self.pool.iter().map(|p| p.seen * p.cost).sum()
    }
}

impl Operator for Eddy {
    fn schema(&self) -> &Schema {
        self.source.schema()
    }

    fn poll(&mut self) -> Poll {
        loop {
            let row = match self.source.poll() {
                Poll::Ready(r) => r,
                other => return other,
            };
            self.work.moved(1);
            let mut done = vec![false; self.pool.len()];
            let mut dropped = false;
            for _ in 0..self.pool.len() {
                // Route to the best-ranked not-yet-applied predicate.
                let next = (0..self.pool.len())
                    .filter(|&i| !done[i])
                    .max_by(|&a, &b| {
                        self.pool[a].rank().total_cmp(&self.pool[b].rank()).then(b.cmp(&a))
                    })
                    .expect("at least one predicate remains");
                done[next] = true;
                let p = &mut self.pool[next];
                p.seen += 1;
                self.work.compare(p.cost);
                if !p.pred.eval(&row) {
                    p.dropped += 1;
                    dropped = true;
                    break;
                }
            }
            if !dropped {
                return Poll::Ready(row);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::drain;
    use crate::source::TableScan;
    use datacomp::{ColumnType, Table, Value};

    /// Column 0 in [0, 100); column 1 in [0, 100).
    fn table(rows: &[(i64, i64)]) -> Table {
        let schema = Schema::new(&[("a", ColumnType::Int), ("b", ColumnType::Int)]).unwrap();
        let mut t = Table::new(schema);
        for (a, b) in rows {
            t.insert(vec![Value::Int(*a), Value::Int(*b)]).unwrap();
        }
        t
    }

    fn uniform(n: i64) -> Table {
        table(&(0..n).map(|i| (i % 100, (i * 7) % 100)).collect::<Vec<_>>())
    }

    #[test]
    fn output_equals_conjunctive_filter() {
        let t = uniform(500);
        let p1 = Pred::lt(0, Value::Int(50));
        let p2 = Pred::gt(1, Value::Int(20));
        let w = WorkCounter::new();
        let mut eddy = Eddy::new(
            Box::new(TableScan::new(t.clone(), w.clone())),
            vec![EddyPred::new(p1.clone(), 1), EddyPred::new(p2.clone(), 1)],
            w,
        );
        let got = drain(&mut eddy, 0);
        let expected: Vec<_> =
            t.rows().iter().filter(|r| p1.eval(r) && p2.eval(r)).cloned().collect();
        assert_eq!(got, expected, "eddy must not change the result");
    }

    #[test]
    fn routes_to_the_selective_predicate_first() {
        // p_selective drops 99%; p_lax drops 1%. After a warm-up the eddy
        // must evaluate p_selective far more often than p_lax (tuples die
        // at the first stop).
        let t = uniform(2000);
        let selective = Pred::lt(0, Value::Int(1)); // ~1% pass
        let lax = Pred::lt(0, Value::Int(99)); // ~99% pass
        let w = WorkCounter::new();
        let mut eddy = Eddy::new(
            Box::new(TableScan::new(t, w.clone())),
            vec![EddyPred::new(lax, 1), EddyPred::new(selective, 1)],
            w,
        );
        let _ = drain(&mut eddy, 0);
        let evals: Vec<u64> = eddy.pool().iter().map(EddyPred::evaluations).collect();
        assert!(
            evals[1] > evals[0] * 5,
            "selective pred should see most tuples: lax={} selective={}",
            evals[0],
            evals[1]
        );
        assert_eq!(eddy.routing_order(), vec![1, 0]);
    }

    #[test]
    fn adapts_when_data_drifts_mid_stream() {
        // Phase 1 (1000 rows): 90% a=0 (pred A drops), 10% a=50 (both
        // pass). Phase 2 (1000 rows): 90% a=99 (pred B drops), 10% a=50.
        // The eddy must flip its routing order when the data drifts.
        let mut rows: Vec<(i64, i64)> =
            (0..1000).map(|i| (if i % 10 == 0 { 50 } else { 0 }, 0)).collect();
        rows.extend((0..1000).map(|i| (if i % 10 == 0 { 50 } else { 99 }, 0)));
        let t = table(&rows);
        let pred_a = Pred::Not(Box::new(Pred::eq(0, Value::Int(0)))); // drops phase-1 bulk
        let pred_b = Pred::Not(Box::new(Pred::eq(0, Value::Int(99)))); // drops phase-2 bulk
        let w = WorkCounter::new();
        let mut eddy = Eddy::new(
            Box::new(TableScan::new(t, w.clone())),
            vec![EddyPred::new(pred_a, 1), EddyPred::new(pred_b, 1)],
            w,
        );
        // Phase 1 yields exactly 100 passing rows; consume them.
        for _ in 0..100 {
            assert!(matches!(eddy.poll(), Poll::Ready(_)));
        }
        assert_eq!(eddy.routing_order()[0], 0, "phase 1: pred A leads (it drops 90%)");
        let rest = drain(&mut eddy, 0);
        assert_eq!(rest.len(), 100, "phase 2 passes its 10%");
        assert_eq!(eddy.routing_order()[0], 1, "after the drift, pred B must have taken the lead");
    }

    #[test]
    fn cost_weighting_prefers_cheap_predicates() {
        // Equal selectivity, very different costs: the cheap one goes first.
        let t = uniform(1000);
        let p = Pred::lt(0, Value::Int(50));
        let w = WorkCounter::new();
        let mut eddy = Eddy::new(
            Box::new(TableScan::new(t, w.clone())),
            vec![EddyPred::new(p.clone(), 100), EddyPred::new(p, 1)],
            w,
        );
        let _ = drain(&mut eddy, 0);
        assert_eq!(eddy.routing_order()[0], 1);
        let evals: Vec<u64> = eddy.pool().iter().map(EddyPred::evaluations).collect();
        assert!(evals[1] > evals[0]);
    }

    #[test]
    fn eddy_beats_a_bad_fixed_order() {
        // Fixed bad order: lax first (evaluates both preds on ~every tuple).
        let t = uniform(2000);
        let selective = Pred::lt(0, Value::Int(1));
        let lax = Pred::lt(0, Value::Int(99));
        // Fixed order cost: lax on all, selective on ~99%.
        let fixed_cost: u64 = {
            let mut evals = 0u64;
            for r in t.rows() {
                evals += 1;
                if lax.eval(r) {
                    evals += 1;
                }
            }
            evals
        };
        let w = WorkCounter::new();
        let mut eddy = Eddy::new(
            Box::new(TableScan::new(t, w.clone())),
            vec![EddyPred::new(lax, 1), EddyPred::new(selective, 1)],
            w,
        );
        let _ = drain(&mut eddy, 0);
        let eddy_cost = eddy.eval_work();
        assert!(
            (eddy_cost as f64) < fixed_cost as f64 * 0.65,
            "eddy {eddy_cost} vs fixed {fixed_cost}"
        );
    }
}
