//! XJoin — Urhan & Franklin \[29\]: a pipelined hash join for wide-area
//! sources that (a) degrades gracefully when memory is short by spilling
//! hash buckets to disk, and (b) **uses source stalls productively**: when
//! both inputs are silent, a *reactive* stage joins spilled tuples against
//! memory instead of idling. A final *cleanup* stage completes the join
//! from disk after both sources finish.
//!
//! Duplicate prevention: the original XJoin tracks timestamp intervals per
//! tuple; we use the simpler (documented) equivalent of tagging every tuple
//! with an arrival sequence number and memoising emitted `(left_seq,
//! right_seq)` pairs. It is exact, at memory cost proportional to the
//! result size — fine at simulation scale, and it keeps the three-stage
//! structure (the part the paper's argument needs) faithful.

use crate::op::{Operator, Poll, WorkCounter};
use datacomp::{Row, Schema, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// Number of hash buckets (partitions) per side.
const BUCKETS: usize = 16;

fn key_of(row: &Row, cols: &[usize]) -> Vec<Value> {
    cols.iter().map(|&i| row[i].clone()).collect()
}

fn bucket_of(key: &[Value]) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % BUCKETS
}

/// A sequence-tagged tuple.
#[derive(Debug, Clone)]
struct Tagged {
    seq: u64,
    row: Row,
}

/// One side's state: in-memory buckets and spilled (disk) buckets.
#[derive(Debug, Default)]
struct Side {
    mem: Vec<Vec<Tagged>>,
    disk: Vec<Vec<Tagged>>,
    mem_count: usize,
    next_seq: u64,
    done: bool,
}

impl Side {
    fn new() -> Self {
        Side {
            mem: (0..BUCKETS).map(|_| Vec::new()).collect(),
            disk: (0..BUCKETS).map(|_| Vec::new()).collect(),
            mem_count: 0,
            next_seq: 0,
            done: false,
        }
    }

    /// Spill the largest memory bucket to disk; returns tuples spilled.
    fn spill_largest(&mut self) -> u64 {
        let (idx, _) =
            self.mem.iter().enumerate().max_by_key(|(_, b)| b.len()).expect("buckets exist");
        let moved = std::mem::take(&mut self.mem[idx]);
        let n = moved.len() as u64;
        self.mem_count -= moved.len();
        self.disk[idx].extend(moved);
        n
    }
}

/// The XJoin operator.
#[derive(Debug)]
pub struct XJoin {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    sides: [Side; 2],
    /// Per-side memory budget in tuples.
    mem_budget: usize,
    emitted: HashSet<(u64, u64)>,
    pending: Vec<Row>,
    /// Round-robin cursor for the reactive stage.
    reactive_cursor: usize,
    cleanup_done: bool,
    stats: XJoinStats,
    schema: Schema,
    work: WorkCounter,
}

/// Observable stage statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XJoinStats {
    /// Results produced by the memory-to-memory stage.
    pub stage1_results: u64,
    /// Results produced by the reactive (stall-time) stage.
    pub stage2_results: u64,
    /// Results produced by the cleanup stage.
    pub stage3_results: u64,
    /// Tuples spilled to disk.
    pub spilled: u64,
    /// Reactive-stage activations.
    pub reactive_runs: u64,
}

impl XJoin {
    /// An XJoin with a per-side memory budget of `mem_budget` tuples.
    ///
    /// # Panics
    /// If `mem_budget` is zero.
    #[must_use]
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        mem_budget: usize,
        work: WorkCounter,
    ) -> Self {
        assert!(mem_budget > 0, "memory budget must be positive");
        let schema = left.schema().join(right.schema());
        Self {
            left,
            right,
            left_keys,
            right_keys,
            sides: [Side::new(), Side::new()],
            mem_budget,
            emitted: HashSet::new(),
            pending: Vec::new(),
            reactive_cursor: 0,
            cleanup_done: false,
            stats: XJoinStats::default(),
            schema,
            work,
        }
    }

    /// Stage statistics.
    #[must_use]
    pub fn stats(&self) -> XJoinStats {
        self.stats
    }

    fn keys(&self, side: usize) -> &[usize] {
        if side == 0 {
            &self.left_keys
        } else {
            &self.right_keys
        }
    }

    fn emit(&mut self, lseq: u64, lrow: &Row, rseq: u64, rrow: &Row) -> bool {
        if self.emitted.insert((lseq, rseq)) {
            let mut out = lrow.clone();
            out.extend_from_slice(rrow);
            self.pending.push(out);
            true
        } else {
            false
        }
    }

    /// Stage 1: absorb an arriving tuple on `side`, probing the other
    /// side's memory bucket.
    fn absorb(&mut self, side: usize, row: Row) {
        let seq = self.sides[side].next_seq;
        self.sides[side].next_seq += 1;
        let key = key_of(&row, self.keys(side));
        let b = bucket_of(&key);
        self.work.hash_insert();
        self.work.hash_probe(1);
        let other = 1 - side;
        let other_keys: Vec<usize> = self.keys(other).to_vec();
        let matches: Vec<(u64, Row)> = self.sides[other].mem[b]
            .iter()
            .filter(|t| key_of(&t.row, &other_keys) == key)
            .map(|t| (t.seq, t.row.clone()))
            .collect();
        self.work.compare(self.sides[other].mem[b].len() as u64);
        for (oseq, orow) in matches {
            let ok = if side == 0 {
                self.emit(seq, &row, oseq, &orow)
            } else {
                self.emit(oseq, &orow, seq, &row)
            };
            if ok {
                self.stats.stage1_results += 1;
            }
        }
        self.sides[side].mem[b].push(Tagged { seq, row });
        self.sides[side].mem_count += 1;
        if self.sides[side].mem_count > self.mem_budget {
            let spilled = self.sides[side].spill_largest();
            self.work.spill(spilled);
            self.stats.spilled += spilled;
        }
    }

    /// Stage 2 (reactive): probe one spilled bucket of one side against the
    /// other side's memory. Returns whether any result was produced.
    fn reactive(&mut self) -> bool {
        self.stats.reactive_runs += 1;
        let mut produced = false;
        for step in 0..BUCKETS * 2 {
            let cursor = (self.reactive_cursor + step) % (BUCKETS * 2);
            let side = cursor % 2;
            let b = cursor / 2;
            if self.sides[side].disk[b].is_empty() || self.sides[1 - side].mem[b].is_empty() {
                continue;
            }
            let other = 1 - side;
            let side_keys: Vec<usize> = self.keys(side).to_vec();
            let other_keys: Vec<usize> = self.keys(other).to_vec();
            let disk: Vec<Tagged> = self.sides[side].disk[b].clone();
            self.work.unspill(disk.len() as u64);
            let mem: Vec<Tagged> = self.sides[other].mem[b].clone();
            for d in &disk {
                let dkey = key_of(&d.row, &side_keys);
                for m in &mem {
                    self.work.compare(1);
                    if key_of(&m.row, &other_keys) == dkey {
                        let ok = if side == 0 {
                            self.emit(d.seq, &d.row, m.seq, &m.row)
                        } else {
                            self.emit(m.seq, &m.row, d.seq, &d.row)
                        };
                        if ok {
                            self.stats.stage2_results += 1;
                            produced = true;
                        }
                    }
                }
            }
            self.reactive_cursor = (cursor + 1) % (BUCKETS * 2);
            if produced {
                break;
            }
        }
        produced
    }

    /// Stage 3 (cleanup): both sources done — join everything bucket by
    /// bucket (mem ∪ disk on each side), relying on the memo for dedup.
    fn cleanup(&mut self) {
        let left_keys = self.left_keys.clone();
        let right_keys = self.right_keys.clone();
        for b in 0..BUCKETS {
            let lefts: Vec<Tagged> =
                self.sides[0].mem[b].iter().chain(self.sides[0].disk[b].iter()).cloned().collect();
            let rights: Vec<Tagged> =
                self.sides[1].mem[b].iter().chain(self.sides[1].disk[b].iter()).cloned().collect();
            self.work.unspill(self.sides[0].disk[b].len() as u64);
            self.work.unspill(self.sides[1].disk[b].len() as u64);
            for l in &lefts {
                let lkey = key_of(&l.row, &left_keys);
                for r in &rights {
                    self.work.compare(1);
                    if key_of(&r.row, &right_keys) == lkey
                        && self.emit(l.seq, &l.row, r.seq, &r.row)
                    {
                        self.stats.stage3_results += 1;
                    }
                }
            }
        }
        self.cleanup_done = true;
    }
}

impl Operator for XJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self) -> Poll {
        loop {
            if let Some(r) = self.pending.pop() {
                self.work.moved(1);
                return Poll::Ready(r);
            }
            if self.sides[0].done && self.sides[1].done {
                if self.cleanup_done {
                    return Poll::Done;
                }
                self.cleanup();
                continue;
            }
            // Stage 1: try each live source once.
            let mut stalled = 0;
            for side in 0..2 {
                if self.sides[side].done {
                    continue;
                }
                let poll = if side == 0 { self.left.poll() } else { self.right.poll() };
                match poll {
                    Poll::Ready(row) => self.absorb(side, row),
                    Poll::Pending => stalled += 1,
                    Poll::Done => self.sides[side].done = true,
                }
            }
            let live = (0..2).filter(|&s| !self.sides[s].done).count();
            if stalled == live && live > 0 && self.pending.is_empty() {
                // Both live sources stalled: reactive stage.
                if !self.reactive() {
                    return Poll::Pending;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::HashJoin;
    use crate::op::drain;
    use crate::source::{ArrivalPattern, DelayedScan, TableScan};
    use datacomp::{ColumnType, Table};

    fn table(n: i64, dup_every: i64) -> Table {
        let schema = Schema::new(&[("k", ColumnType::Int), ("v", ColumnType::Int)]).unwrap();
        let mut t = Table::new(schema);
        for i in 0..n {
            t.insert(vec![Value::Int(i % dup_every), Value::Int(i)]).unwrap();
        }
        t
    }

    fn oracle(l: &Table, r: &Table) -> Vec<Row> {
        let w = WorkCounter::new();
        let mut hj = HashJoin::new(
            Box::new(TableScan::new(l.clone(), w.clone())),
            Box::new(TableScan::new(r.clone(), w.clone())),
            vec![0],
            vec![0],
            true,
            w,
        );
        let mut rows = drain(&mut hj, 10);
        rows.sort();
        rows
    }

    fn run_xjoin(
        l: &Table,
        r: &Table,
        budget: usize,
        pat: Option<ArrivalPattern>,
    ) -> (Vec<Row>, XJoinStats) {
        let w = WorkCounter::new();
        let left: Box<dyn Operator> = Box::new(TableScan::new(l.clone(), w.clone()));
        let right: Box<dyn Operator> = match pat {
            Some(p) => Box::new(DelayedScan::new(r.clone(), p, w.clone())),
            None => Box::new(TableScan::new(r.clone(), w.clone())),
        };
        let mut xj = XJoin::new(left, right, vec![0], vec![0], budget, w);
        let mut rows = drain(&mut xj, 100_000);
        rows.sort();
        (rows, xj.stats())
    }

    #[test]
    fn matches_oracle_with_ample_memory() {
        let (l, r) = (table(50, 7), table(40, 7));
        let (rows, stats) = run_xjoin(&l, &r, 10_000, None);
        assert_eq!(rows, oracle(&l, &r));
        assert_eq!(stats.spilled, 0);
        assert_eq!(stats.stage3_results, 0, "everything resolved in stage 1");
    }

    #[test]
    fn matches_oracle_under_memory_pressure() {
        let (l, r) = (table(200, 13), table(150, 13));
        let (rows, stats) = run_xjoin(&l, &r, 8, None);
        assert_eq!(rows, oracle(&l, &r), "spilling must not lose or duplicate results");
        assert!(stats.spilled > 0, "budget of 8 over 350 tuples must spill");
        assert!(stats.stage3_results > 0, "cleanup must recover disk-disk matches");
    }

    #[test]
    fn reactive_stage_works_during_stalls() {
        let (l, r) = (table(120, 9), table(120, 9));
        // Right source: long initial stall then bursts with long gaps.
        let pat = ArrivalPattern { initial_delay: 40, burst: 10, gap: 30 };
        let (rows, stats) = run_xjoin(&l, &r, 16, Some(pat));
        assert_eq!(rows, oracle(&l, &r));
        assert!(stats.reactive_runs > 0, "stalls must trigger the reactive stage");
        assert!(
            stats.stage2_results > 0,
            "reactive stage should produce results from spilled buckets: {stats:?}"
        );
    }

    #[test]
    fn no_duplicates_across_stages() {
        let (l, r) = (table(80, 4), table(80, 4));
        let pat = ArrivalPattern { initial_delay: 20, burst: 5, gap: 10 };
        let (rows, _) = run_xjoin(&l, &r, 6, Some(pat));
        let set: std::collections::BTreeSet<&Row> = rows.iter().collect();
        assert_eq!(set.len(), rows.len(), "duplicate results detected");
        assert_eq!(rows, oracle(&l, &r));
    }

    #[test]
    fn empty_input_is_fine() {
        let l = table(0, 1);
        let r = table(10, 2);
        let (rows, _) = run_xjoin(&l, &r, 4, None);
        assert!(rows.is_empty());
    }

    #[test]
    #[should_panic(expected = "memory budget must be positive")]
    fn zero_budget_rejected() {
        let w = WorkCounter::new();
        let t = table(1, 1);
        let _ = XJoin::new(
            Box::new(TableScan::new(t.clone(), w.clone())),
            Box::new(TableScan::new(t, w.clone())),
            vec![0],
            vec![0],
            0,
            w,
        );
    }
}
