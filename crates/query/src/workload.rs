//! Synthetic workload generation for the benches — the substitute for the
//! "real relational datasets" the paper's scenarios assume.

use adm_rng::Pcg32;
use datacomp::{ColumnType, Schema, Table, Value};

/// Key distribution for generated tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Keys uniform over `0..domain`.
    Uniform {
        /// Key domain size.
        domain: i64,
    },
    /// Zipf-like over `0..domain` with exponent `s` (heavier skew for
    /// larger `s`); implemented by inverse-CDF over precomputed weights.
    Zipf {
        /// Key domain size.
        domain: i64,
        /// Skew exponent.
        s: f64,
    },
}

/// Generate a two-column `(k, v)` table with `rows` rows and the given key
/// distribution, deterministically from `seed`.
///
/// # Panics
/// If the distribution domain is not positive.
#[must_use]
pub fn gen_table(rows: usize, dist: KeyDist, seed: u64) -> Table {
    let schema =
        Schema::new(&[("k", ColumnType::Int), ("v", ColumnType::Int)]).expect("static schema");
    let mut t = Table::new(schema);
    let mut rng = Pcg32::new(seed);
    let sampler: Box<dyn FnMut(&mut Pcg32) -> i64> = match dist {
        KeyDist::Uniform { domain } => {
            assert!(domain > 0);
            Box::new(move |r| r.range_i64(0, domain))
        }
        KeyDist::Zipf { domain, s } => {
            assert!(domain > 0);
            let weights: Vec<f64> = (1..=domain).map(|k| 1.0 / (k as f64).powf(s)).collect();
            let total: f64 = weights.iter().sum();
            let mut cdf = Vec::with_capacity(weights.len());
            let mut acc = 0.0;
            for w in &weights {
                acc += w / total;
                cdf.push(acc);
            }
            Box::new(move |r| {
                let u = r.f64();
                cdf.partition_point(|&c| c < u) as i64
            })
        }
    };
    let mut sampler = sampler;
    for i in 0..rows {
        let k = sampler(&mut rng);
        t.insert(vec![Value::Int(k), Value::Int(i as i64)]).expect("schema matches");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn deterministic_by_seed() {
        let a = gen_table(100, KeyDist::Uniform { domain: 10 }, 42);
        let b = gen_table(100, KeyDist::Uniform { domain: 10 }, 42);
        let c = gen_table(100, KeyDist::Uniform { domain: 10 }, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_covers_domain() {
        let t = gen_table(1000, KeyDist::Uniform { domain: 5 }, 7);
        let mut seen: BTreeMap<i64, usize> = BTreeMap::new();
        for r in t.rows() {
            *seen.entry(r[0].as_i64().unwrap()).or_default() += 1;
        }
        assert_eq!(seen.len(), 5);
        for (&k, &n) in &seen {
            assert!((0..5).contains(&k));
            assert!(n > 100, "key {k} underrepresented: {n}");
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let t = gen_table(5000, KeyDist::Zipf { domain: 100, s: 1.2 }, 7);
        let mut counts: BTreeMap<i64, usize> = BTreeMap::new();
        for r in t.rows() {
            *counts.entry(r[0].as_i64().unwrap()).or_default() += 1;
        }
        let head = counts.get(&0).copied().unwrap_or(0);
        let tail: usize = counts.iter().filter(|(&k, _)| k >= 50).map(|(_, &n)| n).sum();
        assert!(head > tail, "head {head} should outweigh the whole tail {tail}");
    }
}
