//! Row predicates.

use datacomp::{Row, Value};

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl CmpOp {
    /// Apply to two values. Comparisons involving `Null` are false (SQL-ish
    /// three-valued logic collapsed to false).
    #[must_use]
    pub fn apply(self, a: &Value, b: &Value) -> bool {
        if a.is_null() || b.is_null() {
            return false;
        }
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// A predicate over a row.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// Always true.
    True,
    /// Compare column `col` against a constant.
    Cmp {
        /// Column index.
        col: usize,
        /// Operator.
        op: CmpOp,
        /// Constant.
        value: Value,
    },
    /// Compare two columns.
    ColCmp {
        /// Left column index.
        left: usize,
        /// Operator.
        op: CmpOp,
        /// Right column index.
        right: usize,
    },
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// Convenience: `col == value`.
    #[must_use]
    pub fn eq(col: usize, value: Value) -> Self {
        Pred::Cmp { col, op: CmpOp::Eq, value }
    }

    /// Convenience: `col < value`.
    #[must_use]
    pub fn lt(col: usize, value: Value) -> Self {
        Pred::Cmp { col, op: CmpOp::Lt, value }
    }

    /// Convenience: `col > value`.
    #[must_use]
    pub fn gt(col: usize, value: Value) -> Self {
        Pred::Cmp { col, op: CmpOp::Gt, value }
    }

    /// Evaluate against a row.
    ///
    /// # Panics
    /// If a column index is out of range (plans are built against schemas).
    #[must_use]
    pub fn eval(&self, row: &Row) -> bool {
        match self {
            Pred::True => true,
            Pred::Cmp { col, op, value } => op.apply(&row[*col], value),
            Pred::ColCmp { left, op, right } => op.apply(&row[*left], &row[*right]),
            Pred::And(a, b) => a.eval(row) && b.eval(row),
            Pred::Or(a, b) => a.eval(row) || b.eval(row),
            Pred::Not(a) => !a.eval(row),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        vec![Value::Int(5), Value::str("london"), Value::Null]
    }

    #[test]
    fn comparisons() {
        assert!(Pred::eq(0, Value::Int(5)).eval(&row()));
        assert!(Pred::lt(0, Value::Int(6)).eval(&row()));
        assert!(Pred::gt(0, Value::Int(4)).eval(&row()));
        assert!(!Pred::eq(1, Value::str("paris")).eval(&row()));
    }

    #[test]
    fn null_comparisons_are_false() {
        assert!(!Pred::eq(2, Value::Null).eval(&row()));
        assert!(!Pred::Cmp { col: 2, op: CmpOp::Ne, value: Value::Int(1) }.eval(&row()));
    }

    #[test]
    fn column_to_column() {
        let r = vec![Value::Int(3), Value::Int(3), Value::Int(9)];
        assert!(Pred::ColCmp { left: 0, op: CmpOp::Eq, right: 1 }.eval(&r));
        assert!(Pred::ColCmp { left: 0, op: CmpOp::Lt, right: 2 }.eval(&r));
    }

    #[test]
    fn boolean_combinators() {
        let p = Pred::And(
            Box::new(Pred::gt(0, Value::Int(1))),
            Box::new(Pred::Not(Box::new(Pred::eq(1, Value::str("paris"))))),
        );
        assert!(p.eval(&row()));
        let q = Pred::Or(Box::new(Pred::eq(0, Value::Int(0))), Box::new(Pred::True));
        assert!(q.eval(&row()));
    }
}
