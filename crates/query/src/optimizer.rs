//! The cost-based pre-optimiser.
//!
//! Scenario 3: "the statistics provided by the metadata are not quite
//! accurate enough for the pre-optimisor to build the optimal plan". The
//! optimiser here chooses a two-table equijoin strategy — which side is the
//! nested loop's inner, whether to build a hash table, whether to index a
//! side — from *whatever statistics it is given*. Fed fresh statistics it
//! picks well; fed the stale view from `datacomp::Metadata::optimizer_view`
//! it confidently picks wrong, which is exactly what the intra-query
//! adaptation machinery in [`crate::exec`] then repairs.

use datacomp::metadata::TableStats;
use datacomp::Table;
use std::collections::BTreeMap;
use std::fmt;

/// The join strategies the optimiser chooses between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinAlgo {
    /// Nested loop with the **right** side as the materialised inner.
    NestedLoopInnerRight,
    /// Nested loop with the **left** side as the materialised inner
    /// ("change the join's inner-loop to the outer-loop").
    NestedLoopInnerLeft,
    /// Classic hash join building on the left side.
    HashBuildLeft,
    /// Classic hash join building on the right side.
    HashBuildRight,
    /// Index nested loop with an index built on the right side
    /// ("add an index to one of the tables").
    IndexInnerRight,
}

impl fmt::Display for JoinAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinAlgo::NestedLoopInnerRight => "nested-loop(inner=right)",
            JoinAlgo::NestedLoopInnerLeft => "nested-loop(inner=left)",
            JoinAlgo::HashBuildLeft => "hash(build=left)",
            JoinAlgo::HashBuildRight => "hash(build=right)",
            JoinAlgo::IndexInnerRight => "index-nl(index=right)",
        };
        write!(f, "{s}")
    }
}

/// Cost-model constants (work units per row operation); chosen to mirror
/// the `WorkCounter` weights so estimated and measured costs are in the
/// same currency.
const CMP_COST: f64 = 1.0;
const HASH_INSERT_COST: f64 = 2.0;
const HASH_PROBE_COST: f64 = 1.5;
const INDEX_BUILD_COST: f64 = 2.5;
/// Fixed cost of allocating and wiring a hash table or index — the reason
/// nested loop wins for genuinely tiny inputs.
const HASH_SETUP: f64 = 200.0;

/// Estimate the cost of an algorithm given believed cardinalities.
#[must_use]
pub fn algo_cost(algo: JoinAlgo, left_rows: f64, right_rows: f64) -> f64 {
    match algo {
        // Block NL: every outer row compared against every inner row, plus
        // materialising the inner.
        JoinAlgo::NestedLoopInnerRight => left_rows * right_rows * CMP_COST + right_rows,
        JoinAlgo::NestedLoopInnerLeft => left_rows * right_rows * CMP_COST + left_rows,
        JoinAlgo::HashBuildLeft => {
            HASH_SETUP + left_rows * HASH_INSERT_COST + right_rows * HASH_PROBE_COST
        }
        JoinAlgo::HashBuildRight => {
            HASH_SETUP + right_rows * HASH_INSERT_COST + left_rows * HASH_PROBE_COST
        }
        JoinAlgo::IndexInnerRight => {
            HASH_SETUP + right_rows * INDEX_BUILD_COST + left_rows * HASH_PROBE_COST
        }
    }
}

/// All candidate algorithms.
pub const ALL_ALGOS: [JoinAlgo; 5] = [
    JoinAlgo::NestedLoopInnerRight,
    JoinAlgo::NestedLoopInnerLeft,
    JoinAlgo::HashBuildLeft,
    JoinAlgo::HashBuildRight,
    JoinAlgo::IndexInnerRight,
];

/// A chosen plan.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPlan {
    /// The algorithm.
    pub algo: JoinAlgo,
    /// Estimated cost in work units.
    pub est_cost: f64,
    /// The left-cardinality belief the choice was based on.
    pub est_left_rows: f64,
    /// The right-cardinality belief the choice was based on.
    pub est_right_rows: f64,
}

/// The optimiser.
#[derive(Debug, Clone, Default)]
pub struct Optimizer;

impl Optimizer {
    /// Choose the cheapest algorithm under the given cardinality beliefs.
    #[must_use]
    pub fn plan(left_rows: f64, right_rows: f64) -> JoinPlan {
        let (algo, est_cost) = ALL_ALGOS
            .iter()
            .map(|&a| (a, algo_cost(a, left_rows, right_rows)))
            .min_by(|(_, x), (_, y)| x.total_cmp(y))
            .expect("candidate list is non-empty");
        JoinPlan { algo, est_cost, est_left_rows: left_rows, est_right_rows: right_rows }
    }

    /// Plan from table statistics (the pre-optimiser path: stats may be
    /// stale).
    #[must_use]
    pub fn plan_from_stats(left: &TableStats, right: &TableStats) -> JoinPlan {
        Self::plan(left.rows as f64, right.rows as f64)
    }
}

/// A catalog of named tables with their true data and the statistics the
/// optimiser is allowed to see (possibly stale).
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, (Table, TableStats)>,
}

impl Catalog {
    /// An empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table with fresh statistics.
    pub fn register(&mut self, name: &str, table: Table) {
        let stats = TableStats::compute(&table);
        self.tables.insert(name.to_owned(), (table, stats));
    }

    /// Register a table whose *visible* statistics carry a staleness error
    /// (Scenario 3's setup).
    pub fn register_with_stale_stats(&mut self, name: &str, table: Table, error: f64) {
        let stats = TableStats::compute(&table).fuzzed(error);
        self.tables.insert(name.to_owned(), (table, stats));
    }

    /// The table's data.
    #[must_use]
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name).map(|(t, _)| t)
    }

    /// The statistics the optimiser sees.
    #[must_use]
    pub fn stats(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(name).map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacomp::{ColumnType, Schema, Value};

    fn table(n: i64) -> Table {
        let schema = Schema::new(&[("k", ColumnType::Int)]).unwrap();
        let mut t = Table::new(schema);
        for i in 0..n {
            t.insert(vec![Value::Int(i)]).unwrap();
        }
        t
    }

    #[test]
    fn tiny_tables_prefer_nested_loop() {
        let p = Optimizer::plan(3.0, 4.0);
        assert!(matches!(p.algo, JoinAlgo::NestedLoopInnerRight | JoinAlgo::NestedLoopInnerLeft));
    }

    #[test]
    fn large_tables_prefer_hashing() {
        let p = Optimizer::plan(10_000.0, 8_000.0);
        assert!(
            !matches!(p.algo, JoinAlgo::NestedLoopInnerLeft | JoinAlgo::NestedLoopInnerRight),
            "got {}",
            p.algo
        );
    }

    #[test]
    fn hash_builds_on_the_smaller_side() {
        let p = Optimizer::plan(100.0, 100_000.0);
        assert_eq!(p.algo, JoinAlgo::HashBuildLeft);
        let q = Optimizer::plan(100_000.0, 100.0);
        assert_eq!(q.algo, JoinAlgo::HashBuildRight);
    }

    #[test]
    fn nested_loop_prefers_smaller_inner() {
        // At NL scale the materialisation term breaks the tie.
        let a = algo_cost(JoinAlgo::NestedLoopInnerRight, 10.0, 2.0);
        let b = algo_cost(JoinAlgo::NestedLoopInnerLeft, 10.0, 2.0);
        assert!(a < b);
    }

    #[test]
    fn stale_stats_flip_the_choice() {
        // Truth: both sides large → hash. Stale view: left believed tiny →
        // NL with inner=left looks cheap.
        let truth = Optimizer::plan(5_000.0, 5_000.0);
        assert!(matches!(truth.algo, JoinAlgo::HashBuildLeft | JoinAlgo::HashBuildRight));
        // Stats that believe both sides are a handful of rows make the
        // hash setup cost look wasteful: the optimiser picks nested loop.
        let fooled = Optimizer::plan(4.0, 4.0);
        assert!(matches!(
            fooled.algo,
            JoinAlgo::NestedLoopInnerLeft | JoinAlgo::NestedLoopInnerRight
        ));
    }

    #[test]
    fn catalog_serves_truth_and_stale_views() {
        let mut c = Catalog::new();
        c.register("fresh", table(100));
        c.register_with_stale_stats("stale", table(100), 0.01);
        assert_eq!(c.stats("fresh").unwrap().rows, 100);
        assert_eq!(c.stats("stale").unwrap().rows, 1, "believes 1 row");
        assert_eq!(c.table("stale").unwrap().len(), 100, "truth intact");
        assert!(c.table("missing").is_none());
    }

    #[test]
    fn plan_records_its_beliefs() {
        let p = Optimizer::plan(7.0, 9.0);
        assert_eq!(p.est_left_rows, 7.0);
        assert_eq!(p.est_right_rows, 9.0);
        assert!(p.est_cost > 0.0);
    }
}
