//! The operator model.
//!
//! Operators are pulled, but may report [`Poll::Pending`]: "no tuple right
//! now, but not done either". That third state is what the adaptive-join
//! literature is about — over wide-area sources, input stalls are the
//! common case, and an operator that can do useful work while an input
//! stalls (XJoin's reactive stage, the symmetric hash join's other side)
//! beats one that blocks.
//!
//! All operators charge a shared [`WorkCounter`]; benches use it as a
//! deterministic, machine-independent cost measure.

use datacomp::{Row, Schema};
use std::cell::RefCell;
use std::rc::Rc;

/// Result of polling an operator.
#[derive(Debug, Clone, PartialEq)]
pub enum Poll {
    /// A tuple is ready.
    Ready(Row),
    /// Nothing now; poll again later (an input is stalled).
    Pending,
    /// Exhausted.
    Done,
}

/// A shared work counter: every operator charges the work it does.
#[derive(Debug, Clone, Default)]
pub struct WorkCounter {
    inner: Rc<RefCell<Work>>,
}

/// The work categories.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Work {
    /// Tuples moved between operators.
    pub tuples_moved: u64,
    /// Hash-table inserts.
    pub hash_inserts: u64,
    /// Hash-table probes.
    pub hash_probes: u64,
    /// Predicate/key comparisons.
    pub comparisons: u64,
    /// Tuples spilled to (simulated) disk.
    pub spills: u64,
    /// Tuples read back from (simulated) disk.
    pub unspills: u64,
    /// Polls that returned `Pending` (idle waits).
    pub stalls: u64,
}

impl Work {
    /// A single scalar summary: total operations (stalls excluded — they
    /// represent *wasted wall-clock*, reported separately).
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.tuples_moved
            + self.hash_inserts
            + self.hash_probes
            + self.comparisons
            + self.spills * 10 // spill I/O is an order costlier than a move
            + self.unspills * 10
    }
}

impl WorkCounter {
    /// A fresh, zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the counters.
    #[must_use]
    pub fn snapshot(&self) -> Work {
        *self.inner.borrow()
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        *self.inner.borrow_mut() = Work::default();
    }

    /// Charge `n` tuple moves.
    pub fn moved(&self, n: u64) {
        self.inner.borrow_mut().tuples_moved += n;
    }

    /// Charge one hash-table insert.
    pub fn hash_insert(&self) {
        self.inner.borrow_mut().hash_inserts += 1;
    }

    /// Charge `n` hash-table probes.
    pub fn hash_probe(&self, n: u64) {
        self.inner.borrow_mut().hash_probes += n;
    }

    /// Charge `n` comparisons.
    pub fn compare(&self, n: u64) {
        self.inner.borrow_mut().comparisons += n;
    }

    /// Charge `n` tuples spilled to disk.
    pub fn spill(&self, n: u64) {
        self.inner.borrow_mut().spills += n;
    }

    /// Charge `n` tuples read back from disk.
    pub fn unspill(&self, n: u64) {
        self.inner.borrow_mut().unspills += n;
    }

    /// Charge one pending (stalled) poll.
    pub fn stall(&self) {
        self.inner.borrow_mut().stalls += 1;
    }
}

/// A query operator.
pub trait Operator: std::fmt::Debug {
    /// Output schema.
    fn schema(&self) -> &Schema;

    /// Poll for the next tuple.
    fn poll(&mut self) -> Poll;
}

/// Drain an operator to completion, polling through stalls; returns all
/// rows. `stall_budget` bounds consecutive `Pending`s (guards tests against
/// livelock).
///
/// # Panics
/// When the stall budget is exhausted — a livelocked operator is a bug.
pub fn drain(op: &mut dyn Operator, stall_budget: u64) -> Vec<Row> {
    let mut out = Vec::new();
    let mut stalls = 0;
    loop {
        match op.poll() {
            Poll::Ready(r) => {
                out.push(r);
                stalls = 0;
            }
            Poll::Pending => {
                stalls += 1;
                assert!(stalls <= stall_budget, "operator livelocked after {stalls} stalls");
            }
            Poll::Done => return out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_counter_is_shared() {
        let w = WorkCounter::new();
        let w2 = w.clone();
        w.moved(3);
        w2.hash_insert();
        let s = w.snapshot();
        assert_eq!(s.tuples_moved, 3);
        assert_eq!(s.hash_inserts, 1);
        w.reset();
        assert_eq!(w.snapshot(), Work::default());
    }

    #[test]
    fn total_ops_weights_spills() {
        let w = WorkCounter::new();
        w.moved(5);
        w.spill(2);
        assert_eq!(w.snapshot().total_ops(), 5 + 20);
    }
}
