//! # compkit — the fine-grained component runtime
//!
//! This crate implements the paper's **Adaptation Framework** (Figure 1) and
//! the component-architecture machinery of Figure 3:
//!
//! * [`monitor`] — monitors produce raw environmental readings (CPU load,
//!   bandwidth, battery...);
//! * [`gauge`] — gauges "aggregate raw monitor data for more lightweight
//!   processing": latest, windowed mean, EWMA, max, and trend (slope — the
//!   paper's flash-crowd "trend analysis");
//! * [`rules`] — switching rules: a constraint expression over gauges plus
//!   the action to take when it is broken, with priorities ("the constraint
//!   rules themselves can be prioritised");
//! * [`runtime`] — live component instances and bindings, with state
//!   snapshot/restore for migration;
//! * [`state`] — the State Manager: safe points and state archival, "only
//!   called upon ... when carrying out an update";
//! * [`adaptivity`] — the Adaptivity Manager: executes a reconfiguration
//!   plan **transactionally** ("the switch can be backed off if something
//!   goes wrong");
//! * [`journal`] — the write-ahead adaptation journal and crash model:
//!   makes the transactional promise survive a node crash, with a
//!   `recover()` replay that lands in committed-or-rolled-back, never a
//!   hybrid;
//! * [`session`] — the Session Manager: watches gauges, consults the rules,
//!   designs the alternative configuration with the `adl` crate, and hands
//!   the plan to the Adaptivity Manager;
//! * [`planlint`] — the static reconfiguration-plan linter: read/write-set
//!   conflict, lock-order-cycle, undo-completeness, and binding checks the
//!   Adaptivity Manager consults *before* executing any plan, in the same
//!   collect-all diagnostic shape as SISR.
//!
//! The flow of Figure 1 is therefore executable: monitors → gauges →
//! session manager → switching rules → adaptivity manager → (re)bound
//! components, with rollback on failure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptivity;
pub mod gauge;
pub mod journal;
pub mod monitor;
pub mod planlint;
pub mod rules;
pub mod runtime;
pub mod session;
pub mod state;

pub use adaptivity::{AdaptivityManager, NoFaults, StepFaults, SwitchError, SwitchReport};
pub use gauge::{Gauge, GaugeBoard, GaugeKind};
pub use journal::{
    AdaptationJournal, CrashHook, CrashPoint, CrashSite, JournalRecord, NoCrash, PlannedCrash,
    RecoveryOutcome, RecoveryReport, StepRecord,
};
pub use monitor::{Monitor, Reading};
pub use planlint::{PlanDiagnostic, PlanDiagnosticKind, PlanLintReport, PlanLinter, Severity};
pub use rules::{Action, Expr, RuleSet, SwitchingRule};
pub use runtime::{ComponentFactory, CreateError, LiveComponent, Runtime};
pub use session::{AdaptationEvent, SessionManager};
pub use state::{SafePoint, StateManager};
