//! Switching rules: constraints over gauges, and the actions taken when a
//! constraint is broken.
//!
//! This is the paper's "policy style glue": each data or service component
//! carries "the list of rules associated with the adaptivity constraints and
//! the action(s) to be taken when the session manager has detected that a
//! constraint has been broken". The expression language is deliberately
//! small — the paper's own examples are threshold and range predicates
//! (`processor-util > 90%`, `bandwidth > 30 < 100 Kbps`).

use std::collections::BTreeMap;
use std::fmt;

/// A constraint expression over gauge values.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The value of a named gauge. Evaluates to `None` (rule cannot fire)
    /// when the gauge has no value yet.
    Gauge(String),
    /// A constant.
    Const(f64),
    /// Left > right.
    Gt(Box<Expr>, Box<Expr>),
    /// Left < right.
    Lt(Box<Expr>, Box<Expr>),
    /// Left ≥ right.
    Ge(Box<Expr>, Box<Expr>),
    /// Left ≤ right.
    Le(Box<Expr>, Box<Expr>),
    /// `lo < x < hi` — the paper's `bandwidth > 30 < 100` range form.
    Between {
        /// The tested expression.
        x: Box<Expr>,
        /// Exclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Both hold.
    And(Box<Expr>, Box<Expr>),
    /// Either holds.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

impl Expr {
    /// Convenience: `gauge(name) > c`.
    #[must_use]
    pub fn gauge_gt(name: &str, c: f64) -> Self {
        Expr::Gt(Box::new(Expr::Gauge(name.to_owned())), Box::new(Expr::Const(c)))
    }

    /// Convenience: `gauge(name) < c`.
    #[must_use]
    pub fn gauge_lt(name: &str, c: f64) -> Self {
        Expr::Lt(Box::new(Expr::Gauge(name.to_owned())), Box::new(Expr::Const(c)))
    }

    /// Convenience: `lo < gauge(name) < hi`.
    #[must_use]
    pub fn gauge_between(name: &str, lo: f64, hi: f64) -> Self {
        Expr::Between { x: Box::new(Expr::Gauge(name.to_owned())), lo, hi }
    }

    fn num(&self, gauges: &BTreeMap<String, f64>) -> Option<f64> {
        match self {
            Expr::Gauge(n) => gauges.get(n).copied(),
            Expr::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// A copy of this expression with every constant (including `Between`
    /// bounds) multiplied by `factor` — the primitive open adaptivity
    /// tunes rules with.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Expr {
        match self {
            Expr::Gauge(n) => Expr::Gauge(n.clone()),
            Expr::Const(c) => Expr::Const(c * factor),
            Expr::Gt(a, b) => Expr::Gt(Box::new(a.scaled(factor)), Box::new(b.scaled(factor))),
            Expr::Lt(a, b) => Expr::Lt(Box::new(a.scaled(factor)), Box::new(b.scaled(factor))),
            Expr::Ge(a, b) => Expr::Ge(Box::new(a.scaled(factor)), Box::new(b.scaled(factor))),
            Expr::Le(a, b) => Expr::Le(Box::new(a.scaled(factor)), Box::new(b.scaled(factor))),
            Expr::Between { x, lo, hi } => {
                Expr::Between { x: Box::new(x.scaled(factor)), lo: lo * factor, hi: hi * factor }
            }
            Expr::And(a, b) => Expr::And(Box::new(a.scaled(factor)), Box::new(b.scaled(factor))),
            Expr::Or(a, b) => Expr::Or(Box::new(a.scaled(factor)), Box::new(b.scaled(factor))),
            Expr::Not(a) => Expr::Not(Box::new(a.scaled(factor))),
        }
    }

    /// Evaluate to a boolean; `None` when a referenced gauge has no value
    /// (a rule must not fire on missing data).
    #[must_use]
    pub fn eval(&self, gauges: &BTreeMap<String, f64>) -> Option<bool> {
        match self {
            Expr::Gauge(_) | Expr::Const(_) => None,
            Expr::Gt(a, b) => Some(a.num(gauges)? > b.num(gauges)?),
            Expr::Lt(a, b) => Some(a.num(gauges)? < b.num(gauges)?),
            Expr::Ge(a, b) => Some(a.num(gauges)? >= b.num(gauges)?),
            Expr::Le(a, b) => Some(a.num(gauges)? <= b.num(gauges)?),
            Expr::Between { x, lo, hi } => {
                let v = x.num(gauges)?;
                Some(v > *lo && v < *hi)
            }
            Expr::And(a, b) => Some(a.eval(gauges)? && b.eval(gauges)?),
            Expr::Or(a, b) => Some(a.eval(gauges)? || b.eval(gauges)?),
            Expr::Not(a) => Some(!a.eval(gauges)?),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Gauge(n) => write!(f, "{n}"),
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Gt(a, b) => write!(f, "({a} > {b})"),
            Expr::Lt(a, b) => write!(f, "({a} < {b})"),
            Expr::Ge(a, b) => write!(f, "({a} >= {b})"),
            Expr::Le(a, b) => write!(f, "({a} <= {b})"),
            Expr::Between { x, lo, hi } => write!(f, "({lo} < {x} < {hi})"),
            Expr::And(a, b) => write!(f, "({a} and {b})"),
            Expr::Or(a, b) => write!(f, "({a} or {b})"),
            Expr::Not(a) => write!(f, "(not {a})"),
        }
    }
}

/// What to do when a constraint is broken.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Switch the session's ADL mode (Figure 5: docked → wireless).
    SwitchMode(String),
    /// Migrate a component (and its processing state) to another node —
    /// Table 2's `SWITCH`.
    Migrate {
        /// Component (service agent) to move.
        component: String,
        /// Candidate destination nodes, best chosen by the environment.
        candidates: Vec<String>,
    },
    /// Deliver a different version of a data component — `BEST(...)` and
    /// the bandwidth-conditional rows of Table 2.
    SelectVersion {
        /// The data component.
        component: String,
        /// Version label (e.g. `compressed`, `videohalf`, `videosmall`).
        version: String,
    },
    /// Revise the running query plan at the next safe point (Scenario 3).
    ReviseQueryPlan,
    /// Open adaptivity: tune another rule's numeric thresholds by a
    /// factor. The paper's model is closed-adaptive, "however it is hoped
    /// that the design is general and flexible enough to implement an open
    /// model" — this action is that extension: the rule base itself adapts
    /// ("systems that learn from previous adaptations", Section 6).
    TuneRule {
        /// The rule whose constraint is rescaled.
        rule_id: u32,
        /// Multiplier applied to every constant in its constraint.
        scale: f64,
    },
    /// A named, environment-interpreted action.
    Custom(String),
}

/// A prioritised switching rule. Lower `priority` numbers are considered
/// first (priority 0 is most urgent).
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchingRule {
    /// Stable rule id (the paper's constraint numbers: 450, 455, 595...).
    pub id: u32,
    /// Priority; lower fires first.
    pub priority: u8,
    /// The constraint; the rule fires when this evaluates to `true`.
    pub constraint: Expr,
    /// The action to take.
    pub action: Action,
}

/// An ordered set of switching rules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleSet {
    rules: Vec<SwitchingRule>,
}

impl RuleSet {
    /// An empty rule set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule; replaces any existing rule with the same id.
    pub fn add(&mut self, rule: SwitchingRule) {
        self.rules.retain(|r| r.id != rule.id);
        self.rules.push(rule);
        self.rules.sort_by_key(|r| (r.priority, r.id));
    }

    /// Remove a rule by id; returns whether it existed.
    pub fn remove(&mut self, id: u32) -> bool {
        let before = self.rules.len();
        self.rules.retain(|r| r.id != id);
        self.rules.len() != before
    }

    /// All rules whose constraints are broken under the gauge snapshot, in
    /// priority order.
    #[must_use]
    pub fn fired(&self, gauges: &BTreeMap<String, f64>) -> Vec<&SwitchingRule> {
        self.rules.iter().filter(|r| r.constraint.eval(gauges) == Some(true)).collect()
    }

    /// The single most urgent fired rule, if any.
    #[must_use]
    pub fn decide(&self, gauges: &BTreeMap<String, f64>) -> Option<&SwitchingRule> {
        self.fired(gauges).into_iter().next()
    }

    /// Number of rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterate rules in priority order.
    pub fn iter(&self) -> impl Iterator<Item = &SwitchingRule> {
        self.rules.iter()
    }

    /// Open adaptivity: rescale every constant in rule `id`'s constraint.
    /// Returns whether the rule exists.
    pub fn tune(&mut self, id: u32, scale: f64) -> bool {
        match self.rules.iter_mut().find(|r| r.id == id) {
            Some(r) => {
                r.constraint = r.constraint.scaled(scale);
                true
            }
            None => false,
        }
    }

    /// A rule's current constraint (for observing tuning).
    #[must_use]
    pub fn constraint_of(&self, id: u32) -> Option<&Expr> {
        self.rules.iter().find(|r| r.id == id).map(|r| &r.constraint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gauges(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect()
    }

    #[test]
    fn threshold_rule_fires_above_90() {
        // The paper's constraint 455: if processor-util > 90% then SWITCH.
        let c = Expr::gauge_gt("cpu", 0.9);
        assert_eq!(c.eval(&gauges(&[("cpu", 0.95)])), Some(true));
        assert_eq!(c.eval(&gauges(&[("cpu", 0.85)])), Some(false));
        assert_eq!(c.eval(&gauges(&[])), None, "no data, no firing");
    }

    #[test]
    fn between_matches_paper_bandwidth_range() {
        // Constraint 595: if bandwidth > 30 < 100 Kbps then BEST(...)
        let c = Expr::gauge_between("bw", 30.0, 100.0);
        assert_eq!(c.eval(&gauges(&[("bw", 64.0)])), Some(true));
        assert_eq!(c.eval(&gauges(&[("bw", 30.0)])), Some(false), "exclusive bounds");
        assert_eq!(c.eval(&gauges(&[("bw", 150.0)])), Some(false));
    }

    #[test]
    fn boolean_combinators() {
        let g = gauges(&[("a", 1.0), ("b", 5.0)]);
        let and =
            Expr::And(Box::new(Expr::gauge_gt("a", 0.5)), Box::new(Expr::gauge_lt("b", 10.0)));
        assert_eq!(and.eval(&g), Some(true));
        let not = Expr::Not(Box::new(Expr::gauge_gt("a", 2.0)));
        assert_eq!(not.eval(&g), Some(true));
        let or = Expr::Or(Box::new(Expr::gauge_gt("a", 2.0)), Box::new(Expr::gauge_gt("b", 2.0)));
        assert_eq!(or.eval(&g), Some(true));
    }

    #[test]
    fn missing_gauge_poisons_the_expression() {
        let and = Expr::And(
            Box::new(Expr::gauge_gt("present", 0.0)),
            Box::new(Expr::gauge_gt("missing", 0.0)),
        );
        assert_eq!(and.eval(&gauges(&[("present", 1.0)])), None);
    }

    #[test]
    fn ruleset_orders_by_priority_then_id() {
        let mut rs = RuleSet::new();
        rs.add(SwitchingRule {
            id: 595,
            priority: 2,
            constraint: Expr::gauge_between("bw", 30.0, 100.0),
            action: Action::SelectVersion { component: "video".into(), version: "half".into() },
        });
        rs.add(SwitchingRule {
            id: 455,
            priority: 0,
            constraint: Expr::gauge_gt("cpu", 0.9),
            action: Action::Migrate {
                component: "agent".into(),
                candidates: vec!["node1".into(), "node2".into()],
            },
        });
        let g = gauges(&[("cpu", 0.99), ("bw", 50.0)]);
        let fired = rs.fired(&g);
        assert_eq!(fired.iter().map(|r| r.id).collect::<Vec<_>>(), vec![455, 595]);
        assert_eq!(rs.decide(&g).unwrap().id, 455);
    }

    #[test]
    fn add_replaces_same_id_and_remove_works() {
        let mut rs = RuleSet::new();
        rs.add(SwitchingRule {
            id: 1,
            priority: 5,
            constraint: Expr::gauge_gt("x", 0.0),
            action: Action::Custom("a".into()),
        });
        rs.add(SwitchingRule {
            id: 1,
            priority: 1,
            constraint: Expr::gauge_gt("x", 0.0),
            action: Action::Custom("b".into()),
        });
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.iter().next().unwrap().action, Action::Custom("b".into()));
        assert!(rs.remove(1));
        assert!(!rs.remove(1));
        assert!(rs.is_empty());
    }

    #[test]
    fn tune_rescales_thresholds_open_adaptivity() {
        let mut rs = RuleSet::new();
        rs.add(SwitchingRule {
            id: 455,
            priority: 0,
            constraint: Expr::gauge_gt("cpu", 0.9),
            action: Action::Custom("switch".into()),
        });
        // Fires at 0.95 before tuning...
        assert!(rs.decide(&gauges(&[("cpu", 0.95)])).is_some());
        // ...the system learned 0.9 was too twitchy: relax by 10%.
        assert!(rs.tune(455, 1.1));
        assert!(rs.decide(&gauges(&[("cpu", 0.95)])).is_none());
        assert!(rs.decide(&gauges(&[("cpu", 0.995)])).is_some());
        assert_eq!(rs.constraint_of(455).unwrap().to_string(), "(cpu > 0.9900000000000001)");
        assert!(!rs.tune(999, 2.0));
    }

    #[test]
    fn scaled_reaches_between_bounds() {
        let e = Expr::gauge_between("bw", 30.0, 100.0).scaled(2.0);
        assert_eq!(e.eval(&gauges(&[("bw", 120.0)])), Some(true));
        assert_eq!(e.eval(&gauges(&[("bw", 50.0)])), Some(false));
    }

    #[test]
    fn expressions_display() {
        let e = Expr::And(
            Box::new(Expr::gauge_gt("cpu", 0.9)),
            Box::new(Expr::gauge_between("bw", 30.0, 100.0)),
        );
        assert_eq!(e.to_string(), "((cpu > 0.9) and (30 < bw < 100))");
    }
}
