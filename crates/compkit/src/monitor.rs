//! Monitors: sources of raw environmental readings.
//!
//! In Figure 1 the monitors sit at the bottom of the adaptation loop,
//! producing "environmental data (e.g. current performance statistics)".
//! A monitor here is a named, bounded ring of timestamped readings; the
//! embedding environment (the `ubinet` simulator, the Patia server, a real
//! deployment) pushes values in, and gauges read windows out.

use std::collections::VecDeque;

/// A timestamped reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reading {
    /// Simulation tick (or wall-clock unit) of the observation.
    pub tick: u64,
    /// Observed value (unit depends on the monitor: utilisation fraction,
    /// kbps, volts...).
    pub value: f64,
}

/// A named monitor holding a bounded history of readings.
#[derive(Debug, Clone)]
pub struct Monitor {
    name: String,
    capacity: usize,
    readings: VecDeque<Reading>,
}

impl Monitor {
    /// A monitor retaining the last `capacity` readings.
    ///
    /// # Panics
    /// If `capacity` is zero.
    #[must_use]
    pub fn new(name: &str, capacity: usize) -> Self {
        assert!(capacity > 0, "a monitor must retain at least one reading");
        Self { name: name.to_owned(), capacity, readings: VecDeque::with_capacity(capacity) }
    }

    /// The monitor's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Record a reading, evicting the oldest beyond capacity.
    pub fn push(&mut self, tick: u64, value: f64) {
        if self.readings.len() == self.capacity {
            self.readings.pop_front();
        }
        self.readings.push_back(Reading { tick, value });
    }

    /// The most recent reading, if any.
    #[must_use]
    pub fn latest(&self) -> Option<Reading> {
        self.readings.back().copied()
    }

    /// Carry the latest reading forward through every tick in
    /// `(latest.tick, upto]` — the event-boundary re-sample. A sampler
    /// that skips quiescent ticks still owes windowed gauges (means,
    /// slopes) one reading per tick; this fills the gap with the value
    /// that held throughout it. Bounded by the ring capacity: a gap wider
    /// than the ring only materialises the last `capacity` ticks. No-op
    /// on an empty monitor or when already sampled up to `upto`.
    pub fn fill_forward(&mut self, upto: u64) {
        let Some(last) = self.latest() else { return };
        let from = last.tick.saturating_add(1).max(upto.saturating_sub(self.capacity as u64 - 1));
        for tick in from..=upto {
            self.push(tick, last.value);
        }
    }

    /// The most recent `n` readings, oldest first.
    #[must_use]
    pub fn window(&self, n: usize) -> Vec<Reading> {
        let skip = self.readings.len().saturating_sub(n);
        self.readings.iter().skip(skip).copied().collect()
    }

    /// Number of retained readings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.readings.len()
    }

    /// Whether no readings have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.readings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_latest() {
        let mut m = Monitor::new("cpu", 4);
        assert!(m.is_empty());
        m.push(1, 0.5);
        m.push(2, 0.7);
        assert_eq!(m.latest(), Some(Reading { tick: 2, value: 0.7 }));
        assert_eq!(m.len(), 2);
        assert_eq!(m.name(), "cpu");
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut m = Monitor::new("bw", 3);
        for t in 0..5 {
            m.push(t, t as f64);
        }
        assert_eq!(m.len(), 3);
        assert_eq!(m.window(10).first().unwrap().tick, 2);
    }

    #[test]
    fn window_returns_most_recent_in_order() {
        let mut m = Monitor::new("x", 10);
        for t in 0..6 {
            m.push(t, t as f64 * 2.0);
        }
        let w = m.window(3);
        assert_eq!(w.iter().map(|r| r.tick).collect::<Vec<_>>(), vec![3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "at least one reading")]
    fn zero_capacity_rejected() {
        let _ = Monitor::new("bad", 0);
    }

    #[test]
    fn fill_forward_carries_the_latest_value_per_tick() {
        let mut m = Monitor::new("cpu", 8);
        m.push(3, 0.4);
        m.fill_forward(6);
        assert_eq!(
            m.window(10),
            vec![
                Reading { tick: 3, value: 0.4 },
                Reading { tick: 4, value: 0.4 },
                Reading { tick: 5, value: 0.4 },
                Reading { tick: 6, value: 0.4 },
            ]
        );
        // Already sampled up to 6: a second fill is a no-op.
        m.fill_forward(6);
        assert_eq!(m.len(), 4);
        m.fill_forward(2);
        assert_eq!(m.len(), 4, "filling backward is a no-op");
    }

    #[test]
    fn fill_forward_over_a_wide_gap_is_bounded_by_capacity() {
        let mut m = Monitor::new("cpu", 4);
        m.push(10, 1.5);
        m.fill_forward(1_000_000);
        assert_eq!(m.len(), 4, "only the ring's worth of ticks materialise");
        let w = m.window(10);
        assert_eq!(w.first().unwrap().tick, 999_997);
        assert_eq!(w.last().unwrap(), &Reading { tick: 1_000_000, value: 1.5 });
    }

    #[test]
    fn fill_forward_on_empty_monitor_is_a_no_op() {
        let mut m = Monitor::new("cpu", 4);
        m.fill_forward(100);
        assert!(m.is_empty());
    }
}
