//! The live component runtime: instances, bindings, and the factory that
//! creates (and can fail to create) components.
//!
//! The runtime's shape mirrors an `adl::Configuration` so the Session
//! Manager can diff "what is running" against "what should run". Each live
//! component carries opaque state bytes so stopping, migrating and
//! restarting preserve "not only the data state, but also the processing
//! state" (Table 2's `SWITCH` discussion).

use adl::ast::Binding;
use adl::config::Configuration;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Why component creation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateError {
    /// The component that could not be created.
    pub name: String,
    /// Why.
    pub reason: String,
}

impl fmt::Display for CreateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot create `{}`: {}", self.name, self.reason)
    }
}

impl std::error::Error for CreateError {}

/// A live component instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveComponent {
    /// Its component type name.
    pub ty: String,
    /// Opaque processing/data state (snapshot-able for migration).
    pub state: Vec<u8>,
    /// Tick at which it was started.
    pub started_at: u64,
}

/// Creates live components by (name, type). Implementations may draw on a
/// component repository, the network ("can be retrieved off the network"),
/// or — in tests — inject failures.
pub trait ComponentFactory {
    /// Create a component.
    ///
    /// # Errors
    /// [`CreateError`] when the component cannot be built (missing image,
    /// no memory, network unreachable...).
    fn create(&mut self, name: &str, ty: &str, now: u64) -> Result<LiveComponent, CreateError>;
}

/// The default factory: always succeeds with empty state.
#[derive(Debug, Clone, Default)]
pub struct BasicFactory;

impl ComponentFactory for BasicFactory {
    fn create(&mut self, _name: &str, ty: &str, now: u64) -> Result<LiveComponent, CreateError> {
        Ok(LiveComponent { ty: ty.to_owned(), state: Vec::new(), started_at: now })
    }
}

/// A factory that fails for a chosen set of component names — failure
/// injection for the transactional-switch tests.
#[derive(Debug, Clone, Default)]
pub struct FlakyFactory {
    /// Names that fail to create.
    pub failing: BTreeSet<String>,
    inner: BasicFactory,
}

impl FlakyFactory {
    /// Fail creation for the given names.
    #[must_use]
    pub fn failing<I: IntoIterator<Item = S>, S: Into<String>>(names: I) -> Self {
        Self { failing: names.into_iter().map(Into::into).collect(), inner: BasicFactory }
    }
}

impl ComponentFactory for FlakyFactory {
    fn create(&mut self, name: &str, ty: &str, now: u64) -> Result<LiveComponent, CreateError> {
        if self.failing.contains(name) {
            return Err(CreateError { name: name.to_owned(), reason: "injected failure".into() });
        }
        self.inner.create(name, ty, now)
    }
}

/// The running system: live components and the bindings between them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Runtime {
    instances: BTreeMap<String, LiveComponent>,
    bindings: BTreeSet<Binding>,
}

/// Errors from direct runtime mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The named instance does not exist.
    NoSuchInstance(String),
    /// A binding endpoint's instance does not exist.
    DanglingEndpoint(String),
    /// The binding already exists / does not exist.
    BindingState(Binding),
    /// An instance with that name already runs.
    AlreadyRunning(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NoSuchInstance(n) => write!(f, "no such instance `{n}`"),
            RuntimeError::DanglingEndpoint(n) => {
                write!(f, "binding endpoint instance `{n}` does not exist")
            }
            RuntimeError::BindingState(b) => write!(f, "bad binding state: {} -- {}", b.from, b.to),
            RuntimeError::AlreadyRunning(n) => write!(f, "instance `{n}` already running"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl Runtime {
    /// An empty runtime.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Start (install) a component.
    ///
    /// # Errors
    /// [`RuntimeError::AlreadyRunning`].
    pub fn start(&mut self, name: &str, comp: LiveComponent) -> Result<(), RuntimeError> {
        if self.instances.contains_key(name) {
            return Err(RuntimeError::AlreadyRunning(name.to_owned()));
        }
        self.instances.insert(name.to_owned(), comp);
        Ok(())
    }

    /// Stop a component, returning it (with its state) for archival.
    ///
    /// # Errors
    /// [`RuntimeError::NoSuchInstance`].
    pub fn stop(&mut self, name: &str) -> Result<LiveComponent, RuntimeError> {
        self.instances.remove(name).ok_or_else(|| RuntimeError::NoSuchInstance(name.to_owned()))
    }

    /// Establish a binding. Both endpoint instances must exist (a `None`
    /// instance endpoint refers to the composite itself and always exists).
    ///
    /// # Errors
    /// [`RuntimeError::DanglingEndpoint`] or [`RuntimeError::BindingState`]
    /// if already bound.
    pub fn bind(&mut self, b: Binding) -> Result<(), RuntimeError> {
        for end in [&b.from, &b.to] {
            if let Some(inst) = &end.instance {
                if !self.instances.contains_key(inst) {
                    return Err(RuntimeError::DanglingEndpoint(inst.clone()));
                }
            }
        }
        if !self.bindings.insert(b.clone()) {
            return Err(RuntimeError::BindingState(b));
        }
        Ok(())
    }

    /// Remove a binding.
    ///
    /// # Errors
    /// [`RuntimeError::BindingState`] if not bound.
    pub fn unbind(&mut self, b: &Binding) -> Result<(), RuntimeError> {
        if self.bindings.remove(b) {
            Ok(())
        } else {
            Err(RuntimeError::BindingState(b.clone()))
        }
    }

    /// The runtime's shape as an ADL configuration (for diffing).
    #[must_use]
    pub fn configuration(&self) -> Configuration {
        Configuration {
            instances: self.instances.iter().map(|(n, c)| (n.clone(), c.ty.clone())).collect(),
            bindings: self.bindings.clone(),
        }
    }

    /// Access a live component.
    #[must_use]
    pub fn component(&self, name: &str) -> Option<&LiveComponent> {
        self.instances.get(name)
    }

    /// Mutable access to a live component (to evolve its state).
    pub fn component_mut(&mut self, name: &str) -> Option<&mut LiveComponent> {
        self.instances.get_mut(name)
    }

    /// Names of live instances.
    pub fn instance_names(&self) -> impl Iterator<Item = &str> {
        self.instances.keys().map(String::as_str)
    }

    /// Current bindings.
    #[must_use]
    pub fn bindings(&self) -> &BTreeSet<Binding> {
        &self.bindings
    }

    /// Number of live instances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether nothing runs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adl::ast::PortRef;

    fn live(ty: &str) -> LiveComponent {
        LiveComponent { ty: ty.to_owned(), state: vec![], started_at: 0 }
    }

    fn binding(fi: &str, fp: &str, ti: &str, tp: &str) -> Binding {
        Binding { from: PortRef::on(fi, fp), to: PortRef::on(ti, tp) }
    }

    #[test]
    fn start_stop_cycle() {
        let mut rt = Runtime::new();
        rt.start("a", live("T")).unwrap();
        assert_eq!(rt.start("a", live("T")), Err(RuntimeError::AlreadyRunning("a".into())));
        assert_eq!(rt.len(), 1);
        let stopped = rt.stop("a").unwrap();
        assert_eq!(stopped.ty, "T");
        assert!(rt.is_empty());
        assert!(matches!(rt.stop("a"), Err(RuntimeError::NoSuchInstance(_))));
    }

    #[test]
    fn bind_requires_live_endpoints() {
        let mut rt = Runtime::new();
        rt.start("a", live("T")).unwrap();
        let b = binding("a", "p", "ghost", "q");
        assert_eq!(rt.bind(b), Err(RuntimeError::DanglingEndpoint("ghost".into())));
        rt.start("ghost", live("U")).unwrap();
        assert!(rt.bind(binding("a", "p", "ghost", "q")).is_ok());
    }

    #[test]
    fn own_port_endpoints_always_exist() {
        let mut rt = Runtime::new();
        rt.start("a", live("T")).unwrap();
        let b = Binding { from: PortRef::own("svc"), to: PortRef::on("a", "p") };
        assert!(rt.bind(b).is_ok());
    }

    #[test]
    fn double_bind_and_missing_unbind_error() {
        let mut rt = Runtime::new();
        rt.start("a", live("T")).unwrap();
        rt.start("b", live("U")).unwrap();
        let b = binding("a", "p", "b", "q");
        rt.bind(b.clone()).unwrap();
        assert!(matches!(rt.bind(b.clone()), Err(RuntimeError::BindingState(_))));
        rt.unbind(&b).unwrap();
        assert!(matches!(rt.unbind(&b), Err(RuntimeError::BindingState(_))));
    }

    #[test]
    fn configuration_reflects_runtime() {
        let mut rt = Runtime::new();
        rt.start("a", live("T")).unwrap();
        rt.start("b", live("U")).unwrap();
        rt.bind(binding("a", "p", "b", "q")).unwrap();
        let cfg = rt.configuration();
        assert_eq!(cfg.instances["a"], "T");
        assert_eq!(cfg.bindings.len(), 1);
    }

    #[test]
    fn flaky_factory_fails_selectively() {
        let mut f = FlakyFactory::failing(["bad"]);
        assert!(f.create("good", "T", 0).is_ok());
        assert!(f.create("bad", "T", 0).is_err());
    }

    #[test]
    fn component_state_is_mutable() {
        let mut rt = Runtime::new();
        rt.start("a", live("T")).unwrap();
        rt.component_mut("a").unwrap().state.extend_from_slice(b"progress");
        assert_eq!(rt.component("a").unwrap().state, b"progress");
    }
}
