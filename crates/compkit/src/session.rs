//! The Session Manager: the loop of Figure 1.
//!
//! > "The current configuration operation is being monitored by the session
//! > monitor who constantly checks constraints and, if broken, consults the
//! > switching rules to decide how best to overcome the problem. When
//! > adaptivity is triggered the component architecture model allows an
//! > alternative execution plan to be designed. The session manager decides
//! > how to instantiate the alternative component architecture and passes
//! > his alternative over to the Adaptivity Manager."
//!
//! [`SessionManager::tick`] performs one turn of that loop: refresh gauges,
//! evaluate the rules, and for a `SwitchMode` action design the alternative
//! configuration from the ADL model, diff it against the live runtime, and
//! hand the plan to the Adaptivity Manager. Other actions (migrate, select
//! version, revise plan) are returned to the embedding environment, which
//! owns the resources they act on.

use crate::adaptivity::{AdaptivityManager, SwitchError};
use crate::gauge::GaugeBoard;
use crate::rules::{Action, RuleSet};
use crate::runtime::{ComponentFactory, Runtime};
use crate::state::StateManager;
use adl::ast::Document;
use adl::config::flatten;
use adl::diff::diff;

/// Something the session manager did (or asked the environment to do).
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptationEvent {
    /// A mode switch committed.
    Switched {
        /// Rule that triggered it.
        rule_id: u32,
        /// The mode switched from.
        from_mode: String,
        /// The mode switched to.
        to_mode: String,
        /// Steps executed.
        steps: usize,
        /// Tick of completion.
        at: u64,
    },
    /// A mode switch failed and was backed off.
    SwitchFailed {
        /// Rule that triggered it.
        rule_id: u32,
        /// Target mode.
        to_mode: String,
        /// Rendered error.
        error: String,
        /// Tick of the attempt.
        at: u64,
    },
    /// An action the environment must carry out (migration, version
    /// selection, plan revision, custom).
    Requested {
        /// Rule that fired.
        rule_id: u32,
        /// The action.
        action: Action,
        /// Tick.
        at: u64,
    },
}

/// The Session Manager.
#[derive(Debug)]
pub struct SessionManager {
    doc: Document,
    composite: String,
    mode: String,
    rules: RuleSet,
    /// The gauge board monitors feed into.
    pub board: GaugeBoard,
    log: Vec<AdaptationEvent>,
}

impl SessionManager {
    /// A session manager for `composite` in `doc`, starting in `mode`.
    #[must_use]
    pub fn new(
        doc: Document,
        composite: &str,
        mode: &str,
        rules: RuleSet,
        board: GaugeBoard,
    ) -> Self {
        Self {
            doc,
            composite: composite.to_owned(),
            mode: mode.to_owned(),
            rules,
            board,
            log: Vec::new(),
        }
    }

    /// Current session mode.
    #[must_use]
    pub fn mode(&self) -> &str {
        &self.mode
    }

    /// The adaptation log.
    #[must_use]
    pub fn log(&self) -> &[AdaptationEvent] {
        &self.log
    }

    /// The rule set (e.g. to add rules at run time — the architecture is
    /// itself reconfigurable).
    pub fn rules_mut(&mut self) -> &mut RuleSet {
        &mut self.rules
    }

    /// Bring the runtime to this session's current mode configuration
    /// (initial instantiation).
    ///
    /// # Errors
    /// [`SwitchError`] if instantiation fails (rolled back).
    pub fn boot(
        &mut self,
        runtime: &mut Runtime,
        factory: &mut dyn ComponentFactory,
        am: &mut AdaptivityManager,
        states: &mut StateManager,
        now: u64,
    ) -> Result<(), SwitchError> {
        let target = flatten(&self.doc, &self.composite, &[self.mode.as_str()])
            .map_err(|e| SwitchError::Inconsistent(e.to_string()))?;
        let plan = diff(&runtime.configuration(), &target);
        am.execute(runtime, &plan, factory, states, now)?;
        Ok(())
    }

    /// One turn of the Figure 1 loop. Returns the events of this turn
    /// (also appended to the log).
    pub fn tick(
        &mut self,
        runtime: &mut Runtime,
        factory: &mut dyn ComponentFactory,
        am: &mut AdaptivityManager,
        states: &mut StateManager,
        now: u64,
    ) -> Vec<AdaptationEvent> {
        let gauges = self.board.snapshot();
        let mut events = Vec::new();
        // Consider every fired rule, most urgent first; execute at most one
        // mode switch per tick (a switch invalidates the snapshot), but
        // forward all non-switch requests.
        let mut switched = false;
        let fired: Vec<(u32, Action)> =
            self.rules.fired(&gauges).into_iter().map(|r| (r.id, r.action.clone())).collect();
        for (rule_id, action) in fired {
            match action {
                Action::SwitchMode(to_mode) => {
                    if switched || to_mode == self.mode {
                        continue;
                    }
                    let target = match flatten(&self.doc, &self.composite, &[to_mode.as_str()]) {
                        Ok(t) => t,
                        Err(e) => {
                            events.push(AdaptationEvent::SwitchFailed {
                                rule_id,
                                to_mode: to_mode.clone(),
                                error: e.to_string(),
                                at: now,
                            });
                            continue;
                        }
                    };
                    let plan = diff(&runtime.configuration(), &target);
                    match am.execute(runtime, &plan, factory, states, now) {
                        Ok(report) => {
                            events.push(AdaptationEvent::Switched {
                                rule_id,
                                from_mode: self.mode.clone(),
                                to_mode: to_mode.clone(),
                                steps: report.steps,
                                at: now,
                            });
                            self.mode = to_mode;
                            switched = true;
                        }
                        Err(e) => {
                            events.push(AdaptationEvent::SwitchFailed {
                                rule_id,
                                to_mode,
                                error: e.to_string(),
                                at: now,
                            });
                        }
                    }
                }
                Action::TuneRule { rule_id: target, scale } => {
                    // Open adaptivity: the rule base rewrites itself.
                    if self.rules.tune(target, scale) {
                        events.push(AdaptationEvent::Requested {
                            rule_id,
                            action: Action::TuneRule { rule_id: target, scale },
                            at: now,
                        });
                    }
                }
                other => {
                    events.push(AdaptationEvent::Requested { rule_id, action: other, at: now });
                }
            }
        }
        self.log.extend(events.iter().cloned());
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauge::{Gauge, GaugeKind};
    use crate::monitor::Monitor;
    use crate::rules::{Expr, SwitchingRule};
    use crate::runtime::{BasicFactory, FlakyFactory};
    use adl::figures::{fig4_document, wireless_session};

    /// A session manager over the Figure 4 architecture: rule 1 switches to
    /// wireless when the dock signal drops below 0.5.
    fn setup() -> (SessionManager, Runtime, AdaptivityManager, StateManager) {
        let mut board = GaugeBoard::new();
        board.add_monitor(Monitor::new("dock", 8));
        board.add_gauge(Gauge {
            name: "docked".into(),
            monitor: "dock".into(),
            kind: GaugeKind::Latest,
        });
        let mut rules = RuleSet::new();
        rules.add(SwitchingRule {
            id: 1,
            priority: 0,
            constraint: Expr::gauge_lt("docked", 0.5),
            action: Action::SwitchMode("wireless".into()),
        });
        rules.add(SwitchingRule {
            id: 2,
            priority: 1,
            constraint: Expr::gauge_gt("docked", 0.5),
            action: Action::SwitchMode("docked".into()),
        });
        let mut sm = SessionManager::new(fig4_document(), "MobileCBMS", "docked", rules, board);
        let mut rt = Runtime::new();
        let mut am = AdaptivityManager::new();
        let mut st = StateManager::new();
        sm.boot(&mut rt, &mut BasicFactory, &mut am, &mut st, 0).unwrap();
        (sm, rt, am, st)
    }

    #[test]
    fn undock_triggers_the_figure5_switchover() {
        let (mut sm, mut rt, mut am, mut st) = setup();
        // Docked: no adaptation.
        sm.board.record("dock", 1, 1.0);
        let ev = sm.tick(&mut rt, &mut BasicFactory, &mut am, &mut st, 1);
        assert!(ev.is_empty(), "{ev:?}");
        // Unplugged: scenario 2 fires.
        sm.board.record("dock", 2, 0.0);
        let ev = sm.tick(&mut rt, &mut BasicFactory, &mut am, &mut st, 2);
        assert_eq!(ev.len(), 1);
        assert!(matches!(
            &ev[0],
            AdaptationEvent::Switched { rule_id: 1, to_mode, steps: 13, .. } if to_mode == "wireless"
        ));
        assert_eq!(sm.mode(), "wireless");
        assert_eq!(rt.configuration(), wireless_session(&fig4_document()));
    }

    #[test]
    fn redocking_switches_back() {
        let (mut sm, mut rt, mut am, mut st) = setup();
        sm.board.record("dock", 1, 0.0);
        sm.tick(&mut rt, &mut BasicFactory, &mut am, &mut st, 1);
        sm.board.record("dock", 2, 1.0);
        sm.tick(&mut rt, &mut BasicFactory, &mut am, &mut st, 2);
        assert_eq!(sm.mode(), "docked");
        assert_eq!(am.committed(), 3, "boot + 2 switches");
    }

    #[test]
    fn no_data_means_no_adaptation() {
        let (mut sm, mut rt, mut am, mut st) = setup();
        let ev = sm.tick(&mut rt, &mut BasicFactory, &mut am, &mut st, 1);
        assert!(ev.is_empty());
        assert_eq!(sm.mode(), "docked");
    }

    #[test]
    fn failed_switch_logs_and_leaves_mode_unchanged() {
        let (mut sm, mut rt, mut am, mut st) = setup();
        sm.board.record("dock", 1, 0.0);
        let mut flaky = FlakyFactory::failing(["wopt"]);
        let ev = sm.tick(&mut rt, &mut flaky, &mut am, &mut st, 1);
        assert!(matches!(&ev[0], AdaptationEvent::SwitchFailed { rule_id: 1, .. }));
        assert_eq!(sm.mode(), "docked");
        assert_eq!(am.rolled_back(), 1);
        // Next tick with a healthy factory succeeds — self-healing.
        sm.board.record("dock", 2, 0.0);
        let ev = sm.tick(&mut rt, &mut BasicFactory, &mut am, &mut st, 2);
        assert!(matches!(&ev[0], AdaptationEvent::Switched { .. }));
    }

    #[test]
    fn non_switch_actions_are_forwarded() {
        let (mut sm, mut rt, mut am, mut st) = setup();
        sm.rules_mut().add(SwitchingRule {
            id: 455,
            priority: 0,
            constraint: Expr::gauge_gt("docked", -1.0), // always true with data
            action: Action::Migrate { component: "agent".into(), candidates: vec!["n1".into()] },
        });
        sm.board.record("dock", 1, 1.0);
        let ev = sm.tick(&mut rt, &mut BasicFactory, &mut am, &mut st, 1);
        assert!(ev.iter().any(|e| matches!(e, AdaptationEvent::Requested { rule_id: 455, .. })));
    }

    #[test]
    fn open_adaptivity_rules_tune_rules() {
        let (mut sm, mut rt, mut am, mut st) = setup();
        // A meta-rule: when flapping is detected (here: proxy gauge high),
        // relax rule 1's undock threshold so it stops firing.
        sm.rules_mut().add(SwitchingRule {
            id: 99,
            priority: 0,
            constraint: Expr::gauge_gt("docked", 0.9),
            action: Action::TuneRule { rule_id: 1, scale: 0.1 },
        });
        sm.board.record("dock", 1, 1.0); // triggers the meta-rule
        let ev = sm.tick(&mut rt, &mut BasicFactory, &mut am, &mut st, 1);
        assert!(ev.iter().any(|e| matches!(
            e,
            AdaptationEvent::Requested { rule_id: 99, action: Action::TuneRule { .. }, .. }
        )));
        // Rule 1 originally fired below 0.5; tuned by 0.1 it now needs
        // docked < 0.05, so a mild undock signal no longer switches.
        sm.board.record("dock", 2, 0.3);
        let ev = sm.tick(&mut rt, &mut BasicFactory, &mut am, &mut st, 2);
        assert!(
            !ev.iter().any(|e| matches!(e, AdaptationEvent::Switched { rule_id: 1, .. })),
            "{ev:?}"
        );
        assert_eq!(sm.mode(), "docked");
    }

    #[test]
    fn log_accumulates() {
        let (mut sm, mut rt, mut am, mut st) = setup();
        sm.board.record("dock", 1, 0.0);
        sm.tick(&mut rt, &mut BasicFactory, &mut am, &mut st, 1);
        sm.board.record("dock", 2, 1.0);
        sm.tick(&mut rt, &mut BasicFactory, &mut am, &mut st, 2);
        assert_eq!(sm.log().len(), 2);
    }
}
