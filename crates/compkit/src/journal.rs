//! The adaptation journal: a write-ahead log for transactional switches.
//!
//! The paper's Adaptivity Manager promises *transactional style
//! properties* — "the switch can be backed off if something goes wrong."
//! In-memory rollback (PR 2) honours that promise only while the node
//! stays up: a crash mid-reconfiguration used to vanish the transaction
//! along with its undo information. Following the unbundled-recovery
//! argument (Lomet et al.) this module makes recovery its own component:
//! an append-only journal of *intent → per-step redo/undo records →
//! commit/abort* that [`crate::adaptivity::AdaptivityManager`] writes
//! through, plus a replay path that provably lands the runtime in either
//! the fully-committed or the fully-rolled-back configuration — never a
//! hybrid — and is idempotent under repeated replay.
//!
//! # Record discipline
//!
//! * [`JournalRecord::Intent`] is appended when a plan begins.
//! * [`JournalRecord::Applied`] is appended *after* the runtime mutation
//!   it describes. A crash between the mutation and its record therefore
//!   loses at most one step's bookkeeping — and since the lost step was
//!   never journalled, recovery simply never redoes or undoes it; the
//!   crash model below makes this window explicit.
//! * [`JournalRecord::Undone`] marks one applied step as rolled back.
//! * [`JournalRecord::Commit`] / [`JournalRecord::Abort`] close the
//!   transaction; the journal is then truncated (checkpointed).
//!
//! # Crash model
//!
//! Crashes strike only at *record boundaries* ([`CrashSite`]s): record
//! appends are atomic, and the live runtime (the physical component
//! graph) survives the crash — what dies is the in-flight control flow.
//! [`CrashHook`] decides at each site whether the node dies there;
//! [`PlannedCrash`] scripts exactly one death at a chosen
//! [`CrashPoint`].

use crate::runtime::{LiveComponent, Runtime};
use crate::state::StateManager;
use adl::ast::Binding;
use std::collections::BTreeSet;
use std::fmt;
use std::fmt::Write as _;

/// One applied plan step, carrying everything needed to undo it. This is
/// the redo/undo payload of a [`JournalRecord::Applied`] record: the
/// forward mutation already happened when the record is written (redo is
/// therefore a no-op on replay), and [`StepRecord::undo`] reverses it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepRecord {
    /// A binding was removed.
    Unbound(Binding),
    /// A component was stopped; its full live state rides the record so
    /// rollback can resurrect it bit-for-bit.
    Stopped {
        /// Instance name.
        name: String,
        /// The component exactly as it was when stopped.
        comp: LiveComponent,
    },
    /// A component was started.
    Started {
        /// Instance name.
        name: String,
    },
    /// A binding was established.
    Bound(Binding),
}

impl StepRecord {
    /// The forward step this record describes (`unbind a -- b`, ...).
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            StepRecord::Unbound(b) => format!("unbind {} -- {}", b.from, b.to),
            StepRecord::Stopped { name, .. } => format!("stop {name}"),
            StepRecord::Started { name } => format!("start {name}"),
            StepRecord::Bound(b) => format!("bind {} -- {}", b.from, b.to),
        }
    }

    /// The rollback step that reverses this record (`rebind a -- b`,
    /// `restart x`, ...) — the exact wording fault injectors key on.
    #[must_use]
    pub fn undo_describe(&self) -> String {
        match self {
            StepRecord::Unbound(b) => format!("rebind {} -- {}", b.from, b.to),
            StepRecord::Stopped { name, .. } => format!("restart {name}"),
            StepRecord::Started { name } => format!("stop {name}"),
            StepRecord::Bound(b) => format!("unbind {} -- {}", b.from, b.to),
        }
    }

    /// Reverse this step against the live runtime. Stopped components
    /// are restarted from the state archived in the record (and the
    /// State Manager archive entry created on stop is removed so the
    /// rollback leaves no residue).
    ///
    /// # Errors
    /// The runtime's reason, if the reversal is inconsistent with the
    /// current component graph (unreachable against a healthy runtime).
    pub fn undo(&self, runtime: &mut Runtime, states: &mut StateManager) -> Result<(), String> {
        match self {
            StepRecord::Unbound(b) => runtime.bind(b.clone()).map_err(|e| e.to_string()),
            StepRecord::Stopped { name, comp } => {
                let _ = states.unarchive(name);
                runtime.start(name, comp.clone()).map_err(|e| e.to_string())
            }
            StepRecord::Started { name } => {
                runtime.stop(name).map(|_| ()).map_err(|e| e.to_string())
            }
            StepRecord::Bound(b) => runtime.unbind(b).map_err(|e| e.to_string()),
        }
    }
}

impl fmt::Display for StepRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// One append-only journal record. See the module docs for the write
/// discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A transaction began: `steps` plan steps will follow.
    Intent {
        /// Transaction id (monotonic per journal).
        txn: u64,
        /// Declared plan length.
        steps: usize,
        /// Tick the plan started at.
        at: u64,
    },
    /// Plan step `index` was applied to the runtime.
    Applied {
        /// Transaction id.
        txn: u64,
        /// Zero-based step index within the plan.
        index: usize,
        /// The redo/undo payload.
        step: StepRecord,
    },
    /// Applied step `index` was rolled back.
    Undone {
        /// Transaction id.
        txn: u64,
        /// The step index that was undone.
        index: usize,
    },
    /// The transaction committed.
    Commit {
        /// Transaction id.
        txn: u64,
    },
    /// The transaction was fully rolled back.
    Abort {
        /// Transaction id.
        txn: u64,
    },
}

impl fmt::Display for JournalRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalRecord::Intent { txn, steps, at } => {
                write!(f, "intent txn={txn} steps={steps} at={at}")
            }
            JournalRecord::Applied { txn, index, step } => {
                write!(f, "applied txn={txn} [{index}] {step}")
            }
            JournalRecord::Undone { txn, index } => write!(f, "undone txn={txn} [{index}]"),
            JournalRecord::Commit { txn } => write!(f, "commit txn={txn}"),
            JournalRecord::Abort { txn } => write!(f, "abort txn={txn}"),
        }
    }
}

/// The open (crash-interrupted) transaction a journal scan found: what
/// was applied, what of that was already undone, and whether a closing
/// record made it to the log before the crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenTxn {
    /// Transaction id.
    pub txn: u64,
    /// Declared plan length from the intent record.
    pub steps: usize,
    /// Applied steps in append order, with their plan indices.
    pub applied: Vec<(usize, StepRecord)>,
    /// Indices already rolled back before the crash.
    pub undone: BTreeSet<usize>,
    /// A commit record was written (recovery rolls forward).
    pub committed: bool,
    /// An abort record was written (rollback finished; only the
    /// checkpoint truncation was lost).
    pub aborted: bool,
}

/// The append-only write-ahead adaptation journal. One transaction is
/// open at a time; completed transactions are truncated away (the
/// checkpoint), so a non-empty journal at startup *is* the crash
/// evidence recovery replays.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdaptationJournal {
    records: Vec<JournalRecord>,
    next_txn: u64,
    appended_total: u64,
    truncations: u64,
}

impl AdaptationJournal {
    /// An empty journal.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a transaction: append its intent record, return its id.
    pub fn begin(&mut self, steps: usize, at: u64) -> u64 {
        let txn = self.next_txn;
        self.next_txn = self.next_txn.saturating_add(1);
        self.append(JournalRecord::Intent { txn, steps, at });
        txn
    }

    /// Record that plan step `index` was applied.
    pub fn applied(&mut self, txn: u64, index: usize, step: StepRecord) {
        self.append(JournalRecord::Applied { txn, index, step });
    }

    /// Record that applied step `index` was rolled back.
    pub fn undone(&mut self, txn: u64, index: usize) {
        self.append(JournalRecord::Undone { txn, index });
    }

    /// Record that the transaction committed.
    pub fn commit(&mut self, txn: u64) {
        self.append(JournalRecord::Commit { txn });
    }

    /// Record that the transaction was fully rolled back.
    pub fn abort(&mut self, txn: u64) {
        self.append(JournalRecord::Abort { txn });
    }

    /// Checkpoint: drop all records of the completed transaction. The
    /// transaction id counter survives so ids never repeat.
    pub fn truncate(&mut self) {
        self.records.clear();
        self.truncations = self.truncations.saturating_add(1);
    }

    fn append(&mut self, r: JournalRecord) {
        self.appended_total = self.appended_total.saturating_add(1);
        self.records.push(r);
    }

    /// The live (un-truncated) records, append order.
    #[must_use]
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// Number of live records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal holds no live records (a clean shutdown).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Cumulative records ever appended (saturating; survives
    /// truncation).
    #[must_use]
    pub fn appended_total(&self) -> u64 {
        self.appended_total
    }

    /// Cumulative checkpoints taken (saturating).
    #[must_use]
    pub fn truncations(&self) -> u64 {
        self.truncations
    }

    /// Scan the live records for the open transaction. `None` on an
    /// empty journal.
    #[must_use]
    pub fn open_txn(&self) -> Option<OpenTxn> {
        let mut open: Option<OpenTxn> = None;
        for r in &self.records {
            match r {
                JournalRecord::Intent { txn, steps, .. } => {
                    open = Some(OpenTxn {
                        txn: *txn,
                        steps: *steps,
                        applied: Vec::new(),
                        undone: BTreeSet::new(),
                        committed: false,
                        aborted: false,
                    });
                }
                JournalRecord::Applied { index, step, .. } => {
                    if let Some(t) = open.as_mut() {
                        t.applied.push((*index, step.clone()));
                    }
                }
                JournalRecord::Undone { index, .. } => {
                    if let Some(t) = open.as_mut() {
                        t.undone.insert(*index);
                    }
                }
                JournalRecord::Commit { .. } => {
                    if let Some(t) = open.as_mut() {
                        t.committed = true;
                    }
                }
                JournalRecord::Abort { .. } => {
                    if let Some(t) = open.as_mut() {
                        t.aborted = true;
                    }
                }
            }
        }
        open
    }

    /// A stable one-record-per-line text rendering (for goldens and
    /// diffs).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(out, "{r}");
        }
        out
    }

    /// FNV-1a digest of the rendering — the journal's golden fingerprint.
    #[must_use]
    pub fn digest(&self) -> u64 {
        obs::fnv1a(self.render().as_bytes())
    }
}

/// Where a scripted crash strikes, in transaction-lifecycle terms. The
/// conformance matrix in `scenario::crashrep` sweeps one cell per
/// variant per seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die after `after_steps` plan steps were applied and journalled
    /// (`0` = right after the intent record, before any step).
    MidPlan {
        /// Applied-step count at which the node dies.
        after_steps: usize,
    },
    /// Die after every step applied but before the commit record.
    BeforeCommit,
    /// Die after the commit record but before the checkpoint truncation.
    AfterCommit,
    /// Die during an in-flight rollback, after `after_undos` undo
    /// records.
    MidRollback {
        /// Undone-step count at which the node dies.
        after_undos: usize,
    },
    /// Die during *recovery itself*, after `after_undos` recovery undo
    /// records — the re-entrant case a second recovery must absorb.
    DuringRecovery {
        /// Recovery-undo count at which the node dies.
        after_undos: usize,
    },
}

impl CrashPoint {
    /// Does a crash planned at this point fire at `site`?
    #[must_use]
    pub fn matches(&self, site: &CrashSite) -> bool {
        match (self, site) {
            (CrashPoint::MidPlan { after_steps: 0 }, CrashSite::Intent) => true,
            (CrashPoint::MidPlan { after_steps }, CrashSite::AfterStep { index }) => {
                index + 1 == *after_steps
            }
            (CrashPoint::BeforeCommit, CrashSite::BeforeCommit)
            | (CrashPoint::AfterCommit, CrashSite::AfterCommit) => true,
            (CrashPoint::MidRollback { after_undos }, CrashSite::AfterUndo { undos })
            | (
                CrashPoint::DuringRecovery { after_undos },
                CrashSite::AfterRecoveryUndo { undos },
            ) => undos == after_undos,
            _ => false,
        }
    }
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashPoint::MidPlan { after_steps } => write!(f, "mid-plan-{after_steps}"),
            CrashPoint::BeforeCommit => write!(f, "before-commit"),
            CrashPoint::AfterCommit => write!(f, "after-commit"),
            CrashPoint::MidRollback { after_undos } => write!(f, "mid-rollback-{after_undos}"),
            CrashPoint::DuringRecovery { after_undos } => {
                write!(f, "during-recovery-{after_undos}")
            }
        }
    }
}

/// A record boundary the executing node may die at. Passed to
/// [`CrashHook::crash`] right after the corresponding record was
/// appended (appends are atomic; see the module docs' crash model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// The intent record was appended; no step has run.
    Intent,
    /// Plan step `index` was applied and journalled.
    AfterStep {
        /// Zero-based plan step index.
        index: usize,
    },
    /// All steps applied; the commit record is about to be appended.
    BeforeCommit,
    /// The commit record was appended; the checkpoint has not run.
    AfterCommit,
    /// `undos` rollback records appended during an in-flight rollback.
    AfterUndo {
        /// Undo count so far (1-based).
        undos: usize,
    },
    /// `undos` rollback records appended *by recovery*.
    AfterRecoveryUndo {
        /// Recovery-undo count so far (1-based).
        undos: usize,
    },
}

/// Decides, at each [`CrashSite`], whether the node dies there. The
/// default answer everywhere is "no"; fault harnesses override it.
pub trait CrashHook: fmt::Debug {
    /// Return `true` to kill the node at `site`.
    fn crash(&mut self, _site: &CrashSite) -> bool {
        false
    }
}

/// The default hook: the node never crashes.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCrash;

impl CrashHook for NoCrash {}

/// Kills the node exactly once, at the first site matching a scripted
/// [`CrashPoint`].
#[derive(Debug, Clone)]
pub struct PlannedCrash {
    point: CrashPoint,
    fired: bool,
}

impl PlannedCrash {
    /// A crash scripted at `point`.
    #[must_use]
    pub fn new(point: CrashPoint) -> Self {
        Self { point, fired: false }
    }

    /// Whether the crash has fired.
    #[must_use]
    pub fn fired(&self) -> bool {
        self.fired
    }
}

impl CrashHook for PlannedCrash {
    fn crash(&mut self, site: &CrashSite) -> bool {
        if !self.fired && self.point.matches(site) {
            self.fired = true;
            return true;
        }
        false
    }
}

/// What a [`crate::adaptivity::AdaptivityManager::recover`] replay did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// The journal was empty: nothing to recover, nothing was touched.
    Clean,
    /// A commit record was found: the runtime already held the committed
    /// configuration; recovery checkpointed it.
    RolledForward,
    /// No commit record: every applied-not-yet-undone step was reversed
    /// and the transaction aborted.
    RolledBack,
    /// Recovery itself was killed mid-replay (a scripted
    /// [`CrashPoint::DuringRecovery`]); the journal stays open and a
    /// further recovery finishes the job.
    Crashed,
    /// The runtime refused an undo (unreachable against a healthy
    /// runtime); the journal stays open with the residue reported.
    Incomplete,
}

impl fmt::Display for RecoveryOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecoveryOutcome::Clean => "clean",
            RecoveryOutcome::RolledForward => "rolled-forward",
            RecoveryOutcome::RolledBack => "rolled-back",
            RecoveryOutcome::Crashed => "crashed",
            RecoveryOutcome::Incomplete => "incomplete",
        })
    }
}

/// The receipt a recovery replay returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// What the replay did.
    pub outcome: RecoveryOutcome,
    /// Journal records scanned.
    pub records_scanned: usize,
    /// Steps undone by this replay.
    pub undone: usize,
    /// Undo steps the runtime refused (empty on every healthy path).
    pub residue: Vec<String>,
}

impl RecoveryReport {
    /// Whether the replay found nothing to do (the idempotence witness:
    /// a second recovery must report this).
    #[must_use]
    pub fn noop(&self) -> bool {
        self.outcome == RecoveryOutcome::Clean && self.undone == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bind(from: &str, to: &str) -> Binding {
        Binding { from: adl::ast::PortRef::on(from, "p"), to: adl::ast::PortRef::on(to, "q") }
    }

    #[test]
    fn journal_records_render_and_scan_round_trip() {
        let mut j = AdaptationJournal::new();
        let txn = j.begin(2, 7);
        j.applied(txn, 0, StepRecord::Unbound(bind("a", "b")));
        j.applied(txn, 1, StepRecord::Started { name: "c".into() });
        j.undone(txn, 1);
        let open = j.open_txn().expect("txn is open");
        assert_eq!(open.txn, txn);
        assert_eq!(open.steps, 2);
        assert_eq!(open.applied.len(), 2);
        assert!(open.undone.contains(&1));
        assert!(!open.committed && !open.aborted);
        let text = j.render();
        assert!(text.contains("intent txn=0 steps=2 at=7"), "{text}");
        assert!(text.contains("applied txn=0 [0] unbind a.p -- b.q"), "{text}");
        assert!(text.contains("undone txn=0 [1]"), "{text}");
    }

    #[test]
    fn truncation_checkpoints_but_txn_ids_never_repeat() {
        let mut j = AdaptationJournal::new();
        let t0 = j.begin(0, 0);
        j.commit(t0);
        j.truncate();
        assert!(j.is_empty());
        assert_eq!(j.open_txn(), None);
        let t1 = j.begin(0, 1);
        assert!(t1 > t0, "ids are monotonic across checkpoints");
        assert_eq!(j.appended_total(), 3, "appends survive truncation");
        assert_eq!(j.truncations(), 1);
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let mut a = AdaptationJournal::new();
        let mut b = AdaptationJournal::new();
        let ta = a.begin(1, 3);
        let tb = b.begin(1, 3);
        a.applied(ta, 0, StepRecord::Started { name: "x".into() });
        b.applied(tb, 0, StepRecord::Started { name: "x".into() });
        assert_eq!(a.digest(), b.digest());
        b.commit(tb);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn planned_crash_fires_once_at_its_point_only() {
        let mut c = PlannedCrash::new(CrashPoint::MidPlan { after_steps: 2 });
        assert!(!c.crash(&CrashSite::Intent));
        assert!(!c.crash(&CrashSite::AfterStep { index: 0 }));
        assert!(c.crash(&CrashSite::AfterStep { index: 1 }), "fires after step 2");
        assert!(c.fired());
        assert!(!c.crash(&CrashSite::AfterStep { index: 1 }), "fires at most once");

        let mut at_intent = PlannedCrash::new(CrashPoint::MidPlan { after_steps: 0 });
        assert!(at_intent.crash(&CrashSite::Intent), "mid-plan-0 dies right after intent");
        let mut rec = PlannedCrash::new(CrashPoint::DuringRecovery { after_undos: 1 });
        assert!(!rec.crash(&CrashSite::AfterUndo { undos: 1 }), "recovery point ignores rollback");
        assert!(rec.crash(&CrashSite::AfterRecoveryUndo { undos: 1 }));
    }

    #[test]
    fn crash_points_render_their_matrix_names() {
        let names: Vec<String> = [
            CrashPoint::MidPlan { after_steps: 1 },
            CrashPoint::BeforeCommit,
            CrashPoint::AfterCommit,
            CrashPoint::MidRollback { after_undos: 1 },
            CrashPoint::DuringRecovery { after_undos: 2 },
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        assert_eq!(
            names,
            ["mid-plan-1", "before-commit", "after-commit", "mid-rollback-1", "during-recovery-2"]
        );
    }

    #[test]
    fn appended_total_saturates_at_the_ceiling() {
        let mut j = AdaptationJournal { appended_total: u64::MAX, ..AdaptationJournal::new() };
        j.begin(0, 0);
        assert_eq!(j.appended_total(), u64::MAX, "cumulative counters saturate, never wrap");
    }

    #[test]
    fn undo_reverses_each_step_kind() {
        use crate::runtime::Runtime;
        let mut rt = Runtime::new();
        let mut sm = StateManager::new();
        let comp = LiveComponent { ty: "T".into(), state: b"s".to_vec(), started_at: 4 };
        rt.start("a", comp.clone()).unwrap();
        rt.start("b", LiveComponent { ty: "U".into(), state: Vec::new(), started_at: 4 }).unwrap();
        let b = bind("a", "b");
        rt.bind(b.clone()).unwrap();

        // Bound undo removes the binding; Unbound undo restores it.
        StepRecord::Bound(b.clone()).undo(&mut rt, &mut sm).unwrap();
        assert!(rt.bindings().is_empty());
        StepRecord::Unbound(b.clone()).undo(&mut rt, &mut sm).unwrap();
        assert_eq!(rt.bindings().len(), 1);

        // Started undo stops; Stopped undo restarts with archived state.
        rt.unbind(&b).unwrap();
        StepRecord::Started { name: "a".into() }.undo(&mut rt, &mut sm).unwrap();
        assert!(rt.component("a").is_none());
        StepRecord::Stopped { name: "a".into(), comp: comp.clone() }
            .undo(&mut rt, &mut sm)
            .unwrap();
        assert_eq!(rt.component("a"), Some(&comp), "state restored bit-for-bit");
    }
}
