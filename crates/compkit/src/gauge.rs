//! Gauges: lightweight aggregation over monitors.
//!
//! > "A session manager is fed information from monitors or gauges (which
//! > aggregate raw monitor data for more lightweight processing)."
//!
//! A gauge names a monitor and an aggregation. [`GaugeKind::Slope`] is the
//! "trend analysis" the paper uses to *anticipate* flash crowds: a positive
//! slope on the request-rate monitor fires the spread-processing rule before
//! the server saturates.

use crate::monitor::Monitor;
use std::collections::BTreeMap;

/// How a gauge aggregates its monitor's readings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GaugeKind {
    /// The most recent value.
    Latest,
    /// Arithmetic mean of the last `n` readings.
    WindowMean(usize),
    /// Exponentially weighted moving average with smoothing factor `alpha`
    /// in (0, 1]; higher alpha follows the signal faster.
    Ewma(f64),
    /// Maximum of the last `n` readings.
    WindowMax(usize),
    /// Least-squares slope (value per tick) over the last `n` readings —
    /// trend analysis.
    Slope(usize),
}

/// A named gauge bound to a monitor.
#[derive(Debug, Clone)]
pub struct Gauge {
    /// The gauge's name, referenced by rule expressions.
    pub name: String,
    /// The monitor it reads.
    pub monitor: String,
    /// The aggregation.
    pub kind: GaugeKind,
}

impl Gauge {
    /// Evaluate the gauge against its monitor. `None` when the monitor has
    /// too few readings to aggregate.
    #[must_use]
    pub fn evaluate(&self, m: &Monitor) -> Option<f64> {
        match self.kind {
            GaugeKind::Latest => m.latest().map(|r| r.value),
            GaugeKind::WindowMean(n) => {
                let w = m.window(n);
                if w.is_empty() {
                    None
                } else {
                    Some(w.iter().map(|r| r.value).sum::<f64>() / w.len() as f64)
                }
            }
            GaugeKind::Ewma(alpha) => {
                let w = m.window(usize::MAX);
                let mut acc: Option<f64> = None;
                for r in w {
                    acc = Some(match acc {
                        None => r.value,
                        Some(prev) => alpha * r.value + (1.0 - alpha) * prev,
                    });
                }
                acc
            }
            GaugeKind::WindowMax(n) => m
                .window(n)
                .iter()
                .map(|r| r.value)
                .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v)))),
            GaugeKind::Slope(n) => {
                let w = m.window(n);
                if w.len() < 2 {
                    return None;
                }
                let len = w.len() as f64;
                let mean_x = w.iter().map(|r| r.tick as f64).sum::<f64>() / len;
                let mean_y = w.iter().map(|r| r.value).sum::<f64>() / len;
                let num: f64 =
                    w.iter().map(|r| (r.tick as f64 - mean_x) * (r.value - mean_y)).sum();
                let den: f64 = w.iter().map(|r| (r.tick as f64 - mean_x).powi(2)).sum();
                if den == 0.0 {
                    None
                } else {
                    Some(num / den)
                }
            }
        }
    }
}

/// A board of monitors and the gauges over them — the data source for rule
/// evaluation.
#[derive(Debug, Clone, Default)]
pub struct GaugeBoard {
    monitors: BTreeMap<String, Monitor>,
    gauges: Vec<Gauge>,
}

impl GaugeBoard {
    /// An empty board.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or replace) a monitor.
    pub fn add_monitor(&mut self, m: Monitor) {
        self.monitors.insert(m.name().to_owned(), m);
    }

    /// Add a gauge. Later gauges with the same name shadow earlier ones.
    pub fn add_gauge(&mut self, g: Gauge) {
        self.gauges.retain(|e| e.name != g.name);
        self.gauges.push(g);
    }

    /// Push a reading into a named monitor; ignored if absent.
    pub fn record(&mut self, monitor: &str, tick: u64, value: f64) {
        if let Some(m) = self.monitors.get_mut(monitor) {
            m.push(tick, value);
        }
    }

    /// Evaluate one gauge by name.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let g = self.gauges.iter().find(|g| g.name == name)?;
        let m = self.monitors.get(&g.monitor)?;
        g.evaluate(m)
    }

    /// Evaluate all gauges.
    #[must_use]
    pub fn snapshot(&self) -> BTreeMap<String, f64> {
        self.gauges
            .iter()
            .filter_map(|g| {
                let v = self.monitors.get(&g.monitor).and_then(|m| g.evaluate(m))?;
                Some((g.name.clone(), v))
            })
            .collect()
    }

    /// Direct access to a monitor (for tests and environments).
    #[must_use]
    pub fn monitor(&self, name: &str) -> Option<&Monitor> {
        self.monitors.get(name)
    }

    /// Feed a batch of named readings into the board's monitors at `tick`
    /// — the registry-to-board bridge: an observability registry exposes
    /// its gauges (name, latest value) and the board's monitors whose
    /// names match ingest them, so the paper's monitors→gauges pipeline
    /// runs on real telemetry instead of hand-fed readings. Readings with
    /// no matching monitor are ignored, like [`GaugeBoard::record`].
    pub fn ingest_gauges<'a>(&mut self, readings: impl Iterator<Item = (&'a str, f64)>, tick: u64) {
        for (name, value) in readings {
            self.record(name, tick, value);
        }
    }

    /// Re-sample every monitor up to `tick`, carrying each one's latest
    /// reading forward through the gap
    /// ([`Monitor::fill_forward`]). An event-driven sampler that skips
    /// quiescent ticks calls this at the next event boundary; without it,
    /// windowed gauges (means, slopes) silently aggregate over a
    /// compressed timeline and drift from the per-tick reference.
    pub fn resample(&mut self, tick: u64) {
        for m in self.monitors.values_mut() {
            m.fill_forward(tick);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mon(values: &[f64]) -> Monitor {
        let mut m = Monitor::new("m", 64);
        for (t, &v) in values.iter().enumerate() {
            m.push(t as u64, v);
        }
        m
    }

    fn gauge(kind: GaugeKind) -> Gauge {
        Gauge { name: "g".into(), monitor: "m".into(), kind }
    }

    #[test]
    fn latest_and_mean() {
        let m = mon(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(gauge(GaugeKind::Latest).evaluate(&m), Some(4.0));
        assert_eq!(gauge(GaugeKind::WindowMean(2)).evaluate(&m), Some(3.5));
        assert_eq!(gauge(GaugeKind::WindowMean(10)).evaluate(&m), Some(2.5));
    }

    #[test]
    fn ewma_follows_signal() {
        let m = mon(&[0.0, 0.0, 10.0]);
        let v = gauge(GaugeKind::Ewma(0.5)).evaluate(&m).unwrap();
        assert!((v - 5.0).abs() < 1e-9);
    }

    #[test]
    fn max_over_window() {
        let m = mon(&[5.0, 9.0, 2.0]);
        assert_eq!(gauge(GaugeKind::WindowMax(2)).evaluate(&m), Some(9.0));
        assert_eq!(gauge(GaugeKind::WindowMax(1)).evaluate(&m), Some(2.0));
    }

    #[test]
    fn slope_detects_trend() {
        let up = mon(&[1.0, 2.0, 3.0, 4.0]);
        let v = gauge(GaugeKind::Slope(4)).evaluate(&up).unwrap();
        assert!((v - 1.0).abs() < 1e-9);
        let flat = mon(&[3.0, 3.0, 3.0]);
        assert_eq!(gauge(GaugeKind::Slope(3)).evaluate(&flat), Some(0.0));
    }

    #[test]
    fn empty_monitor_yields_none() {
        let m = Monitor::new("m", 4);
        for kind in [
            GaugeKind::Latest,
            GaugeKind::WindowMean(3),
            GaugeKind::Ewma(0.3),
            GaugeKind::WindowMax(3),
            GaugeKind::Slope(3),
        ] {
            assert_eq!(gauge(kind).evaluate(&m), None, "{kind:?}");
        }
    }

    #[test]
    fn slope_needs_two_points() {
        let m = mon(&[5.0]);
        assert_eq!(gauge(GaugeKind::Slope(5)).evaluate(&m), None);
    }

    #[test]
    fn board_snapshot() {
        let mut b = GaugeBoard::new();
        b.add_monitor(Monitor::new("cpu", 8));
        b.add_gauge(Gauge {
            name: "cpu_now".into(),
            monitor: "cpu".into(),
            kind: GaugeKind::Latest,
        });
        b.add_gauge(Gauge {
            name: "cpu_avg".into(),
            monitor: "cpu".into(),
            kind: GaugeKind::WindowMean(4),
        });
        b.record("cpu", 0, 0.2);
        b.record("cpu", 1, 0.8);
        let snap = b.snapshot();
        assert_eq!(snap["cpu_now"], 0.8);
        assert_eq!(snap["cpu_avg"], 0.5);
        assert_eq!(b.gauge_value("cpu_now"), Some(0.8));
        assert_eq!(b.gauge_value("missing"), None);
    }

    #[test]
    fn records_to_unknown_monitor_are_ignored() {
        let mut b = GaugeBoard::new();
        b.record("ghost", 0, 1.0);
        assert!(b.snapshot().is_empty());
    }

    #[test]
    fn zero_width_windows_yield_none() {
        // A window of 0 readings aggregates nothing — it must be None, not
        // a NaN mean or a panic.
        let m = mon(&[1.0, 2.0, 3.0]);
        assert_eq!(gauge(GaugeKind::WindowMean(0)).evaluate(&m), None);
        assert_eq!(gauge(GaugeKind::WindowMax(0)).evaluate(&m), None);
        assert_eq!(gauge(GaugeKind::Slope(0)).evaluate(&m), None);
        assert_eq!(gauge(GaugeKind::Slope(1)).evaluate(&m), None);
    }

    #[test]
    fn window_exactly_at_reading_count_is_the_full_history() {
        let m = mon(&[2.0, 4.0, 6.0]);
        assert_eq!(gauge(GaugeKind::WindowMean(3)).evaluate(&m), Some(4.0));
        assert_eq!(gauge(GaugeKind::WindowMax(3)).evaluate(&m), Some(6.0));
        // One more than available behaves identically, not out-of-bounds.
        assert_eq!(gauge(GaugeKind::WindowMean(4)).evaluate(&m), Some(4.0));
    }

    #[test]
    fn slope_with_exactly_two_points_is_the_secant() {
        let mut m = Monitor::new("m", 8);
        m.push(10, 1.0);
        m.push(12, 5.0);
        let v = gauge(GaugeKind::Slope(2)).evaluate(&m).unwrap();
        assert!((v - 2.0).abs() < 1e-9, "rise 4 over run 2 ticks, got {v}");
    }

    #[test]
    fn slope_over_identical_ticks_is_none_not_infinite() {
        // Two readings in the same tick: zero run. Division must not occur.
        let mut m = Monitor::new("m", 8);
        m.push(5, 1.0);
        m.push(5, 9.0);
        assert_eq!(gauge(GaugeKind::Slope(2)).evaluate(&m), None);
    }

    #[test]
    fn ewma_alpha_one_tracks_latest_exactly() {
        let m = mon(&[3.0, 7.0, 2.0]);
        assert_eq!(gauge(GaugeKind::Ewma(1.0)).evaluate(&m), Some(2.0));
    }

    #[test]
    fn saturated_monitor_ring_keeps_only_the_newest_readings() {
        // The bounded ring saturates: pushes beyond capacity evict the
        // oldest readings, and every gauge aggregates the survivors only.
        let mut m = Monitor::new("m", 3);
        for (t, v) in [(0, 100.0), (1, 1.0), (2, 2.0), (3, 3.0)] {
            m.push(t, v);
        }
        assert_eq!(gauge(GaugeKind::WindowMax(10)).evaluate(&m), Some(3.0));
        assert_eq!(gauge(GaugeKind::WindowMean(10)).evaluate(&m), Some(2.0));
        assert_eq!(gauge(GaugeKind::Latest).evaluate(&m), Some(3.0));
    }

    /// Regression for the per-tick gauge drift: a sampler that skips
    /// quiescent ticks and records only at event boundaries compresses
    /// the timeline under windowed gauges — the old behaviour made a
    /// mean over "the last 6 readings" span 60 real ticks and a slope
    /// see a cliff where there was a plateau. Re-sampling at the event
    /// boundary (`resample`) must restore the exact per-tick values.
    #[test]
    fn resample_keeps_windowed_gauges_cumulative_consistent_across_skips() {
        let build = || {
            let mut b = GaugeBoard::new();
            b.add_monitor(Monitor::new("cpu", 16));
            b.add_gauge(Gauge {
                name: "mean".into(),
                monitor: "cpu".into(),
                kind: GaugeKind::WindowMean(6),
            });
            b.add_gauge(Gauge {
                name: "trend".into(),
                monitor: "cpu".into(),
                kind: GaugeKind::Slope(6),
            });
            b
        };
        // The signal: busy at 0.9 through tick 5, idle (0.0) at tick 6,
        // then nothing happens until a new burst at tick 40.
        let busy = |t: u64| if t <= 5 { 0.9 } else { 0.0 };

        // Reference: sampled every tick, like the legacy loop.
        let mut reference = build();
        for t in 1..=40 {
            reference.record("cpu", t, if t < 40 { busy(t) } else { 0.8 });
        }

        // Naive event-driven sampling: ticks 7..=39 are skipped outright.
        let mut naive = build();
        for t in 1..=6 {
            naive.record("cpu", t, busy(t));
        }
        naive.record("cpu", 40, 0.8);
        assert_ne!(
            naive.snapshot(),
            reference.snapshot(),
            "skipping ticks without re-sampling must be observably wrong \
             (otherwise this regression test guards nothing)"
        );

        // Fixed: the same skip, but the gap is re-sampled at the boundary
        // before the new reading lands.
        let mut fixed = build();
        for t in 1..=6 {
            fixed.record("cpu", t, busy(t));
        }
        fixed.resample(39);
        fixed.record("cpu", 40, 0.8);
        assert_eq!(fixed.snapshot(), reference.snapshot());
    }

    /// The storage-engine variant of the drift regression: a quiescent
    /// window in which the *only* activity is buffer-pool page flushes.
    /// Flushes are background IO — they change no monitored signal, so
    /// an event-driven sampler rightly skips the whole window. But the
    /// windowed gauges still span real time: without `resample` at the
    /// window's far edge, the post-flush reading lands adjacent to the
    /// pre-flush history, a 24-tick plateau collapses to nothing, and
    /// the slope gauge reports a cliff that would spuriously fire the
    /// spread-processing rule the moment serving resumes.
    #[test]
    fn resample_prevents_drift_across_a_page_flush_only_quiescent_window() {
        let build = || {
            let mut b = GaugeBoard::new();
            b.add_monitor(Monitor::new("cpu", 32));
            b.add_gauge(Gauge {
                name: "mean".into(),
                monitor: "cpu".into(),
                kind: GaugeKind::WindowMean(8),
            });
            b.add_gauge(Gauge {
                name: "trend".into(),
                monitor: "cpu".into(),
                kind: GaugeKind::Slope(8),
            });
            b.add_gauge(Gauge {
                name: "now".into(),
                monitor: "cpu".into(),
                kind: GaugeKind::Latest,
            });
            b
        };
        // Serving ramps down by tick 6 to the flush-only floor (0.1: the
        // writeback worker), holds there through tick 30 while dirty
        // pages drain, then a request burst lands at tick 31.
        let signal = |t: u64| match t {
            0..=5 => 0.9 - 0.1 * t as f64,
            6..=30 => 0.1,
            _ => 0.85,
        };

        // Reference: the legacy loop samples every tick, flushes or not.
        let mut reference = build();
        for t in 1..=31 {
            reference.record("cpu", t, signal(t));
        }

        // Event-driven: ticks 7..=30 are flush-only, so the sampler
        // records nothing there. Without re-sampling the gauges drift…
        let mut naive = build();
        for t in 1..=6 {
            naive.record("cpu", t, signal(t));
        }
        naive.record("cpu", 31, signal(31));
        assert_ne!(
            naive.snapshot(),
            reference.snapshot(),
            "a skipped flush window must be observably wrong un-resampled, \
             or this test gates nothing"
        );

        // …and with `resample` at the window's far edge they agree with
        // the per-tick reference exactly.
        let mut fixed = build();
        for t in 1..=6 {
            fixed.record("cpu", t, signal(t));
        }
        fixed.resample(30);
        fixed.record("cpu", 31, signal(31));
        assert_eq!(
            fixed.snapshot(),
            reference.snapshot(),
            "re-sampled gauges must not drift across a page-flush-only window"
        );
    }

    #[test]
    fn ingest_gauges_feeds_matching_monitors_only() {
        let mut b = GaugeBoard::new();
        b.add_monitor(Monitor::new("cpu:node1", 8));
        b.add_gauge(Gauge {
            name: "util:node1".into(),
            monitor: "cpu:node1".into(),
            kind: GaugeKind::Latest,
        });
        let readings = [("cpu:node1", 0.7), ("cpu:ghost", 0.9)];
        b.ingest_gauges(readings.iter().map(|&(n, v)| (n, v)), 1);
        assert_eq!(b.gauge_value("util:node1"), Some(0.7));
        assert!(b.monitor("cpu:ghost").is_none(), "unmatched readings are dropped");
    }
}
