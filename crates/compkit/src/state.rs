//! The State Manager: safe points and state archival.
//!
//! > "The original query plan included safe points which allow the system to
//! > stop streaming at a safe time and continue the other version's stream."
//! > — Scenario 2
//!
//! > "The adaptivity manager brings the query to a consistent state
//! > maintained by the State Manager component. The query then continues
//! > from this point." — Scenario 3
//!
//! A [`SafePoint`] is a named, consistent snapshot of a component's state
//! at a known progress mark. The State Manager archives safe points so a
//! switch (or a migration, or a device failure) can resume from the most
//! recent one rather than restarting.

use std::collections::BTreeMap;

/// A consistent snapshot of one component's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafePoint {
    /// The component it belongs to.
    pub component: String,
    /// Monotonic progress mark (e.g. stream offset, tuples consumed).
    pub progress: u64,
    /// Tick at which it was taken.
    pub taken_at: u64,
    /// The state bytes.
    pub state: Vec<u8>,
}

/// The State Manager: an archive of the latest safe point per component,
/// plus stopped-component state (for rollback and migration).
#[derive(Debug, Clone, Default)]
pub struct StateManager {
    safe_points: BTreeMap<String, SafePoint>,
    archived: BTreeMap<String, Vec<u8>>,
}

impl StateManager {
    /// An empty state manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a safe point. Older safe points for the same component are
    /// replaced only by *newer progress* — a late-arriving stale snapshot
    /// must not roll progress backwards.
    ///
    /// Returns whether the safe point was accepted.
    pub fn record(&mut self, sp: SafePoint) -> bool {
        match self.safe_points.get(&sp.component) {
            Some(prev) if prev.progress > sp.progress => false,
            _ => {
                self.safe_points.insert(sp.component.clone(), sp);
                true
            }
        }
    }

    /// The latest safe point for a component.
    #[must_use]
    pub fn latest(&self, component: &str) -> Option<&SafePoint> {
        self.safe_points.get(component)
    }

    /// Archive a stopped component's final state (for rollback/migration).
    pub fn archive(&mut self, component: &str, state: Vec<u8>) {
        self.archived.insert(component.to_owned(), state);
    }

    /// Take archived state back out (e.g. to restart the component on
    /// another node). Removes it from the archive.
    #[must_use]
    pub fn unarchive(&mut self, component: &str) -> Option<Vec<u8>> {
        self.archived.remove(component)
    }

    /// Drop any safe point for a component (it was retired for good).
    pub fn forget(&mut self, component: &str) {
        self.safe_points.remove(component);
        self.archived.remove(component);
    }

    /// Number of components with safe points.
    #[must_use]
    pub fn tracked(&self) -> usize {
        self.safe_points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(component: &str, progress: u64, bytes: &[u8]) -> SafePoint {
        SafePoint {
            component: component.to_owned(),
            progress,
            taken_at: progress,
            state: bytes.to_vec(),
        }
    }

    #[test]
    fn record_and_fetch_latest() {
        let mut sm = StateManager::new();
        assert!(sm.record(sp("join", 10, b"ten")));
        assert!(sm.record(sp("join", 20, b"twenty")));
        assert_eq!(sm.latest("join").unwrap().state, b"twenty");
        assert_eq!(sm.tracked(), 1);
    }

    #[test]
    fn stale_safe_point_is_rejected() {
        let mut sm = StateManager::new();
        assert!(sm.record(sp("stream", 100, b"far")));
        assert!(!sm.record(sp("stream", 50, b"behind")), "must not roll back");
        assert_eq!(sm.latest("stream").unwrap().progress, 100);
    }

    #[test]
    fn equal_progress_overwrites() {
        let mut sm = StateManager::new();
        assert!(sm.record(sp("c", 5, b"a")));
        assert!(sm.record(sp("c", 5, b"b")), "same progress, fresher snapshot wins");
        assert_eq!(sm.latest("c").unwrap().state, b"b");
    }

    #[test]
    fn archive_roundtrip() {
        let mut sm = StateManager::new();
        sm.archive("agent", b"processing-state".to_vec());
        assert_eq!(sm.unarchive("agent"), Some(b"processing-state".to_vec()));
        assert_eq!(sm.unarchive("agent"), None, "archive is take-once");
    }

    #[test]
    fn forget_clears_everything() {
        let mut sm = StateManager::new();
        sm.record(sp("c", 1, b"x"));
        sm.archive("c", b"y".to_vec());
        sm.forget("c");
        assert!(sm.latest("c").is_none());
        assert_eq!(sm.unarchive("c"), None);
        assert_eq!(sm.tracked(), 0);
    }
}
