//! planlint — static analysis of reconfiguration plans.
//!
//! SISR proves component *text* safe before it runs; planlint is the same
//! prove-before-run move one layer up, for reconfiguration *plans*. Before
//! the Adaptivity Manager burns cycles executing (journalling, then maybe
//! rolling back) a SWITCH, the linter computes each plan's atom read/write
//! sets and rejects statically-detectable disasters:
//!
//! * **cross-plan conflicts** — two pending plans touch the same atom and
//!   at least one writes it, so their serialisation order changes the
//!   outcome ([`PlanDiagnosticKind::CrossPlanConflict`]);
//! * **lock-order cycles** — plans first-touch shared atoms in
//!   incompatible orders, the classic deadlock shape
//!   ([`PlanDiagnosticKind::LockOrderCycle`]);
//! * **undo-incomplete steps** — a step whose inverse is missing or
//!   ambiguous, which today only surfaces as a *runtime* rollback failure
//!   ([`PlanDiagnosticKind::UndoIncomplete`]);
//! * **dangling bindings** — a bind/unbind endpoint on an instance the
//!   same plan removes or has not yet started
//!   ([`PlanDiagnosticKind::DanglingBinding`]);
//! * **binding cycles** — the plan's new bindings wire its instances into
//!   a service-dependency cycle ([`PlanDiagnosticKind::BindingCycle`]).
//!
//! The report has the same collect-all structured-diagnostic shape as
//! SISR's `VerifyReport`: every finding is gathered (never just the
//! first), diagnostics are emitted in a deterministic order (plan index,
//! then check order, then atom order — no hash-map iteration anywhere),
//! and severity separates hard errors from advisory warnings.
//!
//! The linter is deliberately *intrinsic*: it sees only the plans, never
//! the runtime, so everything it rejects is wrong in every runtime.
//! Runtime-dependent inconsistencies (stopping a component that does not
//! exist, binding to a never-started instance) still surface as
//! [`crate::SwitchError::Inconsistent`] at execution time.

use adl::analysis::find_cycle;
use adl::ast::{Binding, PortRef};
use adl::diff::ReconfigurationPlan;
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; the Adaptivity Manager will still execute the plan.
    Warning,
    /// The plan must not run ([`crate::AdaptivityManager`] refuses it).
    Error,
}

/// What planlint proved about a plan (or a set of plans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanDiagnosticKind {
    /// Two plans touch `atoms` and at least one side writes: executing
    /// them concurrently (or in either order) is not serialisable.
    CrossPlanConflict {
        /// The other plan's index in the linted set.
        other: usize,
        /// The contended atoms, sorted and rendered.
        atoms: Vec<String>,
    },
    /// The plans' first-touch orders over shared atoms are incompatible —
    /// no global lock order exists, so concurrent execution can deadlock.
    LockOrderCycle {
        /// The cycle over atoms, rendered `a -> b -> a`.
        cycle: String,
    },
    /// A step's inverse is missing or ambiguous, so a rollback (or crash
    /// recovery) could not restore the prior configuration.
    UndoIncomplete {
        /// The offending step, rendered.
        step: String,
        /// Why its inverse cannot be trusted.
        why: String,
    },
    /// A bind/unbind endpoint rides an instance this same plan stops (and
    /// never restarts) or has not started yet at that point in the order.
    DanglingBinding {
        /// The binding, rendered `from -- to`.
        binding: String,
        /// The endpoint instance that dangles.
        instance: String,
    },
    /// The plan's new bindings form a service-dependency cycle among its
    /// instances: no valid start-up order exists.
    BindingCycle {
        /// The cycle, rendered `a -> b -> a`.
        cycle: String,
    },
}

impl fmt::Display for PlanDiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanDiagnosticKind::CrossPlanConflict { other, atoms } => {
                write!(f, "conflicts with plan {other} on {}", atoms.join(", "))
            }
            PlanDiagnosticKind::LockOrderCycle { cycle } => {
                write!(f, "lock-order cycle: {cycle}")
            }
            PlanDiagnosticKind::UndoIncomplete { step, why } => {
                write!(f, "step `{step}` has no usable inverse: {why}")
            }
            PlanDiagnosticKind::DanglingBinding { binding, instance } => {
                write!(f, "binding `{binding}` dangles on `{instance}`")
            }
            PlanDiagnosticKind::BindingCycle { cycle } => {
                write!(f, "binding cycle: {cycle}")
            }
        }
    }
}

/// One finding, tied to the plan it is about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanDiagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Index of the plan in the linted set (`None` for set-level findings
    /// like a lock-order cycle, which no single plan owns).
    pub plan: Option<usize>,
    /// What was proved.
    pub kind: PlanDiagnosticKind,
}

impl fmt::Display for PlanDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        match self.plan {
            Some(p) => write!(f, "[{sev}] plan {p}: {}", self.kind),
            None => write!(f, "[{sev}] plans: {}", self.kind),
        }
    }
}

/// The collect-all result of linting a set of plans. Mirrors SISR's
/// `VerifyReport`: all findings, deterministically ordered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanLintReport {
    /// Every finding, in (plan, check, atom) order.
    pub diagnostics: Vec<PlanDiagnostic>,
    /// Plans examined.
    pub plans: usize,
    /// Total steps examined across those plans.
    pub steps: usize,
}

impl PlanLintReport {
    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &PlanDiagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Whether any finding is Error severity (the Adaptivity Manager's
    /// refusal criterion, and the CI `lint-plans` gate's failure criterion).
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether the set is entirely clean (no findings at all).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

impl fmt::Display for PlanLintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let errors = self.errors().count();
        writeln!(
            f,
            "{} plan(s), {} step(s): {} error(s), {} warning(s)",
            self.plans,
            self.steps,
            errors,
            self.diagnostics.len() - errors
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// The read/write footprint of one plan, in first-touch (acquisition)
/// order. Atoms are rendered strings — `inst:<name>` for component
/// instances, `bind:<from>--<to>` for bindings — so the same cycle finder
/// the ADL analyser uses applies unchanged.
#[derive(Debug, Clone, Default)]
struct Footprint {
    /// Atoms written (stopped/started instances, bound/unbound bindings).
    writes: Vec<String>,
    /// Atoms read (endpoint instances of bound/unbound bindings).
    reads: Vec<String>,
    /// Every atom in first-touch order (a transactional switch holds all
    /// its locks to commit, so acquisition order is first touch).
    order: Vec<String>,
}

impl Footprint {
    fn touch(&mut self, atom: String, write: bool) {
        if !self.order.contains(&atom) {
            self.order.push(atom.clone());
        }
        let set = if write { &mut self.writes } else { &mut self.reads };
        if !set.contains(&atom) {
            set.push(atom);
        }
    }
}

fn inst_atom(name: &str) -> String {
    format!("inst:{name}")
}

fn bind_atom(b: &Binding) -> String {
    format!("bind:{}--{}", b.from, b.to)
}

fn endpoint(r: &PortRef) -> Option<&str> {
    r.instance.as_deref()
}

/// Compute a plan's footprint, walking steps in execution order
/// (unbind → stop → start → bind).
fn footprint(plan: &ReconfigurationPlan) -> Footprint {
    let mut fp = Footprint::default();
    for b in &plan.unbind {
        fp.touch(bind_atom(b), true);
        for r in [&b.from, &b.to] {
            if let Some(i) = endpoint(r) {
                fp.touch(inst_atom(i), false);
            }
        }
    }
    for (name, _) in &plan.stop {
        fp.touch(inst_atom(name), true);
    }
    for (name, _) in &plan.start {
        fp.touch(inst_atom(name), true);
    }
    for b in &plan.bind {
        fp.touch(bind_atom(b), true);
        for r in [&b.from, &b.to] {
            if let Some(i) = endpoint(r) {
                fp.touch(inst_atom(i), false);
            }
        }
    }
    fp
}

/// The static reconfiguration-plan linter. Stateless; construct one and
/// lint as many plan sets as you like.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanLinter;

impl PlanLinter {
    /// A fresh linter.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Lint a single plan in isolation: the intrinsic checks only
    /// (undo-completeness, dangling endpoints, binding cycles). This is
    /// what the Adaptivity Manager runs before every switch.
    #[must_use]
    pub fn lint_one(&self, plan: &ReconfigurationPlan) -> PlanLintReport {
        self.lint(std::slice::from_ref(plan))
    }

    /// Lint a set of pending plans: every intrinsic check on each plan,
    /// plus the cross-plan conflict and lock-order analyses over the set.
    #[must_use]
    pub fn lint(&self, plans: &[ReconfigurationPlan]) -> PlanLintReport {
        let mut diags = Vec::new();
        for (i, plan) in plans.iter().enumerate() {
            Self::check_undo(i, plan, &mut diags);
            Self::check_dangling(i, plan, &mut diags);
            Self::check_binding_cycle(i, plan, &mut diags);
        }
        let fps: Vec<Footprint> = plans.iter().map(footprint).collect();
        Self::check_conflicts(&fps, &mut diags);
        Self::check_lock_order(&fps, &mut diags);
        PlanLintReport {
            diagnostics: diags,
            plans: plans.len(),
            steps: plans.iter().map(ReconfigurationPlan::len).sum(),
        }
    }

    /// (iii) Undo-incompleteness: the journal rolls a switch back by
    /// inverting applied steps, so every step needs exactly one obvious
    /// inverse. Three shapes break that statically.
    fn check_undo(plan_ix: usize, plan: &ReconfigurationPlan, diags: &mut Vec<PlanDiagnostic>) {
        let mut push = |step: String, why: &str| {
            diags.push(PlanDiagnostic {
                severity: Severity::Error,
                plan: Some(plan_ix),
                kind: PlanDiagnosticKind::UndoIncomplete { step, why: why.to_owned() },
            });
        };
        for (name, ty) in &plan.stop {
            if ty.is_empty() {
                push(
                    format!("stop {name}"),
                    "no type recorded — the inverse (restart) cannot name what to create",
                );
            }
        }
        for (i, (name, _)) in plan.start.iter().enumerate() {
            if plan.start[..i].iter().any(|(n, _)| n == name) {
                push(
                    format!("start {name}"),
                    "started twice — the inverse `stop` is ambiguous between the two",
                );
            }
        }
        for (steps, verb) in [(&plan.bind, "bind"), (&plan.unbind, "unbind")] {
            for (i, b) in steps.iter().enumerate() {
                if steps[..i].contains(b) {
                    push(
                        format!("{verb} {} -- {}", b.from, b.to),
                        "duplicated — undoing one occurrence silently undoes both",
                    );
                }
            }
        }
    }

    /// (iv-a) Dangling endpoints: a bind to an instance this very plan
    /// removes (stop without restart), or an unbind from an instance that
    /// only exists *after* the unbind phase (started but never stopped —
    /// the binding cannot predate the plan).
    fn check_dangling(plan_ix: usize, plan: &ReconfigurationPlan, diags: &mut Vec<PlanDiagnostic>) {
        let stopped: Vec<&str> = plan.stop.iter().map(|(n, _)| n.as_str()).collect();
        let started: Vec<&str> = plan.start.iter().map(|(n, _)| n.as_str()).collect();
        let mut push = |b: &Binding, instance: &str| {
            diags.push(PlanDiagnostic {
                severity: Severity::Error,
                plan: Some(plan_ix),
                kind: PlanDiagnosticKind::DanglingBinding {
                    binding: format!("{} -- {}", b.from, b.to),
                    instance: instance.to_owned(),
                },
            });
        };
        for b in &plan.bind {
            for r in [&b.from, &b.to] {
                if let Some(i) = endpoint(r) {
                    if stopped.contains(&i) && !started.contains(&i) {
                        push(b, i);
                    }
                }
            }
        }
        for b in &plan.unbind {
            for r in [&b.from, &b.to] {
                if let Some(i) = endpoint(r) {
                    if started.contains(&i) && !stopped.contains(&i) {
                        push(b, i);
                    }
                }
            }
        }
    }

    /// (iv-b) Cyclic bindings: the plan's new bindings induce
    /// instance-dependency edges exactly like the ADL analyser's
    /// sub-instance bindings; reuse its cycle finder.
    fn check_binding_cycle(
        plan_ix: usize,
        plan: &ReconfigurationPlan,
        diags: &mut Vec<PlanDiagnostic>,
    ) {
        let edges: Vec<(String, String)> = plan
            .bind
            .iter()
            .filter_map(|b| match (endpoint(&b.from), endpoint(&b.to)) {
                (Some(f), Some(t)) => Some((f.to_owned(), t.to_owned())),
                _ => None,
            })
            .collect();
        if let Some(cycle) = find_cycle(&edges) {
            diags.push(PlanDiagnostic {
                severity: Severity::Error,
                plan: Some(plan_ix),
                kind: PlanDiagnosticKind::BindingCycle { cycle },
            });
        }
    }

    /// (i) Cross-plan conflicts: for every ordered pair, atoms one plan
    /// writes that the other touches at all. One diagnostic per pair,
    /// carrying the full sorted atom list.
    fn check_conflicts(fps: &[Footprint], diags: &mut Vec<PlanDiagnostic>) {
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                let (a, b) = (&fps[i], &fps[j]);
                let mut atoms: Vec<String> = a
                    .writes
                    .iter()
                    .filter(|x| b.writes.contains(x) || b.reads.contains(x))
                    .chain(a.reads.iter().filter(|x| b.writes.contains(x)))
                    .cloned()
                    .collect();
                atoms.sort_unstable();
                atoms.dedup();
                if !atoms.is_empty() {
                    diags.push(PlanDiagnostic {
                        severity: Severity::Error,
                        plan: Some(i),
                        kind: PlanDiagnosticKind::CrossPlanConflict { other: j, atoms },
                    });
                }
            }
        }
    }

    /// (ii) Lock-order cycles: each plan's first-touch order contributes
    /// consecutive before/after edges; a cycle in the union means no
    /// global acquisition order satisfies every plan — deadlock is
    /// reachable. A single plan's chain is totally ordered, so cycles
    /// require at least two plans.
    fn check_lock_order(fps: &[Footprint], diags: &mut Vec<PlanDiagnostic>) {
        let mut edges: Vec<(String, String)> = Vec::new();
        for fp in fps {
            for w in fp.order.windows(2) {
                let e = (w[0].clone(), w[1].clone());
                if !edges.contains(&e) {
                    edges.push(e);
                }
            }
        }
        if let Some(cycle) = find_cycle(&edges) {
            diags.push(PlanDiagnostic {
                severity: Severity::Error,
                plan: None,
                kind: PlanDiagnosticKind::LockOrderCycle { cycle },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adl::config::flatten;
    use adl::diff::diff;
    use adl::figures::{docked_session, fig4_document, wireless_session};
    use adl::parse::parse;

    fn bind(from: &str, fp: &str, to: &str, tp: &str) -> Binding {
        Binding { from: PortRef::on(from, fp), to: PortRef::on(to, tp) }
    }

    fn kinds(r: &PlanLintReport) -> Vec<&PlanDiagnosticKind> {
        r.diagnostics.iter().map(|d| &d.kind).collect()
    }

    // ----- seeded bad-plan corpus: each diagnostic fires -----

    #[test]
    fn stop_without_a_type_is_undo_incomplete() {
        let mut plan = ReconfigurationPlan::default();
        plan.stop.push(("orphan".into(), String::new()));
        let r = PlanLinter::new().lint_one(&plan);
        assert!(r.has_errors());
        assert!(
            matches!(kinds(&r)[0], PlanDiagnosticKind::UndoIncomplete { step, .. } if step == "stop orphan"),
            "{r}"
        );
    }

    #[test]
    fn double_start_is_undo_incomplete() {
        let mut plan = ReconfigurationPlan::default();
        plan.start.push(("x".into(), "T".into()));
        plan.start.push(("x".into(), "U".into()));
        let r = PlanLinter::new().lint_one(&plan);
        assert!(
            matches!(kinds(&r)[0], PlanDiagnosticKind::UndoIncomplete { step, .. } if step == "start x"),
            "{r}"
        );
    }

    #[test]
    fn duplicated_bind_is_undo_incomplete() {
        let mut plan = ReconfigurationPlan::default();
        plan.start.push(("a".into(), "T".into()));
        plan.start.push(("b".into(), "U".into()));
        plan.bind.push(bind("a", "r", "b", "p"));
        plan.bind.push(bind("a", "r", "b", "p"));
        let r = PlanLinter::new().lint_one(&plan);
        assert!(
            matches!(kinds(&r)[0], PlanDiagnosticKind::UndoIncomplete { step, .. } if step.starts_with("bind")),
            "{r}"
        );
    }

    #[test]
    fn binding_to_a_stopped_instance_dangles() {
        let mut plan = ReconfigurationPlan::default();
        plan.stop.push(("old".into(), "T".into()));
        plan.bind.push(bind("client", "r", "old", "p"));
        let r = PlanLinter::new().lint_one(&plan);
        assert!(
            matches!(kinds(&r)[0], PlanDiagnosticKind::DanglingBinding { instance, .. } if instance == "old"),
            "{r}"
        );
    }

    #[test]
    fn unbinding_from_a_freshly_started_instance_dangles() {
        // unbind runs before start, so the binding cannot exist yet.
        let mut plan = ReconfigurationPlan::default();
        plan.start.push(("fresh".into(), "T".into()));
        plan.unbind.push(bind("client", "r", "fresh", "p"));
        let r = PlanLinter::new().lint_one(&plan);
        assert!(
            matches!(kinds(&r)[0], PlanDiagnosticKind::DanglingBinding { instance, .. } if instance == "fresh"),
            "{r}"
        );
    }

    #[test]
    fn restart_rebind_is_not_dangling() {
        // stop + start of the same instance is a restart: binding to it is
        // fine, and so is unbinding the old binding from it.
        let mut plan = ReconfigurationPlan::default();
        plan.unbind.push(bind("client", "r", "svc", "p"));
        plan.stop.push(("svc".into(), "T".into()));
        plan.start.push(("svc".into(), "T2".into()));
        plan.bind.push(bind("client", "r", "svc", "p"));
        // client appears only as an endpoint: no dangling either way.
        assert!(PlanLinter::new().lint_one(&plan).is_clean());
    }

    #[test]
    fn cyclic_new_bindings_are_rejected() {
        let mut plan = ReconfigurationPlan::default();
        plan.start.push(("a".into(), "T".into()));
        plan.start.push(("b".into(), "T".into()));
        plan.bind.push(bind("a", "r", "b", "p"));
        plan.bind.push(bind("b", "r", "a", "p"));
        let r = PlanLinter::new().lint_one(&plan);
        assert!(
            matches!(kinds(&r)[0], PlanDiagnosticKind::BindingCycle { cycle } if cycle == "a -> b -> a"),
            "{r}"
        );
    }

    #[test]
    fn conflicting_plans_are_detected_pairwise() {
        let mut a = ReconfigurationPlan::default();
        a.stop.push(("shared".into(), "T".into()));
        let mut b = ReconfigurationPlan::default();
        b.start.push(("shared".into(), "U".into()));
        let mut c = ReconfigurationPlan::default();
        c.start.push(("elsewhere".into(), "V".into()));
        let r = PlanLinter::new().lint(&[a, b, c]);
        assert_eq!(r.diagnostics.len(), 1, "{r}");
        assert_eq!(r.diagnostics[0].plan, Some(0));
        assert!(
            matches!(
                &r.diagnostics[0].kind,
                PlanDiagnosticKind::CrossPlanConflict { other: 1, atoms }
                    if atoms == &vec!["inst:shared".to_owned()]
            ),
            "{r}"
        );
    }

    #[test]
    fn read_write_overlap_is_a_conflict_too() {
        // Plan 0 only *reads* `svc` (as a bind endpoint); plan 1 stops it.
        let mut a = ReconfigurationPlan::default();
        a.bind.push(bind("client", "r", "svc", "p"));
        let mut b = ReconfigurationPlan::default();
        b.stop.push(("svc".into(), "T".into()));
        let r = PlanLinter::new().lint(&[a, b]);
        assert!(
            kinds(&r).iter().any(|k| matches!(k, PlanDiagnosticKind::CrossPlanConflict { .. })),
            "{r}"
        );
    }

    #[test]
    fn opposite_acquisition_orders_are_a_lock_order_cycle() {
        // Plan 0 touches x then y; plan 1 touches y then x.
        let mut a = ReconfigurationPlan::default();
        a.stop.push(("x".into(), "T".into()));
        a.stop.push(("y".into(), "T".into()));
        let mut b = ReconfigurationPlan::default();
        b.start.push(("y".into(), "T".into()));
        b.start.push(("x".into(), "T".into()));
        let r = PlanLinter::new().lint(&[a, b]);
        let cycle = kinds(&r)
            .into_iter()
            .find_map(|k| match k {
                PlanDiagnosticKind::LockOrderCycle { cycle } => Some(cycle.clone()),
                _ => None,
            })
            .unwrap_or_else(|| panic!("expected a lock-order cycle: {r}"));
        assert_eq!(cycle, "inst:x -> inst:y -> inst:x");
    }

    // ----- the plans the system actually produces stay clean -----

    #[test]
    fn figure5_switchover_plans_pass_the_linter() {
        let doc = fig4_document();
        let docked = docked_session(&doc);
        let wireless = wireless_session(&doc);
        let boot = diff(&adl::Configuration::default(), &docked);
        let over = diff(&docked, &wireless);
        let back = diff(&wireless, &docked);
        for plan in [&boot, &over, &back] {
            let r = PlanLinter::new().lint_one(plan);
            assert!(r.is_clean(), "{r}");
        }
        // Sequentially-executed plans are linted one at a time; the
        // switchover and its reverse *would* conflict if pending together,
        // which is exactly what the cross-plan check is for.
        assert!(PlanLinter::new().lint(&[over, back]).has_errors());
    }

    #[test]
    fn inverse_of_a_clean_plan_is_clean() {
        let doc = parse(
            "component T { provide p; }
             component U { require q; }
             component C { when on { inst t : T; u : U; bind u.q -- t.p; } }",
        )
        .unwrap();
        let target = flatten(&doc, "C", &["on"]).unwrap();
        let plan = diff(&adl::Configuration::default(), &target);
        assert!(PlanLinter::new().lint_one(&plan).is_clean());
        assert!(PlanLinter::new().lint_one(&plan.inverse()).is_clean());
    }

    #[test]
    fn empty_plan_set_is_clean() {
        assert!(PlanLinter::new().lint(&[]).is_clean());
        assert!(PlanLinter::new().lint_one(&ReconfigurationPlan::default()).is_clean());
    }

    // ----- determinism and rendering -----

    #[test]
    fn reports_are_deterministic_and_collect_all() {
        let mut plan = ReconfigurationPlan::default();
        plan.stop.push(("gone".into(), String::new()));
        plan.stop.push(("old".into(), "T".into()));
        plan.bind.push(bind("client", "r", "old", "p"));
        plan.bind.push(bind("a", "r", "b", "p"));
        plan.bind.push(bind("b", "r", "a", "p"));
        let first = PlanLinter::new().lint_one(&plan);
        assert_eq!(first, PlanLinter::new().lint_one(&plan), "byte-identical on replay");
        // All three findings are collected, not just the first.
        assert_eq!(first.diagnostics.len(), 3, "{first}");
        assert!(first.to_string().contains("error"));
        for d in &first.diagnostics {
            assert!(!d.to_string().is_empty());
        }
    }
}
