//! The Adaptivity Manager: transactional execution of reconfiguration plans.
//!
//! > "The Adaptivity Manager then carries out the unbinding and rebinding of
//! > components (establishing any glue necessary to achieve the binding).
//! > To do this it must ensure the instantiation adheres to transactional
//! > style properties. That is, the switch can be backed off if something
//! > goes wrong."
//!
//! [`AdaptivityManager::execute`] applies a plan step by step, journalling
//! every completed step; on any failure it replays the journal backwards,
//! restoring the exact prior runtime (including the stopped components'
//! state, which was archived in the State Manager before removal).

use crate::runtime::{ComponentFactory, LiveComponent, Runtime};
use crate::state::StateManager;
use adl::ast::Binding;
use adl::diff::ReconfigurationPlan;
use obs::{ObsHandle, Primitive};
use std::fmt;

/// One journalled (completed) step, with what is needed to undo it.
#[derive(Debug, Clone)]
enum Done {
    Unbound(Binding),
    Stopped { name: String, comp: LiveComponent },
    Started { name: String },
    Bound(Binding),
}

/// Why a switch failed (and was rolled back).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchError {
    /// A component could not be created.
    Create {
        /// Component name.
        name: String,
        /// Factory's reason.
        reason: String,
    },
    /// A plan step was inconsistent with the runtime (e.g. unbinding a
    /// binding that does not exist).
    Inconsistent(String),
    /// A fault injector failed the step (chaos testing).
    Injected {
        /// The step that was failed (`bind a.p -- b.q`, `stop eth`, ...).
        step: String,
        /// The injector's reason.
        reason: String,
    },
    /// The switch failed AND one or more rollback steps could not be
    /// undone — the runtime is *not* restored. This never happens with a
    /// healthy runtime (rollback only undoes steps that succeeded); it is
    /// reachable under injected rollback faults and surfaces honestly
    /// instead of panicking.
    RollbackIncomplete {
        /// The original failure that triggered the rollback.
        cause: String,
        /// Human-readable descriptions of the rollback steps left undone.
        residue: Vec<String>,
    },
}

impl fmt::Display for SwitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchError::Create { name, reason } => {
                write!(f, "failed to create `{name}`: {reason} (switch rolled back)")
            }
            SwitchError::Inconsistent(s) => {
                write!(f, "inconsistent plan: {s} (switch rolled back)")
            }
            SwitchError::Injected { step, reason } => {
                write!(f, "injected failure at `{step}`: {reason} (switch rolled back)")
            }
            SwitchError::RollbackIncomplete { cause, residue } => {
                write!(f, "switch failed ({cause}) and rollback left {} step(s): ", residue.len())?;
                write!(f, "{}", residue.join("; "))
            }
        }
    }
}

impl std::error::Error for SwitchError {}

/// Per-step fault injection for the transactional switch. Every method
/// defaults to "no fault"; a chaos harness overrides the points it wants to
/// break, returning `Some(reason)` to fail that step. Creation failures are
/// injected through [`ComponentFactory`] instead (see
/// [`crate::runtime::FlakyFactory`]).
pub trait StepFaults: fmt::Debug {
    /// Fail unbinding `b`?
    fn fail_unbind(&mut self, _b: &Binding) -> Option<String> {
        None
    }
    /// Fail stopping the named component?
    fn fail_stop(&mut self, _name: &str) -> Option<String> {
        None
    }
    /// Fail establishing `b`?
    fn fail_bind(&mut self, _b: &Binding) -> Option<String> {
        None
    }
    /// Fail a *rollback* step (described textually)? Only injectable faults
    /// can make rollback fail; returning `Some` here exercises the
    /// [`SwitchError::RollbackIncomplete`] path.
    fn fail_rollback(&mut self, _step: &str) -> Option<String> {
        None
    }
}

/// The default injector: never faults.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl StepFaults for NoFaults {}

/// A successful switch report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchReport {
    /// Steps executed (unbind + stop + start + bind).
    pub steps: usize,
    /// Components stopped (their state went to the State Manager archive).
    pub stopped: Vec<String>,
    /// Components started.
    pub started: Vec<String>,
    /// Tick at which the switch completed.
    pub completed_at: u64,
}

/// The Adaptivity Manager.
#[derive(Debug, Default)]
pub struct AdaptivityManager {
    switches_committed: u64,
    switches_rolled_back: u64,
    rollbacks_incomplete: u64,
    obs: Option<ObsHandle>,
}

impl AdaptivityManager {
    /// A fresh manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm the observability hub: every switch then emits a
    /// `compkit:switch` span (billed in scheduler steps) and feeds the
    /// cumulative `compkit.switch.*` counters. Zero-cost when disarmed.
    pub fn arm_obs(&mut self, obs: ObsHandle) {
        self.obs = Some(obs);
    }

    /// Disarm observability.
    pub fn disarm_obs(&mut self) {
        self.obs = None;
    }

    /// Switches that committed.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.switches_committed
    }

    /// Switches that failed and were backed off.
    #[must_use]
    pub fn rolled_back(&self) -> u64 {
        self.switches_rolled_back
    }

    /// Rollbacks that themselves failed to complete (only reachable under
    /// injected rollback faults; see [`SwitchError::RollbackIncomplete`]).
    #[must_use]
    pub fn rollbacks_incomplete(&self) -> u64 {
        self.rollbacks_incomplete
    }

    /// Execute `plan` against `runtime` transactionally.
    ///
    /// On success the runtime has exactly the plan's target shape, stopped
    /// components' state is archived in `states`, and a report is returned.
    /// On failure the runtime is **bit-for-bit restored** and the error
    /// describes the first failing step.
    ///
    /// # Errors
    /// [`SwitchError`]; the runtime is unchanged when one is returned.
    pub fn execute(
        &mut self,
        runtime: &mut Runtime,
        plan: &ReconfigurationPlan,
        factory: &mut dyn ComponentFactory,
        states: &mut StateManager,
        now: u64,
    ) -> Result<SwitchReport, SwitchError> {
        self.execute_with_faults(runtime, plan, factory, states, now, &mut NoFaults)
    }

    /// [`AdaptivityManager::execute`] with a fault injector gating every
    /// step — the entry point chaos tests drive. With [`NoFaults`] the two
    /// are identical; the unarmed production path costs one virtual call per
    /// step that immediately returns `None`.
    ///
    /// # Errors
    /// [`SwitchError`]. The runtime is restored on failure unless the
    /// injector also failed rollback steps, in which case
    /// [`SwitchError::RollbackIncomplete`] reports exactly what was left.
    pub fn execute_with_faults(
        &mut self,
        runtime: &mut Runtime,
        plan: &ReconfigurationPlan,
        factory: &mut dyn ComponentFactory,
        states: &mut StateManager,
        now: u64,
        faults: &mut dyn StepFaults,
    ) -> Result<SwitchReport, SwitchError> {
        let mut journal: Vec<Done> = Vec::with_capacity(plan.len());

        let obs = self.obs.clone();
        let span = obs.as_ref().map(|o| o.borrow_mut().begin("compkit", "switch"));
        let result = self.try_execute(runtime, plan, factory, states, now, &mut journal, faults);
        match result {
            Ok(report) => {
                self.switches_committed += 1;
                if let (Some(o), Some(span)) = (&obs, span) {
                    let mut o = o.borrow_mut();
                    o.charge(Primitive::SchedSteps(report.steps as u32));
                    o.end_with(
                        span,
                        vec![
                            ("outcome", "committed".to_owned()),
                            ("steps", report.steps.to_string()),
                            ("stopped", report.stopped.len().to_string()),
                            ("started", report.started.len().to_string()),
                            ("unbinds", plan.unbind.len().to_string()),
                            ("binds", plan.bind.len().to_string()),
                        ],
                    );
                    o.metrics.counter_add("compkit.switch.committed", 1);
                }
                Ok(report)
            }
            Err(e) => {
                let rolled_steps = journal.len();
                // Back off: undo the journal in reverse. Rollback steps undo
                // operations that succeeded moments ago, so against a healthy
                // runtime they cannot fail; injected rollback faults (and
                // nothing else) land in `residue` instead of a panic.
                let mut residue: Vec<String> = Vec::new();
                for step in journal.into_iter().rev() {
                    match step {
                        Done::Unbound(b) => {
                            let desc = format!("rebind {} -- {}", b.from, b.to);
                            if let Some(reason) = faults.fail_rollback(&desc) {
                                residue.push(format!("{desc}: {reason}"));
                            } else if let Err(e) = runtime.bind(b) {
                                residue.push(format!("{desc}: {e}"));
                            }
                        }
                        Done::Stopped { name, comp } => {
                            let desc = format!("restart {name}");
                            if let Some(reason) = faults.fail_rollback(&desc) {
                                residue.push(format!("{desc}: {reason}"));
                                continue;
                            }
                            // The archive entry was created on stop; remove it
                            // again so rollback leaves no residue.
                            let _ = states.unarchive(&name);
                            if let Err(e) = runtime.start(&name, comp) {
                                residue.push(format!("{desc}: {e}"));
                            }
                        }
                        Done::Started { name } => {
                            let desc = format!("stop {name}");
                            if let Some(reason) = faults.fail_rollback(&desc) {
                                residue.push(format!("{desc}: {reason}"));
                            } else if let Err(e) = runtime.stop(&name) {
                                residue.push(format!("{desc}: {e}"));
                            }
                        }
                        Done::Bound(b) => {
                            let desc = format!("unbind {} -- {}", b.from, b.to);
                            if let Some(reason) = faults.fail_rollback(&desc) {
                                residue.push(format!("{desc}: {reason}"));
                            } else if let Err(e) = runtime.unbind(&b) {
                                residue.push(format!("{desc}: {e}"));
                            }
                        }
                    }
                }
                self.switches_rolled_back += 1;
                if let (Some(o), Some(span)) = (&obs, span) {
                    let mut o = o.borrow_mut();
                    // The forward steps ran AND were undone: bill both.
                    o.charge(Primitive::SchedSteps(2 * rolled_steps as u32));
                    o.end_with(
                        span,
                        vec![
                            ("outcome", "rolled_back".to_owned()),
                            ("rolled_steps", rolled_steps.to_string()),
                            ("cause", e.to_string()),
                        ],
                    );
                    o.metrics.counter_add("compkit.switch.rolled_back", 1);
                    if !residue.is_empty() {
                        o.metrics.counter_add("compkit.switch.rollbacks_incomplete", 1);
                    }
                }
                if residue.is_empty() {
                    Err(e)
                } else {
                    self.rollbacks_incomplete += 1;
                    Err(SwitchError::RollbackIncomplete { cause: e.to_string(), residue })
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn try_execute(
        &mut self,
        runtime: &mut Runtime,
        plan: &ReconfigurationPlan,
        factory: &mut dyn ComponentFactory,
        states: &mut StateManager,
        now: u64,
        journal: &mut Vec<Done>,
        faults: &mut dyn StepFaults,
    ) -> Result<SwitchReport, SwitchError> {
        // 1. Unbind first: never leave a live binding to a stopping component.
        for b in &plan.unbind {
            if let Some(reason) = faults.fail_unbind(b) {
                return Err(SwitchError::Injected {
                    step: format!("unbind {} -- {}", b.from, b.to),
                    reason,
                });
            }
            runtime.unbind(b).map_err(|e| SwitchError::Inconsistent(e.to_string()))?;
            journal.push(Done::Unbound(b.clone()));
        }
        // 2. Stop, archiving state.
        let mut stopped = Vec::with_capacity(plan.stop.len());
        for (name, _ty) in &plan.stop {
            if let Some(reason) = faults.fail_stop(name) {
                return Err(SwitchError::Injected { step: format!("stop {name}"), reason });
            }
            let comp = runtime.stop(name).map_err(|e| SwitchError::Inconsistent(e.to_string()))?;
            states.archive(name, comp.state.clone());
            journal.push(Done::Stopped { name: name.clone(), comp });
            stopped.push(name.clone());
        }
        // 3. Start new components (the step that can fail for real reasons).
        let mut started = Vec::with_capacity(plan.start.len());
        for (name, ty) in &plan.start {
            let comp = factory
                .create(name, ty, now)
                .map_err(|e| SwitchError::Create { name: e.name, reason: e.reason })?;
            runtime.start(name, comp).map_err(|e| SwitchError::Inconsistent(e.to_string()))?;
            journal.push(Done::Started { name: name.clone() });
            started.push(name.clone());
        }
        // 4. Bind last: all endpoints now exist.
        for b in &plan.bind {
            if let Some(reason) = faults.fail_bind(b) {
                return Err(SwitchError::Injected {
                    step: format!("bind {} -- {}", b.from, b.to),
                    reason,
                });
            }
            runtime.bind(b.clone()).map_err(|e| SwitchError::Inconsistent(e.to_string()))?;
            journal.push(Done::Bound(b.clone()));
        }
        Ok(SwitchReport { steps: plan.len(), stopped, started, completed_at: now })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{BasicFactory, FlakyFactory};
    use adl::config::flatten;
    use adl::diff::diff;
    use adl::figures::{docked_session, fig4_document, wireless_session};
    use adl::parse::parse;

    /// Bring up the Figure 4 docked session from an empty runtime.
    fn boot_docked() -> (Runtime, StateManager, AdaptivityManager) {
        let doc = fig4_document();
        let docked = docked_session(&doc);
        let mut rt = Runtime::new();
        let mut am = AdaptivityManager::new();
        let mut sm = StateManager::new();
        let plan = diff(&rt.configuration(), &docked);
        am.execute(&mut rt, &plan, &mut BasicFactory, &mut sm, 0).unwrap();
        assert_eq!(rt.configuration(), docked);
        (rt, sm, am)
    }

    #[test]
    fn boot_then_switchover_reaches_wireless() {
        let (mut rt, mut sm, mut am) = boot_docked();
        let doc = fig4_document();
        let plan = diff(&rt.configuration(), &wireless_session(&doc));
        let report = am.execute(&mut rt, &plan, &mut BasicFactory, &mut sm, 5).unwrap();
        assert_eq!(rt.configuration(), wireless_session(&doc));
        assert_eq!(report.stopped, vec!["eth", "opt"]);
        assert_eq!(report.started, vec!["dec", "wifi", "wopt"]);
        assert_eq!(am.committed(), 2);
        assert_eq!(am.rolled_back(), 0);
    }

    #[test]
    fn failed_start_rolls_back_exactly() {
        let (mut rt, mut sm, mut am) = boot_docked();
        let before = rt.clone();
        let doc = fig4_document();
        let plan = diff(&rt.configuration(), &wireless_session(&doc));
        // The wireless optimiser cannot be fetched off the network.
        let mut factory = FlakyFactory::failing(["wopt"]);
        let err = am.execute(&mut rt, &plan, &mut factory, &mut sm, 9).unwrap_err();
        assert!(matches!(err, SwitchError::Create { ref name, .. } if name == "wopt"));
        assert_eq!(rt, before, "runtime must be bit-for-bit restored");
        assert_eq!(am.rolled_back(), 1);
        // Archived state from the aborted stop must not linger.
        assert_eq!(sm.unarchive("opt"), None);
        assert_eq!(sm.unarchive("eth"), None);
    }

    #[test]
    fn stopped_component_state_is_archived_on_commit() {
        let (mut rt, mut sm, mut am) = boot_docked();
        rt.component_mut("opt").unwrap().state = b"half-built-plan".to_vec();
        let doc = fig4_document();
        let plan = diff(&rt.configuration(), &wireless_session(&doc));
        am.execute(&mut rt, &plan, &mut BasicFactory, &mut sm, 3).unwrap();
        assert_eq!(sm.unarchive("opt"), Some(b"half-built-plan".to_vec()));
    }

    #[test]
    fn inconsistent_plan_is_rejected_and_rolled_back() {
        let (mut rt, mut sm, mut am) = boot_docked();
        let before = rt.clone();
        // Hand-craft a plan that stops a component that does not exist.
        let doc = fig4_document();
        let mut plan = diff(&rt.configuration(), &wireless_session(&doc));
        plan.stop.push(("phantom".into(), "Ghost".into()));
        let err = am.execute(&mut rt, &plan, &mut BasicFactory, &mut sm, 1).unwrap_err();
        assert!(matches!(err, SwitchError::Inconsistent(_)));
        assert_eq!(rt, before);
    }

    #[test]
    fn empty_plan_commits_trivially() {
        let (mut rt, mut sm, mut am) = boot_docked();
        let plan = adl::diff::ReconfigurationPlan::default();
        let report = am.execute(&mut rt, &plan, &mut BasicFactory, &mut sm, 2).unwrap();
        assert_eq!(report.steps, 0);
    }

    /// Fails a single named step kind on a matching component/binding, and
    /// optionally every rollback step.
    #[derive(Debug, Default)]
    struct ScriptedFaults {
        bind_to: Option<String>,
        stop: Option<String>,
        rollback_too: bool,
    }

    impl StepFaults for ScriptedFaults {
        fn fail_stop(&mut self, name: &str) -> Option<String> {
            (self.stop.as_deref() == Some(name)).then(|| "injected stop failure".into())
        }
        fn fail_bind(&mut self, b: &Binding) -> Option<String> {
            let hit = b.to.instance.as_deref() == self.bind_to.as_deref();
            hit.then(|| "injected bind failure".into())
        }
        fn fail_rollback(&mut self, _step: &str) -> Option<String> {
            self.rollback_too.then(|| "injected rollback failure".into())
        }
    }

    #[test]
    fn injected_bind_failure_mid_plan_rolls_back_exactly() {
        let (mut rt, mut sm, mut am) = boot_docked();
        let before = rt.clone();
        let doc = fig4_document();
        let plan = diff(&rt.configuration(), &wireless_session(&doc));
        assert!(!plan.bind.is_empty(), "switchover plan must bind something");
        let target = plan.bind.last().unwrap().to.instance.clone();
        let mut faults = ScriptedFaults { bind_to: target, ..ScriptedFaults::default() };
        let err = am
            .execute_with_faults(&mut rt, &plan, &mut BasicFactory, &mut sm, 4, &mut faults)
            .unwrap_err();
        assert!(matches!(err, SwitchError::Injected { ref step, .. } if step.starts_with("bind")));
        assert_eq!(rt, before, "mid-plan bind failure must restore the runtime");
        assert_eq!(am.rolled_back(), 1);
        assert_eq!(am.rollbacks_incomplete(), 0);
    }

    #[test]
    fn injected_stop_failure_rolls_back() {
        let (mut rt, mut sm, mut am) = boot_docked();
        let before = rt.clone();
        let doc = fig4_document();
        let plan = diff(&rt.configuration(), &wireless_session(&doc));
        let mut faults = ScriptedFaults { stop: Some("eth".into()), ..ScriptedFaults::default() };
        let err = am
            .execute_with_faults(&mut rt, &plan, &mut BasicFactory, &mut sm, 4, &mut faults)
            .unwrap_err();
        assert!(matches!(err, SwitchError::Injected { ref step, .. } if step == "stop eth"));
        assert_eq!(rt, before);
    }

    #[test]
    fn injected_rollback_failure_is_reported_not_panicked() {
        let (mut rt, mut sm, mut am) = boot_docked();
        let doc = fig4_document();
        let plan = diff(&rt.configuration(), &wireless_session(&doc));
        let target = plan.bind.last().unwrap().to.instance.clone();
        let mut faults = ScriptedFaults { bind_to: target, stop: None, rollback_too: true };
        let err = am
            .execute_with_faults(&mut rt, &plan, &mut BasicFactory, &mut sm, 4, &mut faults)
            .unwrap_err();
        let SwitchError::RollbackIncomplete { cause, residue } = err else {
            panic!("expected RollbackIncomplete, got {err}");
        };
        assert!(cause.contains("injected bind failure"), "{cause}");
        assert!(!residue.is_empty());
        assert_eq!(am.rollbacks_incomplete(), 1);
        assert_eq!(am.rolled_back(), 1);
    }

    #[test]
    fn no_faults_injector_is_transparent() {
        // execute() and execute_with_faults(NoFaults) behave identically.
        let (mut rt, mut sm, mut am) = boot_docked();
        let doc = fig4_document();
        let plan = diff(&rt.configuration(), &wireless_session(&doc));
        let report = am
            .execute_with_faults(&mut rt, &plan, &mut BasicFactory, &mut sm, 5, &mut NoFaults)
            .unwrap();
        assert_eq!(rt.configuration(), wireless_session(&doc));
        assert_eq!(report.stopped, vec!["eth", "opt"]);
    }

    #[test]
    fn repeated_flapping_switches_are_stable() {
        // Docked → wireless → docked × 50: the runtime must end exactly
        // where it started and counters must add up.
        let (mut rt, mut sm, mut am) = boot_docked();
        let doc = fig4_document();
        let docked = docked_session(&doc);
        let wireless = wireless_session(&doc);
        for i in 0..50 {
            let target = if i % 2 == 0 { &wireless } else { &docked };
            let plan = diff(&rt.configuration(), target);
            am.execute(&mut rt, &plan, &mut BasicFactory, &mut sm, i).unwrap();
        }
        assert_eq!(rt.configuration(), docked);
        assert_eq!(am.committed(), 51);
    }

    #[test]
    fn partial_progress_failure_mid_bind_restores() {
        // A plan whose bind step fails after several successful steps: make
        // the last bind reference an instance the plan never started.
        let doc = parse(
            "component T { provide p; }
             component U { require q; }
             component C { when on { inst t : T; u : U; bind u.q -- t.p; } }",
        )
        .unwrap();
        let target = flatten(&doc, "C", &["on"]).unwrap();
        let mut rt = Runtime::new();
        let mut am = AdaptivityManager::new();
        let mut sm = StateManager::new();
        let mut plan = diff(&rt.configuration(), &target);
        plan.bind.push(adl::ast::Binding {
            from: adl::ast::PortRef::on("u", "q2"),
            to: adl::ast::PortRef::on("missing", "p"),
        });
        let before = rt.clone();
        let err = am.execute(&mut rt, &plan, &mut BasicFactory, &mut sm, 0).unwrap_err();
        assert!(matches!(err, SwitchError::Inconsistent(_)));
        assert_eq!(rt, before);
    }
}
