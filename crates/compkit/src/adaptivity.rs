//! The Adaptivity Manager: transactional execution of reconfiguration plans.
//!
//! > "The Adaptivity Manager then carries out the unbinding and rebinding of
//! > components (establishing any glue necessary to achieve the binding).
//! > To do this it must ensure the instantiation adheres to transactional
//! > style properties. That is, the switch can be backed off if something
//! > goes wrong."
//!
//! [`AdaptivityManager::execute`] applies a plan step by step, journalling
//! every completed step; on any failure it replays the journal backwards,
//! restoring the exact prior runtime (including the stopped components'
//! state, which was archived in the State Manager before removal).
//!
//! With [`AdaptivityManager::attach_journal`] the same step records are
//! also written through to a durable write-ahead
//! [`crate::journal::AdaptationJournal`], and
//! [`AdaptivityManager::recover`] replays it after a crash — see the
//! [`crate::journal`] module docs for the record discipline and crash
//! model.

use crate::journal::{
    AdaptationJournal, CrashHook, CrashSite, NoCrash, RecoveryOutcome, RecoveryReport, StepRecord,
};
use crate::planlint::{PlanLintReport, PlanLinter};
use crate::runtime::{ComponentFactory, Runtime};
use crate::state::StateManager;
use adl::ast::Binding;
use adl::diff::ReconfigurationPlan;
use obs::{ObsHandle, Primitive};
use std::fmt;

/// Why a switch failed (and was rolled back).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchError {
    /// A component could not be created.
    Create {
        /// Component name.
        name: String,
        /// Factory's reason.
        reason: String,
    },
    /// A plan step was inconsistent with the runtime (e.g. unbinding a
    /// binding that does not exist).
    Inconsistent(String),
    /// A fault injector failed the step (chaos testing).
    Injected {
        /// The step that was failed (`bind a.p -- b.q`, `stop eth`, ...).
        step: String,
        /// The injector's reason.
        reason: String,
    },
    /// The switch failed AND one or more rollback steps could not be
    /// undone — the runtime is *not* restored. This never happens with a
    /// healthy runtime (rollback only undoes steps that succeeded); it is
    /// reachable under injected rollback faults and surfaces honestly
    /// instead of panicking.
    RollbackIncomplete {
        /// The original failure that triggered the rollback.
        cause: String,
        /// Human-readable descriptions of the rollback steps left undone.
        residue: Vec<String>,
    },
    /// A scripted crash killed the node mid-transaction (only reachable
    /// with an attached journal and a firing [`CrashHook`]). Nothing was
    /// rolled back and no outcome counter moved: the journal holds the
    /// truth and [`AdaptivityManager::recover`] settles it.
    Crashed {
        /// The record boundary the node died at.
        site: String,
    },
    /// The static plan linter ([`crate::planlint`]) found Error-severity
    /// findings, so the switch was refused before any step ran. Nothing
    /// was journalled and nothing needs rolling back — the plan is wrong
    /// in *every* runtime, not just this one.
    LintRejected(PlanLintReport),
}

impl fmt::Display for SwitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchError::Create { name, reason } => {
                write!(f, "failed to create `{name}`: {reason} (switch rolled back)")
            }
            SwitchError::Inconsistent(s) => {
                write!(f, "inconsistent plan: {s} (switch rolled back)")
            }
            SwitchError::Injected { step, reason } => {
                write!(f, "injected failure at `{step}`: {reason} (switch rolled back)")
            }
            SwitchError::RollbackIncomplete { cause, residue } => {
                write!(f, "switch failed ({cause}) and rollback left {} step(s): ", residue.len())?;
                write!(f, "{}", residue.join("; "))
            }
            SwitchError::Crashed { site } => {
                write!(f, "node crashed at {site}; the journal is open — recover() settles it")
            }
            SwitchError::LintRejected(report) => {
                write!(f, "plan refused by the linter: {} error(s)", report.errors().count())?;
                if let Some(first) = report.errors().next() {
                    write!(f, " — {first}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SwitchError {}

/// Per-step fault injection for the transactional switch. Every method
/// defaults to "no fault"; a chaos harness overrides the points it wants to
/// break, returning `Some(reason)` to fail that step. Creation failures are
/// injected through [`ComponentFactory`] instead (see
/// [`crate::runtime::FlakyFactory`]).
pub trait StepFaults: fmt::Debug {
    /// Fail unbinding `b`?
    fn fail_unbind(&mut self, _b: &Binding) -> Option<String> {
        None
    }
    /// Fail stopping the named component?
    fn fail_stop(&mut self, _name: &str) -> Option<String> {
        None
    }
    /// Fail establishing `b`?
    fn fail_bind(&mut self, _b: &Binding) -> Option<String> {
        None
    }
    /// Fail a *rollback* step (described textually)? Only injectable faults
    /// can make rollback fail; returning `Some` here exercises the
    /// [`SwitchError::RollbackIncomplete`] path.
    fn fail_rollback(&mut self, _step: &str) -> Option<String> {
        None
    }
}

/// The default injector: never faults.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl StepFaults for NoFaults {}

/// A successful switch report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchReport {
    /// Steps executed (unbind + stop + start + bind).
    pub steps: usize,
    /// Components stopped (their state went to the State Manager archive).
    pub stopped: Vec<String>,
    /// Components started.
    pub started: Vec<String>,
    /// Tick at which the switch completed.
    pub completed_at: u64,
}

/// The Adaptivity Manager.
///
/// The three outcome counters are **mutually exclusive** per transaction:
/// a switch is counted exactly once as committed, rolled back, or
/// rollback-incomplete (a crash defers the count to the recovery that
/// settles it). All cumulative counters saturate instead of wrapping.
#[derive(Debug, Default)]
pub struct AdaptivityManager {
    switches_committed: u64,
    switches_rolled_back: u64,
    rollbacks_incomplete: u64,
    recoveries: u64,
    journal: Option<AdaptationJournal>,
    obs: Option<ObsHandle>,
}

impl AdaptivityManager {
    /// A fresh manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm the observability hub: every switch then emits a
    /// `compkit:switch` span (billed in scheduler steps) and feeds the
    /// cumulative `compkit.switch.*` counters. Zero-cost when disarmed.
    pub fn arm_obs(&mut self, obs: ObsHandle) {
        self.obs = Some(obs);
    }

    /// Disarm observability.
    pub fn disarm_obs(&mut self) {
        self.obs = None;
    }

    /// Switches that committed.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.switches_committed
    }

    /// Switches that failed and were backed off.
    #[must_use]
    pub fn rolled_back(&self) -> u64 {
        self.switches_rolled_back
    }

    /// Rollbacks that themselves failed to complete (only reachable under
    /// injected rollback faults; see [`SwitchError::RollbackIncomplete`]).
    /// Exclusive with [`AdaptivityManager::rolled_back`]: an incomplete
    /// rollback is *not* also counted as rolled back.
    #[must_use]
    pub fn rollbacks_incomplete(&self) -> u64 {
        self.rollbacks_incomplete
    }

    /// Recovery replays that found work to do (noop replays of an empty
    /// journal are not counted — that is the idempotence witness).
    #[must_use]
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Attach a fresh write-ahead journal: every subsequent transaction
    /// writes intent/step/commit records through it (each append billed
    /// one [`Primitive::Store`] when observability is armed), and
    /// [`AdaptivityManager::recover`] can replay it after a crash.
    pub fn attach_journal(&mut self) {
        self.journal = Some(AdaptationJournal::new());
    }

    /// The attached journal, if any.
    #[must_use]
    pub fn journal(&self) -> Option<&AdaptationJournal> {
        self.journal.as_ref()
    }

    /// Live records in the attached journal (0 when none is attached).
    /// The `sys.txns` system table reads this to surface how much journal
    /// a crash at this instant would force the next recovery to replay.
    #[must_use]
    pub fn journal_len(&self) -> usize {
        self.journal.as_ref().map_or(0, AdaptationJournal::len)
    }

    /// Execute `plan` against `runtime` transactionally.
    ///
    /// On success the runtime has exactly the plan's target shape, stopped
    /// components' state is archived in `states`, and a report is returned.
    /// On failure the runtime is **bit-for-bit restored** and the error
    /// describes the first failing step.
    ///
    /// # Errors
    /// [`SwitchError`]; the runtime is unchanged when one is returned.
    pub fn execute(
        &mut self,
        runtime: &mut Runtime,
        plan: &ReconfigurationPlan,
        factory: &mut dyn ComponentFactory,
        states: &mut StateManager,
        now: u64,
    ) -> Result<SwitchReport, SwitchError> {
        self.execute_with_faults(runtime, plan, factory, states, now, &mut NoFaults)
    }

    /// [`AdaptivityManager::execute`] with a fault injector gating every
    /// step — the entry point chaos tests drive. With [`NoFaults`] the two
    /// are identical; the unarmed production path costs one virtual call per
    /// step that immediately returns `None`.
    ///
    /// # Errors
    /// [`SwitchError`]. The runtime is restored on failure unless the
    /// injector also failed rollback steps, in which case
    /// [`SwitchError::RollbackIncomplete`] reports exactly what was left.
    pub fn execute_with_faults(
        &mut self,
        runtime: &mut Runtime,
        plan: &ReconfigurationPlan,
        factory: &mut dyn ComponentFactory,
        states: &mut StateManager,
        now: u64,
        faults: &mut dyn StepFaults,
    ) -> Result<SwitchReport, SwitchError> {
        self.execute_crashable(runtime, plan, factory, states, now, faults, &mut NoCrash)
    }

    /// [`AdaptivityManager::execute_with_faults`] with a [`CrashHook`]
    /// deciding, at every journal-record boundary, whether the executing
    /// node dies there. Crash sites are only consulted when a journal is
    /// attached — without one there is nothing for recovery to replay,
    /// so a "crash" would be indistinguishable from silent data loss.
    ///
    /// On a crash the transaction is abandoned exactly as a real node
    /// death would leave it: no rollback runs, no outcome counter moves,
    /// and the journal stays open. [`AdaptivityManager::recover`] then
    /// settles the transaction.
    ///
    /// # Errors
    /// As [`AdaptivityManager::execute_with_faults`], plus
    /// [`SwitchError::Crashed`] when the hook fires.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_crashable(
        &mut self,
        runtime: &mut Runtime,
        plan: &ReconfigurationPlan,
        factory: &mut dyn ComponentFactory,
        states: &mut StateManager,
        now: u64,
        faults: &mut dyn StepFaults,
        crash: &mut dyn CrashHook,
    ) -> Result<SwitchReport, SwitchError> {
        // Static gate first: the linter sees only the plan, so anything it
        // rejects would have failed (or worse, mis-rolled-back) in every
        // runtime — refuse before a span opens or the journal is touched.
        // Runtime-dependent inconsistencies still surface as
        // `SwitchError::Inconsistent` from the steps themselves.
        let lint = PlanLinter::new().lint_one(plan);
        if let Some(o) = &self.obs {
            let mut o = o.borrow_mut();
            // One ALU op per examined step: the lint is linear in plan size.
            for _ in 0..plan.len() {
                o.charge(Primitive::Alu);
            }
            o.metrics.counter_add("compkit.lint.plans", 1);
            o.metrics.counter_add("compkit.lint.diagnostics", lint.diagnostics.len() as u64);
        }
        if lint.has_errors() {
            if let Some(o) = &self.obs {
                let mut o = o.borrow_mut();
                let first = lint.errors().next().map(ToString::to_string).unwrap_or_default();
                o.instant("compkit", "lint:rejected", vec![("first", first)]);
                o.metrics.counter_add("compkit.lint.rejected", 1);
            }
            return Err(SwitchError::LintRejected(lint));
        }
        let mut applied: Vec<StepRecord> = Vec::with_capacity(plan.len());
        let obs = self.obs.clone();
        let span = obs.as_ref().map(|o| o.borrow_mut().begin("compkit", "switch"));
        let txn = if let Some(j) = self.journal.as_mut() {
            let t = j.begin(plan.len(), now);
            if let Some(o) = &obs {
                o.borrow_mut().charge(Primitive::Store);
            }
            Some(t)
        } else {
            None
        };
        if txn.is_some() && crash.crash(&CrashSite::Intent) {
            return self.crash_out(&obs, span, "intent", 0, 0);
        }
        let result =
            self.try_execute(runtime, plan, factory, states, now, &mut applied, faults, txn, crash);
        match result {
            Ok(report) => {
                if txn.is_some() && crash.crash(&CrashSite::BeforeCommit) {
                    return self.crash_out(&obs, span, "before-commit", applied.len(), 0);
                }
                if let Some(t) = txn {
                    if let Some(j) = self.journal.as_mut() {
                        j.commit(t);
                    }
                    if let Some(o) = &obs {
                        o.borrow_mut().charge(Primitive::Store);
                    }
                    if crash.crash(&CrashSite::AfterCommit) {
                        return self.crash_out(&obs, span, "after-commit", applied.len(), 0);
                    }
                    if let Some(j) = self.journal.as_mut() {
                        j.truncate();
                    }
                }
                self.switches_committed = self.switches_committed.saturating_add(1);
                if let (Some(o), Some(span)) = (&obs, span) {
                    let mut o = o.borrow_mut();
                    o.charge(Primitive::SchedSteps(report.steps as u32));
                    o.end_with(
                        span,
                        vec![
                            ("outcome", "committed".to_owned()),
                            ("steps", report.steps.to_string()),
                            ("stopped", report.stopped.len().to_string()),
                            ("started", report.started.len().to_string()),
                            ("unbinds", plan.unbind.len().to_string()),
                            ("binds", plan.bind.len().to_string()),
                        ],
                    );
                    o.metrics.counter_add("compkit.switch.committed", 1);
                }
                Ok(report)
            }
            Err(SwitchError::Crashed { site }) => {
                // The node died mid-plan: no rollback, no outcome counter —
                // the journal is the ledger and recovery settles it.
                self.crash_out(&obs, span, &site, applied.len(), 0)
            }
            Err(e) => {
                let rolled_steps = applied.len();
                // Back off: undo the applied steps in reverse. Rollback steps
                // undo operations that succeeded moments ago, so against a
                // healthy runtime they cannot fail; injected rollback faults
                // (and nothing else) land in `residue` instead of a panic.
                let mut residue: Vec<String> = Vec::new();
                let mut undos = 0usize;
                for (index, step) in applied.into_iter().enumerate().rev() {
                    let desc = step.undo_describe();
                    if let Some(reason) = faults.fail_rollback(&desc) {
                        residue.push(format!("{desc}: {reason}"));
                        continue;
                    }
                    if let Err(err) = step.undo(runtime, states) {
                        residue.push(format!("{desc}: {err}"));
                        continue;
                    }
                    undos += 1;
                    if let Some(t) = txn {
                        if let Some(j) = self.journal.as_mut() {
                            j.undone(t, index);
                        }
                        if let Some(o) = &obs {
                            o.borrow_mut().charge(Primitive::Store);
                        }
                        if crash.crash(&CrashSite::AfterUndo { undos }) {
                            return self.crash_out(&obs, span, "mid-rollback", rolled_steps, undos);
                        }
                    }
                }
                if residue.is_empty() {
                    if let Some(t) = txn {
                        if let Some(j) = self.journal.as_mut() {
                            j.abort(t);
                            j.truncate();
                        }
                        if let Some(o) = &obs {
                            o.borrow_mut().charge(Primitive::Store);
                        }
                    }
                    self.switches_rolled_back = self.switches_rolled_back.saturating_add(1);
                    if let (Some(o), Some(span)) = (&obs, span) {
                        let mut o = o.borrow_mut();
                        // The forward steps ran AND were undone: bill both.
                        o.charge(Primitive::SchedSteps(2 * rolled_steps as u32));
                        o.end_with(
                            span,
                            vec![
                                ("outcome", "rolled_back".to_owned()),
                                ("rolled_steps", rolled_steps.to_string()),
                                ("cause", e.to_string()),
                            ],
                        );
                        o.metrics.counter_add("compkit.switch.rolled_back", 1);
                    }
                    Err(e)
                } else {
                    // The rollback itself left residue: counted *only* as
                    // incomplete, never also as rolled back. The journal (if
                    // any) stays open so a later recover() retries the
                    // leftover undos.
                    self.rollbacks_incomplete = self.rollbacks_incomplete.saturating_add(1);
                    if let (Some(o), Some(span)) = (&obs, span) {
                        let mut o = o.borrow_mut();
                        o.charge(Primitive::SchedSteps(2 * rolled_steps as u32));
                        o.end_with(
                            span,
                            vec![
                                ("outcome", "rollback_incomplete".to_owned()),
                                ("rolled_steps", rolled_steps.to_string()),
                                ("residue", residue.len().to_string()),
                                ("cause", e.to_string()),
                            ],
                        );
                        o.metrics.counter_add("compkit.switch.rollbacks_incomplete", 1);
                    }
                    Err(SwitchError::RollbackIncomplete { cause: e.to_string(), residue })
                }
            }
        }
    }

    /// Replay the attached journal after a crash. Lands the runtime in
    /// exactly one of two configurations — fully committed (a commit
    /// record made it to the journal: roll forward) or fully rolled back
    /// (no commit record: every applied-not-yet-undone step is reversed)
    /// — and is idempotent: once settled, further calls scan an empty
    /// journal, touch nothing, and report [`RecoveryOutcome::Clean`].
    ///
    /// The replay is cycle-billed when observability is armed: one
    /// [`Primitive::Load`] per scanned record, one [`Primitive::Store`]
    /// plus a scheduler step per undo, inside a `compkit:recover` span;
    /// the `compkit.recovery.*` counters feed the metrics registry.
    ///
    /// `crash` lets the conformance suite kill *recovery itself*
    /// ([`CrashPoint::DuringRecovery`]); progress survives in the
    /// journal, so the next call resumes where the last one died.
    ///
    /// [`CrashPoint::DuringRecovery`]: crate::journal::CrashPoint::DuringRecovery
    pub fn recover(
        &mut self,
        runtime: &mut Runtime,
        states: &mut StateManager,
        crash: &mut dyn CrashHook,
    ) -> RecoveryReport {
        let noop = RecoveryReport {
            outcome: RecoveryOutcome::Clean,
            records_scanned: 0,
            undone: 0,
            residue: Vec::new(),
        };
        let Some(journal) = self.journal.as_ref() else { return noop };
        if journal.is_empty() {
            return noop;
        }
        let scanned = journal.len();
        let open = journal.open_txn();
        let obs = self.obs.clone();
        let span = obs.as_ref().map(|o| o.borrow_mut().begin("compkit", "recover"));
        if let Some(o) = &obs {
            let mut o = o.borrow_mut();
            for _ in 0..scanned {
                o.charge(Primitive::Load);
            }
        }
        let report = match open {
            None => {
                // Records without an intent cannot be produced by this
                // manager; treat the log defensively as already settled.
                if let Some(j) = self.journal.as_mut() {
                    j.truncate();
                }
                RecoveryReport {
                    outcome: RecoveryOutcome::Clean,
                    records_scanned: scanned,
                    undone: 0,
                    residue: Vec::new(),
                }
            }
            Some(t) if t.committed => {
                // Roll forward. Applied records are written *after* their
                // runtime mutations and the commit record after the last
                // step, so the runtime already holds the committed
                // configuration; only the checkpoint was lost.
                if let Some(j) = self.journal.as_mut() {
                    j.truncate();
                }
                self.switches_committed = self.switches_committed.saturating_add(1);
                RecoveryReport {
                    outcome: RecoveryOutcome::RolledForward,
                    records_scanned: scanned,
                    undone: 0,
                    residue: Vec::new(),
                }
            }
            Some(t) if t.aborted => {
                // The rollback finished before the crash; only the
                // checkpoint was lost.
                if let Some(j) = self.journal.as_mut() {
                    j.truncate();
                }
                self.switches_rolled_back = self.switches_rolled_back.saturating_add(1);
                RecoveryReport {
                    outcome: RecoveryOutcome::RolledBack,
                    records_scanned: scanned,
                    undone: 0,
                    residue: Vec::new(),
                }
            }
            Some(t) => {
                let mut undone_now = 0usize;
                let mut residue: Vec<String> = Vec::new();
                let mut crashed = false;
                for (index, step) in t.applied.iter().rev() {
                    if t.undone.contains(index) {
                        continue;
                    }
                    match step.undo(runtime, states) {
                        Ok(()) => {
                            if let Some(j) = self.journal.as_mut() {
                                j.undone(t.txn, *index);
                            }
                            if let Some(o) = &obs {
                                let mut o = o.borrow_mut();
                                o.charge(Primitive::Store);
                                o.charge(Primitive::SchedSteps(1));
                            }
                            undone_now += 1;
                            if crash.crash(&CrashSite::AfterRecoveryUndo { undos: undone_now }) {
                                crashed = true;
                                break;
                            }
                        }
                        Err(e) => residue.push(format!("{}: {e}", step.undo_describe())),
                    }
                }
                if crashed {
                    // The journal keeps the partial progress; the next
                    // recover() resumes from it.
                    RecoveryReport {
                        outcome: RecoveryOutcome::Crashed,
                        records_scanned: scanned,
                        undone: undone_now,
                        residue,
                    }
                } else if residue.is_empty() {
                    if let Some(j) = self.journal.as_mut() {
                        j.abort(t.txn);
                        j.truncate();
                    }
                    if let Some(o) = &obs {
                        o.borrow_mut().charge(Primitive::Store);
                    }
                    self.switches_rolled_back = self.switches_rolled_back.saturating_add(1);
                    RecoveryReport {
                        outcome: RecoveryOutcome::RolledBack,
                        records_scanned: scanned,
                        undone: undone_now,
                        residue,
                    }
                } else {
                    RecoveryReport {
                        outcome: RecoveryOutcome::Incomplete,
                        records_scanned: scanned,
                        undone: undone_now,
                        residue,
                    }
                }
            }
        };
        self.recoveries = self.recoveries.saturating_add(1);
        if let (Some(o), Some(span)) = (&obs, span) {
            let mut o = o.borrow_mut();
            o.end_with(
                span,
                vec![
                    ("outcome", report.outcome.to_string()),
                    ("scanned", report.records_scanned.to_string()),
                    ("undone", report.undone.to_string()),
                ],
            );
            o.metrics.counter_add("compkit.recovery.runs", 1);
            o.metrics
                .counter_add("compkit.recovery.records_scanned", report.records_scanned as u64);
            o.metrics.counter_add("compkit.recovery.steps_undone", report.undone as u64);
            // Mirrors `store.wal.replay_len`: the journal length a replay
            // walked, whoever the log's owner is.
            o.metrics.counter_add("compkit.recovery.replay_len", report.records_scanned as u64);
        }
        report
    }

    /// Bill the partial work, close the switch span as crashed, and
    /// surface [`SwitchError::Crashed`]. The journal is deliberately
    /// left open — it is the evidence recovery replays.
    fn crash_out(
        &mut self,
        obs: &Option<ObsHandle>,
        span: Option<obs::SpanId>,
        site: &str,
        forward_steps: usize,
        undos: usize,
    ) -> Result<SwitchReport, SwitchError> {
        if let (Some(o), Some(span)) = (obs, span) {
            let mut o = o.borrow_mut();
            let bill = (forward_steps + undos) as u32;
            if bill > 0 {
                o.charge(Primitive::SchedSteps(bill));
            }
            o.end_with(span, vec![("outcome", "crashed".to_owned()), ("site", site.to_owned())]);
            o.metrics.counter_add("compkit.switch.crashed", 1);
        }
        Err(SwitchError::Crashed { site: site.to_owned() })
    }

    /// Write one applied-step record through the journal (billed one
    /// store when observability is armed). No-op without a transaction.
    fn wal_applied(&mut self, txn: Option<u64>, index: usize, step: &StepRecord) {
        let Some(t) = txn else { return };
        if let Some(j) = self.journal.as_mut() {
            j.applied(t, index, step.clone());
        }
        if let Some(o) = &self.obs {
            o.borrow_mut().charge(Primitive::Store);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn try_execute(
        &mut self,
        runtime: &mut Runtime,
        plan: &ReconfigurationPlan,
        factory: &mut dyn ComponentFactory,
        states: &mut StateManager,
        now: u64,
        applied: &mut Vec<StepRecord>,
        faults: &mut dyn StepFaults,
        txn: Option<u64>,
        crash: &mut dyn CrashHook,
    ) -> Result<SwitchReport, SwitchError> {
        // 1. Unbind first: never leave a live binding to a stopping component.
        for b in &plan.unbind {
            if let Some(reason) = faults.fail_unbind(b) {
                return Err(SwitchError::Injected {
                    step: format!("unbind {} -- {}", b.from, b.to),
                    reason,
                });
            }
            runtime.unbind(b).map_err(|e| SwitchError::Inconsistent(e.to_string()))?;
            self.step_done(applied, StepRecord::Unbound(b.clone()), txn, crash)?;
        }
        // 2. Stop, archiving state.
        let mut stopped = Vec::with_capacity(plan.stop.len());
        for (name, _ty) in &plan.stop {
            if let Some(reason) = faults.fail_stop(name) {
                return Err(SwitchError::Injected { step: format!("stop {name}"), reason });
            }
            let comp = runtime.stop(name).map_err(|e| SwitchError::Inconsistent(e.to_string()))?;
            states.archive(name, comp.state.clone());
            self.step_done(applied, StepRecord::Stopped { name: name.clone(), comp }, txn, crash)?;
            stopped.push(name.clone());
        }
        // 3. Start new components (the step that can fail for real reasons).
        let mut started = Vec::with_capacity(plan.start.len());
        for (name, ty) in &plan.start {
            let comp = factory
                .create(name, ty, now)
                .map_err(|e| SwitchError::Create { name: e.name, reason: e.reason })?;
            runtime.start(name, comp).map_err(|e| SwitchError::Inconsistent(e.to_string()))?;
            self.step_done(applied, StepRecord::Started { name: name.clone() }, txn, crash)?;
            started.push(name.clone());
        }
        // 4. Bind last: all endpoints now exist.
        for b in &plan.bind {
            if let Some(reason) = faults.fail_bind(b) {
                return Err(SwitchError::Injected {
                    step: format!("bind {} -- {}", b.from, b.to),
                    reason,
                });
            }
            runtime.bind(b.clone()).map_err(|e| SwitchError::Inconsistent(e.to_string()))?;
            self.step_done(applied, StepRecord::Bound(b.clone()), txn, crash)?;
        }
        Ok(SwitchReport { steps: plan.len(), stopped, started, completed_at: now })
    }

    /// Record one applied step (in-memory and through the journal) and
    /// consult the crash hook at the record boundary it just created.
    ///
    /// # Errors
    /// [`SwitchError::Crashed`] when the hook fires.
    fn step_done(
        &mut self,
        applied: &mut Vec<StepRecord>,
        record: StepRecord,
        txn: Option<u64>,
        crash: &mut dyn CrashHook,
    ) -> Result<(), SwitchError> {
        let index = applied.len();
        self.wal_applied(txn, index, &record);
        applied.push(record);
        if txn.is_some() && crash.crash(&CrashSite::AfterStep { index }) {
            return Err(SwitchError::Crashed { site: format!("after step {}", index + 1) });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{BasicFactory, FlakyFactory};
    use adl::config::flatten;
    use adl::diff::diff;
    use adl::figures::{docked_session, fig4_document, wireless_session};
    use adl::parse::parse;

    /// Bring up the Figure 4 docked session from an empty runtime.
    fn boot_docked() -> (Runtime, StateManager, AdaptivityManager) {
        let doc = fig4_document();
        let docked = docked_session(&doc);
        let mut rt = Runtime::new();
        let mut am = AdaptivityManager::new();
        let mut sm = StateManager::new();
        let plan = diff(&rt.configuration(), &docked);
        am.execute(&mut rt, &plan, &mut BasicFactory, &mut sm, 0).unwrap();
        assert_eq!(rt.configuration(), docked);
        (rt, sm, am)
    }

    #[test]
    fn boot_then_switchover_reaches_wireless() {
        let (mut rt, mut sm, mut am) = boot_docked();
        let doc = fig4_document();
        let plan = diff(&rt.configuration(), &wireless_session(&doc));
        let report = am.execute(&mut rt, &plan, &mut BasicFactory, &mut sm, 5).unwrap();
        assert_eq!(rt.configuration(), wireless_session(&doc));
        assert_eq!(report.stopped, vec!["eth", "opt"]);
        assert_eq!(report.started, vec!["dec", "wifi", "wopt"]);
        assert_eq!(am.committed(), 2);
        assert_eq!(am.rolled_back(), 0);
    }

    #[test]
    fn failed_start_rolls_back_exactly() {
        let (mut rt, mut sm, mut am) = boot_docked();
        let before = rt.clone();
        let doc = fig4_document();
        let plan = diff(&rt.configuration(), &wireless_session(&doc));
        // The wireless optimiser cannot be fetched off the network.
        let mut factory = FlakyFactory::failing(["wopt"]);
        let err = am.execute(&mut rt, &plan, &mut factory, &mut sm, 9).unwrap_err();
        assert!(matches!(err, SwitchError::Create { ref name, .. } if name == "wopt"));
        assert_eq!(rt, before, "runtime must be bit-for-bit restored");
        assert_eq!(am.rolled_back(), 1);
        // Archived state from the aborted stop must not linger.
        assert_eq!(sm.unarchive("opt"), None);
        assert_eq!(sm.unarchive("eth"), None);
    }

    #[test]
    fn stopped_component_state_is_archived_on_commit() {
        let (mut rt, mut sm, mut am) = boot_docked();
        rt.component_mut("opt").unwrap().state = b"half-built-plan".to_vec();
        let doc = fig4_document();
        let plan = diff(&rt.configuration(), &wireless_session(&doc));
        am.execute(&mut rt, &plan, &mut BasicFactory, &mut sm, 3).unwrap();
        assert_eq!(sm.unarchive("opt"), Some(b"half-built-plan".to_vec()));
    }

    #[test]
    fn inconsistent_plan_is_rejected_and_rolled_back() {
        let (mut rt, mut sm, mut am) = boot_docked();
        let before = rt.clone();
        // Hand-craft a plan that stops a component that does not exist.
        let doc = fig4_document();
        let mut plan = diff(&rt.configuration(), &wireless_session(&doc));
        plan.stop.push(("phantom".into(), "Ghost".into()));
        let err = am.execute(&mut rt, &plan, &mut BasicFactory, &mut sm, 1).unwrap_err();
        assert!(matches!(err, SwitchError::Inconsistent(_)));
        assert_eq!(rt, before);
    }

    #[test]
    fn lint_rejected_plan_never_starts_executing() {
        let (mut rt, mut sm, mut am) = boot_docked();
        let before = rt.clone();
        // A statically-broken plan: its new bindings form a dependency
        // cycle. The linter refuses it before any step (or journal record)
        // happens, so nothing is rolled back and no outcome counter moves.
        let mut plan = adl::diff::ReconfigurationPlan::default();
        plan.start.push(("a".into(), "T".into()));
        plan.start.push(("b".into(), "T".into()));
        plan.bind.push(adl::ast::Binding {
            from: adl::ast::PortRef::on("a", "r"),
            to: adl::ast::PortRef::on("b", "p"),
        });
        plan.bind.push(adl::ast::Binding {
            from: adl::ast::PortRef::on("b", "r"),
            to: adl::ast::PortRef::on("a", "p"),
        });
        let err = am.execute(&mut rt, &plan, &mut BasicFactory, &mut sm, 7).unwrap_err();
        let SwitchError::LintRejected(report) = err else {
            panic!("expected LintRejected, got {err}");
        };
        assert!(report.has_errors());
        assert_eq!(rt, before, "refusal precedes execution: nothing changed");
        assert_eq!(am.rolled_back(), 0, "a refusal is not a rollback");
        assert_eq!(am.committed(), 1, "only the boot committed");
        // The refusal happens before the journal is touched, too.
        am.attach_journal();
        let err = am.execute(&mut rt, &plan, &mut BasicFactory, &mut sm, 8).unwrap_err();
        assert!(matches!(err, SwitchError::LintRejected(_)));
        assert!(am.journal().unwrap().is_empty(), "no intent record for a refused plan");
    }

    #[test]
    fn empty_plan_commits_trivially() {
        let (mut rt, mut sm, mut am) = boot_docked();
        let plan = adl::diff::ReconfigurationPlan::default();
        let report = am.execute(&mut rt, &plan, &mut BasicFactory, &mut sm, 2).unwrap();
        assert_eq!(report.steps, 0);
    }

    /// Fails a single named step kind on a matching component/binding, and
    /// optionally every rollback step.
    #[derive(Debug, Default)]
    struct ScriptedFaults {
        bind_to: Option<String>,
        stop: Option<String>,
        rollback_too: bool,
    }

    impl StepFaults for ScriptedFaults {
        fn fail_stop(&mut self, name: &str) -> Option<String> {
            (self.stop.as_deref() == Some(name)).then(|| "injected stop failure".into())
        }
        fn fail_bind(&mut self, b: &Binding) -> Option<String> {
            let hit = b.to.instance.as_deref() == self.bind_to.as_deref();
            hit.then(|| "injected bind failure".into())
        }
        fn fail_rollback(&mut self, _step: &str) -> Option<String> {
            self.rollback_too.then(|| "injected rollback failure".into())
        }
    }

    #[test]
    fn injected_bind_failure_mid_plan_rolls_back_exactly() {
        let (mut rt, mut sm, mut am) = boot_docked();
        let before = rt.clone();
        let doc = fig4_document();
        let plan = diff(&rt.configuration(), &wireless_session(&doc));
        assert!(!plan.bind.is_empty(), "switchover plan must bind something");
        let target = plan.bind.last().unwrap().to.instance.clone();
        let mut faults = ScriptedFaults { bind_to: target, ..ScriptedFaults::default() };
        let err = am
            .execute_with_faults(&mut rt, &plan, &mut BasicFactory, &mut sm, 4, &mut faults)
            .unwrap_err();
        assert!(matches!(err, SwitchError::Injected { ref step, .. } if step.starts_with("bind")));
        assert_eq!(rt, before, "mid-plan bind failure must restore the runtime");
        assert_eq!(am.rolled_back(), 1);
        assert_eq!(am.rollbacks_incomplete(), 0);
    }

    #[test]
    fn injected_stop_failure_rolls_back() {
        let (mut rt, mut sm, mut am) = boot_docked();
        let before = rt.clone();
        let doc = fig4_document();
        let plan = diff(&rt.configuration(), &wireless_session(&doc));
        let mut faults = ScriptedFaults { stop: Some("eth".into()), ..ScriptedFaults::default() };
        let err = am
            .execute_with_faults(&mut rt, &plan, &mut BasicFactory, &mut sm, 4, &mut faults)
            .unwrap_err();
        assert!(matches!(err, SwitchError::Injected { ref step, .. } if step == "stop eth"));
        assert_eq!(rt, before);
    }

    #[test]
    fn injected_rollback_failure_is_reported_not_panicked() {
        let (mut rt, mut sm, mut am) = boot_docked();
        let doc = fig4_document();
        let plan = diff(&rt.configuration(), &wireless_session(&doc));
        let target = plan.bind.last().unwrap().to.instance.clone();
        let mut faults = ScriptedFaults { bind_to: target, stop: None, rollback_too: true };
        let err = am
            .execute_with_faults(&mut rt, &plan, &mut BasicFactory, &mut sm, 4, &mut faults)
            .unwrap_err();
        let SwitchError::RollbackIncomplete { cause, residue } = err else {
            panic!("expected RollbackIncomplete, got {err}");
        };
        assert!(cause.contains("injected bind failure"), "{cause}");
        assert!(!residue.is_empty());
        // The three outcome counters are mutually exclusive: an incomplete
        // rollback is NOT also counted as rolled back (regression for the
        // old double-count).
        assert_eq!(am.rollbacks_incomplete(), 1);
        assert_eq!(am.rolled_back(), 0, "incomplete must not double-count as rolled back");
        assert_eq!(am.committed(), 1, "only the boot committed");
    }

    #[test]
    fn outcome_counters_saturate_at_u64_max() {
        let (mut rt, mut sm, mut am) = boot_docked();
        am.switches_committed = u64::MAX;
        am.switches_rolled_back = u64::MAX;
        am.rollbacks_incomplete = u64::MAX;
        am.recoveries = u64::MAX;
        let doc = fig4_document();
        let plan = diff(&rt.configuration(), &wireless_session(&doc));
        am.execute(&mut rt, &plan, &mut BasicFactory, &mut sm, 1).unwrap();
        assert_eq!(am.committed(), u64::MAX, "saturates, never wraps to 0");
        let plan_back = diff(&rt.configuration(), &docked_session(&doc));
        let mut factory = FlakyFactory::failing(["eth"]);
        am.execute(&mut rt, &plan_back, &mut factory, &mut sm, 2).unwrap_err();
        assert_eq!(am.rolled_back(), u64::MAX);
        assert_eq!(am.rollbacks_incomplete(), u64::MAX);
        assert_eq!(am.recoveries(), u64::MAX);
    }

    #[test]
    fn no_faults_injector_is_transparent() {
        // execute() and execute_with_faults(NoFaults) behave identically.
        let (mut rt, mut sm, mut am) = boot_docked();
        let doc = fig4_document();
        let plan = diff(&rt.configuration(), &wireless_session(&doc));
        let report = am
            .execute_with_faults(&mut rt, &plan, &mut BasicFactory, &mut sm, 5, &mut NoFaults)
            .unwrap();
        assert_eq!(rt.configuration(), wireless_session(&doc));
        assert_eq!(report.stopped, vec!["eth", "opt"]);
    }

    #[test]
    fn repeated_flapping_switches_are_stable() {
        // Docked → wireless → docked × 50: the runtime must end exactly
        // where it started and counters must add up.
        let (mut rt, mut sm, mut am) = boot_docked();
        let doc = fig4_document();
        let docked = docked_session(&doc);
        let wireless = wireless_session(&doc);
        for i in 0..50 {
            let target = if i % 2 == 0 { &wireless } else { &docked };
            let plan = diff(&rt.configuration(), target);
            am.execute(&mut rt, &plan, &mut BasicFactory, &mut sm, i).unwrap();
        }
        assert_eq!(rt.configuration(), docked);
        assert_eq!(am.committed(), 51);
    }

    #[test]
    fn partial_progress_failure_mid_bind_restores() {
        // A plan whose bind step fails after several successful steps: make
        // the last bind reference an instance the plan never started.
        let doc = parse(
            "component T { provide p; }
             component U { require q; }
             component C { when on { inst t : T; u : U; bind u.q -- t.p; } }",
        )
        .unwrap();
        let target = flatten(&doc, "C", &["on"]).unwrap();
        let mut rt = Runtime::new();
        let mut am = AdaptivityManager::new();
        let mut sm = StateManager::new();
        let mut plan = diff(&rt.configuration(), &target);
        plan.bind.push(adl::ast::Binding {
            from: adl::ast::PortRef::on("u", "q2"),
            to: adl::ast::PortRef::on("missing", "p"),
        });
        let before = rt.clone();
        let err = am.execute(&mut rt, &plan, &mut BasicFactory, &mut sm, 0).unwrap_err();
        assert!(matches!(err, SwitchError::Inconsistent(_)));
        assert_eq!(rt, before);
    }

    // ----- crash / recovery -----

    use crate::journal::{CrashPoint, PlannedCrash, RecoveryOutcome};

    /// Boot the docked session on a journalled manager and hand back the
    /// docked→wireless switchover plan.
    fn journalled_world() -> (Runtime, StateManager, AdaptivityManager, ReconfigurationPlan) {
        let (rt, sm, mut am) = boot_docked();
        am.attach_journal();
        let doc = fig4_document();
        let plan = diff(&rt.configuration(), &wireless_session(&doc));
        (rt, sm, am, plan)
    }

    #[test]
    fn journal_write_through_commits_and_checkpoints() {
        let (mut rt, mut sm, mut am, plan) = journalled_world();
        am.execute(&mut rt, &plan, &mut BasicFactory, &mut sm, 5).unwrap();
        let j = am.journal().expect("journal attached");
        assert!(j.is_empty(), "commit checkpoints the journal");
        // intent + one record per step + commit all hit the log.
        assert_eq!(j.appended_total(), 1 + plan.len() as u64 + 1);
        let report = am.recover(&mut rt, &mut sm, &mut NoCrash);
        assert!(report.noop(), "nothing to recover after a clean commit: {report:?}");
    }

    #[test]
    fn journal_len_tracks_live_records_and_recovery_reports_replay_len() {
        use obs::{CostModel, Obs};
        let (mut rt, mut sm, mut am, plan) = journalled_world();
        assert_eq!(am.journal_len(), 0, "fresh journal holds nothing");
        let mut crash = PlannedCrash::new(CrashPoint::BeforeCommit);
        am.execute_crashable(
            &mut rt,
            &plan,
            &mut BasicFactory,
            &mut sm,
            5,
            &mut NoFaults,
            &mut crash,
        )
        .unwrap_err();
        // intent + one record per applied step are still live after a crash.
        assert_eq!(am.journal_len(), 1 + plan.len());

        let obs = Obs::new(CostModel::pentium()).into_handle();
        am.arm_obs(obs.clone());
        let report = am.recover(&mut rt, &mut sm, &mut NoCrash);
        am.disarm_obs();
        assert_eq!(report.outcome, RecoveryOutcome::RolledBack);
        assert_eq!(am.journal_len(), 0, "recovery checkpoints the journal");
        let o = Obs::try_unwrap(obs).unwrap_or_else(|_| unreachable!("sole handle"));
        assert_eq!(
            o.metrics.counter("compkit.recovery.replay_len"),
            report.records_scanned as u64,
            "replay_len mirrors store.wal.replay_len for the adaptation journal"
        );
    }

    #[test]
    fn crash_before_commit_recovers_to_the_rolled_back_configuration() {
        let (mut rt, mut sm, mut am, plan) = journalled_world();
        let before = rt.clone();
        let mut crash = PlannedCrash::new(CrashPoint::BeforeCommit);
        let err = am
            .execute_crashable(
                &mut rt,
                &plan,
                &mut BasicFactory,
                &mut sm,
                5,
                &mut NoFaults,
                &mut crash,
            )
            .unwrap_err();
        assert!(matches!(err, SwitchError::Crashed { .. }), "got {err}");
        assert_ne!(rt, before, "the node died with every step applied");
        assert_eq!(am.rolled_back(), 0, "a crash moves no outcome counter");

        let report = am.recover(&mut rt, &mut sm, &mut NoCrash);
        assert_eq!(report.outcome, RecoveryOutcome::RolledBack);
        assert_eq!(report.undone, plan.len());
        assert_eq!(rt, before, "recovery restores the pre-switch runtime bit-for-bit");
        assert_eq!((am.committed(), am.rolled_back()), (1, 1), "boot + the recovered txn");
        assert!(am.recover(&mut rt, &mut sm, &mut NoCrash).noop(), "replay is idempotent");
        assert_eq!(rt, before);
    }

    #[test]
    fn crash_after_commit_recovers_by_rolling_forward() {
        let (mut rt, mut sm, mut am, plan) = journalled_world();
        let doc = fig4_document();
        let mut crash = PlannedCrash::new(CrashPoint::AfterCommit);
        am.execute_crashable(
            &mut rt,
            &plan,
            &mut BasicFactory,
            &mut sm,
            5,
            &mut NoFaults,
            &mut crash,
        )
        .unwrap_err();
        assert_eq!(am.committed(), 1, "the crashed txn is not yet counted");

        let report = am.recover(&mut rt, &mut sm, &mut NoCrash);
        assert_eq!(report.outcome, RecoveryOutcome::RolledForward);
        assert_eq!(report.undone, 0, "roll-forward undoes nothing");
        assert_eq!(rt.configuration(), wireless_session(&doc), "committed configuration stands");
        assert_eq!(am.committed(), 2, "recovery settles the commit exactly once");
        assert!(am.recover(&mut rt, &mut sm, &mut NoCrash).noop());
    }

    #[test]
    fn crash_mid_plan_recovers_to_the_rolled_back_configuration() {
        for after_steps in [0usize, 1, 3] {
            let (mut rt, mut sm, mut am, plan) = journalled_world();
            let before = rt.clone();
            let mut crash = PlannedCrash::new(CrashPoint::MidPlan { after_steps });
            let err = am
                .execute_crashable(
                    &mut rt,
                    &plan,
                    &mut BasicFactory,
                    &mut sm,
                    5,
                    &mut NoFaults,
                    &mut crash,
                )
                .unwrap_err();
            assert!(matches!(err, SwitchError::Crashed { .. }), "got {err}");
            let report = am.recover(&mut rt, &mut sm, &mut NoCrash);
            assert_eq!(report.outcome, RecoveryOutcome::RolledBack, "after {after_steps} steps");
            assert_eq!(report.undone, after_steps);
            assert_eq!(rt, before, "never a hybrid configuration (after {after_steps} steps)");
        }
    }

    #[test]
    fn crash_mid_rollback_then_recovery_finishes_the_rollback() {
        let (mut rt, mut sm, mut am, plan) = journalled_world();
        let before = rt.clone();
        let target = plan.bind.last().unwrap().to.instance.clone();
        let mut faults = ScriptedFaults { bind_to: target, ..ScriptedFaults::default() };
        let mut crash = PlannedCrash::new(CrashPoint::MidRollback { after_undos: 1 });
        let err = am
            .execute_crashable(
                &mut rt,
                &plan,
                &mut BasicFactory,
                &mut sm,
                5,
                &mut faults,
                &mut crash,
            )
            .unwrap_err();
        assert!(matches!(err, SwitchError::Crashed { .. }), "got {err}");
        assert_ne!(rt, before, "the rollback died after one undo");

        let report = am.recover(&mut rt, &mut sm, &mut NoCrash);
        assert_eq!(report.outcome, RecoveryOutcome::RolledBack);
        assert_eq!(rt, before, "recovery finishes the interrupted rollback");
        assert_eq!(am.rolled_back(), 1);
        assert!(am.recover(&mut rt, &mut sm, &mut NoCrash).noop());
    }

    #[test]
    fn crash_during_recovery_resumes_on_the_next_recovery() {
        let (mut rt, mut sm, mut am, plan) = journalled_world();
        let before = rt.clone();
        let mut crash = PlannedCrash::new(CrashPoint::BeforeCommit);
        am.execute_crashable(
            &mut rt,
            &plan,
            &mut BasicFactory,
            &mut sm,
            5,
            &mut NoFaults,
            &mut crash,
        )
        .unwrap_err();

        let mut recrash = PlannedCrash::new(CrashPoint::DuringRecovery { after_undos: 1 });
        let first = am.recover(&mut rt, &mut sm, &mut recrash);
        assert_eq!(first.outcome, RecoveryOutcome::Crashed);
        assert_eq!(first.undone, 1);
        assert_eq!(am.rolled_back(), 0, "a crashed recovery settles nothing");

        let second = am.recover(&mut rt, &mut sm, &mut NoCrash);
        assert_eq!(second.outcome, RecoveryOutcome::RolledBack);
        assert_eq!(second.undone, plan.len() - 1, "resumes where the dead replay stopped");
        assert_eq!(rt, before);
        assert_eq!(am.rolled_back(), 1, "settled exactly once across both replays");
        assert!(am.recover(&mut rt, &mut sm, &mut NoCrash).noop());
    }

    #[test]
    fn recovery_after_incomplete_rollback_finishes_the_job() {
        let (mut rt, mut sm, mut am, plan) = journalled_world();
        let before = rt.clone();
        let target = plan.bind.last().unwrap().to.instance.clone();
        let mut faults = ScriptedFaults { bind_to: target, stop: None, rollback_too: true };
        let err = am
            .execute_with_faults(&mut rt, &plan, &mut BasicFactory, &mut sm, 5, &mut faults)
            .unwrap_err();
        assert!(matches!(err, SwitchError::RollbackIncomplete { .. }), "got {err}");
        assert_eq!(am.rollbacks_incomplete(), 1);

        // The injector is gone on the recovery path, so the leftover undos
        // now succeed and the runtime is restored.
        let report = am.recover(&mut rt, &mut sm, &mut NoCrash);
        assert_eq!(report.outcome, RecoveryOutcome::RolledBack);
        assert_eq!(rt, before);
        assert_eq!(am.rolled_back(), 1);
    }

    #[test]
    fn recovery_without_a_journal_or_with_an_empty_one_is_clean() {
        let (mut rt, mut sm, mut am) = boot_docked();
        assert!(am.recover(&mut rt, &mut sm, &mut NoCrash).noop(), "no journal attached");
        am.attach_journal();
        assert!(am.recover(&mut rt, &mut sm, &mut NoCrash).noop(), "empty journal");
        assert_eq!(am.recoveries(), 0, "noop replays are not counted as recoveries");
    }

    /// Journal replay is idempotent from *any* crash prefix: recovering
    /// twice yields the same configuration, counters, trace, and metrics
    /// as recovering once. Runs 200 randomly-scripted crashes.
    #[cfg(feature = "slow-props")]
    #[test]
    fn prop_recovering_twice_equals_recovering_once() {
        use obs::{CostModel, Obs};

        fn random_point(rng: &mut adm_rng::Pcg32) -> CrashPoint {
            match rng.index(5) {
                0 => CrashPoint::MidPlan { after_steps: rng.index(6) },
                1 => CrashPoint::BeforeCommit,
                2 => CrashPoint::AfterCommit,
                3 => CrashPoint::MidRollback { after_undos: 1 + rng.index(3) },
                _ => CrashPoint::DuringRecovery { after_undos: 1 + rng.index(3) },
            }
        }

        /// One full crash-and-recover life, returning the world's final
        /// observable state (runtime, counters, trace digest, metrics
        /// digest). `extra_recover` replays recovery one more time.
        fn live(
            point: CrashPoint,
            rollback_fault: bool,
            extra_recover: bool,
        ) -> (Runtime, [u64; 4], u64, u64) {
            let (mut rt, mut sm, mut am, plan) = journalled_world();
            let obs = Obs::new(CostModel::pentium()).into_handle();
            am.arm_obs(obs.clone());
            let target = plan.bind.last().unwrap().to.instance.clone();
            let mut faults = if rollback_fault {
                ScriptedFaults { bind_to: target, ..ScriptedFaults::default() }
            } else {
                ScriptedFaults::default()
            };
            let mut crash = PlannedCrash::new(point);
            let _ = am.execute_crashable(
                &mut rt,
                &plan,
                &mut BasicFactory,
                &mut sm,
                5,
                &mut faults,
                &mut crash,
            );
            // First recovery may itself crash (DuringRecovery points); a
            // second replay must absorb that too.
            let mut recrash = PlannedCrash::new(point);
            let _ = am.recover(&mut rt, &mut sm, &mut recrash);
            let _ = am.recover(&mut rt, &mut sm, &mut NoCrash);
            if extra_recover {
                let r = am.recover(&mut rt, &mut sm, &mut NoCrash);
                assert!(r.noop(), "extra replay must be a no-op: {r:?}");
            }
            am.disarm_obs();
            let o = Obs::try_unwrap(obs).unwrap_or_else(|_| unreachable!("sole handle"));
            let counters =
                [am.committed(), am.rolled_back(), am.rollbacks_incomplete(), am.recoveries()];
            (rt, counters, o.tracer.digest(), o.metrics.digest())
        }

        adm_rng::run_cases(0xADA9_7410, 200, |rng| {
            let point = random_point(rng);
            let rollback_fault = matches!(point, CrashPoint::MidRollback { .. }) || rng.chance(0.3);
            let once = live(point, rollback_fault, false);
            let twice = live(point, rollback_fault, true);
            assert_eq!(once.0, twice.0, "configuration must agree at {point}");
            assert_eq!(once.1, twice.1, "counters must agree at {point}");
            assert_eq!(once.2, twice.2, "trace digest must agree at {point}");
            assert_eq!(once.3, twice.3, "metrics snapshot must agree at {point}");
        });
    }
}
