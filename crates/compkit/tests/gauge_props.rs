//! Gauge properties: every aggregation stays within the bounds of the data
//! it summarises.
//!
//! Randomised suites are opt-in: `cargo test -p compkit --features slow-props`.
#![cfg(feature = "slow-props")]

use adm_rng::{run_cases, Pcg32};
use compkit::gauge::{Gauge, GaugeKind};
use compkit::monitor::Monitor;

fn monitor(values: &[f64]) -> Monitor {
    let mut m = Monitor::new("m", 256);
    for (t, &v) in values.iter().enumerate() {
        m.push(t as u64, v);
    }
    m
}

fn gauge(kind: GaugeKind) -> Gauge {
    Gauge { name: "g".into(), monitor: "m".into(), kind }
}

fn values(rng: &mut Pcg32, lo_len: usize, hi_len: usize) -> Vec<f64> {
    let n = rng.index(hi_len - lo_len) + lo_len;
    (0..n).map(|_| (rng.f64() - 0.5) * 2e6).collect()
}

/// Mean, EWMA and max all stay within [min, max] of the readings.
#[test]
fn aggregations_are_bounded() {
    run_cases(0xc01, 512, |rng| {
        let values = values(rng, 1, 100);
        let n = rng.index(99) + 1;
        let alpha = 0.01 + rng.f64() * 0.99;
        let m = monitor(&values);
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for kind in [
            GaugeKind::Latest,
            GaugeKind::WindowMean(n),
            GaugeKind::Ewma(alpha),
            GaugeKind::WindowMax(n),
        ] {
            let v = gauge(kind).evaluate(&m).expect("non-empty monitor");
            assert!(v >= lo - 1e-6 && v <= hi + 1e-6, "{kind:?} gave {v} outside [{lo}, {hi}]");
        }
    });
}

/// WindowMax dominates WindowMean over the same window.
#[test]
fn max_dominates_mean() {
    run_cases(0xc02, 512, |rng| {
        let values = values(rng, 2, 100);
        let n = rng.index(98) + 2;
        let m = monitor(&values);
        let mean = gauge(GaugeKind::WindowMean(n)).evaluate(&m).unwrap();
        let max = gauge(GaugeKind::WindowMax(n)).evaluate(&m).unwrap();
        assert!(max >= mean - 1e-6);
    });
}

/// Slope of a perfectly linear signal recovers its gradient.
#[test]
fn slope_recovers_linear_gradient() {
    run_cases(0xc03, 512, |rng| {
        let grad = (rng.f64() - 0.5) * 200.0;
        let intercept = (rng.f64() - 0.5) * 2e3;
        let len = rng.index(57) + 3;
        let values: Vec<f64> = (0..len).map(|t| intercept + grad * t as f64).collect();
        let m = monitor(&values);
        let s = gauge(GaugeKind::Slope(len)).evaluate(&m).unwrap();
        assert!((s - grad).abs() < 1e-6 * (1.0 + grad.abs()), "slope {s} vs {grad}");
    });
}
