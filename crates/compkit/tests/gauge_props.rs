//! Gauge properties: every aggregation stays within the bounds of the data
//! it summarises.

use compkit::gauge::{Gauge, GaugeKind};
use compkit::monitor::Monitor;
use proptest::prelude::*;

fn monitor(values: &[f64]) -> Monitor {
    let mut m = Monitor::new("m", 256);
    for (t, &v) in values.iter().enumerate() {
        m.push(t as u64, v);
    }
    m
}

fn gauge(kind: GaugeKind) -> Gauge {
    Gauge { name: "g".into(), monitor: "m".into(), kind }
}

proptest! {
    /// Mean, EWMA and max all stay within [min, max] of the readings.
    #[test]
    fn aggregations_are_bounded(
        values in prop::collection::vec(-1e6f64..1e6, 1..100),
        n in 1usize..100,
        alpha in 0.01f64..1.0,
    ) {
        let m = monitor(&values);
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for kind in [GaugeKind::Latest, GaugeKind::WindowMean(n), GaugeKind::Ewma(alpha), GaugeKind::WindowMax(n)] {
            let v = gauge(kind).evaluate(&m).expect("non-empty monitor");
            prop_assert!(v >= lo - 1e-6 && v <= hi + 1e-6, "{kind:?} gave {v} outside [{lo}, {hi}]");
        }
    }

    /// WindowMax dominates WindowMean over the same window.
    #[test]
    fn max_dominates_mean(
        values in prop::collection::vec(-1e6f64..1e6, 2..100),
        n in 2usize..100,
    ) {
        let m = monitor(&values);
        let mean = gauge(GaugeKind::WindowMean(n)).evaluate(&m).unwrap();
        let max = gauge(GaugeKind::WindowMax(n)).evaluate(&m).unwrap();
        prop_assert!(max >= mean - 1e-6);
    }

    /// Slope of a perfectly linear signal recovers its gradient.
    #[test]
    fn slope_recovers_linear_gradient(
        grad in -100.0f64..100.0,
        intercept in -1e3f64..1e3,
        len in 3usize..60,
    ) {
        let values: Vec<f64> = (0..len).map(|t| intercept + grad * t as f64).collect();
        let m = monitor(&values);
        let s = gauge(GaugeKind::Slope(len)).evaluate(&m).unwrap();
        prop_assert!((s - grad).abs() < 1e-6 * (1.0 + grad.abs()), "slope {s} vs {grad}");
    }
}
