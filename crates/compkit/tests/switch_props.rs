//! Property: the Adaptivity Manager's switch is atomic under arbitrary
//! injected creation failures — either the runtime reaches exactly the
//! target configuration, or it is restored bit-for-bit.

use adl::ast::{Binding, PortRef};
use adl::config::Configuration;
use adl::diff::diff;
use compkit::adaptivity::AdaptivityManager;
use compkit::runtime::{BasicFactory, FlakyFactory, Runtime};
use compkit::state::StateManager;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn name() -> impl Strategy<Value = String> {
    "[a-e]{1,2}".prop_map(|s| s)
}

fn configuration() -> impl Strategy<Value = Configuration> {
    (
        prop::collection::btree_map(name(), "[TUV]", 0..6),
        prop::collection::btree_set((name(), "[pq]", name(), "[pq]"), 0..6),
    )
        .prop_map(|(instances, raw)| {
            // Bindings may only reference instances that exist, so the
            // runtime's bind() invariant holds for the *target*.
            let keys: BTreeSet<&String> = instances.keys().collect();
            let bindings = raw
                .into_iter()
                .filter(|(fi, _, ti, _)| keys.contains(fi) && keys.contains(ti))
                .map(|(fi, fp, ti, tp)| Binding {
                    from: PortRef::on(&fi, &fp),
                    to: PortRef::on(&ti, &tp),
                })
                .collect();
            Configuration { instances, bindings }
        })
}

fn boot(cfg: &Configuration) -> Runtime {
    let mut rt = Runtime::new();
    let mut am = AdaptivityManager::new();
    let mut st = StateManager::new();
    let plan = diff(&Configuration::default(), cfg);
    am.execute(&mut rt, &plan, &mut BasicFactory, &mut st, 0)
        .expect("booting a self-consistent configuration succeeds");
    rt
}

proptest! {
    /// With a healthy factory, a switch always lands exactly on the target.
    #[test]
    fn switch_reaches_target(a in configuration(), b in configuration()) {
        let mut rt = boot(&a);
        let mut am = AdaptivityManager::new();
        let mut st = StateManager::new();
        let plan = diff(&rt.configuration(), &b);
        am.execute(&mut rt, &plan, &mut BasicFactory, &mut st, 1).unwrap();
        prop_assert_eq!(rt.configuration(), b);
    }

    /// With injected failures, the outcome is all-or-nothing.
    #[test]
    fn switch_is_atomic_under_failures(
        a in configuration(),
        b in configuration(),
        fail in prop::collection::btree_set(name(), 0..4),
    ) {
        let mut rt = boot(&a);
        let before = rt.clone();
        let mut am = AdaptivityManager::new();
        let mut st = StateManager::new();
        let plan = diff(&rt.configuration(), &b);
        let mut factory = FlakyFactory::failing(fail.clone());
        match am.execute(&mut rt, &plan, &mut factory, &mut st, 1) {
            Ok(_) => {
                prop_assert_eq!(rt.configuration(), b.clone());
                // Success implies no started component was on the fail list.
                for (n, _) in &plan.start {
                    prop_assert!(!fail.contains(n));
                }
            }
            Err(_) => {
                prop_assert_eq!(&rt, &before, "failed switch must restore the runtime");
                prop_assert_eq!(am.rolled_back(), 1);
            }
        }
    }
}
