//! Property: the Adaptivity Manager's switch is atomic under arbitrary
//! injected creation failures — either the runtime reaches exactly the
//! target configuration, or it is restored bit-for-bit.
//!
//! Randomised suites are opt-in: `cargo test -p compkit --features slow-props`.
#![cfg(feature = "slow-props")]

use adl::ast::{Binding, PortRef};
use adl::config::Configuration;
use adl::diff::diff;
use adm_rng::{run_cases, Pcg32};
use compkit::adaptivity::AdaptivityManager;
use compkit::runtime::{BasicFactory, FlakyFactory, Runtime};
use compkit::state::StateManager;
use std::collections::BTreeSet;

fn name(rng: &mut Pcg32) -> String {
    let n = rng.index(2) + 1;
    (0..n).map(|_| (b'a' + rng.below(5) as u8) as char).collect()
}

fn port(rng: &mut Pcg32) -> String {
    String::from(if rng.chance(0.5) { "p" } else { "q" })
}

fn configuration(rng: &mut Pcg32) -> Configuration {
    let instances: std::collections::BTreeMap<String, String> = (0..rng.index(6))
        .map(|_| {
            let ty = ["T", "U", "V"][rng.index(3)].to_string();
            (name(rng), ty)
        })
        .collect();
    let raw: BTreeSet<(String, String, String, String)> =
        (0..rng.index(6)).map(|_| (name(rng), port(rng), name(rng), port(rng))).collect();
    // Bindings may only reference instances that exist (so the runtime's
    // bind() invariant holds for the *target*) and must not close an
    // instance-level service cycle: the Adaptivity Manager's lint gate —
    // like the document analyser — refuses cyclic configurations, and
    // these properties quantify over admissible targets.
    let keys: BTreeSet<&String> = instances.keys().collect();
    let mut edges: Vec<(String, String)> = Vec::new();
    let bindings = raw
        .into_iter()
        .filter(|(fi, _, ti, _)| keys.contains(fi) && keys.contains(ti))
        .filter(|(fi, _, ti, _)| {
            edges.push((fi.clone(), ti.clone()));
            if adl::analysis::find_cycle(&edges).is_some() {
                edges.pop();
                return false;
            }
            true
        })
        .map(|(fi, fp, ti, tp)| Binding { from: PortRef::on(&fi, &fp), to: PortRef::on(&ti, &tp) })
        .collect();
    Configuration { instances, bindings }
}

fn boot(cfg: &Configuration) -> Runtime {
    let mut rt = Runtime::new();
    let mut am = AdaptivityManager::new();
    let mut st = StateManager::new();
    let plan = diff(&Configuration::default(), cfg);
    am.execute(&mut rt, &plan, &mut BasicFactory, &mut st, 0)
        .expect("booting a self-consistent configuration succeeds");
    rt
}

/// With a healthy factory, a switch always lands exactly on the target.
#[test]
fn switch_reaches_target() {
    run_cases(0x5c1, 256, |rng| {
        let (a, b) = (configuration(rng), configuration(rng));
        let mut rt = boot(&a);
        let mut am = AdaptivityManager::new();
        let mut st = StateManager::new();
        let plan = diff(&rt.configuration(), &b);
        am.execute(&mut rt, &plan, &mut BasicFactory, &mut st, 1).unwrap();
        assert_eq!(rt.configuration(), b);
    });
}

/// With injected failures, the outcome is all-or-nothing.
#[test]
fn switch_is_atomic_under_failures() {
    run_cases(0x5c2, 256, |rng| {
        let (a, b) = (configuration(rng), configuration(rng));
        let fail: BTreeSet<String> = (0..rng.index(4)).map(|_| name(rng)).collect();
        let mut rt = boot(&a);
        let before = rt.clone();
        let mut am = AdaptivityManager::new();
        let mut st = StateManager::new();
        let plan = diff(&rt.configuration(), &b);
        let mut factory = FlakyFactory::failing(fail.clone());
        match am.execute(&mut rt, &plan, &mut factory, &mut st, 1) {
            Ok(_) => {
                assert_eq!(rt.configuration(), b);
                // Success implies no started component was on the fail list.
                for (n, _) in &plan.start {
                    assert!(!fail.contains(n));
                }
            }
            Err(_) => {
                assert_eq!(&rt, &before, "failed switch must restore the runtime");
                assert_eq!(am.rolled_back(), 1);
            }
        }
    });
}
