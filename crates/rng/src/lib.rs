//! A small, dependency-free, deterministic PRNG.
//!
//! The repository runs in environments with no network access, so it cannot
//! pull in the `rand` crate. Everything that needs seeded randomness —
//! workload generators, property-style test suites, benches — shares this
//! PCG32 implementation (O'Neill's `pcg32_xsh_rr_64_32`), seeded through a
//! SplitMix64 scramble so that small consecutive seeds yield uncorrelated
//! streams. All generators are fully deterministic per seed: adaptive and
//! non-adaptive runs of the same experiment see byte-identical workloads.

/// A PCG32 generator (64-bit state, 32-bit output, XSH-RR output function).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;
const PCG_DEFAULT_STREAM: u64 = 1_442_695_040_888_963_407;

/// One round of SplitMix64 — used to scramble user seeds into PCG state.
#[must_use]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Pcg32 {
    /// A generator seeded deterministically from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let init_state = splitmix64(&mut s);
        let init_inc = splitmix64(&mut s) | 1; // stream selector must be odd
        let mut rng = Self { state: 0, inc: init_inc };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(init_state);
        rng.next_u32();
        rng
    }

    /// A generator on the default stream — equivalent to `new(seed)` but
    /// with the reference stream constant; useful for cross-checking vectors.
    #[must_use]
    pub fn new_default_stream(seed: u64) -> Self {
        let mut rng = Self { state: 0, inc: PCG_DEFAULT_STREAM };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// The next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of entropy).
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, n)` using Lemire's unbiased method.
    ///
    /// # Panics
    /// If `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Rejection-sample the biased zone away.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = u128::from(x).wrapping_mul(u128::from(n));
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    /// If `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        usize::try_from(self.below(n as u64)).expect("n fits usize")
    }

    /// A uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    /// If `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// A uniform `u32` in `[lo, hi)`.
    ///
    /// # Panics
    /// If `lo >= hi`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + u32::try_from(self.below(u64::from(hi - lo))).expect("span fits u32")
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniformly chosen element of `slice`.
    ///
    /// # Panics
    /// If `slice` is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }

    /// Fill `buf` with uniformly random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(4) {
            let w = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Run `f` `cases` times with a fresh generator per case, each derived from
/// `seed` — the shared shape of the repository's property-style tests. The
/// case index is folded into the seed so failures report a reproducible
/// sub-seed.
///
/// # Panics
/// Propagates panics from `f` (that is the point: a failing case fails the
/// test, and the printed case index pinpoints the reproduction seed).
pub fn run_cases(seed: u64, cases: u32, mut f: impl FnMut(&mut Pcg32)) {
    for case in 0..cases {
        let mut rng = Pcg32::new(seed ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        f(&mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Pcg32::new(42);
        let mut b = Pcg32::new(42);
        let mut c = Pcg32::new(43);
        let xs: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
        let zs: Vec<u32> = (0..64).map(|_| c.next_u32()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn default_stream_differs_from_scrambled_stream() {
        // The two seeding paths must give distinct, internally-deterministic
        // streams for the same seed.
        let mut a = Pcg32::new_default_stream(42);
        let mut b = Pcg32::new(42);
        let xs: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        assert_ne!(xs, ys);
        let mut a2 = Pcg32::new_default_stream(42);
        assert_eq!(xs, (0..16).map(|_| a2.next_u32()).collect::<Vec<_>>());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Pcg32::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.below(10);
            assert!(x < 10);
            seen[usize::try_from(x).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn range_i64_spans_negatives() {
        let mut rng = Pcg32::new(9);
        for _ in 0..100 {
            let x = rng.range_i64(-5, 5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = Pcg32::new(11);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 1000.0;
        assert!((0.4..0.6).contains(&mean), "mean {mean} should be near 0.5");
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut rng = Pcg32::new(13);
        for len in 0..17 {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} all zero");
            }
        }
    }

    #[test]
    fn run_cases_runs_each_case() {
        let mut n = 0;
        run_cases(1, 32, |_| n += 1);
        assert_eq!(n, 32);
    }
}
