//! The Database Machine — the paper's closing claim, assembled.
//!
//! > "as componentisation dissolves the DBMSs architecture into components
//! > and that this is integrated, without boundaries, with the operating
//! > system (which in turn only activated the components that are required
//! > by the DB function, thus tailoring the architecture down to the
//! > metal), means that at *that instant* the system becomes effectively a
//! > Database Machine but potentially without the problems of
//! > standardisation and portability of the past."
//!
//! [`DatabaseMachine`] boots a Go! zero-kernel system and registers query
//! operators — scan, filter, join — as SISR-verified components. Running a
//! query drives the real `query`-crate operators, but **every operator
//! activation crosses a component boundary through the ORB**, paying the
//! Table 1 Go! price in simulated cycles. The result quantifies the
//! paper's central bet for the DBMS itself: with SISR-shaped protection,
//! full operator isolation costs a few ORB calls' worth of cycles —
//! affordable — where trap-shaped protection (a BSD boundary per operator
//! activation) would dwarf the query's own work.

use datacomp::{Row, Table};
use gokernel::component::{ComponentId, InterfaceId, Rights};
use gokernel::orb::Orb;
use machine::cost::{CostModel, Cycles};
use machine::isa::{Instr, Program};
use query::expr::Pred;
use query::op::WorkCounter;
use query::source::TableScan;
use std::fmt;

/// Errors from the Database Machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbmError {
    /// The underlying ORB refused (rejected image, missing component...).
    Orb(String),
    /// Unknown registered table.
    UnknownTable(String),
}

impl fmt::Display for DbmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbmError::Orb(e) => write!(f, "ORB: {e}"),
            DbmError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
        }
    }
}

/// A query's cost split: the work the operators did, and the cycles the
/// component boundaries cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryCost {
    /// Result rows.
    pub rows_out: u64,
    /// Operator activations (ORB crossings).
    pub activations: u64,
    /// Simulated cycles spent crossing component boundaries (ORB calls).
    pub boundary_cycles: Cycles,
    /// Simulated cycles the query's own work corresponds to (operator work
    /// units, one cycle each — comparisons/probes are ALU-scale).
    pub work_cycles: Cycles,
    /// What the same boundaries would cost under a trap-based monolithic
    /// kernel (one BSD-style crossing per activation).
    pub trap_equivalent_cycles: Cycles,
}

impl QueryCost {
    /// Componentisation overhead as a fraction of the query's own work.
    #[must_use]
    pub fn overhead_fraction(&self) -> f64 {
        self.boundary_cycles as f64 / self.work_cycles.max(1) as f64
    }
}

/// One operator registered as a Go! component.
#[derive(Debug)]
struct OperatorComponent {
    iface: InterfaceId,
}

/// The assembled Database Machine.
#[derive(Debug)]
pub struct DatabaseMachine {
    orb: Orb,
    client: ComponentId,
    scan_comp: OperatorComponent,
    filter_comp: OperatorComponent,
    join_comp: OperatorComponent,
    tables: Vec<(String, Table)>,
    work: WorkCounter,
}

impl DatabaseMachine {
    /// Boot: the ORB comes up and the three operator components (the
    /// "select-project-join processor" dissolved into its elements) are
    /// verified, loaded and published.
    ///
    /// # Panics
    /// Never: boot uses known-good verified programs.
    #[must_use]
    pub fn boot(model: CostModel) -> Self {
        let mut orb = Orb::new(16 << 20, model);
        let stub = Program::new(vec![Instr::Halt]).to_bytes();
        let mut component = |name: &str| {
            let ty = orb.load_type(name, &stub).expect("stub verifies");
            let inst = orb.instantiate(ty).expect("arena");
            orb.publish(inst, 0, Rights::PUBLIC, 0).expect("publish")
        };
        let scan = component("scan-operator");
        let filter = component("filter-operator");
        let join = component("join-operator");
        let client_ty = orb.load_type("query-client", &stub).expect("stub verifies");
        let client = orb.instantiate(client_ty).expect("arena");
        Self {
            orb,
            client,
            scan_comp: OperatorComponent { iface: scan },
            filter_comp: OperatorComponent { iface: filter },
            join_comp: OperatorComponent { iface: join },
            tables: Vec::new(),
            work: WorkCounter::new(),
        }
    }

    /// Register a table.
    pub fn register(&mut self, name: &str, table: Table) {
        self.tables.retain(|(n, _)| n != name);
        self.tables.push((name.to_owned(), table));
    }

    fn table(&self, name: &str) -> Result<&Table, DbmError> {
        self.tables
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
            .ok_or_else(|| DbmError::UnknownTable(name.to_owned()))
    }

    fn activate(&mut self, comp_iface: InterfaceId) -> Result<Cycles, DbmError> {
        self.orb
            .invoke(self.client, comp_iface, &[])
            .map(|o| o.cycles)
            .map_err(|e| DbmError::Orb(format!("{e:?}")))
    }

    /// Run `SELECT * FROM left JOIN right ON left.k0 = right.k0 WHERE
    /// pred(left_row)` — a filtered equijoin, the SPJ shape — with every
    /// operator *batch* activation crossing the ORB. Activations happen per
    /// `batch` rows, matching a vectorised engine's boundary-crossing rate.
    ///
    /// # Errors
    /// [`DbmError`] on unknown tables or ORB refusals.
    pub fn run_spj(
        &mut self,
        left: &str,
        right: &str,
        pred: &Pred,
        batch: u64,
    ) -> Result<(Vec<Row>, QueryCost), DbmError> {
        let ltab = self.table(left)?.clone();
        let rtab = self.table(right)?.clone();
        self.work.reset();
        let mut boundary_cycles: Cycles = 0;
        let mut activations: u64 = 0;

        // Component boundary accounting: one ORB call per `batch` rows per
        // operator, as a vectorised pipeline would cross it.
        let mut charge = |dbm: &mut Self, iface: InterfaceId, rows: u64| -> Result<(), DbmError> {
            let calls = rows.div_ceil(batch.max(1)).max(1);
            for _ in 0..calls {
                boundary_cycles += dbm.activate(iface)?;
                activations += 1;
            }
            Ok(())
        };

        // Scan both inputs (through the scan component)...
        let scan_iface = self.scan_comp.iface;
        charge(self, scan_iface, ltab.len() as u64)?;
        charge(self, scan_iface, rtab.len() as u64)?;
        // ...filter the left (through the filter component)...
        let filter_iface = self.filter_comp.iface;
        charge(self, filter_iface, ltab.len() as u64)?;
        // ...and join (through the join component).
        let join_iface = self.join_comp.iface;
        charge(self, join_iface, (ltab.len() + rtab.len()) as u64)?;

        // The actual relational work, with the real operators.
        let filtered = query::basic::Filter::new(
            Box::new(TableScan::new(ltab, self.work.clone())),
            pred.clone(),
            self.work.clone(),
        );
        let mut join = query::basic::HashJoin::new(
            Box::new(filtered),
            Box::new(TableScan::new(rtab, self.work.clone())),
            vec![0],
            vec![0],
            true,
            self.work.clone(),
        );
        let rows = query::op::drain(&mut join, 0);

        let work_cycles = self.work.snapshot().total_ops();
        let m = CostModel::pentium();
        // One BSD-style boundary per activation: trap pair + context switch
        // with its TLB/cache refill (the Table 1 dominant terms).
        let bsd_per_crossing = m.trap_enter
            + m.trap_exit
            + m.regfile_save * 2
            + m.fpu_save
            + m.page_table_switch
            + m.tlb_refill_entry * 250
            + m.cache_miss * 900;
        let cost = QueryCost {
            rows_out: rows.len() as u64,
            activations,
            boundary_cycles,
            work_cycles,
            trap_equivalent_cycles: activations * bsd_per_crossing,
        };
        Ok((rows, cost))
    }

    /// Protection bytes the whole machine uses (the "down to the metal"
    /// footprint).
    #[must_use]
    pub fn protection_bytes(&self) -> u64 {
        self.orb.protection_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacomp::{ColumnType, Schema, Value};

    fn table(n: i64, dup: i64) -> Table {
        let schema = Schema::new(&[("k", ColumnType::Int), ("v", ColumnType::Int)]).unwrap();
        let mut t = Table::new(schema);
        for i in 0..n {
            t.insert(vec![Value::Int(i % dup), Value::Int(i)]).unwrap();
        }
        t
    }

    fn machine() -> DatabaseMachine {
        let mut dbm = DatabaseMachine::boot(CostModel::pentium());
        dbm.register("orders", table(500, 20));
        dbm.register("customers", table(200, 20));
        dbm
    }

    #[test]
    fn spj_results_match_a_native_oracle() {
        let mut dbm = machine();
        let pred = Pred::lt(1, Value::Int(250)); // v < 250
        let (rows, cost) = dbm.run_spj("orders", "customers", &pred, 64).unwrap();
        // Native oracle.
        let l = table(500, 20);
        let r = table(200, 20);
        let expected: usize = l
            .rows()
            .iter()
            .filter(|lr| pred.eval(lr))
            .map(|lr| r.rows().iter().filter(|rr| rr[0] == lr[0]).count())
            .sum();
        assert_eq!(rows.len(), expected);
        assert_eq!(cost.rows_out as usize, expected);
    }

    #[test]
    fn componentisation_overhead_is_modest_under_sisr() {
        let mut dbm = machine();
        // At a vectorised engine's batch size the ORB boundaries cost a
        // small fraction of the query's own work...
        let (_, cost) = dbm.run_spj("orders", "customers", &Pred::True, 512).unwrap();
        assert!(
            cost.overhead_fraction() < 0.25,
            "boundary {} vs work {} cycles",
            cost.boundary_cycles,
            cost.work_cycles
        );
        // ...and even at a fine 64-row granularity stay the same order of
        // magnitude as the work — affordable isolation...
        let (_, fine) = dbm.run_spj("orders", "customers", &Pred::True, 64).unwrap();
        assert!(fine.overhead_fraction() < 1.5, "{}", fine.overhead_fraction());
        // ...where trap-shaped boundaries would dwarf everything.
        assert!(cost.trap_equivalent_cycles > cost.work_cycles * 10);
        assert!(cost.trap_equivalent_cycles / cost.boundary_cycles.max(1) > 100);
    }

    #[test]
    fn finer_batches_raise_overhead_smoothly() {
        // The componentisation-granularity trade the paper discusses:
        // finer-grained crossing (smaller batches) costs more boundary
        // cycles, monotonically.
        let mut dbm = machine();
        let mut last = 0;
        for batch in [512, 64, 8, 1] {
            let (_, cost) = dbm.run_spj("orders", "customers", &Pred::True, batch).unwrap();
            assert!(
                cost.boundary_cycles >= last,
                "batch {batch}: {} < {last}",
                cost.boundary_cycles
            );
            last = cost.boundary_cycles;
        }
    }

    #[test]
    fn unknown_table_is_reported() {
        let mut dbm = machine();
        assert_eq!(
            dbm.run_spj("ghost", "customers", &Pred::True, 64).unwrap_err(),
            DbmError::UnknownTable("ghost".into())
        );
    }

    #[test]
    fn protection_footprint_is_descriptor_scale() {
        let dbm = machine();
        // 4 components (3 operators + client) + segments, well under a page.
        assert!(dbm.protection_bytes() < 4096, "{}", dbm.protection_bytes());
    }
}
