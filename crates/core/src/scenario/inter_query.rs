//! Scenario 1 — *inter-query adaptation*.
//!
//! > "The query has been initiated by a PDA and requires data from the
//! > Laptop or another PDA over a wireless network. ... The DBMS
//! > understands the function BEST to mean the best device in terms of
//! > capacity and current load. At the moment the Laptop is better as it is
//! > not being used and has much more capacity compared with the PDA so
//! > that version is delivered to the PDA that initiated the original
//! > query."
//!
//! The personal-data component carries the paper's two prioritised
//! selectors; the session manager evaluates them against live monitors and
//! the chosen device's version is delivered over the simulated network.

use crate::selector::{parse_selector, Selector};
use datacomp::payload::{Object, Payload};
use datacomp::value::Value;
use datacomp::DataComponent;
use ubinet::device::{Device, DeviceKind};
use ubinet::link::{BandwidthProfile, Link, LinkKind};
use ubinet::net::Network;

/// Scenario parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct InterQueryParams {
    /// Load on the Laptop in \[0, 1\] — the swept variable: idle laptop wins
    /// `BEST`; a busy laptop loses to the second PDA.
    pub laptop_load: f64,
    /// Load on the second PDA.
    pub pda2_load: f64,
    /// Which selector runs first (the paper: constraints are prioritised).
    pub prefer_nearest: bool,
}

impl Default for InterQueryParams {
    fn default() -> Self {
        Self { laptop_load: 0.0, pda2_load: 0.3, prefer_nearest: false }
    }
}

/// The scenario's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct InterQueryReport {
    /// The device the data was served from.
    pub chosen_device: String,
    /// Which selector made the choice.
    pub selector_used: String,
    /// Ticks to deliver the data to the querying PDA.
    pub delivery_ticks: u64,
    /// The payload size delivered.
    pub payload_bytes: u64,
}

/// Build the scenario's environment: `pda` (querier) — `laptop` and
/// `pda2` reachable over wireless, both holding the personal data.
#[must_use]
pub fn build_network(p: &InterQueryParams) -> Network {
    let mut net = Network::new();
    net.add_device(Device::new("pda", DeviceKind::Pda));
    net.add_device(Device::new("laptop", DeviceKind::Laptop).with_load(p.laptop_load));
    net.add_device(Device::new("pda2", DeviceKind::Pda).with_load(p.pda2_load));
    net.add_link(Link::new(
        "pda",
        "laptop",
        LinkKind::Wireless,
        BandwidthProfile::Constant(60.0),
        2,
    ));
    net.add_link(Link::new("pda", "pda2", LinkKind::Wireless, BandwidthProfile::Constant(60.0), 1));
    net.add_link(Link::new(
        "laptop",
        "pda2",
        LinkKind::Wireless,
        BandwidthProfile::Constant(60.0),
        2,
    ));
    net
}

/// The personal-data component of the paper's example, with replicas on
/// the laptop and the second PDA and the two prioritised selectors.
///
/// # Panics
/// Never: the selector constants parse.
#[must_use]
pub fn personal_data() -> (DataComponent, Vec<Selector>) {
    let person = Object::new()
        .with("id", Value::Int(42))
        .with("name", Value::str("A. Person"))
        .with("age", Value::Int(36))
        .with_child(
            "address",
            Object::new()
                .with("city", Value::str("London"))
                .with("street", Value::str("Queen's Gate")),
        );
    let mut dc = DataComponent::new("personal-data", Payload::Object(person))
        .with_rule(1, "Select BEST (pda2, laptop)")
        .with_rule(2, "Select NEAREST (pda2, laptop)");
    dc.add_replica("laptop", 0);
    dc.add_replica("pda2", 4);
    let selectors = vec![
        parse_selector("Select BEST (pda2, laptop)").expect("constant parses"),
        parse_selector("Select NEAREST (pda2, laptop)").expect("constant parses"),
    ];
    (dc, selectors)
}

/// Run the scenario.
///
/// # Panics
/// Never for the built-in environment (all devices exist and are linked).
#[must_use]
pub fn run(p: &InterQueryParams) -> InterQueryReport {
    let net = build_network(p);
    let (dc, mut selectors) = personal_data();
    if p.prefer_nearest {
        selectors.reverse();
    }
    // The session manager walks the prioritised selectors; the first that
    // yields a usable device wins.
    let (chosen, used) = selectors
        .iter()
        .find_map(|s| s.evaluate(&net, "pda").ok().map(|d| (d.to_owned(), s.to_string())))
        .expect("some replica holder is alive");
    let bytes = dc.payload.size_bytes();
    let ticks = net.transfer_ticks(&chosen, "pda", bytes, 0).expect("chosen holder is reachable");
    InterQueryReport {
        chosen_device: chosen,
        selector_used: used,
        delivery_ticks: ticks,
        payload_bytes: bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_laptop_wins_best_as_the_paper_narrates() {
        let r = run(&InterQueryParams::default());
        assert_eq!(r.chosen_device, "laptop");
        assert!(r.selector_used.contains("BEST"));
        assert!(r.delivery_ticks > 0);
    }

    #[test]
    fn busy_laptop_loses_best_to_the_second_pda() {
        // Laptop at 99% load: available 10; pda2 at 30%: available 70.
        let r = run(&InterQueryParams { laptop_load: 0.99, ..Default::default() });
        assert_eq!(r.chosen_device, "pda2");
    }

    #[test]
    fn nearest_prefers_the_one_hop_pda() {
        let r = run(&InterQueryParams { prefer_nearest: true, ..Default::default() });
        assert_eq!(r.chosen_device, "pda2", "pda2 is 1 hop with lower latency");
        assert!(r.selector_used.contains("NEAREST"));
    }

    #[test]
    fn crossover_point_is_monotone_in_laptop_load() {
        let mut last_was_laptop = true;
        for load in [0.0, 0.2, 0.4, 0.6, 0.8, 0.95, 0.999] {
            let r = run(&InterQueryParams { laptop_load: load, ..Default::default() });
            let is_laptop = r.chosen_device == "laptop";
            assert!(
                !is_laptop || last_was_laptop,
                "once the laptop loses BEST it must not win again at higher load"
            );
            last_was_laptop = is_laptop;
        }
        assert!(!last_was_laptop, "fully-loaded laptop must lose");
    }

    #[test]
    fn dead_laptop_falls_back() {
        let p = InterQueryParams::default();
        let mut net = build_network(&p);
        net.device_mut("laptop").unwrap().alive = false;
        let (_, selectors) = personal_data();
        let chosen = selectors[0].evaluate(&net, "pda").unwrap();
        assert_eq!(chosen, "pda2");
    }
}
