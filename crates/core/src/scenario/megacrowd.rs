//! The `mega-crowd` scenario: ten million requests through the event
//! engine in seconds of wall-clock.
//!
//! The paper's flash crowd is a few thousand requests; this scenario asks
//! the same question at four orders of magnitude — can the adaptation
//! machinery (BEST placement, SWITCH-on-CPU, supervision) hold up when a
//! cohort of thousands of clients is modelled as arrival-rate *flows*
//! rather than materialised request vectors? Four staggered flows with
//! ramps and burst windows push ~10.5M requests at a sixteen-node fleet,
//! a node dies and revives mid-storm, and the run ends with a long drain
//! the engine skips wholesale. Wall-clock time is deliberately *not* part
//! of the report — callers (the bench, the scale test) measure it around
//! [`run`], keeping the report itself deterministic.

use obs::{Obs, Profile};
use patia::atom::{Atom, AtomId, AtomStore, AtomType};
use patia::constraint::{AtomConstraint, ConstraintLogic};
use patia::engine::{EngineTotals, EventEngine};
use patia::server::{PatiaServer, ServerConfig};
use patia::workload::{FlowBurst, FlowSpec};
use ubinet::{BandwidthProfile, Device, DeviceKind, Link, LinkKind, Network};

/// The atom the crowd hammers.
pub const CROWD_ATOM: AtomId = AtomId(777);

/// Mega-crowd parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MegaParams {
    /// Server-class nodes in the fleet.
    pub servers: usize,
    /// Typing-pool workstations (SWITCH destinations).
    pub workstations: usize,
    /// The flows making up the crowd.
    pub flows: Vec<FlowSpec>,
    /// Tick at which one server dies mid-storm (`None` for a calm run).
    pub kill_at: Option<u64>,
    /// Tick at which the dead server revives.
    pub revive_at: Option<u64>,
    /// Run horizon: the engine may stop earlier once the wheel drains.
    pub horizon: u64,
    /// Client bandwidth seen by version selection.
    pub client_bandwidth_kbps: f64,
}

/// The canonical mega-crowd: four staggered, overlapping flows of rate
/// 2600/tick for 1000 ticks each — ~10.5M requests — with ramp-up edges
/// and a ×2 burst window apiece, one mid-storm node death/revival, and a
/// post-storm drain the engine skips.
#[must_use]
pub fn mega_crowd() -> MegaParams {
    let flow = |start: u64, burst_at: u64| FlowSpec {
        atom: CROWD_ATOM,
        start,
        end: start + 1_000,
        rate: 2_600.0,
        ramp: 100,
        burst: Some(FlowBurst { at: burst_at, len: 60, multiplier: 2.0 }),
    };
    MegaParams {
        servers: 12,
        workstations: 4,
        flows: vec![flow(10, 400), flow(260, 700), flow(510, 900), flow(760, 1_200)],
        kill_at: Some(600),
        revive_at: Some(900),
        horizon: 200_000,
        client_bandwidth_kbps: 500.0,
    }
}

/// Outcome of a mega-crowd run. Deterministic: no wall-clock inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MegaReport {
    /// The engine's cumulative counters.
    pub totals: EngineTotals,
    /// Requests still queued when the horizon was reached.
    pub queued_at_end: u64,
    /// Requests the flows declared in total.
    pub offered: u64,
}

impl MegaReport {
    /// Conservation at scale: every offered request is admitted or shed,
    /// and every admitted one is completed, dropped, or still queued.
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.offered == self.totals.arrivals + self.totals.shed
            && self.totals.arrivals
                == self.totals.completed + self.totals.dropped + self.queued_at_end
    }
}

/// Build the mega fleet: `servers` server-class nodes plus `workstations`
/// typing-pool machines, fully meshed, all replicating the crowd atom.
fn mega_fleet(p: &MegaParams) -> (Network, AtomStore, Vec<AtomConstraint>) {
    let mut names: Vec<String> = (1..=p.servers).map(|i| format!("srv{i:02}")).collect();
    let pool: Vec<String> = (1..=p.workstations).map(|i| format!("wk{i}")).collect();
    let mut net = Network::new();
    for n in &names {
        net.add_device(Device::new(n, DeviceKind::Server));
    }
    for n in &pool {
        net.add_device(Device::new(n, DeviceKind::Workstation));
    }
    let all: Vec<String> = names.iter().chain(pool.iter()).cloned().collect();
    for (i, a) in all.iter().enumerate() {
        for b in all.iter().skip(i + 1) {
            net.add_link(Link::new(a, b, LinkKind::Wired, BandwidthProfile::Constant(10_000.0), 1));
        }
    }
    let mut atoms = AtomStore::new();
    let mut page = Atom::new(CROWD_ATOM, "crowd.html", AtomType::Html, 40_000);
    for (v, n) in all.iter().enumerate() {
        page.add_replica(v as u32 + 1, n);
    }
    page.constraint_ids = vec![700, 705];
    atoms.insert(page);
    let constraints = vec![
        AtomConstraint {
            id: 700,
            atom: CROWD_ATOM,
            logic: ConstraintLogic::SelectBest { candidates: names.clone() },
        },
        AtomConstraint {
            id: 705,
            atom: CROWD_ATOM,
            logic: ConstraintLogic::SwitchOnCpu {
                threshold: 0.9,
                candidates: {
                    names.extend(pool);
                    names
                },
            },
        },
    ];
    (net, atoms, constraints)
}

fn build_engine(p: &MegaParams) -> EventEngine {
    let (net, atoms, constraints) = mega_fleet(p);
    // work_per_request 1: a server clears 10k requests/tick, so the
    // overlapping flows (~10.4k/tick) force SWITCH spreads to keep up.
    let server = PatiaServer::new(
        net,
        atoms,
        constraints,
        ServerConfig { adaptive: true, work_per_request: 1 },
    );
    let mut engine = EventEngine::new(server);
    for &f in &p.flows {
        engine.add_flow(f);
    }
    // Kill the node the crowd agent booted on — the storm's mid-flight
    // incident always strands live state, whatever BEST chose.
    let home = engine.server().agents(CROWD_ATOM)[0].node.clone();
    if let Some(t) = p.kill_at {
        engine.schedule_kill(t, &home);
    }
    if let Some(t) = p.revive_at {
        engine.schedule_revive(t, &home);
    }
    engine
}

fn report_of(engine: &EventEngine, p: &MegaParams) -> MegaReport {
    MegaReport {
        totals: *engine.totals(),
        queued_at_end: engine.server().queued_requests(),
        offered: p.flows.iter().map(FlowSpec::total_requests).sum(),
    }
}

/// Run the mega-crowd through the event engine.
#[must_use]
pub fn run(p: &MegaParams) -> MegaReport {
    let mut engine = build_engine(p);
    engine.run_to(p.horizon, p.client_bandwidth_kbps);
    report_of(&engine, p)
}

/// [`run`] with an [`Obs`] hub armed, for cycle accounting: yields the
/// report plus the hub (trace, metrics, cycle-attribution profile).
#[must_use]
pub fn run_observed(p: &MegaParams) -> (MegaReport, Obs) {
    let handle = Obs::new(obs::CostModel::pentium()).into_handle();
    let mut engine = build_engine(p);
    engine.server_mut().arm_obs(handle.clone());
    engine.run_to(p.horizon, p.client_bandwidth_kbps);
    let report = report_of(&engine, p);
    drop(engine);
    let mut obs = Obs::try_unwrap(handle)
        .unwrap_or_else(|_| unreachable!("the engine is dropped before the hub is unwrapped"));
    Profile::build(obs.tracer.events(), obs.clock()).publish(&mut obs.metrics);
    (report, obs)
}

/// The mega-crowd at 1/100 the arrival rate: the same fleet, flow shape,
/// ramps, bursts, and mid-storm death/revival, small enough for the unit
/// and systab tiers to replay in milliseconds. The full 10M-request run
/// lives in the `scale` tier.
#[must_use]
pub fn mini_crowd() -> MegaParams {
    let mut p = mega_crowd();
    for f in &mut p.flows {
        f.rate /= 100.0;
    }
    p
}

/// The settled state of an observed mega-crowd run, kept alive so the
/// system tables can query the engine's timer wheel (`sys.timers`) and
/// the fleet's supervision circuits after the storm.
#[derive(Debug)]
pub struct MegaWorld {
    /// The run outcome, equal to [`run`]'s report.
    pub report: MegaReport,
    /// The unwrapped hub with the profile published.
    pub obs: Obs,
    /// The event engine as the run left it — wheel drained, server
    /// settled.
    pub engine: EventEngine,
}

/// Like [`run_observed`], but returns the settled [`MegaWorld`] instead
/// of dropping the engine.
#[must_use]
pub fn run_with_state(p: &MegaParams) -> MegaWorld {
    let handle = Obs::new(obs::CostModel::pentium()).into_handle();
    let mut engine = build_engine(p);
    engine.server_mut().arm_obs(handle.clone());
    engine.run_to(p.horizon, p.client_bandwidth_kbps);
    let report = report_of(&engine, p);
    engine.server_mut().disarm_obs();
    let mut obs = Obs::try_unwrap(handle)
        .unwrap_or_else(|_| unreachable!("the server is disarmed before the hub is unwrapped"));
    Profile::build(obs.tracer.events(), obs.clock()).publish(&mut obs.metrics);
    MegaWorld { report, obs, engine }
}

/// Pool capacities the pressure sweep walks: thrashing, partial
/// residency, and a pool big enough to hold the whole working set.
pub const POOL_SWEEP_CAPACITIES: [usize; 3] = [4, 16, 64];

/// One point of the buffer-pool-pressure sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolPressurePoint {
    /// Pool capacity in frames.
    pub capacity: usize,
    /// Fetches served from a resident frame.
    pub hits: u64,
    /// Fetches that had to read stable storage.
    pub misses: u64,
    /// Hit rate in whole percent.
    pub hit_pct: u64,
}

/// The mega-crowd's storage-pressure companion: the same skewed-crowd
/// shape (80% of reads hammer 20% of the keys), replayed over a ~32-page
/// record set at each [`POOL_SWEEP_CAPACITIES`] capacity. Everything is
/// seeded, so the hit rates are exact, benchable numbers — and they must
/// be monotone in capacity, which the unit tier asserts.
#[must_use]
pub fn pool_pressure_sweep() -> Vec<PoolPressurePoint> {
    use adm_rng::Pcg32;
    use store::{PolicyKind, StorageEngine, StoreOp};

    const RECORDS: u64 = 256;
    const ACCESSES: u64 = 20_000;
    POOL_SWEEP_CAPACITIES
        .iter()
        .map(|&capacity| {
            let mut eng = StorageEngine::with_policy(capacity, PolicyKind::Clock);
            let mut rng = Pcg32::new(0x9001);
            // ~480-byte records: eight to a page, so 256 records span
            // ~32 pages and only the largest capacity holds them all.
            for key in 0..RECORDS {
                let mut value = vec![0u8; 480];
                rng.fill_bytes(&mut value);
                eng.apply(&[StoreOp::Put { key, value }]).expect("sweep records fit a page");
            }
            let loaded = eng.pool_stats();
            for _ in 0..ACCESSES {
                let key = if rng.chance(0.8) { rng.below(RECORDS / 5) } else { rng.below(RECORDS) };
                eng.get(key).expect("sweep engine stays up").expect("sweep keys exist");
            }
            let s = eng.pool_stats();
            let (hits, misses) = (s.hits - loaded.hits, s.misses - loaded.misses);
            PoolPressurePoint {
                capacity,
                hits,
                misses,
                hit_pct: hits * 100 / (hits + misses).max(1),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature crowd keeps the unit tier fast while pinning the
    /// scenario's invariants; the full 10M run lives in the `scale` tier.
    fn mini() -> MegaParams {
        mini_crowd()
    }

    #[test]
    fn mini_crowd_conserves_and_drains() {
        let r = run(&mini());
        assert!(r.conserved(), "conservation failed: {r:?}");
        assert_eq!(r.queued_at_end, 0, "the drain must finish inside the horizon");
        assert_eq!(r.totals.dropped, 0, "a fully-replicated atom never drops");
        assert!(r.totals.evacuations >= 1, "the srv02 death must evacuate its agent");
        assert!(
            r.totals.ticks_processed < 3_000,
            "once quiescent the wheel drains and the run ends — the 200k-tick \
             horizon must never be walked ({} processed)",
            r.totals.ticks_processed
        );
    }

    #[test]
    fn mini_crowd_is_deterministic() {
        assert_eq!(run(&mini()), run(&mini()));
    }

    #[test]
    fn full_crowd_offers_at_least_ten_million() {
        let p = mega_crowd();
        let offered: u64 = p.flows.iter().map(FlowSpec::total_requests).sum();
        assert!(offered >= 10_000_000, "the mega-crowd must offer >=10M requests ({offered})");
    }

    #[test]
    fn observed_run_matches_unobserved_report() {
        let p = mini();
        let (observed, _obs) = run_observed(&p);
        assert_eq!(observed, run(&p), "arming observability must not perturb the run");
    }

    #[test]
    fn pool_pressure_sweep_is_monotone_and_deterministic() {
        let sweep = pool_pressure_sweep();
        assert_eq!(sweep.len(), POOL_SWEEP_CAPACITIES.len());
        for pair in sweep.windows(2) {
            assert!(
                pair[0].hit_pct <= pair[1].hit_pct,
                "a bigger pool can only hit more: {pair:?}"
            );
        }
        let first = sweep.first().expect("sweep is non-empty");
        let last = sweep.last().expect("sweep is non-empty");
        assert!(first.misses > 0, "the thrashing point must actually fault");
        assert!(
            last.hit_pct >= 99,
            "a pool holding the whole working set must run hot, got {}%",
            last.hit_pct
        );
        assert_eq!(sweep, pool_pressure_sweep(), "the sweep must replay identically");
    }
}
