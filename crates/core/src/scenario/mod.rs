//! The three Section 4 scenarios as first-class, deterministic library
//! flows.
//!
//! > "To illustrate how we think this would operate, we have a subset of a
//! > ubiquitous system that consists of a sensor, a Laptop and a PDA."
//!
//! Each scenario builds its environment from the substrate crates, runs the
//! adaptation flow the paper narrates, and returns a structured report the
//! examples, tests and benches all share.

pub mod chaos;
pub mod crashrep;
pub mod failover;
pub mod inter_query;
pub mod intra_query;
pub mod megacrowd;
pub mod storerep;
pub mod system_adapt;
pub mod txnrep;
