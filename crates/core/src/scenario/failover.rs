//! Failure mid-query — the paper's architectural requirement beyond the
//! three numbered scenarios:
//!
//! > "At an architectural level the system must be able to cope with units
//! > failing – perhaps mid way through answering a query (and being
//! > replaced with minimal maintenance or the whole processing 'jumping'
//! > to another device to continue/finish)."
//!
//! A join executes on the laptop, reaching safe points every `interval`
//! outer rows; each safe point's consistent state (outer position, partial
//! result digest) is checkpointed to the State Manager, whose archive is
//! replicated to the fallback device. When the laptop dies mid-query, the
//! query *jumps*: the fallback device restores the latest safe point and
//! continues from there — re-doing only the work since the last checkpoint,
//! never restarting from zero.

use compkit::state::{SafePoint, StateManager};
use datacomp::{Row, Table};
use query::op::WorkCounter;
use query::workload::{gen_table, KeyDist};
use ubinet::device::{Device, DeviceKind};
use ubinet::link::{BandwidthProfile, Link, LinkKind};
use ubinet::net::Network;
use ubinet::sim::{EnvEvent, Simulator};

/// Scenario parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverParams {
    /// Rows in each joined table.
    pub rows: usize,
    /// Outer rows between safe points (checkpoint granularity).
    pub safe_point_interval: u64,
    /// Outer rows the laptop processes per simulation tick.
    pub rows_per_tick: u64,
    /// Tick at which the laptop dies; `u64::MAX` = never.
    pub fail_tick: u64,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for FailoverParams {
    fn default() -> Self {
        Self { rows: 1_500, safe_point_interval: 100, rows_per_tick: 40, fail_tick: 20, seed: 11 }
    }
}

/// The scenario's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverReport {
    /// Tick the laptop died (None if it survived the query).
    pub failed_at: Option<u64>,
    /// Device that produced the final answer.
    pub finished_on: String,
    /// Outer position restored from the State Manager after the jump.
    pub resumed_from: Option<u64>,
    /// Outer rows re-processed because they followed the last safe point.
    pub rows_redone: u64,
    /// Outer rows that would have been redone by a restart-from-zero
    /// strategy (for comparison).
    pub rows_redone_restart: u64,
    /// Result rows of the completed query.
    pub rows_out: u64,
    /// Ticks from query start to completion.
    pub total_ticks: u64,
}

/// One device's in-progress hash join over the two tables: build side fully
/// hashed, probe side consumed outer-row by outer-row. The probe position
/// is the safe-point progress mark.
struct JoinWorker {
    outer_pos: usize,
    out: Vec<Row>,
}

impl JoinWorker {
    fn fresh() -> Self {
        Self { outer_pos: 0, out: Vec::new() }
    }

    fn restore(progress: u64, replayed: Vec<Row>) -> Self {
        Self { outer_pos: progress as usize, out: replayed }
    }

    /// Process up to `n` outer rows; returns rows processed.
    fn step(&mut self, outer: &Table, inner: &Table, n: u64, work: &WorkCounter) -> u64 {
        let end = (self.outer_pos + n as usize).min(outer.len());
        let mut done = 0;
        for row in &outer.rows()[self.outer_pos..end] {
            work.moved(1);
            work.hash_probe(1);
            for irow in inner.rows() {
                if irow[0] == row[0] {
                    let mut o = row.clone();
                    o.extend_from_slice(irow);
                    self.out.push(o);
                }
            }
            done += 1;
        }
        self.outer_pos = end;
        done
    }

    fn finished(&self, outer: &Table) -> bool {
        self.outer_pos >= outer.len()
    }
}

/// Run the scenario.
///
/// # Panics
/// If the simulation fails to converge (bounded internally).
#[must_use]
pub fn run(p: &FailoverParams) -> FailoverReport {
    // Environment: laptop (primary) and server (fallback), linked.
    let mut net = Network::new();
    net.add_device(Device::new("laptop", DeviceKind::Laptop));
    net.add_device(Device::new("server", DeviceKind::Server));
    net.add_link(Link::new(
        "laptop",
        "server",
        LinkKind::Wired,
        BandwidthProfile::Constant(1_000.0),
        1,
    ));
    let mut sim = Simulator::new(net, 0.0);
    if p.fail_tick != u64::MAX {
        sim.schedule(p.fail_tick, EnvEvent::SetAlive { device: "laptop".into(), alive: false });
    }

    let dist = KeyDist::Uniform { domain: 40 };
    let outer = gen_table(p.rows, dist, p.seed);
    let inner = gen_table(p.rows / 2, dist, p.seed + 1);

    let work = WorkCounter::new();
    let mut states = StateManager::new(); // replicated checkpoint archive
    let mut worker = JoinWorker::fresh();
    let mut device = "laptop".to_owned();
    let mut failed_at = None;
    let mut resumed_from = None;
    let mut rows_redone = 0;
    let mut rows_redone_restart = 0;
    let mut last_checkpoint: u64 = 0;

    let mut tick = 0u64;
    while !worker.finished(&outer) {
        tick += 1;
        assert!(tick < 1_000_000, "failover scenario diverged");
        sim.advance(tick);

        // Has our device died? Jump to the fallback.
        let alive = sim.net.device(&device).is_some_and(|d| d.alive);
        if !alive {
            failed_at = Some(tick);
            // The fallback is chosen by BEST among survivors.
            let fallback =
                ubinet::select::best(&sim.net, &["server"]).expect("fallback survives").to_owned();
            // Restore the latest replicated safe point.
            let sp = states.latest("join-query");
            let progress = sp.map_or(0, |s| s.progress);
            resumed_from = Some(progress);
            rows_redone = worker.outer_pos as u64 - progress;
            rows_redone_restart = worker.outer_pos as u64;
            // Replay: the fallback re-derives partial results up to the
            // checkpoint (deterministic), then continues.
            let mut replayed = JoinWorker::fresh();
            replayed.step(&outer, &inner, progress, &work);
            worker = JoinWorker::restore(progress, replayed.out);
            device = fallback;
            continue;
        }

        // Process a tick's worth of outer rows.
        worker.step(&outer, &inner, p.rows_per_tick, &work);

        // Checkpoint at safe-point boundaries (replicated to the archive).
        let boundary = (worker.outer_pos as u64 / p.safe_point_interval) * p.safe_point_interval;
        if boundary > last_checkpoint {
            last_checkpoint = boundary;
            states.record(SafePoint {
                component: "join-query".into(),
                progress: boundary,
                taken_at: tick,
                state: boundary.to_le_bytes().to_vec(),
            });
        }
    }

    FailoverReport {
        failed_at,
        finished_on: device,
        resumed_from,
        rows_redone,
        rows_redone_restart,
        rows_out: worker.out.len() as u64,
        total_ticks: tick,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle_rows(p: &FailoverParams) -> u64 {
        // The no-failure run is the oracle.
        run(&FailoverParams { fail_tick: u64::MAX, ..p.clone() }).rows_out
    }

    #[test]
    fn query_survives_device_death_with_identical_results() {
        let p = FailoverParams::default();
        let r = run(&p);
        assert_eq!(r.failed_at, Some(p.fail_tick));
        assert_eq!(r.finished_on, "server");
        assert_eq!(r.rows_out, oracle_rows(&p), "failover must not change the answer");
    }

    #[test]
    fn resume_happens_from_the_latest_safe_point() {
        let p = FailoverParams::default();
        let r = run(&p);
        let resumed = r.resumed_from.expect("jumped");
        assert_eq!(resumed % p.safe_point_interval, 0);
        // Work redone is bounded by one checkpoint interval...
        assert!(r.rows_redone < p.safe_point_interval);
        // ...and is far less than restarting from zero would cost.
        assert!(r.rows_redone < r.rows_redone_restart);
    }

    #[test]
    fn no_failure_means_no_jump() {
        let r = run(&FailoverParams { fail_tick: u64::MAX, ..Default::default() });
        assert_eq!(r.failed_at, None);
        assert_eq!(r.finished_on, "laptop");
        assert_eq!(r.resumed_from, None);
        assert_eq!(r.rows_redone, 0);
    }

    #[test]
    fn finer_checkpoints_redo_less_work() {
        let coarse = run(&FailoverParams { safe_point_interval: 400, ..Default::default() });
        let fine = run(&FailoverParams { safe_point_interval: 50, ..Default::default() });
        assert!(fine.rows_redone <= coarse.rows_redone);
        assert_eq!(fine.rows_out, coarse.rows_out);
    }

    #[test]
    fn very_early_failure_restarts_from_zero_gracefully() {
        // Dies before the first checkpoint: resume point is 0.
        let r = run(&FailoverParams { fail_tick: 1, rows_per_tick: 10, ..Default::default() });
        assert_eq!(r.resumed_from, Some(0));
        assert_eq!(r.rows_out, oracle_rows(&FailoverParams::default()));
    }
}
