//! Storage crash-replay conformance: every (seed × crash point) cell of
//! the WAL recovery matrix, below the adaptation journal.
//!
//! [`crate::scenario::crashrep`] proves the *component* runtime survives
//! a crash mid-switch; this tier proves the same promise one layer down,
//! where the Atoms' data actually lives. Each cell boots a seed-perturbed
//! storage engine, applies a victim transaction with a [`PlannedCrash`]
//! armed at one WAL record boundary, crashes (buffer pool and index
//! vanish), replays the log, and checks the only invariant that matters:
//!
//! > the recovered store is byte-identical to either the committed or
//! > the rolled-back reference — never a hybrid — and recovering again
//! > is a no-op.
//!
//! The crash points cover the full record taxonomy: after `Begin`
//! (`mid-plan-0`), after each op record, both edges of `Commit`, mid-way
//! through an explicit abort's undo chain, and inside the recovery scan
//! itself (which must leave the engine down and resumable). [`sweep`]
//! replays the full [`STORE_SEEDS`] × [`crash_points`] matrix;
//! [`render_matrix`] is the golden-diffed transcript whose `replayed`
//! column pins the WAL replay length; [`run_cell_observed`] yields the
//! cycle-billed trace (`store.wal.replay_len`, `store.page.io_cycles`)
//! the bench gate prices recovery from.

use adm_rng::Pcg32;
use obs::Obs;
use store::{
    CrashPoint, NoCrash, PlannedCrash, PolicyKind, RecoveryStats, StorageEngine, StoreError,
    StoreOp,
};

/// The golden storage seeds — in lockstep with
/// [`crate::scenario::crashrep::CRASH_SEEDS`] so the two crash tiers
/// stress the same worlds.
pub const STORE_SEEDS: [u64; 3] = crate::scenario::crashrep::CRASH_SEEDS;

/// Ops in every victim transaction (each journals exactly one WAL
/// record, so op boundaries *are* record boundaries).
pub const VICTIM_OPS: usize = 4;

/// Every WAL record boundary of the victim transaction: after `Begin`,
/// after each of the [`VICTIM_OPS`] op records, both commit edges, two
/// depths of the explicit-abort undo chain, and a crash inside the
/// recovery scan.
#[must_use]
pub fn crash_points() -> Vec<CrashPoint> {
    let mut pts: Vec<CrashPoint> =
        (0..=VICTIM_OPS).map(|n| CrashPoint::MidPlan { after_steps: n }).collect();
    pts.push(CrashPoint::BeforeCommit);
    pts.push(CrashPoint::AfterCommit);
    pts.push(CrashPoint::MidRollback { after_undos: 1 });
    pts.push(CrashPoint::MidRollback { after_undos: VICTIM_OPS });
    pts.push(CrashPoint::DuringRecovery { after_undos: 1 });
    pts
}

/// One cell of the storage crash-replay matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreCellReport {
    /// The world-perturbation seed.
    pub seed: u64,
    /// Where the crash struck.
    pub point: CrashPoint,
    /// Digest of the store after recovery settled.
    pub recovered_digest: u64,
    /// Digest of the crash-free committed reference.
    pub committed_digest: u64,
    /// Digest of the pre-transaction (rolled-back) reference.
    pub rolled_back_digest: u64,
    /// WAL records scanned by the settling recovery — the replay length
    /// the golden pins.
    pub replayed: usize,
    /// Committed ops rolled forward by the settling recovery.
    pub redone: usize,
    /// Uncommitted op records discarded, across all recovery passes.
    pub undone: usize,
    /// Record pages rebuilt from the surviving state.
    pub pages_rebuilt: usize,
    /// How many `recover()` calls it took to settle (1, or 2 when the
    /// recovery itself was crashed).
    pub recover_calls: u32,
    /// Whether one further recovery after settling changed nothing — the
    /// idempotence witness.
    pub replay_noop: bool,
}

impl StoreCellReport {
    /// Did recovery land on the committed reference?
    #[must_use]
    pub fn committed(&self) -> bool {
        self.recovered_digest == self.committed_digest
    }

    /// Did recovery land on the rolled-back reference?
    #[must_use]
    pub fn rolled_back(&self) -> bool {
        self.recovered_digest == self.rolled_back_digest
    }

    /// The never-hybrid invariant: exactly one reference matched, and
    /// replaying recovery changed nothing.
    #[must_use]
    pub fn consistent(&self) -> bool {
        (self.committed() != self.rolled_back()) && self.replay_noop
    }

    /// One golden-transcript line for this cell.
    #[must_use]
    pub fn render_line(&self) -> String {
        let landed = if self.committed() {
            "committed"
        } else if self.rolled_back() {
            "rolled-back"
        } else {
            "HYBRID"
        };
        format!(
            "seed={} point={} landed={} replayed={} redone={} undone={} pages={} recoveries={} replay_noop={}",
            self.seed,
            self.point,
            landed,
            self.replayed,
            self.redone,
            self.undone,
            self.pages_rebuilt,
            self.recover_calls,
            self.replay_noop,
        )
    }
}

/// Keys the victim transaction always touches (guaranteed present after
/// setup, so its `Delete` journals a real record).
const VICTIM_KEYS: [u64; 3] = [1, 2, 3];

/// Boot a storage engine and load it with seed-perturbed committed
/// transactions, so each seed recovers a *different* world and a digest
/// collision cannot mask a hybrid. Pool capacity and replacement policy
/// are seeded too — recovery must be correct under either.
fn seeded_engine(seed: u64) -> StorageEngine {
    let mut rng = Pcg32::new(seed ^ 0x5704E);
    let kind = if rng.chance(0.5) { PolicyKind::Lru } else { PolicyKind::Clock };
    let mut eng = StorageEngine::with_policy(2 + rng.index(3), kind);
    for _ in 0..3 + rng.index(4) {
        let mut ops = Vec::new();
        for _ in 0..2 + rng.index(4) {
            let mut value = vec![0u8; 4 + rng.index(44)];
            rng.fill_bytes(&mut value);
            ops.push(StoreOp::Put { key: rng.below(24), value });
        }
        eng.apply(&ops).expect("setup transactions commit");
    }
    let anchor: Vec<StoreOp> = VICTIM_KEYS
        .iter()
        .map(|&key| {
            let mut value = vec![0u8; 8 + rng.index(16)];
            rng.fill_bytes(&mut value);
            StoreOp::Put { key, value }
        })
        .collect();
    eng.apply(&anchor).expect("anchor transaction commits");
    eng
}

/// The victim transaction: overwrite two anchored keys, delete the
/// third, insert a fresh one. Every op journals exactly one record and
/// every op changes state, so the committed and rolled-back references
/// always differ.
fn victim_ops(seed: u64) -> Vec<StoreOp> {
    let mut rng = Pcg32::new(seed ^ 0x7AC71);
    let mut value = |n: usize| {
        let mut v = vec![0u8; n];
        rng.fill_bytes(&mut v);
        v
    };
    vec![
        StoreOp::Put { key: VICTIM_KEYS[0], value: value(12) },
        StoreOp::Delete { key: VICTIM_KEYS[1] },
        StoreOp::Put { key: 100 + seed % 7, value: value(20) },
        StoreOp::Put { key: VICTIM_KEYS[2], value: value(9) },
    ]
}

/// Replay one (seed, crash point) cell without observability.
#[must_use]
pub fn run_cell(seed: u64, point: CrashPoint) -> StoreCellReport {
    run_cell_inner(seed, point, None)
}

/// Replay one cell with an [`Obs`] hub armed on the engine, so the page
/// IO, log forces and WAL replay appear as cycle-billed registry
/// counters (`store.pool.*`, `store.wal.replay_len`, `store.recovery`).
#[must_use]
pub fn run_cell_observed(seed: u64, point: CrashPoint) -> (StoreCellReport, Obs) {
    let handle = Obs::new(obs::CostModel::pentium()).into_handle();
    let report = run_cell_inner(seed, point, Some(handle.clone()));
    let obs = Obs::try_unwrap(handle)
        .unwrap_or_else(|_| unreachable!("the engine is dropped before the hub is unwrapped"));
    (report, obs)
}

/// The settled state of an observed crash-replay cell: the recovered
/// engine is kept alive (disarmed) so `sys.pool` can be queried over its
/// buffer pool after recovery.
#[derive(Debug)]
pub struct StoreWorld {
    /// The cell outcome, equal to [`run_cell`]'s report.
    pub report: StoreCellReport,
    /// The unwrapped hub (trace + metrics of the crash and recovery).
    pub obs: Obs,
    /// The recovered engine, up and settled.
    pub engine: StorageEngine,
}

/// Like [`run_cell_observed`], but returns the settled [`StoreWorld`]
/// instead of dropping the recovered engine.
#[must_use]
pub fn run_cell_with_state(seed: u64, point: CrashPoint) -> StoreWorld {
    let handle = Obs::new(obs::CostModel::pentium()).into_handle();
    let (report, mut engine) = run_cell_full(seed, point, Some(handle.clone()));
    engine.disarm_obs();
    let obs = Obs::try_unwrap(handle)
        .unwrap_or_else(|_| unreachable!("the engine is disarmed before the hub is unwrapped"));
    StoreWorld { report, obs, engine }
}

fn run_cell_inner(seed: u64, point: CrashPoint, obs: Option<obs::ObsHandle>) -> StoreCellReport {
    run_cell_full(seed, point, obs).0
}

fn run_cell_full(
    seed: u64,
    point: CrashPoint,
    obs: Option<obs::ObsHandle>,
) -> (StoreCellReport, StorageEngine) {
    let base = seeded_engine(seed);
    let victim = victim_ops(seed);

    // The two references: the world with the victim committed crash-free,
    // and the world as it stood before the victim began.
    let mut committed_ref = base.clone();
    committed_ref.apply(&victim).expect("the crash-free reference commits");
    let committed_digest = committed_ref.state_digest().expect("reference engine is up");
    let mut rolled_back_ref = base.clone();
    let rolled_back_digest = rolled_back_ref.state_digest().expect("reference engine is up");

    let mut eng = base;
    if let Some(h) = &obs {
        eng.arm_obs(h.clone());
    }

    // Drive the victim into the crash. Mid-rollback cells take the
    // explicit-abort path so an undo chain is in flight for the crash to
    // strike; during-recovery cells crash at the commit edge (ops logged,
    // no commit record) and then crash *again* inside the recovery scan.
    let result = match point {
        CrashPoint::MidRollback { .. } => {
            let mut hook = PlannedCrash::new(point);
            eng.apply_then_abort_crashable(&victim, &mut hook)
        }
        CrashPoint::DuringRecovery { .. } => {
            let mut hook = PlannedCrash::new(CrashPoint::BeforeCommit);
            eng.apply_crashable(&victim, &mut hook)
        }
        _ => {
            let mut hook = PlannedCrash::new(point);
            eng.apply_crashable(&victim, &mut hook)
        }
    };
    debug_assert_eq!(
        result,
        Err(StoreError::Crashed),
        "every cell's victim transaction must end in a crash"
    );
    debug_assert!(eng.is_down(), "the crash takes the engine down");

    // Recover (repeatedly, if recovery itself crashes) until the engine
    // is back up, then witness idempotence with one more recovery. The
    // settling pass always rescans the full WAL, so its stats subsume
    // any prefix a crashed pass managed before dying.
    let mut first_hook = PlannedCrash::new(point);
    let mut nocrash = NoCrash;
    let mut recover_calls = 1u32;
    let settled: RecoveryStats = loop {
        let hook: &mut dyn store::CrashHook =
            if recover_calls == 1 && matches!(point, CrashPoint::DuringRecovery { .. }) {
                &mut first_hook
            } else {
                &mut nocrash
            };
        match eng.recover(hook) {
            Ok(stats) => break stats,
            Err(e) => {
                debug_assert_eq!(e, StoreError::Crashed, "recovery only fails by crashing");
                debug_assert!(eng.is_down(), "a crashed recovery leaves the engine down");
                recover_calls += 1;
            }
        }
    };
    let recovered_digest = eng.state_digest().expect("settled engine is up");

    let replay = eng.recover(&mut NoCrash).expect("replaying a settled recovery succeeds");
    let replay_noop =
        replay == settled && eng.state_digest().expect("engine stays up") == recovered_digest;

    let report = StoreCellReport {
        seed,
        point,
        recovered_digest,
        committed_digest,
        rolled_back_digest,
        replayed: settled.replayed,
        redone: settled.redone,
        undone: settled.undone,
        pages_rebuilt: settled.pages_rebuilt,
        recover_calls,
        replay_noop,
    };
    (report, eng)
}

/// Replay the full matrix: every [`STORE_SEEDS`] seed through every
/// [`crash_points`] crash point.
#[must_use]
pub fn sweep() -> Vec<StoreCellReport> {
    let mut cells = Vec::new();
    for &seed in &STORE_SEEDS {
        for &point in &crash_points() {
            cells.push(run_cell(seed, point));
        }
    }
    cells
}

/// The golden transcript of a sweep: one line per cell.
#[must_use]
pub fn render_matrix(cells: &[StoreCellReport]) -> String {
    let mut out = String::new();
    for c in cells {
        out.push_str(&c.render_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_point_lands_committed_or_rolled_back_never_hybrid() {
        for &point in &crash_points() {
            let cell = run_cell(7, point);
            assert!(cell.consistent(), "cell must settle cleanly: {}", cell.render_line());
            match point {
                CrashPoint::AfterCommit => {
                    assert!(cell.committed(), "a crash after commit rolls forward");
                }
                _ => assert!(cell.rolled_back(), "a crash before commit rolls back: {point}"),
            }
        }
    }

    #[test]
    fn references_differ_so_a_hybrid_cannot_hide() {
        for &seed in &STORE_SEEDS {
            let mut committed = seeded_engine(seed);
            committed.apply(&victim_ops(seed)).unwrap();
            let mut base = seeded_engine(seed);
            assert_ne!(
                committed.state_digest().unwrap(),
                base.state_digest().unwrap(),
                "seed {seed}: references must be distinguishable"
            );
        }
    }

    #[test]
    fn during_recovery_cells_take_two_recoveries() {
        let cell = run_cell(7, CrashPoint::DuringRecovery { after_undos: 1 });
        assert_eq!(cell.recover_calls, 2, "the crashed recovery must be resumed");
        assert!(cell.rolled_back());
        assert!(cell.replay_noop);
    }

    #[test]
    fn cells_are_deterministic() {
        let point = CrashPoint::MidPlan { after_steps: 3 };
        assert_eq!(run_cell(42, point), run_cell(42, point));
    }

    #[test]
    fn observed_cells_match_unobserved_and_bill_the_replay() {
        let point = CrashPoint::BeforeCommit;
        let plain = run_cell(17, point);
        let (observed, obs) = run_cell_observed(17, point);
        assert_eq!(plain, observed, "observability must not perturb recovery");
        assert_eq!(
            obs.metrics.counter("store.wal.replay_len"),
            (plain.replayed + plain.replayed) as u64,
            "settling + idempotence replays both bill their scan"
        );
        assert!(obs.metrics.counter("store.crash") >= 1);
        assert!(obs.metrics.counter("store.recovery") >= 2);
    }
}
