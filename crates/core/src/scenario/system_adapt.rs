//! Scenario 2 — *system adaptation* (the Figure 5 switchover, end to end).
//!
//! > "The Laptop was plugged into the electricity and Ethernet (i.e.
//! > docked) when the request was initiated but in the meantime it has been
//! > unplugged and is now working off the battery and wireless network. ...
//! > the wireless optimisor must activate and amend the query plan
//! > accordingly ... decides to send a compressed version of the data thus
//! > using more resources on both the sensor and the Laptop while saving
//! > communication time. The original query plan included safe points which
//! > allow the system to stop streaming at a safe time and continue the
//! > other version's stream."
//!
//! The flow: the sensor streams XML readings to the docked laptop over
//! Ethernet; mid-stream the laptop undocks; the dock monitor's gauge breaks
//! the session constraint; the Session Manager designs the wireless
//! configuration from the Figure 4 ADL model and the Adaptivity Manager
//! executes the Figure 5 plan transactionally; at the next stream **safe
//! point** delivery switches to the LZ-compressed version, spending sensor
//! and laptop CPU to save wireless bandwidth.

use adl::figures::fig4_document;
use compkit::adaptivity::AdaptivityManager;
use compkit::gauge::{Gauge, GaugeBoard, GaugeKind};
use compkit::monitor::Monitor;
use compkit::rules::{Action, Expr, RuleSet, SwitchingRule};
use compkit::runtime::{BasicFactory, Runtime};
use compkit::session::{AdaptationEvent, SessionManager};
use compkit::state::{SafePoint, StateManager};
use datacomp::codec::{Codec, LzCodec};
use datacomp::xml::{sensor_reading, write_events};
use ubinet::device::{Device, DeviceKind};
use ubinet::link::{BandwidthProfile, Link, LinkKind};
use ubinet::net::Network;
use ubinet::sim::{EnvEvent, Simulator};

/// Scenario parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemAdaptParams {
    /// Number of sensor readings in the stream.
    pub readings: u64,
    /// Readings between safe points.
    pub safe_point_every: u64,
    /// Tick at which the laptop is unplugged.
    pub undock_tick: u64,
    /// Wired (docked) bandwidth, bytes/tick.
    pub wired_bandwidth: f64,
    /// Wireless bandwidth, bytes/tick.
    pub wireless_bandwidth: f64,
    /// Whether the system adapts (switch config + compress) or stubbornly
    /// streams raw over the degraded link (the static baseline).
    pub adaptive: bool,
}

impl Default for SystemAdaptParams {
    fn default() -> Self {
        Self {
            readings: 2_000,
            safe_point_every: 100,
            undock_tick: 10,
            wired_bandwidth: 2_000.0,
            wireless_bandwidth: 60.0,
            adaptive: true,
        }
    }
}

/// The scenario's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemAdaptReport {
    /// Tick the undock event fired.
    pub undock_tick: u64,
    /// Tick the Figure 5 switchover committed (None when not adaptive).
    pub switch_tick: Option<u64>,
    /// Reading index of the safe point where the stream switched versions.
    pub safe_point_reading: Option<u64>,
    /// Total ticks to deliver the whole stream.
    pub total_ticks: u64,
    /// Raw bytes of the stream.
    pub raw_bytes: u64,
    /// Bytes actually sent over the air (post-switch part compressed when
    /// adaptive).
    pub bytes_sent: u64,
    /// Extra CPU ticks spent compressing (sensor) and decompressing
    /// (laptop).
    pub codec_cpu_ticks: u64,
    /// The session's adaptation log.
    pub events: Vec<AdaptationEvent>,
    /// The session's final mode.
    pub final_mode: String,
}

fn environment(p: &SystemAdaptParams) -> Simulator {
    let mut net = Network::new();
    net.add_device(Device::new("sensor", DeviceKind::Sensor));
    net.add_device(Device::new("laptop", DeviceKind::Laptop));
    net.add_link(Link::new(
        "sensor",
        "laptop",
        LinkKind::Wired,
        BandwidthProfile::Constant(p.wired_bandwidth),
        1,
    ));
    net.add_link(Link::new(
        "sensor",
        "laptop",
        LinkKind::Wireless,
        BandwidthProfile::Constant(p.wireless_bandwidth),
        2,
    ));
    let mut sim = Simulator::new(net, 0.0005);
    sim.schedule(p.undock_tick, EnvEvent::SetDocked { device: "laptop".into(), docked: false });
    sim
}

fn session() -> SessionManager {
    let mut board = GaugeBoard::new();
    board.add_monitor(Monitor::new("dock", 8));
    board.add_gauge(Gauge {
        name: "docked".into(),
        monitor: "dock".into(),
        kind: GaugeKind::Latest,
    });
    let mut rules = RuleSet::new();
    rules.add(SwitchingRule {
        id: 20,
        priority: 0,
        constraint: Expr::gauge_lt("docked", 0.5),
        action: Action::SwitchMode("wireless".into()),
    });
    rules.add(SwitchingRule {
        id: 21,
        priority: 1,
        constraint: Expr::Ge(Box::new(Expr::Gauge("docked".into())), Box::new(Expr::Const(0.5))),
        action: Action::SwitchMode("docked".into()),
    });
    SessionManager::new(fig4_document(), "MobileCBMS", "docked", rules, board)
}

/// Run the scenario.
///
/// # Panics
/// Never for valid parameters: the built-in environment always converges.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run(p: &SystemAdaptParams) -> SystemAdaptReport {
    let mut sim = environment(p);
    let mut sm = session();
    let mut runtime = Runtime::new();
    let mut am = AdaptivityManager::new();
    let mut states = StateManager::new();
    sm.boot(&mut runtime, &mut BasicFactory, &mut am, &mut states, 0)
        .expect("docked configuration boots");

    // The stream, serialised per-reading so safe points are real event
    // boundaries.
    let per_reading: Vec<Vec<u8>> = (0..p.readings)
        .map(|i| write_events(&sensor_reading("temp", i, 20.0 + (i % 7) as f64 * 0.5)).into_bytes())
        .collect();
    let raw_bytes: u64 = per_reading.iter().map(|b| b.len() as u64).sum();

    let mut delivered: u64 = 0; // readings fully delivered
    let mut switch_tick = None;
    let mut safe_point_reading = None;
    let mut bytes_sent: u64 = 0;
    let mut codec_cpu_ticks: u64 = 0;
    let mut compressed_tail: Option<Vec<u8>> = None;
    let mut tail_sent: u64 = 0;
    let mut budget: f64 = 0.0;
    // Codec throughput: a device compresses/decompresses
    // `capacity * CODEC_BYTES_PER_CAP / cpu_cost_per_byte` bytes per tick.
    // The constant is calibrated so a sensor-class device codes several
    // times faster than the weak wireless link — the regime where the
    // paper's "spend CPU to save communication time" trade is rational —
    // while remaining a real, reported resource cost.
    const CODEC_BYTES_PER_CAP: f64 = 120.0;
    let mut compress_out_rate = f64::INFINITY;

    let mut tick: u64 = 0;
    while delivered < p.readings
        || compressed_tail.as_ref().is_some_and(|t| tail_sent < t.len() as u64)
    {
        tick += 1;
        sim.advance(tick);
        // Monitors → gauges.
        let dock = sim.readings().get("docked:laptop").copied().unwrap_or(1.0);
        sm.board.record("dock", tick, dock);
        // Session loop (only the adaptive system reacts).
        if p.adaptive && switch_tick.is_none() {
            let events = sm.tick(&mut runtime, &mut BasicFactory, &mut am, &mut states, tick);
            if events.iter().any(
                |e| matches!(e, AdaptationEvent::Switched { to_mode, .. } if to_mode == "wireless"),
            ) {
                switch_tick = Some(tick);
                // Continue to the next safe point, then compress the tail.
                let next_sp = delivered.div_ceil(p.safe_point_every) * p.safe_point_every;
                let next_sp = next_sp.min(p.readings);
                safe_point_reading = Some(next_sp);
            }
        }

        // How much can we push this tick?
        let (bw, _) = sim.net.path_metrics("sensor", "laptop", tick).unwrap_or((0.0, 0));
        budget += bw;

        // Are we at the compression boundary?
        if let (Some(sp), None) = (safe_point_reading, compressed_tail.as_ref()) {
            if delivered >= sp && delivered < p.readings {
                // Record the consistent state at the safe point...
                states.record(SafePoint {
                    component: "sensor-stream".into(),
                    progress: delivered,
                    taken_at: tick,
                    state: delivered.to_le_bytes().to_vec(),
                });
                // ...and compress the remaining readings (one-time CPU on
                // the sensor, charged in ticks of its capacity).
                let tail: Vec<u8> =
                    per_reading[delivered as usize..].iter().flatten().copied().collect();
                let codec = LzCodec;
                let enc = codec.encode(&tail);
                let sensor_rate = DeviceKind::Sensor.nominal_capacity() * CODEC_BYTES_PER_CAP
                    / codec.cpu_cost_per_byte();
                let laptop_rate = DeviceKind::Laptop.nominal_capacity() * CODEC_BYTES_PER_CAP
                    / codec.cpu_cost_per_byte();
                codec_cpu_ticks += (tail.len() as f64 / sensor_rate).ceil() as u64
                    + (enc.len() as f64 / laptop_rate).ceil() as u64;
                // Compression is pipelined with transmission: the encoder
                // can emit at most `sensor_rate * ratio` compressed bytes
                // per tick.
                let ratio = enc.len() as f64 / tail.len().max(1) as f64;
                compress_out_rate = sensor_rate * ratio;
                compressed_tail = Some(enc);
            }
        }

        match compressed_tail.as_ref() {
            None => {
                // Raw streaming: deliver whole readings as budget allows.
                while delivered < p.readings {
                    if let Some(sp) = safe_point_reading {
                        if delivered >= sp {
                            break; // wait for compression branch next tick
                        }
                    }
                    let next = per_reading[delivered as usize].len() as f64;
                    if budget < next {
                        break;
                    }
                    budget -= next;
                    bytes_sent += next as u64;
                    delivered += 1;
                }
            }
            Some(tail) => {
                // Compressed tail streaming, bounded by both the link and
                // the pipelined encoder's output rate.
                let remaining = tail.len() as u64 - tail_sent;
                let send = (budget.min(compress_out_rate).floor() as u64).min(remaining);
                tail_sent += send;
                bytes_sent += send;
                budget -= send as f64;
                if tail_sent >= tail.len() as u64 {
                    delivered = p.readings;
                }
            }
        }
        assert!(tick < 10_000_000, "scenario failed to converge");
    }

    SystemAdaptReport {
        undock_tick: p.undock_tick,
        switch_tick,
        safe_point_reading,
        total_ticks: tick,
        raw_bytes,
        bytes_sent,
        codec_cpu_ticks,
        events: sm.log().to_vec(),
        final_mode: sm.mode().to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undock_triggers_switch_and_compression() {
        let r = run(&SystemAdaptParams::default());
        let switch = r.switch_tick.expect("must switch");
        assert!(switch >= r.undock_tick);
        assert_eq!(r.final_mode, "wireless");
        let sp = r.safe_point_reading.expect("stream must hit a safe point");
        assert_eq!(sp % 100, 0, "safe points are every 100 readings");
        assert!(r.bytes_sent < r.raw_bytes, "compression must save bytes on the air");
        assert!(r.codec_cpu_ticks > 0, "compression costs CPU — the paper's trade");
    }

    #[test]
    fn adaptive_finishes_much_faster_than_static_after_undock() {
        let adaptive = run(&SystemAdaptParams::default());
        let static_ = run(&SystemAdaptParams { adaptive: false, ..Default::default() });
        assert!(static_.switch_tick.is_none());
        assert_eq!(static_.bytes_sent, static_.raw_bytes);
        assert!(
            adaptive.total_ticks * 2 < static_.total_ticks,
            "adaptive {} vs static {}",
            adaptive.total_ticks,
            static_.total_ticks
        );
    }

    #[test]
    fn no_undock_means_no_adaptation_needed() {
        let p = SystemAdaptParams { undock_tick: u64::MAX, ..Default::default() };
        let r = run(&p);
        assert_eq!(r.switch_tick, None);
        assert_eq!(r.final_mode, "docked");
        assert_eq!(r.bytes_sent, r.raw_bytes);
        // Fast wired delivery.
        assert!(r.total_ticks < 100);
    }

    #[test]
    fn late_undock_compresses_a_smaller_tail() {
        let early = run(&SystemAdaptParams::default());
        // Undock near the end of the stream: most was already delivered
        // over the wire, so fewer bytes are saved.
        let late = run(&SystemAdaptParams { undock_tick: 40, ..Default::default() });
        let early_saved = early.raw_bytes - early.bytes_sent;
        let late_saved = late.raw_bytes - late.bytes_sent;
        assert!(
            late_saved < early_saved,
            "late {late_saved} should save less than early {early_saved}"
        );
    }

    #[test]
    fn adaptation_log_records_the_switch() {
        let r = run(&SystemAdaptParams::default());
        assert!(r
            .events
            .iter()
            .any(|e| matches!(e, AdaptationEvent::Switched { rule_id: 20, .. })));
    }
}
