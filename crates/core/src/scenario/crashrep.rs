//! Crash-replay conformance: every (seed × crash point) cell of the
//! adaptation-journal recovery matrix.
//!
//! The paper's transactional promise — "the switch can be backed off if
//! something goes wrong" — is only as strong as its survival of a node
//! crash *mid-switch*. Each cell here boots the Figure 4 docked session
//! with seed-perturbed component state, arms a [`PlannedCrash`] at one
//! journal-record boundary, executes the docked→wireless switchover
//! through the write-ahead journal, crashes, recovers, and then checks
//! the one invariant that matters:
//!
//! > the recovered runtime is byte-identical to either the committed or
//! > the rolled-back reference — never a hybrid — and recovering again
//! > is a no-op.
//!
//! [`sweep`] replays the full matrix ([`CRASH_SEEDS`] ×
//! [`crash_points`]); [`render_matrix`] is the golden-diffed transcript;
//! [`run_cell_observed`] additionally yields the cycle-accounted trace
//! (the `compkit:recover` span) the bench gate prices recovery from.
//! [`supervised_storyline`] is the companion chaos scenario exercising
//! the patia supervision layer (failure detector, circuit breaker,
//! restart probes) under a crash/restart/partition timeline.

use crate::scenario::chaos::ChaosParams;
use adl::diff::{diff, ReconfigurationPlan};
use adl::figures::{docked_session, fig4_document, wireless_session};
use adm_rng::Pcg32;
use compkit::adaptivity::{AdaptivityManager, NoFaults, StepFaults, SwitchError};
use compkit::journal::{CrashPoint, NoCrash, PlannedCrash, RecoveryOutcome};
use compkit::runtime::{BasicFactory, Runtime};
use compkit::state::StateManager;
use faultsim::{Fault, FaultPlan};
use obs::{Obs, ObsHandle};
use patia::atom::AtomId;
use patia::workload::FlashCrowd;

/// The golden chaos seeds, in lockstep with the obs/trace-query tiers.
pub const CRASH_SEEDS: [u64; 3] = [17, 42, 20_260_806];

/// The crash points every seed is replayed through: mid-plan (early and
/// deep), both commit edges, mid-rollback, and a crash *during* the
/// recovery itself.
#[must_use]
pub fn crash_points() -> Vec<CrashPoint> {
    vec![
        CrashPoint::MidPlan { after_steps: 1 },
        CrashPoint::MidPlan { after_steps: 3 },
        CrashPoint::BeforeCommit,
        CrashPoint::AfterCommit,
        CrashPoint::MidRollback { after_undos: 1 },
        CrashPoint::DuringRecovery { after_undos: 1 },
    ]
}

/// One cell of the crash-replay matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashCellReport {
    /// The state-perturbation seed.
    pub seed: u64,
    /// Where the crash struck.
    pub point: CrashPoint,
    /// The settled recovery outcome (never `Crashed`: a cell that
    /// crashes during recovery recovers again until it settles).
    pub outcome: RecoveryOutcome,
    /// Digest of the runtime after recovery settled.
    pub recovered_digest: u64,
    /// Digest of the crash-free committed reference.
    pub committed_digest: u64,
    /// Digest of the pre-switchover (rolled-back) reference.
    pub rolled_back_digest: u64,
    /// Journal records scanned by the first recovery.
    pub records_scanned: usize,
    /// Total steps undone across all recovery passes.
    pub undone: usize,
    /// How many `recover()` calls it took to settle (1, or 2 when the
    /// recovery itself was crashed).
    pub recover_calls: u32,
    /// Whether one further `recover()` after settling was a no-op — the
    /// idempotence witness.
    pub replay_noop: bool,
}

impl CrashCellReport {
    /// Did recovery land on the committed reference?
    #[must_use]
    pub fn committed(&self) -> bool {
        self.recovered_digest == self.committed_digest
    }

    /// Did recovery land on the rolled-back reference?
    #[must_use]
    pub fn rolled_back(&self) -> bool {
        self.recovered_digest == self.rolled_back_digest
    }

    /// The never-hybrid invariant: recovery landed on exactly one of the
    /// two references, and replaying recovery changed nothing.
    #[must_use]
    pub fn consistent(&self) -> bool {
        (self.committed() != self.rolled_back()) && self.replay_noop
    }

    /// One golden-transcript line for this cell.
    #[must_use]
    pub fn render_line(&self) -> String {
        let landed = if self.committed() {
            "committed"
        } else if self.rolled_back() {
            "rolled-back"
        } else {
            "HYBRID"
        };
        format!(
            "seed={} point={} outcome={} landed={} scanned={} undone={} recoveries={} replay_noop={}",
            self.seed,
            self.point,
            self.outcome,
            landed,
            self.records_scanned,
            self.undone,
            self.recover_calls,
            self.replay_noop,
        )
    }
}

/// A deterministic fingerprint of a runtime: every instance (name, type,
/// start tick, state bytes) and every binding, in canonical order.
#[must_use]
pub fn runtime_digest(rt: &Runtime) -> u64 {
    let mut s = String::new();
    for name in rt.instance_names() {
        let c = rt.component(name).expect("listed instance exists");
        s.push_str(name);
        s.push(':');
        s.push_str(&c.ty);
        s.push('@');
        s.push_str(&c.started_at.to_string());
        s.push('=');
        for b in &c.state {
            s.push_str(&format!("{b:02x}"));
        }
        s.push('\n');
    }
    for b in rt.bindings() {
        s.push_str(&format!("{} -- {}\n", b.from, b.to));
    }
    obs::fnv1a(s.as_bytes())
}

/// Boot the Figure 4 docked session on a journalled manager and perturb
/// every component's state bytes from `seed`, so each seed recovers a
/// *different* world and a digest collision cannot mask a hybrid.
/// Returns the world plus the docked→wireless switchover plan.
fn seeded_world(seed: u64) -> (Runtime, StateManager, AdaptivityManager, ReconfigurationPlan) {
    let doc = fig4_document();
    let mut rt = Runtime::new();
    let mut am = AdaptivityManager::new();
    am.attach_journal();
    let mut sm = StateManager::new();
    let boot = diff(&rt.configuration(), &docked_session(&doc));
    am.execute(&mut rt, &boot, &mut BasicFactory, &mut sm, 0).expect("docked boot is fault-free");
    let mut rng = Pcg32::new(seed);
    let names: Vec<String> = rt.instance_names().map(str::to_owned).collect();
    for name in names {
        let mut state = vec![0u8; 8 + rng.index(24)];
        rng.fill_bytes(&mut state);
        rt.component_mut(&name).expect("booted instance exists").state = state;
    }
    let plan = diff(&rt.configuration(), &wireless_session(&doc));
    (rt, sm, am, plan)
}

/// The two reference digests for a seed: the world after a crash-free
/// committed switchover, and the world as it stood before the plan (what
/// a complete rollback must restore bit-for-bit).
fn reference_digests(seed: u64) -> (u64, u64) {
    let (mut rt, mut sm, mut am, plan) = seeded_world(seed);
    let rolled_back = runtime_digest(&rt);
    am.execute(&mut rt, &plan, &mut BasicFactory, &mut sm, 1)
        .expect("the crash-free reference switchover commits");
    (runtime_digest(&rt), rolled_back)
}

/// Fails the bind whose providing instance matches `target` — the
/// forward failure that sends a mid-rollback cell into its rollback.
#[derive(Debug)]
struct FailBindTo {
    target: Option<String>,
}

impl StepFaults for FailBindTo {
    fn fail_bind(&mut self, b: &adl::ast::Binding) -> Option<String> {
        (b.to.instance == self.target).then(|| "injected bind failure".to_owned())
    }
}

/// Replay one (seed, crash point) cell without observability.
#[must_use]
pub fn run_cell(seed: u64, point: CrashPoint) -> CrashCellReport {
    run_cell_inner(seed, point, None)
}

/// Replay one cell with an [`Obs`] hub armed on the Adaptivity Manager,
/// so the crash and every recovery pass appear as cycle-billed
/// `compkit:switch` / `compkit:recover` spans and `compkit.recovery.*`
/// registry counters.
#[must_use]
pub fn run_cell_observed(seed: u64, point: CrashPoint) -> (CrashCellReport, Obs) {
    let handle = Obs::new(obs::CostModel::pentium()).into_handle();
    let report = run_cell_inner(seed, point, Some(handle.clone()));
    let obs = Obs::try_unwrap(handle)
        .unwrap_or_else(|_| unreachable!("the manager is dropped before the hub is unwrapped"));
    (report, obs)
}

fn run_cell_inner(seed: u64, point: CrashPoint, obs: Option<ObsHandle>) -> CrashCellReport {
    let (committed_digest, rolled_back_digest) = reference_digests(seed);
    let (mut rt, mut sm, mut am, plan) = seeded_world(seed);
    if let Some(h) = &obs {
        am.arm_obs(h.clone());
    }

    // Drive the switchover into the crash. Mid-rollback cells first need
    // a plain forward failure (the last bind refuses) so a rollback is
    // in flight for the crash to strike; during-recovery cells crash at
    // the commit edge so the journal is left fully applied, then crash
    // *again* inside the first recovery pass.
    let mut recovery_hook = NoCrash;
    let mut planned_recovery_crash;
    let result = match point {
        CrashPoint::MidRollback { .. } => {
            let target =
                plan.bind.last().expect("switchover plan binds something").to.instance.clone();
            let mut faults = FailBindTo { target };
            let mut crash = PlannedCrash::new(point);
            am.execute_crashable(
                &mut rt,
                &plan,
                &mut BasicFactory,
                &mut sm,
                1,
                &mut faults,
                &mut crash,
            )
        }
        CrashPoint::DuringRecovery { .. } => {
            planned_recovery_crash = PlannedCrash::new(point);
            let mut crash = PlannedCrash::new(CrashPoint::BeforeCommit);
            let r = am.execute_crashable(
                &mut rt,
                &plan,
                &mut BasicFactory,
                &mut sm,
                1,
                &mut NoFaults,
                &mut crash,
            );
            return settle(
                seed,
                point,
                committed_digest,
                rolled_back_digest,
                rt,
                sm,
                am,
                r,
                &mut planned_recovery_crash,
            );
        }
        _ => {
            let mut crash = PlannedCrash::new(point);
            am.execute_crashable(
                &mut rt,
                &plan,
                &mut BasicFactory,
                &mut sm,
                1,
                &mut NoFaults,
                &mut crash,
            )
        }
    };
    settle(
        seed,
        point,
        committed_digest,
        rolled_back_digest,
        rt,
        sm,
        am,
        result,
        &mut recovery_hook,
    )
}

/// Recover (repeatedly, if recovery itself crashes) until the outcome
/// settles, then witness idempotence with one more no-op recovery.
#[allow(clippy::too_many_arguments)]
fn settle(
    seed: u64,
    point: CrashPoint,
    committed_digest: u64,
    rolled_back_digest: u64,
    mut rt: Runtime,
    mut sm: StateManager,
    mut am: AdaptivityManager,
    result: Result<compkit::adaptivity::SwitchReport, SwitchError>,
    first_hook: &mut dyn compkit::journal::CrashHook,
) -> CrashCellReport {
    debug_assert!(
        matches!(result, Err(SwitchError::Crashed { .. })),
        "every cell's switchover must end in a crash, got {result:?}"
    );
    let first = am.recover(&mut rt, &mut sm, first_hook);
    let mut recover_calls = 1;
    let mut undone = first.undone;
    let mut outcome = first.outcome;
    while outcome == RecoveryOutcome::Crashed {
        let next = am.recover(&mut rt, &mut sm, &mut NoCrash);
        recover_calls += 1;
        undone += next.undone;
        outcome = next.outcome;
    }
    let replay = am.recover(&mut rt, &mut sm, &mut NoCrash);
    CrashCellReport {
        seed,
        point,
        outcome,
        recovered_digest: runtime_digest(&rt),
        committed_digest,
        rolled_back_digest,
        records_scanned: first.records_scanned,
        undone,
        recover_calls,
        replay_noop: replay.noop(),
    }
}

/// Replay the full matrix: every [`CRASH_SEEDS`] seed through every
/// [`crash_points`] crash point.
#[must_use]
pub fn sweep() -> Vec<CrashCellReport> {
    let mut cells = Vec::new();
    for &seed in &CRASH_SEEDS {
        for &point in &crash_points() {
            cells.push(run_cell(seed, point));
        }
    }
    cells
}

/// The golden transcript of a sweep: one line per cell.
#[must_use]
pub fn render_matrix(cells: &[CrashCellReport]) -> String {
    let mut out = String::new();
    for c in cells {
        out.push_str(&c.render_line());
        out.push('\n');
    }
    out
}

/// The supervision chaos storyline: a flash crowd on atom 123 while wp1
/// is partitioned away (alive but unreachable — the case plain BEST
/// cannot see) and node2 crashes outright, both later healed/restarted.
/// Driven through [`crate::scenario::chaos::run_observed`], its trace
/// carries the `detector:*`, `circuit:*` and `restart:*` instants the
/// supervision conformance tier asserts over.
#[must_use]
pub fn supervised_storyline(seed: u64) -> ChaosParams {
    let plan = FaultPlan::new(seed)
        .at(50, Fault::Partition { island: vec!["wp1".to_owned()] })
        .at(70, Fault::NodeCrash { node: "node2".to_owned(), point: CrashPoint::BeforeCommit })
        .at(120, Fault::Heal { island: vec!["wp1".to_owned()] })
        .at(140, Fault::NodeRestart { node: "node2".to_owned() });
    ChaosParams {
        plan,
        ticks: 260,
        crowd: Some(FlashCrowd { from: 40, to: 160, target: AtomId(123), multiplier: 30.0 }),
        workload_seed: seed,
        ..ChaosParams::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_point_lands_committed_or_rolled_back_never_hybrid() {
        for &point in &crash_points() {
            let cell = run_cell(7, point);
            assert!(cell.consistent(), "cell must settle cleanly: {}", cell.render_line());
            match point {
                CrashPoint::AfterCommit => {
                    assert!(cell.committed(), "a crash after commit rolls forward");
                }
                _ => assert!(cell.rolled_back(), "a crash before commit rolls back: {point}"),
            }
        }
    }

    #[test]
    fn references_differ_so_a_hybrid_cannot_hide() {
        for &seed in &CRASH_SEEDS {
            let (committed, rolled_back) = reference_digests(seed);
            assert_ne!(committed, rolled_back, "seed {seed}: references must be distinguishable");
        }
    }

    #[test]
    fn during_recovery_cells_take_two_recoveries() {
        let cell = run_cell(7, CrashPoint::DuringRecovery { after_undos: 1 });
        assert_eq!(cell.recover_calls, 2, "the crashed recovery must be resumed");
        assert!(cell.rolled_back());
        assert!(cell.replay_noop);
    }

    #[test]
    fn cells_are_deterministic() {
        let point = CrashPoint::MidPlan { after_steps: 3 };
        assert_eq!(run_cell(42, point), run_cell(42, point));
    }

    #[test]
    fn observed_cells_match_unobserved_and_bill_recovery() {
        let point = CrashPoint::BeforeCommit;
        let plain = run_cell(17, point);
        let (observed, obs) = run_cell_observed(17, point);
        assert_eq!(plain, observed, "observability must not perturb recovery");
        assert!(obs.tracer.events().iter().any(|e| e.name == "recover"));
        assert!(obs.metrics.counter("compkit.recovery.runs") >= 1);
    }
}
