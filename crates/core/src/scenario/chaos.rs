//! Chaos conformance harness: a seeded fault plan driven through the
//! Patia fleet while the Table 2 constraints adapt around it.
//!
//! > "At an architectural level the system must be able to cope with units
//! > failing – perhaps mid way through answering a query."
//!
//! [`run`] replays a [`FaultPlan`] against the paper fleet tick by tick —
//! the driver lands that tick's faults *before* the server's tick, so the
//! storyline is unambiguous — and returns a [`ChaosReport`] aggregating
//! the server's per-tick [`TickStats`]. Everything is seeded: the same
//! plan and workload seed produce an identical report, which the
//! `chaos_e2e` determinism test asserts byte for byte.

use faultsim::{FaultPlan, PatiaDriver};
use obs::{Obs, ObsHandle};
use patia::atom::AtomId;
use patia::server::{PatiaServer, ServerConfig, TickStats};
use patia::workload::{FlashCrowd, RequestGen};
use std::collections::BTreeMap;

/// Chaos run parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosParams {
    /// The fault storyline to replay.
    pub plan: FaultPlan,
    /// Ticks to run.
    pub ticks: u64,
    /// Optional flash crowd riding on top of the faults.
    pub crowd: Option<FlashCrowd>,
    /// Baseline request rate per tick.
    pub base_rate: f64,
    /// Client bandwidth seen by constraint 595.
    pub client_bandwidth_kbps: f64,
    /// Whether the Table 2 constraints are active.
    pub adaptive: bool,
    /// Seed for the request generator (independent of the plan seed so a
    /// fault timeline can be replayed under different workloads).
    pub workload_seed: u64,
}

impl Default for ChaosParams {
    fn default() -> Self {
        Self {
            plan: FaultPlan::new(0),
            ticks: 300,
            crowd: None,
            base_rate: 4.0,
            client_bandwidth_kbps: 500.0,
            adaptive: true,
            workload_seed: 2,
        }
    }
}

/// Aggregated outcome of a chaos run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// The rendered fault timeline ([`FaultPlan::render`]).
    pub timeline: String,
    /// The timeline's FNV fingerprint ([`FaultPlan::digest`]).
    pub plan_digest: u64,
    /// Every tick's stats, in order — determinism tests compare these
    /// wholesale.
    pub per_tick: Vec<TickStats>,
    /// Requests that arrived.
    pub arrivals: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests dropped (counted, never silent).
    pub dropped: u64,
    /// Requests still queued when the run ended.
    pub queued_at_end: u64,
    /// SWITCH events (migrations + spreads + evacuations) performed.
    pub migrations: u64,
    /// Agents evacuated off dead nodes.
    pub evacuations: u64,
    /// SWITCH attempts that failed (denied, unreachable, no destination).
    pub failed_switches: u64,
    /// Failed attempts that were retries of an earlier failure.
    pub switch_retries: u64,
    /// Requests served degraded while an incident was open.
    pub degraded: u64,
    /// Whether each atom's [`PatiaServer::switches`] counter equals the
    /// switch events observed for it in the per-tick stats.
    pub switches_consistent: bool,
}

impl ChaosReport {
    /// The conservation invariant: every arrival is accounted for as
    /// completed, dropped, or still queued — none silently lost.
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.arrivals == self.completed + self.dropped + self.queued_at_end
    }
}

/// Replay `p.plan` against the paper fleet for `p.ticks` ticks.
#[must_use]
pub fn run(p: &ChaosParams) -> ChaosReport {
    run_inner(p, None)
}

/// Like [`run`], but with an [`Obs`] hub armed on the server so the run
/// yields its full cycle-accounted trace and metrics registry alongside
/// the report. Arming observability must not perturb the run: the report
/// is equal to [`run`]'s for the same parameters (asserted in `obs_e2e`).
#[must_use]
pub fn run_observed(p: &ChaosParams) -> (ChaosReport, Obs) {
    let handle = Obs::new(obs::CostModel::pentium()).into_handle();
    let report = run_inner(p, Some(handle.clone()));
    let obs = Obs::try_unwrap(handle)
        .unwrap_or_else(|_| unreachable!("the server is dropped before the hub is unwrapped"));
    (report, obs)
}

fn run_inner(p: &ChaosParams, obs: Option<ObsHandle>) -> ChaosReport {
    let (net, atoms, constraints) = ServerConfig::paper_fleet();
    let config = ServerConfig { adaptive: p.adaptive, work_per_request: 400 };
    let mut server = PatiaServer::new(net, atoms, constraints, config);
    if let Some(h) = obs {
        server.arm_obs(h);
    }
    let driver = PatiaDriver::new(p.plan.clone());
    driver.arm(&mut server);
    let mut gen =
        RequestGen::new(vec![AtomId(123), AtomId(153)], 1.0, p.base_rate, p.workload_seed);
    if let Some(crowd) = p.crowd {
        gen = gen.with_crowd(crowd);
    }
    let mut report = ChaosReport {
        timeline: p.plan.render(),
        plan_digest: p.plan.digest(),
        per_tick: Vec::with_capacity(p.ticks as usize),
        arrivals: 0,
        completed: 0,
        dropped: 0,
        queued_at_end: 0,
        migrations: 0,
        evacuations: 0,
        failed_switches: 0,
        switch_retries: 0,
        degraded: 0,
        switches_consistent: false,
    };
    let mut per_atom: BTreeMap<AtomId, u32> = BTreeMap::new();
    for t in 1..=p.ticks {
        driver.apply(&mut server, t);
        let requests = gen.tick(t);
        let st = server.tick(&requests, p.client_bandwidth_kbps);
        report.arrivals += st.arrivals as u64;
        report.completed += st.latencies.len() as u64;
        report.dropped += st.faults.dropped;
        report.migrations += st.migrations.len() as u64;
        report.evacuations += st.faults.evacuations;
        report.failed_switches += st.faults.failed_switches;
        report.switch_retries += st.faults.switch_retries;
        report.degraded += st.faults.degraded;
        for (atom, _, _) in &st.migrations {
            *per_atom.entry(*atom).or_default() += 1;
        }
        report.per_tick.push(st);
    }
    report.queued_at_end = server.queued_requests();
    report.switches_consistent = [AtomId(123), AtomId(153)]
        .iter()
        .all(|a| server.switches(*a) == per_atom.get(a).copied().unwrap_or(0));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultsim::Fault;

    #[test]
    fn fault_free_run_conserves_and_stays_consistent() {
        let r = run(&ChaosParams { ticks: 150, ..ChaosParams::default() });
        assert!(
            r.conserved(),
            "arrivals {} != {} + {} + {}",
            r.arrivals,
            r.completed,
            r.dropped,
            r.queued_at_end
        );
        assert!(r.switches_consistent);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.failed_switches, 0);
    }

    #[test]
    fn node_death_run_is_deterministic_and_conserved() {
        let plan = FaultPlan::new(9)
            .at(30, Fault::NodeDeath { node: "node1".into() })
            .at(90, Fault::NodeRevival { node: "node1".into() });
        let params = ChaosParams { plan, ticks: 200, ..ChaosParams::default() };
        let (a, b) = (run(&params), run(&params));
        assert_eq!(a, b, "same plan + workload seed must replay identically");
        assert!(a.conserved());
        assert!(a.switches_consistent);
    }
}
