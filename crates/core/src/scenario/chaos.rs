//! Chaos conformance harness: a seeded fault plan driven through the
//! Patia fleet while the Table 2 constraints adapt around it.
//!
//! > "At an architectural level the system must be able to cope with units
//! > failing – perhaps mid way through answering a query."
//!
//! [`run`] replays a [`FaultPlan`] against the paper fleet tick by tick —
//! the driver lands that tick's faults *before* the server's tick, so the
//! storyline is unambiguous — and returns a [`ChaosReport`] aggregating
//! the server's per-tick [`TickStats`]. Everything is seeded: the same
//! plan and workload seed produce an identical report, which the
//! `chaos_e2e` determinism test asserts byte for byte.

use adl::ast::{Binding, PortRef};
use adl::diff::ReconfigurationPlan;
use compkit::adaptivity::AdaptivityManager;
use compkit::runtime::{BasicFactory, Runtime};
use compkit::state::StateManager;
use faultsim::{FaultPlan, FaultSpace, PatiaDriver};
use obs::{Obs, ObsHandle, Primitive, Profile};
use patia::atom::AtomId;
use patia::engine::EventEngine;
use patia::server::{PatiaServer, ServerConfig, SwitchKind, SwitchPolicy, TickStats};
use patia::workload::{FlashCrowd, RequestGen};
use std::collections::BTreeMap;

/// Which serving core replays the storyline: the legacy per-tick loop or
/// the event engine driven tick by tick through its wheel. The two must
/// produce byte-identical reports and traces — the differential tier
/// (`engine_diff`) holds the engine to that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Core {
    Legacy,
    Engine,
}

/// The executing core for one run. Run-scoped and stack-allocated once
/// per scenario, so the size skew between variants is irrelevant.
#[allow(clippy::large_enum_variant)]
enum Exec {
    Legacy(PatiaServer),
    Engine(EventEngine),
}

impl Exec {
    fn server(&self) -> &PatiaServer {
        match self {
            Exec::Legacy(s) => s,
            Exec::Engine(e) => e.server(),
        }
    }

    fn server_mut(&mut self) -> &mut PatiaServer {
        match self {
            Exec::Legacy(s) => s,
            Exec::Engine(e) => e.server_mut(),
        }
    }

    /// Serve one tick. The engine leg enqueues the tick's arrivals on the
    /// wheel and processes that exact tick, so both cores see identical
    /// per-tick inputs and the comparison is pure core-vs-core.
    fn step(&mut self, t: u64, requests: &[AtomId], bandwidth: f64) -> TickStats {
        match self {
            Exec::Legacy(s) => s.tick(requests, bandwidth),
            Exec::Engine(e) => {
                let batches: Vec<(AtomId, u64)> = requests.iter().map(|&a| (a, 1)).collect();
                e.enqueue_arrivals(t, batches);
                e.run_tick(t, bandwidth)
            }
        }
    }
}

/// Chaos run parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosParams {
    /// The fault storyline to replay.
    pub plan: FaultPlan,
    /// Ticks to run.
    pub ticks: u64,
    /// Optional flash crowd riding on top of the faults.
    pub crowd: Option<FlashCrowd>,
    /// Baseline request rate per tick.
    pub base_rate: f64,
    /// Client bandwidth seen by constraint 595.
    pub client_bandwidth_kbps: f64,
    /// Whether the Table 2 constraints are active.
    pub adaptive: bool,
    /// Seed for the request generator (independent of the plan seed so a
    /// fault timeline can be replayed under different workloads).
    pub workload_seed: u64,
    /// Whether the atoms sit on a persistent storage engine: the atom
    /// store is persisted at boot and every routed batch reads its
    /// atom's record through the buffer pool, so page IO joins the bill.
    pub storage: bool,
    /// Whether the circuit-breaker screen on BEST candidate lists is
    /// evaluated as a declarative query over `sys.supervision`
    /// ([`SwitchPolicy::Query`]) instead of the compiled-in filter. The
    /// two are byte-identical — the `systab_e2e` differential leg pins
    /// reports, traces, and metric digests across both.
    pub query_rules: bool,
}

impl Default for ChaosParams {
    fn default() -> Self {
        Self {
            plan: FaultPlan::new(0),
            ticks: 300,
            crowd: None,
            base_rate: 4.0,
            client_bandwidth_kbps: 500.0,
            adaptive: true,
            workload_seed: 2,
            storage: false,
            query_rules: false,
        }
    }
}

/// The Table 2 flash-crowd scenario: no injected faults, just the paper's
/// load spike on atom 123 with the constraints adapting around it. One
/// definition shared by the golden-trace tier, `figures --trace/--flame`,
/// and the bench-trajectory gate, so they all measure the same run.
#[must_use]
pub fn paper_flash_crowd() -> ChaosParams {
    ChaosParams {
        plan: FaultPlan::new(0),
        ticks: 400,
        crowd: Some(FlashCrowd { from: 50, to: 250, target: AtomId(123), multiplier: 30.0 }),
        ..ChaosParams::default()
    }
}

/// The CI chaos matrix scenario: a seeded random fault storyline over the
/// paper fleet plus a flash crowd (mirrors `chaos_e2e` scenario 7). The
/// golden seeds are 17, 42, and 20260806.
#[must_use]
pub fn ci_chaos(seed: u64) -> ChaosParams {
    let fleet: Vec<String> =
        ["node1", "node2", "node3", "wp1", "wp2"].iter().map(|s| (*s).to_owned()).collect();
    let space = FaultSpace {
        links: vec![
            ("node1".to_owned(), "node2".to_owned()),
            ("node2".to_owned(), "node3".to_owned()),
            ("node1".to_owned(), "wp1".to_owned()),
        ],
        nodes: fleet,
        atoms: vec![123, 153],
        components: Vec::new(),
        horizon: 250,
        incidents: 10,
        // Kept empty so the golden seeds keep drawing byte-identical
        // timelines; compkit crash points are exercised exhaustively by
        // the `crashrep` matrix and 2PC crash points by `txnrep`.
        crash_nodes: Vec::new(),
        txn_crashes: Vec::new(),
    };
    ChaosParams {
        plan: FaultPlan::random(seed, &space),
        ticks: 300,
        crowd: Some(FlashCrowd { from: 60, to: 180, target: AtomId(123), multiplier: 20.0 }),
        ..ChaosParams::default()
    }
}

/// Aggregated outcome of a chaos run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// The rendered fault timeline ([`FaultPlan::render`]).
    pub timeline: String,
    /// The timeline's FNV fingerprint ([`FaultPlan::digest`]).
    pub plan_digest: u64,
    /// Every tick's stats, in order — determinism tests compare these
    /// wholesale.
    pub per_tick: Vec<TickStats>,
    /// Requests that arrived.
    pub arrivals: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests dropped (counted, never silent).
    pub dropped: u64,
    /// Requests still queued when the run ended.
    pub queued_at_end: u64,
    /// SWITCH events (migrations + spreads + evacuations) performed.
    pub migrations: u64,
    /// Agents evacuated off dead nodes.
    pub evacuations: u64,
    /// SWITCH attempts that failed (denied, unreachable, no destination).
    pub failed_switches: u64,
    /// Failed attempts that were retries of an earlier failure.
    pub switch_retries: u64,
    /// Requests served degraded while an incident was open.
    pub degraded: u64,
    /// Whether each atom's [`PatiaServer::switches`] counter equals the
    /// switch events observed for it in the per-tick stats.
    pub switches_consistent: bool,
    /// Reconfiguration transactions the compkit Adaptivity Manager
    /// committed while mirroring the run (the boot transaction plus one
    /// per SWITCH event).
    pub reconfigs_committed: u64,
    /// Reconfiguration transactions that rolled back (zero in a healthy
    /// run: the glue's plans are always consistent with the runtime).
    pub reconfigs_rolled_back: u64,
}

impl ChaosReport {
    /// The conservation invariant: every arrival is accounted for as
    /// completed, dropped, or still queued — none silently lost.
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.arrivals == self.completed + self.dropped + self.queued_at_end
    }
}

/// Replay `p.plan` against the paper fleet for `p.ticks` ticks.
#[must_use]
pub fn run(p: &ChaosParams) -> ChaosReport {
    run_inner(p, None, Core::Legacy)
}

/// Like [`run`], but replayed through the event engine instead of the
/// legacy tick loop. Byte-identical to [`run`] for every storyline — the
/// differential tier asserts it.
#[must_use]
pub fn run_engine(p: &ChaosParams) -> ChaosReport {
    run_inner(p, None, Core::Engine)
}

/// Like [`run`], but with an [`Obs`] hub armed on the server so the run
/// yields its full cycle-accounted trace and metrics registry alongside
/// the report. Arming observability must not perturb the run: the report
/// is equal to [`run`]'s for the same parameters (asserted in `obs_e2e`).
#[must_use]
pub fn run_observed(p: &ChaosParams) -> (ChaosReport, Obs) {
    run_observed_on(p, Core::Legacy)
}

/// [`run_observed`] through the event engine: same trace, same metrics,
/// same report — the golden traces must not notice which core served.
#[must_use]
pub fn run_engine_observed(p: &ChaosParams) -> (ChaosReport, Obs) {
    run_observed_on(p, Core::Engine)
}

fn run_observed_on(p: &ChaosParams, core: Core) -> (ChaosReport, Obs) {
    let handle = Obs::new(obs::CostModel::pentium()).into_handle();
    let report = run_inner(p, Some(handle.clone()), core);
    let mut obs = Obs::try_unwrap(handle)
        .unwrap_or_else(|_| unreachable!("the server is dropped before the hub is unwrapped"));
    // Fold the finished trace into the cycle-attribution profile and
    // publish the per-category totals, so the metric snapshot and the
    // trace agree on where the cycles went (`profile.self_cycles.*`).
    Profile::build(obs.tracer.events(), obs.clock()).publish(&mut obs.metrics);
    (report, obs)
}

/// The settled state of an observed chaos run, kept alive so the system
/// tables (`sys.supervision`, `sys.switches`, `sys.pool`, ...) can be
/// queried over it after the storyline ends. The report and [`Obs`] are
/// byte-identical to [`run_observed`]'s for the same parameters.
#[derive(Debug)]
pub struct ChaosWorld {
    /// The aggregated run outcome, equal to [`run`]'s report.
    pub report: ChaosReport,
    /// The unwrapped hub: finished trace, metrics (profile published),
    /// final cycle clock.
    pub obs: Obs,
    /// The served fleet as the run left it — supervisor circuits, queues,
    /// and (when `p.storage`) the storage engine's buffer pool intact.
    pub server: PatiaServer,
    /// The adaptation glue with its journal, for `sys.switches`.
    pub am: AdaptivityManager,
}

/// Like [`run_observed`], but instead of dropping the machine it returns
/// the settled [`ChaosWorld`] so callers can serve the machine's own
/// telemetry through query. Runs on the legacy core (the event engine
/// cannot yield its server back by value).
#[must_use]
pub fn run_with_state(p: &ChaosParams) -> ChaosWorld {
    let handle = Obs::new(obs::CostModel::pentium()).into_handle();
    let (report, exec, mut am) = run_full(p, Some(handle.clone()), Core::Legacy);
    let Exec::Legacy(mut server) = exec else {
        unreachable!("run_with_state always drives the legacy core")
    };
    server.disarm_obs();
    am.disarm_obs();
    let mut obs = Obs::try_unwrap(handle)
        .unwrap_or_else(|_| unreachable!("the server and glue are disarmed before unwrapping"));
    Profile::build(obs.tracer.events(), obs.clock()).publish(&mut obs.metrics);
    ChaosWorld { report, obs, server, am }
}

/// The glue component instance standing for a fleet node.
fn host_instance(node: &str) -> String {
    format!("host:{node}")
}

/// The glue component instance standing for an atom's service.
fn atom_instance(atom: AtomId) -> String {
    format!("atom:{}", atom.0)
}

/// The binding that records "this atom's service runs on this node".
fn glue_binding(atom: AtomId, node: &str) -> Binding {
    Binding {
        from: PortRef::on(&atom_instance(atom), "route"),
        to: PortRef::on(&host_instance(node), "slot"),
    }
}

fn run_inner(p: &ChaosParams, obs: Option<ObsHandle>, core: Core) -> ChaosReport {
    run_full(p, obs, core).0
}

fn run_full(
    p: &ChaosParams,
    obs: Option<ObsHandle>,
    core: Core,
) -> (ChaosReport, Exec, AdaptivityManager) {
    let (net, atoms, constraints) = ServerConfig::paper_fleet();
    let config = ServerConfig { adaptive: p.adaptive, work_per_request: 400 };
    let mut server = PatiaServer::new(net, atoms, constraints, config);
    if p.query_rules {
        server.set_switch_policy(SwitchPolicy::Query);
    }
    if let Some(h) = &obs {
        server.arm_obs(h.clone());
    }
    if p.storage {
        server.attach_store(store::StorageEngine::new(8)).expect("the atom store persists at boot");
    }
    let driver = PatiaDriver::new(p.plan.clone());
    driver.arm(&mut server);
    let mut exec = match core {
        Core::Legacy => Exec::Legacy(server),
        Core::Engine => Exec::Engine(EventEngine::new(server)),
    };
    let server = exec.server();

    // The component-runtime mirror: one `host:<node>` instance per fleet
    // device, one `atom:<id>` instance per served atom, and a
    // `route -- slot` binding recording each agent placement. Every SWITCH
    // the server performs is then re-expressed as a transactional
    // reconfiguration through the Adaptivity Manager — the paper's
    // "migration encloses a committed bind/unbind transaction" — and the
    // glue runs identically armed or disarmed, so it cannot perturb the
    // report.
    let mut rt = Runtime::new();
    let mut am = AdaptivityManager::new();
    // Write-ahead journalling on: every mirrored reconfiguration leaves a
    // checkpointed journal, so a crash replay (`scenario::crashrep`)
    // could recover any of these transactions.
    am.attach_journal();
    let mut sm = StateManager::new();
    let mut factory = BasicFactory;
    if let Some(h) = &obs {
        am.arm_obs(h.clone());
    }
    let mut boot = ReconfigurationPlan::default();
    for d in server.network().devices() {
        boot.start.push((host_instance(&d.name), "Host".to_owned()));
    }
    for atom in server.served_atoms() {
        boot.start.push((atom_instance(atom), "Agent".to_owned()));
        for agent in server.agents(atom) {
            boot.bind.push(glue_binding(atom, &agent.node));
        }
    }
    let boot_span = obs.as_ref().map(|o| {
        let mut o = o.borrow_mut();
        let s = o.begin("chaos", "boot");
        o.charge(Primitive::Branch);
        s
    });
    let booted = am.execute(&mut rt, &boot, &mut factory, &mut sm, 0);
    if let (Some(o), Some(span)) = (&obs, boot_span) {
        o.borrow_mut().end_with(
            span,
            vec![
                ("outcome", if booted.is_ok() { "committed" } else { "rolled_back" }.to_owned()),
                ("instances", boot.start.len().to_string()),
            ],
        );
    }
    let mut gen =
        RequestGen::new(vec![AtomId(123), AtomId(153)], 1.0, p.base_rate, p.workload_seed);
    if let Some(crowd) = p.crowd {
        gen = gen.with_crowd(crowd);
    }
    let mut report = ChaosReport {
        timeline: p.plan.render(),
        plan_digest: p.plan.digest(),
        per_tick: Vec::with_capacity(p.ticks as usize),
        arrivals: 0,
        completed: 0,
        dropped: 0,
        queued_at_end: 0,
        migrations: 0,
        evacuations: 0,
        failed_switches: 0,
        switch_retries: 0,
        degraded: 0,
        switches_consistent: false,
        reconfigs_committed: 0,
        reconfigs_rolled_back: 0,
    };
    let mut per_atom: BTreeMap<AtomId, u32> = BTreeMap::new();
    for t in 1..=p.ticks {
        driver.apply(exec.server_mut(), t);
        let requests = gen.tick(t);
        let st = exec.step(t, &requests, p.client_bandwidth_kbps);
        report.arrivals += st.arrivals as u64;
        report.completed += st.latencies.len() as u64;
        report.dropped += st.faults.dropped;
        report.migrations += st.migrations.len() as u64;
        report.evacuations += st.faults.evacuations;
        report.failed_switches += st.faults.failed_switches;
        report.switch_retries += st.faults.switch_retries;
        report.degraded += st.faults.degraded;
        for ev in &st.migrations {
            *per_atom.entry(ev.atom).or_default() += 1;
            // Mirror the SWITCH as a transactional reconfiguration: a
            // migration or evacuation moves the placement binding; a
            // spread adds one (the source agent stays).
            let mut plan = ReconfigurationPlan::default();
            if ev.kind != SwitchKind::Spread {
                plan.unbind.push(glue_binding(ev.atom, &ev.from));
            }
            plan.bind.push(glue_binding(ev.atom, &ev.to));
            let span = obs.as_ref().map(|o| {
                let mut o = o.borrow_mut();
                let s = o.begin("chaos", "migration");
                o.charge(Primitive::Branch);
                s
            });
            let result = am.execute(&mut rt, &plan, &mut factory, &mut sm, t);
            if let (Some(o), Some(span)) = (&obs, span) {
                o.borrow_mut().end_with(
                    span,
                    vec![
                        ("atom", ev.atom.0.to_string()),
                        ("kind", ev.kind.instant_name().to_owned()),
                        ("from", ev.from.clone()),
                        ("to", ev.to.clone()),
                        (
                            "outcome",
                            if result.is_ok() { "committed" } else { "rolled_back" }.to_owned(),
                        ),
                    ],
                );
            }
        }
        report.per_tick.push(st);
    }
    report.queued_at_end = exec.server().queued_requests();
    report.switches_consistent = [AtomId(123), AtomId(153)]
        .iter()
        .all(|a| exec.server().switches(*a) == per_atom.get(a).copied().unwrap_or(0));
    report.reconfigs_committed = am.committed();
    report.reconfigs_rolled_back = am.rolled_back();
    (report, exec, am)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultsim::Fault;

    #[test]
    fn fault_free_run_conserves_and_stays_consistent() {
        let r = run(&ChaosParams { ticks: 150, ..ChaosParams::default() });
        assert!(
            r.conserved(),
            "arrivals {} != {} + {} + {}",
            r.arrivals,
            r.completed,
            r.dropped,
            r.queued_at_end
        );
        assert!(r.switches_consistent);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.failed_switches, 0);
    }

    #[test]
    fn node_death_run_is_deterministic_and_conserved() {
        let plan = FaultPlan::new(9)
            .at(30, Fault::NodeDeath { node: "node1".into() })
            .at(90, Fault::NodeRevival { node: "node1".into() });
        let params = ChaosParams { plan, ticks: 200, ..ChaosParams::default() };
        let (a, b) = (run(&params), run(&params));
        assert_eq!(a, b, "same plan + workload seed must replay identically");
        assert!(a.conserved());
        assert!(a.switches_consistent);
    }
}
