//! Cross-shard transaction conformance: every (seed × crash site ×
//! topology) cell of the two-phase-commit recovery matrix.
//!
//! The unbundled transaction core promises that a cross-shard SWITCH is
//! atomic *across* shards: however the coordinator or a participant dies
//! — before prepare, mid prepare, after a vote, on either side of the
//! commit decision, mid fan-out, mid rollback, or during recovery itself
//! — every shard ends up on the same side of the transaction. Each cell
//! here boots a sharded fleet with seed-perturbed component state and a
//! per-shard durable store, re-expresses one (or, on the three-shard
//! topology, two) atom migrations as per-shard sub-plans via
//! [`patia::shard::cross_shard_plans`], arms a [`PlannedTxnCrash`] at one
//! protocol boundary, executes through [`TransactionCore`], crashes,
//! recovers until settled, and checks the invariant:
//!
//! > every shard's runtime **and** store digest matches the committed
//! > reference on all shards, or the rolled-back reference on all shards
//! > — never a mix — a further recovery is a no-op, and every armed
//! > crash hook actually fired (an unreached site fails the cell).
//!
//! [`sweep`] replays the full matrix ([`TXN_SEEDS`] × [`crash_points`] ×
//! [`TOPOLOGIES`]); [`render_matrix`] is the golden-diffed transcript;
//! [`run_cell_observed`] / [`run_clean_observed`] yield the
//! cycle-accounted `txn:*` traces the bench gate prices 2PC from.

use adl::ast::Binding;
use adl::diff::ReconfigurationPlan;
use adm_rng::Pcg32;
use compkit::journal::{RecoveryOutcome, StepRecord};
use compkit::runtime::LiveComponent;
use compkit::{NoFaults, StepFaults};
use faultsim::CoverageLedger;
use obs::{Obs, ObsHandle};
use patia::atom::AtomId;
use patia::shard::{atom_instance, cross_shard_plans, host_instance, shard_of, ShardHandle};
use std::collections::BTreeMap;
use store::StorageEngine;
use txn::{
    CrossShardReport, DataComponent, NoTxnCrash, PlannedTxnCrash, ShardId, TransactionCore,
    TxnCrashPoint, TxnError,
};

/// The golden seeds, in lockstep with the chaos and crashrep tiers.
pub const TXN_SEEDS: [u64; 3] = [17, 42, 20_260_806];

/// The shard counts every cell is replayed on: the minimal cross-shard
/// case and a three-way transaction (two migrations converging on one
/// target shard).
pub const TOPOLOGIES: [usize; 2] = [2, 3];

/// The crash points every (seed, topology) pair is replayed through —
/// one per protocol boundary class, hitting both the first shard and the
/// target (last) shard where the boundary is per-shard.
#[must_use]
pub fn crash_points(topology: usize) -> Vec<TxnCrashPoint> {
    let last = topology as u32 - 1;
    vec![
        TxnCrashPoint::BeforePrepare,
        TxnCrashPoint::MidPrepare { shard: 0, after_steps: 1 },
        TxnCrashPoint::MidPrepare { shard: last, after_steps: 2 },
        TxnCrashPoint::AfterPrepare { shard: 0 },
        TxnCrashPoint::AfterPrepare { shard: last },
        TxnCrashPoint::BeforeDecision,
        TxnCrashPoint::AfterDecision,
        TxnCrashPoint::MidCommitFanout { shard: 0 },
        TxnCrashPoint::MidCommitFanout { shard: last },
        TxnCrashPoint::MidUndo { after_undos: 1 },
        TxnCrashPoint::MidAbortFanout { shard: 0 },
        TxnCrashPoint::DuringRecovery { after_undos: 1 },
    ]
}

/// One cell of the cross-shard crash matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnCellReport {
    /// The state-perturbation seed.
    pub seed: u64,
    /// How many shards participated.
    pub topology: usize,
    /// Where the crash struck.
    pub point: TxnCrashPoint,
    /// The settled recovery outcome (never `Crashed`: a cell that
    /// crashes during recovery recovers again until it settles).
    pub outcome: RecoveryOutcome,
    /// Per-shard fused (runtime + store) digests after recovery settled.
    pub recovered: Vec<u64>,
    /// Per-shard digests of the crash-free committed reference.
    pub committed_ref: Vec<u64>,
    /// Per-shard digests of the pre-switch (rolled-back) reference.
    pub rolled_back_ref: Vec<u64>,
    /// Log records scanned by the first recovery pass.
    pub scanned: usize,
    /// Compensations performed across all recovery passes.
    pub undone: usize,
    /// In-doubt participants resolved across all recovery passes.
    pub in_doubt_resolved: usize,
    /// How many `recover()` calls it took to settle.
    pub recover_calls: u32,
    /// Whether one further `recover()` after settling was a no-op — the
    /// idempotence witness.
    pub replay_noop: bool,
    /// Unfired crash hooks at teardown (empty in every healthy cell —
    /// an armed-but-unreached site means the cell tested nothing).
    pub unfired: Vec<String>,
}

impl TxnCellReport {
    /// Did *every* shard land on the committed reference?
    #[must_use]
    pub fn committed(&self) -> bool {
        self.recovered == self.committed_ref
    }

    /// Did *every* shard land on the rolled-back reference?
    #[must_use]
    pub fn rolled_back(&self) -> bool {
        self.recovered == self.rolled_back_ref
    }

    /// The never-hybrid invariant, cross-shard edition: all shards
    /// landed on exactly one of the two references, replaying recovery
    /// changed nothing, and every armed crash hook fired.
    #[must_use]
    pub fn consistent(&self) -> bool {
        (self.committed() != self.rolled_back()) && self.replay_noop && self.unfired.is_empty()
    }

    /// One golden-transcript line for this cell.
    #[must_use]
    pub fn render_line(&self) -> String {
        let landed = if self.committed() {
            "committed"
        } else if self.rolled_back() {
            "rolled-back"
        } else {
            "HYBRID"
        };
        let coverage =
            if self.unfired.is_empty() { "ok".to_owned() } else { self.unfired.join(",") };
        format!(
            "seed={} shards={} point={} outcome={} landed={} scanned={} undone={} in_doubt={} recoveries={} replay_noop={} coverage={}",
            self.seed,
            self.topology,
            self.point,
            self.outcome,
            landed,
            self.scanned,
            self.undone,
            self.in_doubt_resolved,
            self.recover_calls,
            self.replay_noop,
            coverage,
        )
    }
}

/// The shard layout for a topology: nodes from the paper fleet carved
/// into transaction shards, migrations converging on the last shard.
#[must_use]
pub fn shard_handles(topology: usize) -> Vec<ShardHandle> {
    if topology == 2 {
        vec![
            ShardHandle::new(0, "east", vec!["node1".to_owned(), "node2".to_owned()]),
            ShardHandle::new(1, "west", vec!["wp1".to_owned()]),
        ]
    } else {
        vec![
            ShardHandle::new(0, "east", vec!["node1".to_owned()]),
            ShardHandle::new(1, "mid", vec!["node2".to_owned()]),
            ShardHandle::new(2, "west", vec!["wp1".to_owned()]),
        ]
    }
}

/// The atom migrations a topology's transaction performs:
/// `(atom, home node, destination node)`.
fn migrations(topology: usize) -> Vec<(AtomId, &'static str, &'static str)> {
    if topology == 2 {
        vec![(AtomId(123), "node1", "wp1")]
    } else {
        vec![(AtomId(123), "node1", "wp1"), (AtomId(153), "node2", "wp1")]
    }
}

/// Boot the sharded fleet: one [`DataComponent`] per shard holding its
/// nodes' `host:*` glue and its atoms' `atom:*` agents, every instance's
/// state perturbed from `seed` (so a digest collision cannot mask a
/// hybrid), and a per-shard [`StorageEngine`] seeded with the boot image.
/// Returns the shards plus the merged per-shard sub-plans.
#[must_use]
pub fn seeded_world(
    seed: u64,
    topology: usize,
) -> (BTreeMap<u32, DataComponent>, BTreeMap<u32, ReconfigurationPlan>) {
    let handles = shard_handles(topology);
    let mut shards: BTreeMap<u32, DataComponent> = BTreeMap::new();
    for h in &handles {
        let mut dc = DataComponent::new(ShardId(h.id()));
        for node in h.nodes() {
            dc.runtime_mut()
                .start(
                    &host_instance(node),
                    LiveComponent { ty: "Host".to_owned(), state: Vec::new(), started_at: 0 },
                )
                .expect("boot starts each host once");
        }
        shards.insert(h.id(), dc);
    }
    for (atom, home, _) in migrations(topology) {
        let h = shard_of(&handles, home).expect("every home node is owned");
        let dc = shards.get_mut(&h.id()).expect("shard booted");
        dc.runtime_mut()
            .start(
                &atom_instance(atom),
                LiveComponent { ty: "Agent".to_owned(), state: Vec::new(), started_at: 0 },
            )
            .expect("boot starts each agent once");
        dc.runtime_mut()
            .bind(patia::shard::route_binding(atom, home))
            .expect("boot routes each agent once");
    }
    let mut rng = Pcg32::new(seed);
    for dc in shards.values_mut() {
        let names: Vec<String> = dc.runtime().instance_names().map(str::to_owned).collect();
        for name in &names {
            let mut state = vec![0u8; 8 + rng.index(24)];
            rng.fill_bytes(&mut state);
            dc.runtime_mut().component_mut(name).expect("booted instance exists").state = state;
        }
        dc.attach_store(StorageEngine::new(8));
        let boot_image: Vec<StepRecord> =
            names.iter().map(|n| StepRecord::Started { name: n.clone() }).collect();
        dc.persist_steps(&boot_image).expect("boot image persists");
    }
    let mut plans: BTreeMap<u32, ReconfigurationPlan> = BTreeMap::new();
    for (atom, from, to) in migrations(topology) {
        for (id, p) in cross_shard_plans(&handles, atom, from, to) {
            let merged = plans.entry(id).or_default();
            merged.unbind.extend(p.unbind);
            merged.stop.extend(p.stop);
            merged.start.extend(p.start);
            merged.bind.extend(p.bind);
        }
    }
    (shards, plans)
}

/// Per-shard fused digest: runtime state and durable store state
/// together, so a shard whose memory rolled back but whose store
/// committed still reads as a hybrid.
#[must_use]
pub fn shard_digests(shards: &mut BTreeMap<u32, DataComponent>) -> Vec<u64> {
    shards
        .values_mut()
        .map(|dc| {
            let fused =
                format!("rt={:016x} store={:016x}", dc.digest(), dc.store_digest().unwrap_or(0));
            obs::fnv1a(fused.as_bytes())
        })
        .collect()
}

/// The two per-shard reference digest vectors for a (seed, topology):
/// the world after a crash-free committed transaction, and the world as
/// booted (what a complete rollback must restore bit-for-bit).
#[must_use]
pub fn reference_digests(seed: u64, topology: usize) -> (Vec<u64>, Vec<u64>) {
    let (mut shards, plans) = seeded_world(seed, topology);
    let rolled_back = shard_digests(&mut shards);
    TransactionCore::new()
        .execute_cross_shard(&mut shards, &plans, 50, &mut NoFaults, &mut NoTxnCrash)
        .expect("the crash-free reference transaction commits");
    (shard_digests(&mut shards), rolled_back)
}

/// Fails every bind landing on `target` — the forward failure that puts
/// an abort in flight for the mid-undo / mid-abort-fan-out cells. With
/// `None` it injects nothing.
#[derive(Debug)]
struct FailBindTo {
    target: Option<String>,
}

impl StepFaults for FailBindTo {
    fn fail_bind(&mut self, b: &Binding) -> Option<String> {
        (self.target.is_some() && b.to.instance == self.target)
            .then(|| "injected bind failure".to_owned())
    }
}

/// Replay one (seed, topology, crash point) cell without observability.
#[must_use]
pub fn run_cell(seed: u64, topology: usize, point: TxnCrashPoint) -> TxnCellReport {
    run_cell_inner(seed, topology, point, None)
}

/// Replay one cell with an [`Obs`] hub armed on the transaction core, so
/// the crash and every recovery pass appear as cycle-billed
/// `txn:cross_switch` / `txn:recover` spans and `txn.*` counters.
#[must_use]
pub fn run_cell_observed(seed: u64, topology: usize, point: TxnCrashPoint) -> (TxnCellReport, Obs) {
    let handle = Obs::new(obs::CostModel::pentium()).into_handle();
    let report = run_cell_inner(seed, topology, point, Some(handle.clone()));
    let obs = Obs::try_unwrap(handle)
        .unwrap_or_else(|_| unreachable!("the core is dropped before the hub is unwrapped"));
    (report, obs)
}

/// One crash-free committed transaction with an [`Obs`] hub armed — the
/// prepare/commit cycle reference the bench gate prices.
#[must_use]
pub fn run_clean_observed(seed: u64, topology: usize) -> (CrossShardReport, Obs) {
    let handle = Obs::new(obs::CostModel::pentium()).into_handle();
    let (mut shards, plans) = seeded_world(seed, topology);
    let mut tc = TransactionCore::new();
    tc.arm_obs(handle.clone());
    let report = tc
        .execute_cross_shard(&mut shards, &plans, 50, &mut NoFaults, &mut NoTxnCrash)
        .expect("the clean transaction commits");
    tc.disarm_obs();
    drop(tc);
    let obs = Obs::try_unwrap(handle)
        .unwrap_or_else(|_| unreachable!("the core is dropped before the hub is unwrapped"));
    (report, obs)
}

fn run_cell_inner(
    seed: u64,
    topology: usize,
    point: TxnCrashPoint,
    obs: Option<ObsHandle>,
) -> TxnCellReport {
    let (committed_ref, rolled_back_ref) = reference_digests(seed, topology);
    let (mut shards, plans) = seeded_world(seed, topology);
    let mut tc = TransactionCore::new();
    if let Some(h) = &obs {
        tc.arm_obs(h.clone());
    }

    // Mid-undo and mid-abort cells need an abort in flight for the crash
    // to strike: the target shard's binds refuse, so the coordinator is
    // compensating when the hook fires. During-recovery cells crash at
    // the commit edge first, then crash *again* inside the first
    // recovery pass.
    let needs_abort =
        matches!(point, TxnCrashPoint::MidUndo { .. } | TxnCrashPoint::MidAbortFanout { .. });
    let in_recovery = matches!(point, TxnCrashPoint::DuringRecovery { .. });
    let exec_point = if in_recovery { TxnCrashPoint::BeforeDecision } else { point };
    let mut faults = FailBindTo { target: needs_abort.then(|| host_instance("wp1")) };
    let mut hook = PlannedTxnCrash::new(exec_point);
    let result = tc.execute_cross_shard(&mut shards, &plans, 50, &mut faults, &mut hook);
    debug_assert!(
        matches!(result, Err(TxnError::Crashed { .. })),
        "every cell's transaction must end in a crash, got {result:?}"
    );

    let mut recovery_hook = PlannedTxnCrash::new(point);
    let first = if in_recovery {
        tc.recover(&mut shards, &mut recovery_hook)
    } else {
        tc.recover(&mut shards, &mut NoTxnCrash)
    };
    let mut recover_calls = 1u32;
    let mut undone = first.undone;
    let mut resolved = first.in_doubt_resolved;
    let mut outcome = first.outcome;
    while outcome == RecoveryOutcome::Crashed {
        let next = tc.recover(&mut shards, &mut NoTxnCrash);
        recover_calls += 1;
        undone += next.undone;
        resolved += next.in_doubt_resolved;
        outcome = next.outcome;
    }
    let replay = tc.recover(&mut shards, &mut NoTxnCrash);

    // Teardown coverage audit: every armed hook must have fired, or the
    // cell exercised nothing at its claimed site.
    let mut ledger = CoverageLedger::new();
    ledger.record("switch", &hook);
    if in_recovery {
        ledger.record("recovery", &recovery_hook);
    }

    TxnCellReport {
        seed,
        topology,
        point,
        outcome,
        recovered: shard_digests(&mut shards),
        committed_ref,
        rolled_back_ref,
        scanned: first.scanned,
        undone,
        in_doubt_resolved: resolved,
        recover_calls,
        replay_noop: replay.noop(),
        unfired: ledger.unfired(),
    }
}

/// Replay the full matrix: every [`TXN_SEEDS`] seed through every
/// [`crash_points`] site on every [`TOPOLOGIES`] shard count.
#[must_use]
pub fn sweep() -> Vec<TxnCellReport> {
    let mut cells = Vec::new();
    for &topology in &TOPOLOGIES {
        for &seed in &TXN_SEEDS {
            for &point in &crash_points(topology) {
                cells.push(run_cell(seed, topology, point));
            }
        }
    }
    cells
}

/// The golden transcript of a sweep: one line per cell.
#[must_use]
pub fn render_matrix(cells: &[TxnCellReport]) -> String {
    let mut out = String::new();
    for c in cells {
        out.push_str(&c.render_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_point_lands_whole_never_hybrid() {
        for &topology in &TOPOLOGIES {
            for &point in &crash_points(topology) {
                let cell = run_cell(7, topology, point);
                assert!(cell.consistent(), "cell must settle cleanly: {}", cell.render_line());
                match point {
                    TxnCrashPoint::AfterDecision | TxnCrashPoint::MidCommitFanout { .. } => {
                        assert!(cell.committed(), "a crash after the decision rolls forward");
                    }
                    _ => assert!(
                        cell.rolled_back(),
                        "a crash before the decision rolls back: {point} on {topology} shards"
                    ),
                }
            }
        }
    }

    #[test]
    fn references_differ_per_shard_so_a_hybrid_cannot_hide() {
        for &topology in &TOPOLOGIES {
            for &seed in &TXN_SEEDS {
                let (committed, rolled_back) = reference_digests(seed, topology);
                assert_eq!(committed.len(), topology);
                for (i, (c, r)) in committed.iter().zip(&rolled_back).enumerate() {
                    assert_ne!(c, r, "seed {seed} shard {i}: references must differ");
                }
            }
        }
    }

    #[test]
    fn prepared_shards_resolve_in_doubt_by_log_read() {
        let cell = run_cell(7, 3, TxnCrashPoint::BeforeDecision);
        assert_eq!(cell.in_doubt_resolved, 3, "all three prepared shards were in doubt");
        assert!(cell.rolled_back(), "no decision record means presumed abort");
    }

    #[test]
    fn during_recovery_cells_take_two_recoveries() {
        let cell = run_cell(7, 2, TxnCrashPoint::DuringRecovery { after_undos: 1 });
        assert_eq!(cell.recover_calls, 2, "the crashed recovery must be resumed");
        assert!(cell.rolled_back());
        assert!(cell.unfired.is_empty(), "both hooks fired: {:?}", cell.unfired);
    }

    #[test]
    fn cells_are_deterministic() {
        let point = TxnCrashPoint::MidPrepare { shard: 1, after_steps: 2 };
        assert_eq!(run_cell(42, 2, point), run_cell(42, 2, point));
    }

    #[test]
    fn observed_cells_match_unobserved_and_bill_the_protocol() {
        let point = TxnCrashPoint::BeforeDecision;
        let plain = run_cell(17, 2, point);
        let (observed, obs) = run_cell_observed(17, 2, point);
        assert_eq!(plain, observed, "observability must not perturb recovery");
        assert!(obs.tracer.events().iter().any(|e| e.name == "recover"));
        assert!(obs.metrics.counter("txn.recovery.runs") >= 1);
        assert!(obs.metrics.counter("txn.log.force") >= 2, "votes are forced");
    }

    #[test]
    fn clean_transactions_price_prepare_and_commit() {
        let (report, obs) = run_clean_observed(17, 3);
        assert_eq!(report.shards, 3);
        assert_eq!(report.steps, 8);
        assert_eq!(obs.metrics.counter("txn.switch.committed"), 1);
        // One forced vote per shard plus the forced decision.
        assert_eq!(obs.metrics.counter("txn.log.force"), 4);
    }
}
