//! Scenario 3 — *intra-query adaptation*.
//!
//! > "the Laptop is issuing a relational query, which involves heavy join
//! > processing ... Here the statistics provided by the metadata are not
//! > quite accurate enough for the pre-optimisor to build the optimal plan.
//! > ... The query plan is revised to perhaps change the join's inner-loop
//! > to the outer-loop or add an index to one of the tables. ... The
//! > adaptivity manager brings the query to a consistent state maintained
//! > by the State Manager component. The query then continues from this
//! > point."
//!
//! This wraps the `query` crate's adaptive executor in the architecture: at
//! the re-optimisation safe point the consistent state is recorded in the
//! `compkit` State Manager — the component the paper notes "is only called
//! upon at this time".

use compkit::state::{SafePoint, StateManager};
use query::exec::AdaptiveJoinExec;
use query::op::WorkCounter;
use query::optimizer::Catalog;
use query::workload::{gen_table, KeyDist};

/// Scenario parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct IntraQueryParams {
    /// Rows in each table.
    pub rows: usize,
    /// Join-key domain (controls result size).
    pub key_domain: i64,
    /// Multiplicative staleness error on the visible statistics
    /// (1.0 = fresh; the paper's scenario wants ≪ 1 or ≫ 1).
    pub stats_error: f64,
    /// Outer rows between safe points.
    pub safe_point_interval: u64,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for IntraQueryParams {
    fn default() -> Self {
        Self { rows: 2_000, key_domain: 50, stats_error: 0.0025, safe_point_interval: 64, seed: 7 }
    }
}

/// The scenario's outcome: the same query run statically and adaptively.
#[derive(Debug, Clone, PartialEq)]
pub struct IntraQueryReport {
    /// The (bad) plan the stale statistics produced.
    pub initial_algo: String,
    /// The plan that finished the adaptive run.
    pub final_algo: String,
    /// Outer position of the switch, if any.
    pub switched_at: Option<u64>,
    /// Result rows (identical for both runs — checked).
    pub rows_out: u64,
    /// Total work units of the static run.
    pub static_work: u64,
    /// Total work units of the adaptive run.
    pub adaptive_work: u64,
    /// static / adaptive — the paper's payoff.
    pub speedup: f64,
    /// Progress mark the State Manager holds after the switch.
    pub state_manager_progress: Option<u64>,
}

/// Run the scenario.
///
/// # Panics
/// If the two runs disagree on results — that would be an engine bug, and
/// the property tests exist to keep it unreachable.
#[must_use]
pub fn run(p: &IntraQueryParams) -> IntraQueryReport {
    let mut catalog = Catalog::new();
    let dist = KeyDist::Uniform { domain: p.key_domain };
    catalog.register_with_stale_stats("orders", gen_table(p.rows, dist, p.seed), p.stats_error);
    catalog.register_with_stale_stats(
        "customers",
        gen_table(p.rows, dist, p.seed.wrapping_add(1)),
        p.stats_error,
    );
    let exec =
        AdaptiveJoinExec { safe_point_interval: p.safe_point_interval, reopt_threshold: 4.0 };

    let ws = WorkCounter::new();
    let (static_rows, static_report) =
        exec.run(&catalog, "orders", "customers", 0, 0, false, &ws).expect("tables registered");
    let wa = WorkCounter::new();
    let (adaptive_rows, adaptive_report) =
        exec.run(&catalog, "orders", "customers", 0, 0, true, &wa).expect("tables registered");
    assert_eq!(static_rows.len(), adaptive_rows.len(), "adaptation must not change results");

    // The State Manager holds the consistent state of the switch.
    let mut states = StateManager::new();
    if let Some(at) = adaptive_report.switched_at {
        states.record(SafePoint {
            component: "join-pipeline".into(),
            progress: at,
            taken_at: at,
            state: at.to_le_bytes().to_vec(),
        });
    }

    let static_work = static_report.work.total_ops();
    let adaptive_work = adaptive_report.work.total_ops();
    IntraQueryReport {
        initial_algo: adaptive_report.initial_algo.to_string(),
        final_algo: adaptive_report.final_algo.to_string(),
        switched_at: adaptive_report.switched_at,
        rows_out: adaptive_report.rows_out,
        static_work,
        adaptive_work,
        speedup: static_work as f64 / adaptive_work.max(1) as f64,
        state_manager_progress: states.latest("join-pipeline").map(|sp| sp.progress),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_stats_trigger_a_winning_mid_query_switch() {
        let r = run(&IntraQueryParams::default());
        assert!(r.switched_at.is_some(), "{r:?}");
        assert_ne!(r.initial_algo, r.final_algo);
        assert!(r.speedup > 2.0, "speedup {}", r.speedup);
        assert_eq!(r.state_manager_progress, r.switched_at);
    }

    #[test]
    fn fresh_stats_need_no_switch_and_cost_the_same() {
        let r = run(&IntraQueryParams { stats_error: 1.0, ..Default::default() });
        assert_eq!(r.switched_at, None);
        assert_eq!(r.initial_algo, r.final_algo);
        assert!((r.speedup - 1.0).abs() < 0.05, "speedup {}", r.speedup);
        assert_eq!(r.state_manager_progress, None);
    }

    #[test]
    fn speedup_grows_with_staleness() {
        let mild = run(&IntraQueryParams { stats_error: 0.02, rows: 1_000, ..Default::default() });
        let severe =
            run(&IntraQueryParams { stats_error: 0.002, rows: 1_000, ..Default::default() });
        // Both misestimates trigger a switch; the severer one started from
        // an even worse plan, so adaptation pays at least as much.
        assert!(severe.speedup >= mild.speedup * 0.9, "{severe:?} vs {mild:?}");
        assert!(severe.speedup > 1.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&IntraQueryParams::default());
        let b = run(&IntraQueryParams::default());
        assert_eq!(a, b);
    }
}
