//! # adm-core — the Adaptive Data Management architecture
//!
//! The paper's primary contribution is not one algorithm but an
//! *architecture*: a data management system dissolved into fine-grained
//! components — monitors, gauges, a session manager, an adaptivity manager,
//! a state manager, data components with versions and adaptability rules —
//! over a component-based OS, reconfiguring itself as the environment
//! changes. This crate is that architecture assembled:
//!
//! * the component substrate comes from [`gokernel`] (Go!/SISR + ORB) over
//!   [`machine`];
//! * architecture descriptions and reconfiguration plans from [`adl`];
//! * the adaptation loop (Figure 1) from [`compkit`];
//! * data components (Figure 2) from [`datacomp`];
//! * adaptive query processing from [`query`];
//! * the simulated ubiquitous environment from [`ubinet`];
//! * the Patia webserver (Section 5.2) from [`patia`].
//!
//! On top it adds:
//!
//! * [`selector`] — the paper's data-component constraint forms
//!   (`Select BEST (PDA, Laptop)`, `Select NEAREST (...)`) as a parsed,
//!   evaluable mini-language;
//! * [`scenario`] — the Section 4 scenarios as first-class, deterministic
//!   library flows returning structured reports:
//!   [`scenario::inter_query`] (Scenario 1), [`scenario::system_adapt`]
//!   (Scenario 2), [`scenario::intra_query`] (Scenario 3), and
//!   [`scenario::failover`] (the paper's "units failing mid way through
//!   answering a query" requirement);
//! * [`dbm`] — the paper's closing claim assembled: query operators as
//!   SISR-verified Go! components, every activation crossing the ORB, with
//!   the componentisation overhead measured against the trap-based
//!   alternative.

//! ## Quick example
//!
//! Run Scenario 1 — a PDA's query served from the `BEST` device:
//!
//! ```
//! use adm_core::scenario::inter_query::{run, InterQueryParams};
//!
//! // Idle laptop: BEST picks it, as the paper narrates.
//! let report = run(&InterQueryParams::default());
//! assert_eq!(report.chosen_device, "laptop");
//!
//! // Busy laptop: the second PDA wins.
//! let busy = run(&InterQueryParams { laptop_load: 0.99, ..Default::default() });
//! assert_eq!(busy.chosen_device, "pda2");
//! ```

pub mod dbm;
pub mod scenario;
pub mod selector;

/// Deterministic seeded randomness, shared workspace-wide.
///
/// Re-exported from the dependency-free [`adm_rng`] crate so downstream
/// users of `adm-core` get workload-grade PRNGs without any external
/// dependency (`rand` is deliberately absent: the workspace builds offline).
pub mod rng {
    pub use adm_rng::{run_cases, Pcg32};
}

pub use dbm::{DatabaseMachine, QueryCost};
pub use scenario::failover::{self, FailoverReport};
pub use scenario::inter_query::{self, InterQueryReport};
pub use scenario::intra_query::{self, IntraQueryReport};
pub use scenario::system_adapt::{self, SystemAdaptReport};
pub use selector::{parse_selector, Selector, SelectorError};
