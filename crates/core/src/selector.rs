//! The data-component constraint mini-language of Scenario 1:
//!
//! > `Personal data <id, name, address, age, metadata etc>,
//! >  <Select BEST (PDA, Laptop)>, <Select NEAREST (PDA, Laptop)>;`
//!
//! A selector names a device-selection function (`BEST` or `NEAREST`) and
//! its prioritised candidate list. Selectors are stored with the data
//! component and evaluated against the live [`ubinet::Network`] when a
//! query needs the data.

use std::fmt;
use ubinet::net::Network;
use ubinet::select::{best, nearest};

/// A parsed selector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selector {
    /// `Select BEST (candidates...)` — capacity × idleness.
    Best(Vec<String>),
    /// `Select NEAREST (candidates...)` — fewest live hops from the
    /// querying device.
    Nearest(Vec<String>),
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectorError {
    /// The text is not of the form `Select FN (a, b, ...)`.
    Malformed(String),
    /// Unknown selection function.
    UnknownFunction(String),
    /// Empty candidate list.
    NoCandidates,
    /// Evaluation failed (no candidate usable).
    NoneUsable,
}

impl fmt::Display for SelectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectorError::Malformed(s) => write!(f, "malformed selector `{s}`"),
            SelectorError::UnknownFunction(s) => write!(f, "unknown selection function `{s}`"),
            SelectorError::NoCandidates => write!(f, "selector has no candidates"),
            SelectorError::NoneUsable => write!(f, "no candidate is usable"),
        }
    }
}

impl std::error::Error for SelectorError {}

/// Parse `Select BEST (PDA, Laptop)`-style text (case-insensitive keyword,
/// optional surrounding `<...>`).
///
/// # Errors
/// [`SelectorError`] for malformed input.
pub fn parse_selector(text: &str) -> Result<Selector, SelectorError> {
    let t = text.trim().trim_start_matches('<').trim_end_matches('>').trim();
    let rest = t
        .strip_prefix("Select ")
        .or_else(|| t.strip_prefix("select "))
        .or_else(|| t.strip_prefix("SELECT "))
        .ok_or_else(|| SelectorError::Malformed(text.to_owned()))?;
    let open = rest.find('(').ok_or_else(|| SelectorError::Malformed(text.to_owned()))?;
    let close = rest.rfind(')').ok_or_else(|| SelectorError::Malformed(text.to_owned()))?;
    if close < open {
        return Err(SelectorError::Malformed(text.to_owned()));
    }
    let func = rest[..open].trim();
    let candidates: Vec<String> = rest[open + 1..close]
        .split(',')
        .map(|c| c.trim().to_owned())
        .filter(|c| !c.is_empty())
        .collect();
    if candidates.is_empty() {
        return Err(SelectorError::NoCandidates);
    }
    match func.to_ascii_uppercase().as_str() {
        "BEST" => Ok(Selector::Best(candidates)),
        "NEAREST" => Ok(Selector::Nearest(candidates)),
        other => Err(SelectorError::UnknownFunction(other.to_owned())),
    }
}

impl Selector {
    /// Evaluate against the live network. `from` is the querying device
    /// (used by `NEAREST`).
    ///
    /// # Errors
    /// [`SelectorError::NoneUsable`] when no candidate qualifies.
    pub fn evaluate<'a>(&'a self, net: &Network, from: &str) -> Result<&'a str, SelectorError> {
        match self {
            Selector::Best(cands) => {
                let refs: Vec<&str> = cands.iter().map(String::as_str).collect();
                best(net, &refs).ok_or(SelectorError::NoneUsable)
            }
            Selector::Nearest(cands) => {
                let refs: Vec<&str> = cands.iter().map(String::as_str).collect();
                nearest(net, from, &refs).map_err(|_| SelectorError::NoneUsable)
            }
        }
    }

    /// The candidate list.
    #[must_use]
    pub fn candidates(&self) -> &[String] {
        match self {
            Selector::Best(c) | Selector::Nearest(c) => c,
        }
    }
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (name, cands) = match self {
            Selector::Best(c) => ("BEST", c),
            Selector::Nearest(c) => ("NEAREST", c),
        };
        write!(f, "Select {name} ({})", cands.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubinet::device::{Device, DeviceKind};
    use ubinet::link::{BandwidthProfile, Link, LinkKind};

    #[test]
    fn parses_paper_forms() {
        assert_eq!(
            parse_selector("<Select BEST (PDA, Laptop)>").unwrap(),
            Selector::Best(vec!["PDA".into(), "Laptop".into()])
        );
        assert_eq!(
            parse_selector("Select NEAREST (PDA, Laptop)").unwrap(),
            Selector::Nearest(vec!["PDA".into(), "Laptop".into()])
        );
        assert_eq!(parse_selector("select best (a)").unwrap(), Selector::Best(vec!["a".into()]));
    }

    #[test]
    fn rejects_bad_forms() {
        assert!(matches!(parse_selector("BEST (a)"), Err(SelectorError::Malformed(_))));
        assert!(matches!(parse_selector("Select BEST a, b"), Err(SelectorError::Malformed(_))));
        assert!(matches!(
            parse_selector("Select WORST (a)"),
            Err(SelectorError::UnknownFunction(_))
        ));
        assert!(matches!(parse_selector("Select BEST ()"), Err(SelectorError::NoCandidates)));
    }

    #[test]
    fn display_roundtrips() {
        for s in ["Select BEST (PDA, Laptop)", "Select NEAREST (a, b, c)"] {
            assert_eq!(parse_selector(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn evaluate_against_network() {
        let mut net = ubinet::Network::new();
        net.add_device(Device::new("PDA", DeviceKind::Pda));
        net.add_device(Device::new("Laptop", DeviceKind::Laptop));
        net.add_link(Link::new(
            "PDA",
            "Laptop",
            LinkKind::Wireless,
            BandwidthProfile::Constant(50.0),
            1,
        ));
        let s = parse_selector("Select BEST (PDA, Laptop)").unwrap();
        assert_eq!(s.evaluate(&net, "PDA").unwrap(), "Laptop");
        let n = parse_selector("Select NEAREST (PDA, Laptop)").unwrap();
        assert_eq!(n.evaluate(&net, "PDA").unwrap(), "PDA", "self is zero hops");
    }
}
