//! Minimal unified line diff for deterministic text artifacts.
//!
//! Golden-trace and bench-gate failures used to report only digest
//! values, which tells a reviewer *that* something drifted but not
//! *what*. This module renders a classic unified diff (`-`/`+`/` `
//! prefixed lines with `@@` hunk headers) between two strings using an
//! O(n·m) LCS table — fine for golden snapshots, which are a few hundred
//! lines — with no external dependency.

use std::fmt::Write as _;

/// Lines around a change to include in each hunk, matching `diff -u`.
const CONTEXT: usize = 3;

/// One line-level edit, produced by the LCS backtrack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Edit {
    Keep,
    Delete,
    Insert,
}

/// Render a unified diff of `want` → `got`. Returns an empty string when
/// the inputs are equal.
#[must_use]
pub fn unified(want: &str, got: &str, want_label: &str, got_label: &str) -> String {
    if want == got {
        return String::new();
    }
    let a: Vec<&str> = want.lines().collect();
    let b: Vec<&str> = got.lines().collect();
    let script = edit_script(&a, &b);

    let mut out = String::new();
    let _ = writeln!(out, "--- {want_label}");
    let _ = writeln!(out, "+++ {got_label}");

    // Walk the script hunk by hunk: a hunk is a maximal run of edits plus
    // up to CONTEXT lines of kept context on each side.
    let mut i = 0usize; // index into script
    let mut ai = 0usize; // line cursor in `a`
    let mut bi = 0usize; // line cursor in `b`
    while i < script.len() {
        if script[i] == Edit::Keep {
            i += 1;
            ai += 1;
            bi += 1;
            continue;
        }
        // Found a change; open a hunk CONTEXT lines back.
        let lead = CONTEXT.min(ai).min(i);
        let (hunk_a, hunk_b) = (ai - lead, bi - lead);
        let mut lines: Vec<String> = (0..lead).map(|k| format!(" {}", a[ai - lead + k])).collect();
        let (mut na, mut nb) = (lead, lead);
        let mut kept_run = 0usize;
        let mut j = i;
        while j < script.len() {
            match script[j] {
                Edit::Keep => {
                    if kept_run == 2 * CONTEXT {
                        // Enough kept lines to close this hunk; the trim
                        // below keeps CONTEXT of them as trailing context
                        // and the rest seed the next hunk's leading
                        // context.
                        break;
                    }
                    kept_run += 1;
                    lines.push(format!(" {}", a[ai]));
                    na += 1;
                    nb += 1;
                    ai += 1;
                    bi += 1;
                }
                Edit::Delete => {
                    // Kept lines before another edit are interior context
                    // and stay in the hunk; only the run counter resets.
                    kept_run = 0;
                    lines.push(format!("-{}", a[ai]));
                    na += 1;
                    ai += 1;
                }
                Edit::Insert => {
                    kept_run = 0;
                    lines.push(format!("+{}", b[bi]));
                    nb += 1;
                    bi += 1;
                }
            }
            j += 1;
        }
        // Trim kept context beyond CONTEXT at the hunk tail.
        while kept_run > CONTEXT {
            lines.pop();
            na -= 1;
            nb -= 1;
            ai -= 1;
            bi -= 1;
            kept_run -= 1;
            j -= 1;
        }
        let _ = writeln!(
            out,
            "@@ -{},{na} +{},{nb} @@",
            hunk_a + usize::from(na > 0),
            hunk_b + usize::from(nb > 0)
        );
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        i = j;
    }
    out
}

/// Classic LCS dynamic program + backtrack. Quadratic, which is fine for
/// the few-hundred-line artifacts this crate diffs.
fn edit_script(a: &[&str], b: &[&str]) -> Vec<Edit> {
    let (n, m) = (a.len(), b.len());
    // lcs[i][j] = LCS length of a[i..], b[j..]
    let mut lcs = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] =
                if a[i] == b[j] { lcs[i + 1][j + 1] + 1 } else { lcs[i + 1][j].max(lcs[i][j + 1]) };
        }
    }
    let mut script = Vec::with_capacity(n + m);
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            script.push(Edit::Keep);
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            script.push(Edit::Delete);
            i += 1;
        } else {
            script.push(Edit::Insert);
            j += 1;
        }
    }
    script.extend(std::iter::repeat_n(Edit::Delete, n - i));
    script.extend(std::iter::repeat_n(Edit::Insert, m - j));
    script
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_inputs_diff_to_nothing() {
        assert_eq!(unified("a\nb\n", "a\nb\n", "want", "got"), "");
    }

    #[test]
    fn single_changed_line_with_context() {
        let want = "one\ntwo\nthree\nfour\nfive\nsix\nseven\neight\nnine\n";
        let got = "one\ntwo\nthree\nfour\nFIVE\nsix\nseven\neight\nnine\n";
        let d = unified(want, got, "golden", "actual");
        assert!(d.starts_with("--- golden\n+++ actual\n"), "{d}");
        assert!(d.contains("-five\n+FIVE\n"), "{d}");
        assert!(d.contains(" four\n"), "context precedes the change: {d}");
        assert!(d.contains(" six\n"), "context follows the change: {d}");
        assert!(!d.contains(" one\n"), "lines beyond the leading context are omitted: {d}");
        assert!(!d.contains(" nine\n"), "lines beyond the trailing context are omitted: {d}");
    }

    #[test]
    fn pure_insertion_and_deletion() {
        let d = unified("a\nb\n", "a\nx\nb\n", "w", "g");
        assert!(d.contains("+x\n"), "{d}");
        let body_deletions = d.lines().filter(|l| l.starts_with('-') && !l.starts_with("---"));
        assert_eq!(body_deletions.count(), 0, "no deletions expected in hunk body: {d}");
        let d = unified("a\nx\nb\n", "a\nb\n", "w", "g");
        assert!(d.contains("-x\n"), "{d}");
    }

    #[test]
    fn distant_changes_split_into_hunks() {
        let want: String = (0..30).map(|i| format!("line{i}\n")).collect();
        let got = want.replace("line2\n", "LINE2\n").replace("line27\n", "LINE27\n");
        let d = unified(&want, &got, "w", "g");
        let hunks = d.lines().filter(|l| l.starts_with("@@")).count();
        assert_eq!(hunks, 2, "two separated changes, two hunks:\n{d}");
        assert!(d.contains("-line2\n+LINE2\n"), "{d}");
        assert!(d.contains("-line27\n+LINE27\n"), "{d}");
    }

    #[test]
    fn diff_is_deterministic() {
        let want = "a\nb\nc\n";
        let got = "a\nB\nc\nd\n";
        assert_eq!(unified(want, got, "w", "g"), unified(want, got, "w", "g"));
    }
}
