//! The unified metrics registry: counters, gauges and histograms with
//! stable ordering and a deterministic digest.
//!
//! Every layer of the stack bills its telemetry here — ORB invocations,
//! Patia fault counters, ubinet environment events, compkit switch
//! outcomes — instead of keeping ad-hoc per-crate counters. Names are the
//! only namespace (`orb.invocations`, `patia.switch.failed`,
//! `cpu:node1`...); storage is `BTreeMap`, so [`MetricsRegistry::render`]
//! is byte-stable and [`MetricsRegistry::digest`] can be asserted across
//! runs the same way `faultsim` asserts fault-plan digests.
//!
//! Counter semantics are uniformly **cumulative**: `counter_add` only ever
//! grows a counter (saturating at `u64::MAX`), and nothing resets on read.
//! Per-interval deltas belong to the caller's own report types (e.g.
//! `patia`'s per-tick `TickStats`), never to the registry.

use crate::fnv1a;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `i` holds samples whose bit length is `i` (bucket 0 is the value
/// zero, bucket 1 is 1, bucket 2 is 2–3, bucket 3 is 4–7, ...). Log2
/// buckets keep the histogram tiny, deterministic, and merge-free while
/// still separating a 73-cycle Go! RPC from a 55,000-cycle BSD one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample seen (`u64::MAX` until the first record).
    pub min: u64,
    /// Largest sample seen.
    pub max: u64,
    /// Bucket index → sample count.
    pub buckets: BTreeMap<u32, u64>,
}

impl Histogram {
    /// The bucket index a value lands in: its bit length.
    #[must_use]
    pub fn bucket_of(value: u64) -> u32 {
        64 - value.leading_zeros()
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        *self.buckets.entry(Self::bucket_of(value)).or_default() += 1;
    }

    /// Record `n` identical samples in one update. Exactly equivalent to
    /// `n` calls to [`Histogram::record`] — every field update is
    /// commutative — which is what lets the event engine's batched
    /// completions keep metrics digests byte-identical to the per-request
    /// loop.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        *self.buckets.entry(Self::bucket_of(value)).or_default() += n;
    }

    /// Mean sample value, `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// An immutable, ordering-stable snapshot of a registry — what golden-trace
/// tests compare and commit.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauges, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, name-sorted.
    pub histograms: Vec<(String, Histogram)>,
}

/// The unified registry of counters, gauges and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add to a cumulative counter, creating it at zero first. Saturates at
    /// `u64::MAX` rather than wrapping, so a runaway bill can never make a
    /// counter appear to reset.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        let c = self.counters.entry(name.to_owned()).or_default();
        *c = c.saturating_add(delta);
    }

    /// Read a counter (0 when absent — counters are born at zero).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a gauge to its latest value.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Read a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Iterate gauges name-sorted — the feed `compkit::GaugeBoard` ingests
    /// so the paper's monitors→gauges pipeline reads real telemetry.
    pub fn gauges_iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Record one sample into a histogram, creating it empty first.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms.entry(name.to_owned()).or_default().record(value);
    }

    /// Record `n` identical samples into a histogram with one lookup —
    /// equivalent to `n` [`MetricsRegistry::observe`] calls.
    pub fn observe_n(&mut self, name: &str, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.histograms.entry(name.to_owned()).or_default().record_n(value, n);
    }

    /// Read a histogram.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Total metrics registered (counters + gauges + histograms).
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether nothing has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the registry with stable (name-sorted) ordering.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: self.histograms.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        }
    }

    /// Render the registry as stable text — one metric per line, sections
    /// in a fixed order, names sorted. Two runs of the same seeded scenario
    /// must render byte-identically; the golden-trace tier asserts it.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("metrics\n");
        for (k, v) in &self.counters {
            let _ = writeln!(out, "  counter {k} = {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "  gauge {k} = {v}");
        }
        for (k, h) in &self.histograms {
            let _ = write!(
                out,
                "  histogram {k} count={} sum={} min={} max={} buckets=[",
                h.count, h.sum, h.min, h.max
            );
            for (i, (b, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{b}:{n}");
            }
            out.push_str("]\n");
        }
        out
    }

    /// FNV-1a fingerprint of [`MetricsRegistry::render`].
    #[must_use]
    pub fn digest(&self) -> u64 {
        fnv1a(self.render().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_n_equals_n_records() {
        let mut grouped = MetricsRegistry::new();
        let mut singles = MetricsRegistry::new();
        for (value, n) in [(7u64, 3u64), (0, 2), (7, 1), (1 << 40, 5), (9, 0)] {
            grouped.observe_n("lat", value, n);
            for _ in 0..n {
                singles.observe("lat", value);
            }
        }
        assert_eq!(grouped.snapshot(), singles.snapshot(), "grouped records are equivalent");
        assert!(grouped.histogram("nope").is_none());
        grouped.observe_n("empty", 1, 0);
        assert!(grouped.histogram("empty").is_none(), "n == 0 creates nothing");
    }

    #[test]
    fn counters_are_cumulative_and_saturating() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.counter("x"), 0, "counters are born at zero");
        r.counter_add("x", 3);
        r.counter_add("x", 4);
        assert_eq!(r.counter("x"), 7, "adds accumulate; nothing resets on read");
        r.counter_add("x", u64::MAX);
        assert_eq!(r.counter("x"), u64::MAX, "saturates instead of wrapping");
        r.counter_add("x", 1);
        assert_eq!(r.counter("x"), u64::MAX);
    }

    #[test]
    fn gauges_keep_latest() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("util", 0.25);
        r.gauge_set("util", 0.75);
        assert_eq!(r.gauge("util"), Some(0.75));
        assert_eq!(r.gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(73), 7);
        assert_eq!(Histogram::bucket_of(55_000), 16);
        let mut h = Histogram::default();
        for v in [0, 1, 73, 73, 55_000] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 55_000);
        assert_eq!(h.buckets[&7], 2);
        assert_eq!(h.mean(), Some((73 + 73 + 55_000 + 1) as f64 / 5.0));
    }

    #[test]
    fn render_is_name_sorted_and_digest_is_stable() {
        let build = |order_flipped: bool| {
            let mut r = MetricsRegistry::new();
            let names = if order_flipped { ["b", "a"] } else { ["a", "b"] };
            for n in names {
                r.counter_add(n, 1);
                r.gauge_set(n, 0.5);
                r.observe(n, 9);
            }
            r
        };
        let (x, y) = (build(false), build(true));
        assert_eq!(x.render(), y.render(), "insertion order must not leak into the render");
        assert_eq!(x.digest(), y.digest());
        let rendered = x.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[1], "  counter a = 1");
        assert_eq!(lines[2], "  counter b = 1");
    }

    #[test]
    fn snapshot_equality_tracks_content() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.counter_add("k", 2);
        b.counter_add("k", 2);
        assert_eq!(a.snapshot(), b.snapshot());
        b.counter_add("k", 1);
        assert_ne!(a.snapshot(), b.snapshot());
    }
}
