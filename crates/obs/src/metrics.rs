//! The unified metrics registry: counters, gauges and histograms with
//! stable ordering and a deterministic digest.
//!
//! Every layer of the stack bills its telemetry here — ORB invocations,
//! Patia fault counters, ubinet environment events, compkit switch
//! outcomes — instead of keeping ad-hoc per-crate counters. Names are the
//! only namespace (`orb.invocations`, `patia.switch.failed`,
//! `cpu:node1`...); storage is `BTreeMap`, so [`MetricsRegistry::render`]
//! is byte-stable and [`MetricsRegistry::digest`] can be asserted across
//! runs the same way `faultsim` asserts fault-plan digests.
//!
//! Counter semantics are uniformly **cumulative**: `counter_add` only ever
//! grows a counter (saturating at `u64::MAX`), and nothing resets on read.
//! Per-interval deltas belong to the caller's own report types (e.g.
//! `patia`'s per-tick `TickStats`), never to the registry.

use crate::fnv1a;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `i` holds samples whose bit length is `i` (bucket 0 is the value
/// zero, bucket 1 is 1, bucket 2 is 2–3, bucket 3 is 4–7, ...). Log2
/// buckets keep the histogram tiny, deterministic, and merge-free while
/// still separating a 73-cycle Go! RPC from a 55,000-cycle BSD one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample seen (`u64::MAX` until the first record).
    pub min: u64,
    /// Largest sample seen.
    pub max: u64,
    /// Bucket index → sample count.
    pub buckets: BTreeMap<u32, u64>,
}

impl Histogram {
    /// The bucket index a value lands in: its bit length.
    #[must_use]
    pub fn bucket_of(value: u64) -> u32 {
        64 - value.leading_zeros()
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        *self.buckets.entry(Self::bucket_of(value)).or_default() += 1;
    }

    /// Record `n` identical samples in one update. Exactly equivalent to
    /// `n` calls to [`Histogram::record`] — every field update is
    /// commutative — which is what lets the event engine's batched
    /// completions keep metrics digests byte-identical to the per-request
    /// loop.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        *self.buckets.entry(Self::bucket_of(value)).or_default() += n;
    }

    /// Mean sample value, `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The inclusive value range bucket `bucket` covers.
    fn bucket_range(bucket: u32) -> (u64, u64) {
        match bucket {
            0 => (0, 0),
            1 => (1, 1),
            64 => (1 << 63, u64::MAX),
            b => (1 << (b - 1), (1 << b) - 1),
        }
    }

    /// Estimate the `q`-quantile (`q` clamped to `[0, 1]`) by walking
    /// the cumulative bucket counts and interpolating linearly inside
    /// the bucket the target rank lands in. Exact when the bucket holds
    /// one sample; otherwise within the bucket's power-of-two range and
    /// always clamped to the observed `[min, max]`. `None` when empty.
    ///
    /// Deterministic — integer arithmetic after the rank is fixed — so
    /// p50/p90/p99 rows golden-pin like every other metric.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The 1-based rank of the sample the quantile names.
        let rank = {
            let r = (q * self.count as f64).ceil() as u64;
            r.clamp(1, self.count)
        };
        // The extreme ranks are known exactly — no interpolation needed.
        if rank == 1 {
            return Some(self.min);
        }
        if rank == self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (&bucket, &n) in &self.buckets {
            if seen + n >= rank {
                let (lo, hi) = Self::bucket_range(bucket);
                let pos = rank - seen; // 1..=n within this bucket
                let est =
                    if n <= 1 { lo } else { lo + ((hi - lo) / (n - 1)).saturating_mul(pos - 1) };
                return Some(est.clamp(self.min, self.max));
            }
            seen += n;
        }
        Some(self.max)
    }
}

/// An immutable, ordering-stable snapshot of a registry — what golden-trace
/// tests compare and commit.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauges, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, name-sorted.
    pub histograms: Vec<(String, Histogram)>,
}

/// The unified registry of counters, gauges and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add to a cumulative counter, creating it at zero first. Saturates at
    /// `u64::MAX` rather than wrapping, so a runaway bill can never make a
    /// counter appear to reset.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        let c = self.counters.entry(name.to_owned()).or_default();
        *c = c.saturating_add(delta);
    }

    /// Read a counter (0 when absent — counters are born at zero).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a gauge to its latest value.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Read a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Iterate gauges name-sorted — the feed `compkit::GaugeBoard` ingests
    /// so the paper's monitors→gauges pipeline reads real telemetry.
    pub fn gauges_iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Record one sample into a histogram, creating it empty first.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms.entry(name.to_owned()).or_default().record(value);
    }

    /// Record `n` identical samples into a histogram with one lookup —
    /// equivalent to `n` [`MetricsRegistry::observe`] calls.
    pub fn observe_n(&mut self, name: &str, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.histograms.entry(name.to_owned()).or_default().record_n(value, n);
    }

    /// Read a histogram.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Total metrics registered (counters + gauges + histograms).
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether nothing has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the registry with stable (name-sorted) ordering.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: self.histograms.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        }
    }

    /// Render the registry as stable text — one metric per line, sections
    /// in a fixed order, names sorted. Two runs of the same seeded scenario
    /// must render byte-identically; the golden-trace tier asserts it.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("metrics\n");
        for (k, v) in &self.counters {
            let _ = writeln!(out, "  counter {k} = {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "  gauge {k} = {v}");
        }
        for (k, h) in &self.histograms {
            let _ = write!(
                out,
                "  histogram {k} count={} sum={} min={} max={} buckets=[",
                h.count, h.sum, h.min, h.max
            );
            for (i, (b, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{b}:{n}");
            }
            out.push_str("]\n");
        }
        out
    }

    /// FNV-1a fingerprint of [`MetricsRegistry::render`].
    #[must_use]
    pub fn digest(&self) -> u64 {
        fnv1a(self.render().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_n_equals_n_records() {
        let mut grouped = MetricsRegistry::new();
        let mut singles = MetricsRegistry::new();
        for (value, n) in [(7u64, 3u64), (0, 2), (7, 1), (1 << 40, 5), (9, 0)] {
            grouped.observe_n("lat", value, n);
            for _ in 0..n {
                singles.observe("lat", value);
            }
        }
        assert_eq!(grouped.snapshot(), singles.snapshot(), "grouped records are equivalent");
        assert!(grouped.histogram("nope").is_none());
        grouped.observe_n("empty", 1, 0);
        assert!(grouped.histogram("empty").is_none(), "n == 0 creates nothing");
    }

    #[test]
    fn counters_are_cumulative_and_saturating() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.counter("x"), 0, "counters are born at zero");
        r.counter_add("x", 3);
        r.counter_add("x", 4);
        assert_eq!(r.counter("x"), 7, "adds accumulate; nothing resets on read");
        r.counter_add("x", u64::MAX);
        assert_eq!(r.counter("x"), u64::MAX, "saturates instead of wrapping");
        r.counter_add("x", 1);
        assert_eq!(r.counter("x"), u64::MAX);
    }

    #[test]
    fn gauges_keep_latest() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("util", 0.25);
        r.gauge_set("util", 0.75);
        assert_eq!(r.gauge("util"), Some(0.75));
        assert_eq!(r.gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(73), 7);
        assert_eq!(Histogram::bucket_of(55_000), 16);
        let mut h = Histogram::default();
        for v in [0, 1, 73, 73, 55_000] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 55_000);
        assert_eq!(h.buckets[&7], 2);
        assert_eq!(h.mean(), Some((73 + 73 + 55_000 + 1) as f64 / 5.0));
    }

    #[test]
    fn render_is_name_sorted_and_digest_is_stable() {
        let build = |order_flipped: bool| {
            let mut r = MetricsRegistry::new();
            let names = if order_flipped { ["b", "a"] } else { ["a", "b"] };
            for n in names {
                r.counter_add(n, 1);
                r.gauge_set(n, 0.5);
                r.observe(n, 9);
            }
            r
        };
        let (x, y) = (build(false), build(true));
        assert_eq!(x.render(), y.render(), "insertion order must not leak into the render");
        assert_eq!(x.digest(), y.digest());
        let rendered = x.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[1], "  counter a = 1");
        assert_eq!(lines[2], "  counter b = 1");
    }

    #[test]
    fn quantile_is_none_when_empty_and_exact_for_singletons() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        let mut h = Histogram::default();
        h.record(73);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(73), "a single sample is every quantile");
        }
    }

    #[test]
    fn quantile_walks_buckets_and_clamps_to_observed_range() {
        let mut h = Histogram::default();
        // 90 fast samples at 10, 9 at 100, one slow outlier at 5_000.
        h.record_n(10, 90);
        h.record_n(100, 9);
        h.record(5_000);
        let p50 = h.quantile(0.5).unwrap();
        assert!((8..=15).contains(&p50), "p50 lands in the 8..=15 bucket: {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((64..=127).contains(&p99), "p99 lands in the 64..=127 bucket: {p99}");
        assert_eq!(h.quantile(1.0), Some(5_000), "p100 is the max exactly");
        assert_eq!(h.quantile(0.0), Some(10), "p0 clamps to the observed min");
        // Monotone in q.
        let qs: Vec<u64> =
            [0.0, 0.25, 0.5, 0.9, 0.99, 1.0].iter().map(|&q| h.quantile(q).unwrap()).collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "quantiles are monotone: {qs:?}");
    }

    #[test]
    fn quantile_interpolates_within_a_bucket() {
        let mut h = Histogram::default();
        // All ten samples in bucket 7 (64..=127): interpolation spreads
        // the estimates across the bucket instead of reporting one edge.
        for v in [64, 70, 80, 90, 100, 105, 110, 115, 120, 127] {
            h.record(v);
        }
        let p10 = h.quantile(0.1).unwrap();
        let p90 = h.quantile(0.9).unwrap();
        assert!(p10 < p90, "interpolation must spread within the bucket");
        assert!(p10 >= 64 && p90 <= 127);
    }

    #[test]
    fn snapshot_render_digest_roundtrip_is_stable() {
        let build = || {
            let mut r = MetricsRegistry::new();
            r.counter_add("req.total", 41);
            r.gauge_set("util:node1", 0.625);
            r.observe_n("lat", 12, 7);
            r.observe("lat", 900);
            r
        };
        let r = build();
        let snap = r.snapshot();
        assert_eq!(snap, r.snapshot(), "snapshotting is read-only and repeatable");
        assert_eq!(r.render(), build().render(), "render is a pure function of content");
        assert_eq!(r.digest(), build().digest());
        let clone = r.clone();
        assert_eq!(clone.snapshot(), snap, "clones snapshot identically");
        assert_eq!(clone.digest(), r.digest());
        // A snapshot is a deep copy: mutating the registry afterwards
        // must not reach back into it.
        let mut r = r;
        r.counter_add("req.total", 1);
        r.observe("lat", 5);
        assert_ne!(r.snapshot(), snap);
        assert_eq!(snap.counters[0], ("req.total".to_owned(), 41));
    }

    #[test]
    fn observe_n_property_matches_repeated_observes() {
        // Seeded xorshift so the property run is deterministic without
        // pulling a rng dependency into obs.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut grouped = MetricsRegistry::new();
        let mut singles = MetricsRegistry::new();
        for _ in 0..200 {
            let value = next() >> (next() % 64);
            let n = next() % 5;
            grouped.observe_n("lat", value, n);
            for _ in 0..n {
                singles.observe("lat", value);
            }
        }
        assert_eq!(grouped.snapshot(), singles.snapshot(), "bucket-exact equivalence");
        assert_eq!(grouped.render(), singles.render());
        assert_eq!(grouped.digest(), singles.digest());
        let (gh, sh) = (grouped.histogram("lat").unwrap(), singles.histogram("lat").unwrap());
        assert_eq!(gh.buckets, sh.buckets, "every bucket count must agree");
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(gh.quantile(q), sh.quantile(q), "quantiles follow the buckets");
        }
    }

    #[test]
    fn snapshot_equality_tracks_content() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.counter_add("k", 2);
        b.counter_add("k", 2);
        assert_eq!(a.snapshot(), b.snapshot());
        b.counter_add("k", 1);
        assert_ne!(a.snapshot(), b.snapshot());
    }
}
