//! Cycle-attribution profiler: fold the span stream into a call tree.
//!
//! The tracer records *what happened when*; this module answers *where the
//! cycles went*. [`Profile::build`] reconstructs the nesting of completed
//! spans by interval containment on the shared virtual-cycle axis, merges
//! identical stacks into an aggregated call tree, and attributes every
//! cycle exactly once:
//!
//! * **total** — cycles a frame's spans covered, children included;
//! * **self** — total minus the cycles covered by direct children;
//! * **idle** — cycles of the run's clock no root span covered.
//!
//! By construction `Σ self + idle == clock`, so a profile is a *partition*
//! of the run, not a sampling estimate — the same determinism discipline
//! as the tracer itself. [`Profile::folded`] renders inferno-compatible
//! folded stacks (`frame;frame;... self-cycles`) for flame graphs
//! (`figures --flame`), and [`Profile::publish`] writes the per-category
//! self-cycle totals back into a [`MetricsRegistry`] so the metrics
//! snapshot and the trace agree on attribution.
//!
//! Span names that end in a numeric instance suffix (`tick:17`,
//! `verify:svc:3`) are canonicalised by stripping the trailing `:<digits>`
//! ([`frame_of`]), so the 400 per-tick spans of a Patia run aggregate into
//! one `patia:tick` frame instead of 400 singleton stacks.

use crate::metrics::MetricsRegistry;
use crate::span::{EventKind, TraceEvent};
use crate::Cycles;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The aggregation key of a span: `cat:name` with any trailing `:<digits>`
/// instance suffix stripped from the name (`patia` + `tick:17` →
/// `patia:tick`). Names that are *only* digits are kept as-is.
#[must_use]
pub fn frame_of(cat: &str, name: &str) -> String {
    let canonical = match name.rfind(':') {
        Some(i)
            if i > 0 && name[i + 1..].chars().all(|c| c.is_ascii_digit()) && i + 1 < name.len() =>
        {
            &name[..i]
        }
        _ => name,
    };
    format!("{cat}:{canonical}")
}

/// One aggregated node of the call tree: every span instance that shared
/// this frame *and* this path from a root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// The aggregation key ([`frame_of`]).
    pub frame: String,
    /// Span instances merged into this node.
    pub count: u64,
    /// Cycles covered by those spans, children included.
    pub total: Cycles,
    /// Cycles not covered by direct children.
    pub self_cycles: Cycles,
    /// Child nodes, frame-sorted (stable across runs).
    pub children: Vec<ProfileNode>,
}

/// A fold of one trace: aggregated call forest plus the idle remainder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    roots: Vec<ProfileNode>,
    idle: Cycles,
    clock: Cycles,
}

/// Arena node used while folding, before children are frozen into the
/// sorted `Vec` form.
#[derive(Debug, Default)]
struct Building {
    count: u64,
    total: Cycles,
    self_cycles: Cycles,
    children: BTreeMap<String, usize>,
}

/// An entry of the containment stack: one *open* span instance.
struct OpenFrame {
    end: Cycles,
    node: usize,
    dur: Cycles,
    child_dur: Cycles,
}

impl Profile {
    /// Fold `events` (complete spans only; instants carry no cycles) into
    /// an aggregated call tree, attributing the run's `clock` cycles.
    ///
    /// Nesting is reconstructed by interval containment: span *B* is a
    /// child of span *A* when `A.ts <= B.ts && B.end <= A.end`. Spans that
    /// merely touch (`A.end == B.ts`) or partially overlap are siblings —
    /// the simulation is single-threaded, so well-formed traces never
    /// partially overlap, but the fold stays total and deterministic if
    /// one ever does.
    #[must_use]
    pub fn build(events: &[TraceEvent], clock: Cycles) -> Self {
        // (ts, end, idx): sort so parents come before their children and
        // ties break on completion-log order.
        let mut spans: Vec<(Cycles, Cycles, usize)> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.kind == EventKind::Complete)
            .map(|(i, e)| (e.ts, e.ts + e.dur, i))
            .collect();
        spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2)));

        let mut arena: Vec<Building> = vec![Building::default()]; // 0 = virtual root
        let mut stack: Vec<OpenFrame> =
            vec![OpenFrame { end: Cycles::MAX, node: 0, dur: 0, child_dur: 0 }];
        let close = |arena: &mut Vec<Building>, f: OpenFrame| {
            arena[f.node].self_cycles += f.dur.saturating_sub(f.child_dur);
        };
        for (ts, end, idx) in spans {
            // Pop spans that ended before this one starts, and any that
            // cannot contain it (partial overlap → sibling).
            while stack.len() > 1 {
                let top = stack.last().expect("stack holds the virtual root");
                if top.end <= ts || top.end < end {
                    let f = stack.pop().expect("checked non-empty");
                    close(&mut arena, f);
                } else {
                    break;
                }
            }
            let e = &events[idx];
            let frame = frame_of(e.cat, &e.name);
            let parent = stack.last_mut().expect("virtual root remains");
            parent.child_dur += end - ts;
            let parent_node = parent.node;
            let next = arena.len();
            let node = *arena[parent_node].children.entry(frame).or_insert(next);
            if node == next {
                arena.push(Building::default());
            }
            arena[node].count += 1;
            arena[node].total += end - ts;
            stack.push(OpenFrame { end, node, dur: end - ts, child_dur: 0 });
        }
        while stack.len() > 1 {
            let f = stack.pop().expect("checked non-empty");
            close(&mut arena, f);
        }
        let covered = stack.pop().expect("virtual root").child_dur;

        fn freeze(arena: &[Building], children: &BTreeMap<String, usize>) -> Vec<ProfileNode> {
            children
                .iter()
                .map(|(frame, &i)| ProfileNode {
                    frame: frame.clone(),
                    count: arena[i].count,
                    total: arena[i].total,
                    self_cycles: arena[i].self_cycles,
                    children: freeze(arena, &arena[i].children),
                })
                .collect()
        }
        let roots = freeze(&arena, &arena[0].children);
        Self { roots, idle: clock.saturating_sub(covered), clock }
    }

    /// The aggregated call forest, frame-sorted at every level.
    #[must_use]
    pub fn roots(&self) -> &[ProfileNode] {
        &self.roots
    }

    /// Cycles of the clock no root span covered.
    #[must_use]
    pub fn idle(&self) -> Cycles {
        self.idle
    }

    /// The clock this profile partitions.
    #[must_use]
    pub fn clock(&self) -> Cycles {
        self.clock
    }

    /// Sum of every node's self cycles plus idle. Equals
    /// [`Profile::clock`] whenever root spans do not overlap — asserted by
    /// the golden tests and the `figures --flame` exporter.
    #[must_use]
    pub fn self_total(&self) -> Cycles {
        fn walk(nodes: &[ProfileNode]) -> Cycles {
            nodes.iter().map(|n| n.self_cycles + walk(&n.children)).sum()
        }
        walk(&self.roots) + self.idle
    }

    /// Self-cycle totals per category (the `cat` of [`frame_of`]'s
    /// `cat:name` key) — the per-layer attribution the bench gate tracks.
    /// Idle cycles are reported under [`IDLE_FRAME`].
    #[must_use]
    pub fn per_category(&self) -> BTreeMap<String, Cycles> {
        fn walk(nodes: &[ProfileNode], out: &mut BTreeMap<String, Cycles>) {
            for n in nodes {
                let cat = n.frame.split(':').next().unwrap_or(&n.frame).to_owned();
                *out.entry(cat).or_default() += n.self_cycles;
                walk(&n.children, out);
            }
        }
        let mut out = BTreeMap::new();
        walk(&self.roots, &mut out);
        if self.idle > 0 {
            out.insert(IDLE_FRAME.to_owned(), self.idle);
        }
        out
    }

    /// Render inferno-compatible folded stacks: one line per node with
    /// non-zero self time, `frame;frame;...frame self-cycles`, in stable
    /// depth-first frame order. The idle remainder (if any) is one
    /// [`IDLE_FRAME`] line, so the lines' summed counts equal the clock.
    #[must_use]
    pub fn folded(&self) -> String {
        fn walk(nodes: &[ProfileNode], path: &mut String, out: &mut String) {
            for n in nodes {
                let saved = path.len();
                if !path.is_empty() {
                    path.push(';');
                }
                path.push_str(&n.frame);
                if n.self_cycles > 0 {
                    let _ = writeln!(out, "{path} {}", n.self_cycles);
                }
                walk(&n.children, path, out);
                path.truncate(saved);
            }
        }
        let mut out = String::new();
        let mut path = String::new();
        walk(&self.roots, &mut path, &mut out);
        if self.idle > 0 {
            let _ = writeln!(out, "{IDLE_FRAME} {}", self.idle);
        }
        out
    }

    /// Write the per-category self-cycle totals into `metrics` under
    /// `profile.self_cycles.<category>`, plus `profile.clock`. Ordering is
    /// stable (the registry is name-sorted) and the counters are written
    /// once per run — `run_observed` calls this after the scenario ends,
    /// so the committed metric snapshots carry the attribution.
    pub fn publish(&self, metrics: &mut MetricsRegistry) {
        for (cat, cycles) in self.per_category() {
            metrics.counter_add(&format!("profile.self_cycles.{cat}"), cycles);
        }
        metrics.counter_add("profile.clock", self.clock);
    }
}

/// The pseudo-frame idle cycles are attributed to in [`Profile::folded`]
/// and [`Profile::per_category`].
pub const IDLE_FRAME: &str = "(idle)";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;

    fn profile(build: impl FnOnce(&mut Tracer), clock: Cycles) -> Profile {
        let mut t = Tracer::new();
        build(&mut t);
        Profile::build(t.events(), clock)
    }

    #[test]
    fn frame_canonicalisation_strips_instance_suffixes() {
        assert_eq!(frame_of("patia", "tick:17"), "patia:tick");
        assert_eq!(frame_of("gokernel", "verify:svc:3"), "gokernel:verify:svc");
        assert_eq!(frame_of("gokernel", "invoke"), "gokernel:invoke");
        assert_eq!(frame_of("x", "tick:"), "x:tick:");
        assert_eq!(frame_of("x", ":123"), "x::123", "empty stem is kept");
        assert_eq!(frame_of("x", "123"), "x:123", "all-digit names are kept");
    }

    #[test]
    fn nesting_attributes_self_and_total() {
        let p = profile(
            |t| {
                let outer = t.begin_at("a", "outer", 0);
                let inner = t.begin_at("a", "inner", 10);
                t.end_at(inner, 30);
                t.end_at(outer, 50);
            },
            50,
        );
        assert_eq!(p.roots().len(), 1);
        let outer = &p.roots()[0];
        assert_eq!(outer.frame, "a:outer");
        assert_eq!((outer.total, outer.self_cycles, outer.count), (50, 30, 1));
        let inner = &outer.children[0];
        assert_eq!((inner.total, inner.self_cycles, inner.count), (20, 20, 1));
        assert_eq!(p.idle(), 0);
        assert_eq!(p.self_total(), 50);
    }

    #[test]
    fn identical_stacks_aggregate_and_instance_suffixes_merge() {
        let p = profile(
            |t| {
                for i in 0..3u64 {
                    let s = t.begin_at("patia", format!("tick:{i}"), i * 100);
                    t.end_at(s, i * 100 + 40);
                }
            },
            300,
        );
        assert_eq!(p.roots().len(), 1, "three ticks fold into one frame");
        let tick = &p.roots()[0];
        assert_eq!(tick.frame, "patia:tick");
        assert_eq!((tick.count, tick.total, tick.self_cycles), (3, 120, 120));
        assert_eq!(p.idle(), 180, "uncovered clock is idle");
        assert_eq!(p.self_total(), 300);
    }

    #[test]
    fn touching_spans_are_siblings_not_nested() {
        let p = profile(
            |t| {
                let a = t.begin_at("c", "a", 0);
                t.end_at(a, 10);
                let b = t.begin_at("c", "b", 10);
                t.end_at(b, 20);
            },
            20,
        );
        assert_eq!(p.roots().len(), 2, "a span starting at another's end is a sibling");
        assert_eq!(p.self_total(), 20);
    }

    #[test]
    fn folded_stacks_sum_to_the_clock() {
        let p = profile(
            |t| {
                let tick = t.begin_at("patia", "tick:1", 0);
                let sw = t.begin_at("compkit", "switch", 10);
                t.end_at(sw, 25);
                t.end_at(tick, 60);
                t.instant("patia", "switch:migrate", 30, Vec::new());
            },
            100,
        );
        let folded = p.folded();
        assert_eq!(
            folded, "patia:tick 45\npatia:tick;compkit:switch 15\n(idle) 40\n",
            "stable depth-first folded stacks"
        );
        let sum: u64 =
            folded.lines().map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap()).sum();
        assert_eq!(sum, p.clock(), "folded leaf cycles partition the clock");
        assert_eq!(
            p.per_category(),
            BTreeMap::from([
                ("patia".to_owned(), 45),
                ("compkit".to_owned(), 15),
                ("(idle)".to_owned(), 40)
            ])
        );
    }

    #[test]
    fn partial_overlap_degrades_to_siblings_without_double_counting_children() {
        // [0,30) and [20,50): ill-formed for a single-threaded trace, but
        // the fold must stay total and deterministic.
        let p = profile(
            |t| {
                let a = t.begin_at("c", "a", 0);
                let b = t.begin_at("c", "b", 20);
                t.end_at(a, 30);
                t.end_at(b, 50);
            },
            50,
        );
        assert_eq!(p.roots().len(), 2, "partial overlap cannot nest");
        assert_eq!(p.roots()[0].self_cycles + p.roots()[1].self_cycles, 60);
    }

    #[test]
    fn publish_writes_stable_registry_counters() {
        let p = profile(
            |t| {
                let s = t.begin_at("patia", "tick:1", 0);
                t.end_at(s, 40);
            },
            100,
        );
        let mut m = MetricsRegistry::new();
        p.publish(&mut m);
        assert_eq!(m.counter("profile.self_cycles.patia"), 40);
        assert_eq!(m.counter("profile.self_cycles.(idle)"), 60);
        assert_eq!(m.counter("profile.clock"), 100);
        let mut again = MetricsRegistry::new();
        p.publish(&mut again);
        assert_eq!(m.digest(), again.digest(), "publication is deterministic");
    }

    #[test]
    fn build_is_a_pure_function_of_the_trace() {
        let mk = || {
            profile(
                |t| {
                    let tick = t.begin_at("patia", "tick:1", 0);
                    let inner = t.begin_at("compkit", "switch", 5);
                    t.end_at(inner, 9);
                    t.end_at(tick, 20);
                },
                20,
            )
        };
        assert_eq!(mk(), mk());
        assert_eq!(mk().folded(), mk().folded());
    }
}
