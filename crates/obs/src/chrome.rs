//! Chrome-trace-format JSON exporter.
//!
//! Serialises a [`Tracer`] event log into the Trace Event Format that
//! `chrome://tracing` and Perfetto load directly. Timestamps in that
//! format are microseconds; we map **1 cycle ≡ 1 µs**, so the viewer's
//! time axis reads directly in cycles. JSON is hand-written — the
//! workspace has no serde and builds fully offline.

use crate::span::{EventKind, Tracer};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a string for a JSON string literal.
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Export the event log as a Chrome trace JSON document.
///
/// Every category gets its own thread row (`tid`), assigned in sorted
/// category order so the document is deterministic. Thread-name metadata
/// events label each row with its category.
#[must_use]
pub fn export(tracer: &Tracer, process_name: &str) -> String {
    let mut tids = BTreeMap::new();
    for e in tracer.events() {
        let next = tids.len() + 1;
        tids.entry(e.cat).or_insert(next);
    }
    // Re-number in sorted category order so insertion order cannot leak in.
    for (i, (_, tid)) in tids.iter_mut().enumerate() {
        *tid = i + 1;
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let push_sep = |out: &mut String, first: &mut bool| {
        if *first {
            *first = false;
        } else {
            out.push_str(",\n");
        }
    };

    push_sep(&mut out, &mut first);
    out.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"",
    );
    escape(process_name, &mut out);
    out.push_str("\"}}");
    for (cat, tid) in &tids {
        push_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\""
        );
        escape(cat, &mut out);
        out.push_str("\"}}");
    }

    for e in tracer.events() {
        push_sep(&mut out, &mut first);
        let tid = tids[e.cat];
        let ph = match e.kind {
            EventKind::Complete => "X",
            EventKind::Instant => "i",
        };
        let _ = write!(out, "{{\"ph\":\"{ph}\",\"pid\":1,\"tid\":{tid},\"ts\":{},", e.ts);
        if e.kind == EventKind::Complete {
            let _ = write!(out, "\"dur\":{},", e.dur);
        } else {
            out.push_str("\"s\":\"t\",");
        }
        out.push_str("\"cat\":\"");
        escape(e.cat, &mut out);
        out.push_str("\",\"name\":\"");
        escape(&e.name, &mut out);
        out.push_str("\",\"args\":{");
        for (i, (k, v)) in e.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape(k, &mut out);
            out.push_str("\":\"");
            escape(v, &mut out);
            out.push('"');
        }
        out.push_str("}}");
    }

    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_json_metacharacters() {
        let mut s = String::new();
        escape("a\"b\\c\nd\te\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn escapes_every_control_character_and_passes_unicode() {
        for c in (0u32..0x20).filter_map(char::from_u32) {
            let mut s = String::new();
            escape(&c.to_string(), &mut s);
            assert!(s.starts_with('\\'), "control {:#04x} must be escaped, got {s:?}", c as u32);
            assert!(s.is_ascii(), "escapes are pure ASCII: {s:?}");
        }
        let mut s = String::new();
        escape("naïve — ünïcode 🚀", &mut s);
        assert_eq!(s, "naïve — ünïcode 🚀", "non-control unicode passes through verbatim");
    }

    #[test]
    fn export_escapes_hostile_names_and_args_end_to_end() {
        // Span names and arg values are open strings (node names, error
        // messages); the exported document must stay valid JSON whatever
        // they contain.
        let mut t = Tracer::new();
        let s = t.begin_at("patia", "tick \"zero\"\n", 0);
        t.end_at_with(s, 10, vec![("cause", "path\\to\u{7}\tnode".to_owned())]);
        let json = export(&t, "quote \" backslash \\");
        assert!(json.contains("\"name\":\"tick \\\"zero\\\"\\n\""), "{json}");
        assert!(json.contains("\"cause\":\"path\\\\to\\u0007\\tnode\""), "{json}");
        assert!(json.contains("\"name\":\"quote \\\" backslash \\\\\""), "{json}");
        assert!(!json.contains('\u{7}'), "no raw control bytes leak into the document");
    }

    #[test]
    fn exports_complete_and_instant_events() {
        let mut t = Tracer::new();
        let s = t.begin_at("gokernel", "invoke", 100);
        t.end_at_with(s, 173, vec![("cycles", "73".to_owned())]);
        t.instant("patia", "switch", 500, Vec::new());
        let json = export(&t, "adm");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":100,\"dur\":73,"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"cycles\":\"73\""));
        assert!(json.contains("\"name\":\"adm\""));
        // Categories get distinct, sorted thread rows.
        assert!(
            json.contains("\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"gokernel\"}")
        );
        assert!(json.contains("\"tid\":2,\"name\":\"thread_name\",\"args\":{\"name\":\"patia\"}"));
    }

    #[test]
    fn export_is_deterministic() {
        let mut t = Tracer::new();
        t.instant("b", "two", 2, Vec::new());
        t.instant("a", "one", 1, Vec::new());
        let x = export(&t, "p");
        let y = export(&t, "p");
        assert_eq!(x, y);
    }
}
