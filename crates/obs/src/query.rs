//! Trace-query engine: causal invariants over the event log.
//!
//! A deterministic trace is only useful if something *reads* it. This
//! module gives tests a small combinator API over [`TraceEvent`] streams
//! — filter by category, name, and args; select spans or instants — plus
//! the temporal checks the paper's Adaptation Framework implies:
//!
//! * [`Query::each_within`] — every selected event lies inside some span
//!   of a cover set (*within*);
//! * [`Query::each_preceded_within`] — every selected event is preceded
//!   by a related witness event inside its innermost enclosing span
//!   (*precedes* scoped by *within*);
//! * [`Query::each_preceded_by`] — unscoped *precedes* with a caller
//!   relation (used e.g. for retry chains);
//! * [`Query::each_encloses`] — every selected span contains at least one
//!   matching inner event (*encloses*);
//! * [`Query::pairwise_disjoint`] — selected spans never overlap;
//! * [`Query::dur_equals_arg`] — a span's duration equals one of its own
//!   structured args (ties the trace to the measurement that emitted it).
//!
//! Checks return `Result<(), Violation>`: the violation carries the
//! offending event rendered in the tracer's own line format, so a failing
//! invariant reads like a trace excerpt, not an index.
//!
//! Queries borrow the event log; nothing is copied but `(index, &event)`
//! pairs. The log index (completion order) breaks timestamp ties, keeping
//! every check deterministic.

use crate::span::{EventKind, TraceEvent};
use crate::Cycles;
use std::fmt;

/// A failed invariant: which check, and the event(s) that broke it.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The check that failed.
    pub check: &'static str,
    /// Human-readable detail, including the offending event(s) rendered
    /// in the tracer's line format.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.check, self.detail)
    }
}

impl std::error::Error for Violation {}

/// Render one event in the tracer's line format for violation messages.
fn render_event(e: &TraceEvent) -> String {
    let mut s = match e.kind {
        EventKind::Complete => format!("@{:010}+{:06} {}:{}", e.ts, e.dur, e.cat, e.name),
        EventKind::Instant => format!("@{:010}!       {}:{}", e.ts, e.cat, e.name),
    };
    for (k, v) in &e.args {
        s.push_str(&format!(" {k}={v}"));
    }
    s
}

/// A filtered view over an event log: `(log index, event)` pairs in
/// completion order. Combinators narrow the selection; checks consume it.
#[derive(Debug, Clone)]
pub struct Query<'a> {
    events: Vec<(usize, &'a TraceEvent)>,
}

impl<'a> Query<'a> {
    /// Select every event of `log` (completion order, indices attached).
    #[must_use]
    pub fn over(log: &'a [TraceEvent]) -> Self {
        Self { events: log.iter().enumerate().collect() }
    }

    /// The selected `(log index, event)` pairs.
    #[must_use]
    pub fn events(&self) -> &[(usize, &'a TraceEvent)] {
        &self.events
    }

    /// Number of selected events.
    #[must_use]
    pub fn count(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is selected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Keep events whose category equals `cat`.
    #[must_use]
    pub fn cat(self, cat: &str) -> Self {
        self.filter(|e| e.cat == cat)
    }

    /// Keep events whose name equals `name`.
    #[must_use]
    pub fn name(self, name: &str) -> Self {
        self.filter(|e| e.name == name)
    }

    /// Keep events whose name starts with `prefix` (instance-suffixed
    /// names like `tick:17` select with `name_prefix("tick:")`).
    #[must_use]
    pub fn name_prefix(self, prefix: &str) -> Self {
        self.filter(|e| e.name.starts_with(prefix))
    }

    /// Keep complete spans only.
    #[must_use]
    pub fn spans(self) -> Self {
        self.filter(|e| e.kind == EventKind::Complete)
    }

    /// Keep instant markers only.
    #[must_use]
    pub fn instants(self) -> Self {
        self.filter(|e| e.kind == EventKind::Instant)
    }

    /// Keep events carrying arg `key` with value `value`.
    #[must_use]
    pub fn arg(self, key: &str, value: &str) -> Self {
        self.filter(|e| e.args.iter().any(|(k, v)| *k == key && v == value))
    }

    /// Keep events satisfying an arbitrary predicate.
    #[must_use]
    pub fn filter(mut self, pred: impl Fn(&TraceEvent) -> bool) -> Self {
        self.events.retain(|(_, e)| pred(e));
        self
    }

    /// **within**: every selected event's `[ts, ts+dur]` lies inside some
    /// span selected by `cover`.
    ///
    /// # Errors
    /// Returns the first uncovered event.
    pub fn each_within(&self, cover: &Query<'_>) -> Result<(), Violation> {
        for (_, e) in &self.events {
            if enclosing(cover, e.ts, e.ts + e.dur).is_none() {
                return Err(Violation {
                    check: "each_within",
                    detail: format!("event not inside any cover span: {}", render_event(e)),
                });
            }
        }
        Ok(())
    }

    /// **precedes ∧ within**: for every selected *marker* event there is a
    /// `witness` event with `witness.ts <= marker.ts`, inside the
    /// marker's innermost enclosing `cover` span, such that
    /// `related(witness, marker)` holds.
    ///
    /// This is the paper's gauge→decision causality: every SWITCH instant
    /// must see a same-atom CPU-gauge breach earlier in its own tick.
    ///
    /// # Errors
    /// Returns the first marker without a scope or witness.
    pub fn each_preceded_within(
        &self,
        witnesses: &Query<'_>,
        cover: &Query<'_>,
        related: impl Fn(&TraceEvent, &TraceEvent) -> bool,
    ) -> Result<(), Violation> {
        for (_, marker) in &self.events {
            let Some(scope) = enclosing(cover, marker.ts, marker.ts + marker.dur) else {
                return Err(Violation {
                    check: "each_preceded_within",
                    detail: format!("marker outside every cover span: {}", render_event(marker)),
                });
            };
            let found = witnesses.events.iter().any(|(_, w)| {
                w.ts >= scope.ts
                    && w.ts + w.dur <= scope.ts + scope.dur
                    && w.ts <= marker.ts
                    && related(w, marker)
            });
            if !found {
                return Err(Violation {
                    check: "each_preceded_within",
                    detail: format!(
                        "no related witness precedes marker inside its scope\n  marker: {}\n  scope:  {}",
                        render_event(marker),
                        render_event(scope)
                    ),
                });
            }
        }
        Ok(())
    }

    /// **precedes**: for every selected event there is an earlier (or
    /// simultaneous, earlier in completion order) `witness` with
    /// `related(witness, event)`.
    ///
    /// # Errors
    /// Returns the first event with no related predecessor.
    pub fn each_preceded_by(
        &self,
        witnesses: &Query<'_>,
        related: impl Fn(&TraceEvent, &TraceEvent) -> bool,
    ) -> Result<(), Violation> {
        for (mi, marker) in &self.events {
            let found = witnesses.events.iter().any(|(wi, w)| {
                (w.ts < marker.ts || (w.ts == marker.ts && wi < mi)) && related(w, marker)
            });
            if !found {
                return Err(Violation {
                    check: "each_preceded_by",
                    detail: format!("no related predecessor for: {}", render_event(marker)),
                });
            }
        }
        Ok(())
    }

    /// **encloses**: every selected span contains at least one `inner`
    /// event (fully, by interval containment) with `related(outer, inner)`.
    ///
    /// # Errors
    /// Returns the first span with no related inner event.
    pub fn each_encloses(
        &self,
        inner: &Query<'_>,
        related: impl Fn(&TraceEvent, &TraceEvent) -> bool,
    ) -> Result<(), Violation> {
        for (_, outer) in &self.events {
            let found = inner.events.iter().any(|(_, i)| {
                i.ts >= outer.ts && i.ts + i.dur <= outer.ts + outer.dur && related(outer, i)
            });
            if !found {
                return Err(Violation {
                    check: "each_encloses",
                    detail: format!(
                        "span encloses no matching inner event: {}",
                        render_event(outer)
                    ),
                });
            }
        }
        Ok(())
    }

    /// **disjoint**: no two selected spans overlap (sharing an endpoint is
    /// allowed — `[0,10)` and `[10,20)` are disjoint).
    ///
    /// # Errors
    /// Returns the first overlapping pair.
    pub fn pairwise_disjoint(&self) -> Result<(), Violation> {
        let mut intervals: Vec<(Cycles, Cycles, &TraceEvent)> =
            self.events.iter().map(|(_, e)| (e.ts, e.ts + e.dur, *e)).collect();
        intervals.sort_by_key(|&(ts, end, _)| (ts, end));
        for w in intervals.windows(2) {
            let (_, end_a, a) = w[0];
            let (ts_b, _, b) = w[1];
            if ts_b < end_a {
                return Err(Violation {
                    check: "pairwise_disjoint",
                    detail: format!(
                        "spans overlap\n  first:  {}\n  second: {}",
                        render_event(a),
                        render_event(b)
                    ),
                });
            }
        }
        Ok(())
    }

    /// Every selected span's duration equals the integer value of its own
    /// arg `key` — the trace agrees with the measurement it annotates.
    ///
    /// # Errors
    /// Returns the first span whose arg is missing, non-numeric, or
    /// different from its duration.
    pub fn dur_equals_arg(&self, key: &str) -> Result<(), Violation> {
        for (_, e) in &self.events {
            let Some((_, v)) = e.args.iter().find(|(k, _)| *k == key) else {
                return Err(Violation {
                    check: "dur_equals_arg",
                    detail: format!("span lacks arg '{key}': {}", render_event(e)),
                });
            };
            match v.parse::<Cycles>() {
                Ok(cycles) if cycles == e.dur => {}
                _ => {
                    return Err(Violation {
                        check: "dur_equals_arg",
                        detail: format!("dur != {key}: {}", render_event(e)),
                    });
                }
            }
        }
        Ok(())
    }
}

/// The innermost (shortest) span of `cover` containing `[ts, end]`.
fn enclosing<'a, 'b>(cover: &'b Query<'a>, ts: Cycles, end: Cycles) -> Option<&'b TraceEvent> {
    cover
        .events
        .iter()
        .map(|(_, e)| *e)
        .filter(|e| e.kind == EventKind::Complete && e.ts <= ts && end <= e.ts + e.dur)
        .min_by_key(|e| e.dur)
}

/// The value of structured arg `key` on `e`, if present — the free
/// function form used inside `related` closures.
#[must_use]
pub fn arg<'e>(e: &'e TraceEvent, key: &str) -> Option<&'e str> {
    e.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;

    /// tick span [0,100) holding breach@10 and switch@20; a second tick
    /// [100,200) holding a switch@150 with no breach.
    fn sample() -> Tracer {
        let mut t = Tracer::new();
        let tick1 = t.begin_at("patia", "tick:1", 0);
        t.instant("patia", "gauge:breach", 10, vec![("atom", "123".to_owned())]);
        t.instant("patia", "switch:migrate", 20, vec![("atom", "123".to_owned())]);
        t.end_at(tick1, 100);
        let tick2 = t.begin_at("patia", "tick:2", 100);
        t.instant("patia", "switch:migrate", 150, vec![("atom", "7".to_owned())]);
        t.end_at(tick2, 200);
        t
    }

    #[test]
    fn combinators_narrow_the_selection() {
        let t = sample();
        let q = Query::over(t.events());
        assert_eq!(q.count(), 5);
        assert_eq!(q.clone().cat("patia").spans().count(), 2);
        assert_eq!(q.clone().name_prefix("switch:").count(), 2);
        assert_eq!(q.clone().name("gauge:breach").count(), 1);
        assert_eq!(q.clone().instants().arg("atom", "123").count(), 2);
        assert!(q.filter(|e| e.ts > 1_000).is_empty());
    }

    #[test]
    fn within_accepts_covered_and_rejects_uncovered() {
        let t = sample();
        let all = Query::over(t.events());
        let ticks = all.clone().name_prefix("tick:");
        let switches = all.clone().name_prefix("switch:");
        switches.each_within(&ticks).expect("every switch is inside a tick");
        let mut t2 = Tracer::new();
        t2.instant("patia", "switch:migrate", 999, Vec::new());
        let stray = Query::over(t2.events());
        let err = stray.each_within(&ticks).expect_err("stray instant is uncovered");
        assert_eq!(err.check, "each_within");
        assert!(err.detail.contains("switch:migrate"), "{err}");
    }

    #[test]
    fn preceded_within_demands_a_scoped_related_witness() {
        let t = sample();
        let all = Query::over(t.events());
        let ticks = all.clone().name_prefix("tick:");
        let breaches = all.clone().name("gauge:breach");
        let same_atom = |w: &TraceEvent, m: &TraceEvent| arg(w, "atom") == arg(m, "atom");

        // switch@20 in tick1: breach@10 for the same atom precedes it.
        all.clone()
            .name_prefix("switch:")
            .filter(|e| e.ts < 100)
            .each_preceded_within(&breaches, &ticks, same_atom)
            .expect("tick1's switch is justified");

        // switch@150 in tick2: tick2 holds no breach at all.
        let err = all
            .clone()
            .name_prefix("switch:")
            .filter(|e| e.ts >= 100)
            .each_preceded_within(&breaches, &ticks, same_atom)
            .expect_err("tick2's switch has no witness");
        assert_eq!(err.check, "each_preceded_within");
        assert!(err.detail.contains("tick:2"), "scope is rendered: {err}");

        // The breach in tick1 does not justify a different atom either.
        let err = all
            .name_prefix("switch:")
            .filter(|e| e.ts < 100)
            .each_preceded_within(&breaches, &ticks, |w, _| arg(w, "atom") == Some("999"))
            .expect_err("relation must hold");
        assert_eq!(err.check, "each_preceded_within");
    }

    #[test]
    fn preceded_by_uses_completion_order_on_ties() {
        let mut t = Tracer::new();
        t.instant("c", "first", 50, Vec::new());
        t.instant("c", "second", 50, Vec::new());
        let all = Query::over(t.events());
        let firsts = all.clone().name("first");
        let seconds = all.clone().name("second");
        seconds.each_preceded_by(&firsts, |_, _| true).expect("log order breaks the tie");
        let err = firsts.each_preceded_by(&seconds, |_, _| true).expect_err("not the other way");
        assert_eq!(err.check, "each_preceded_by");
    }

    #[test]
    fn encloses_demands_a_contained_related_event() {
        let mut t = Tracer::new();
        let mig = t.begin_at("chaos", "migration", 0);
        let sw = t.begin_at("compkit", "switch", 10);
        t.end_at_with(sw, 30, vec![("outcome", "committed".to_owned())]);
        t.end_at(mig, 40);
        let empty_mig = t.begin_at("chaos", "migration", 50);
        t.end_at(empty_mig, 60);
        let all = Query::over(t.events());
        let migs = all.clone().cat("chaos").name("migration");
        let commits = all.clone().cat("compkit").arg("outcome", "committed");
        migs.clone()
            .filter(|e| e.ts < 50)
            .each_encloses(&commits, |_, _| true)
            .expect("first migration encloses a commit");
        let err = migs.each_encloses(&commits, |_, _| true).expect_err("second one is empty");
        assert_eq!(err.check, "each_encloses");
    }

    #[test]
    fn disjoint_allows_touching_but_not_overlap() {
        let t = sample();
        Query::over(t.events()).name_prefix("tick:").pairwise_disjoint().expect("ticks abut");
        let mut t2 = Tracer::new();
        let a = t2.begin_at("c", "a", 0);
        let b = t2.begin_at("c", "b", 5);
        t2.end_at(a, 10);
        t2.end_at(b, 15);
        let err = Query::over(t2.events()).pairwise_disjoint().expect_err("overlap");
        assert_eq!(err.check, "pairwise_disjoint");
        assert!(err.detail.contains("c:a") && err.detail.contains("c:b"), "{err}");
    }

    #[test]
    fn dur_equals_arg_ties_span_to_measurement() {
        let mut t = Tracer::new();
        let ok = t.begin_at("gokernel", "invoke", 0);
        t.end_at_with(ok, 73, vec![("cycles", "73".to_owned())]);
        Query::over(t.events()).dur_equals_arg("cycles").expect("dur matches its own arg");
        let bad = t.begin_at("gokernel", "invoke", 100);
        t.end_at_with(bad, 180, vec![("cycles", "73".to_owned())]);
        let err = Query::over(t.events()).dur_equals_arg("cycles").expect_err("mismatch");
        assert_eq!(err.check, "dur_equals_arg");
        let missing = Query::over(t.events()).dur_equals_arg("nope").expect_err("missing arg");
        assert!(missing.detail.contains("lacks arg"), "{missing}");
    }

    #[test]
    fn violations_render_the_tracer_line_format() {
        let mut t = Tracer::new();
        t.instant("patia", "switch:migrate", 9000, vec![("atom", "123".to_owned())]);
        let err =
            Query::over(t.events()).each_within(&Query::over(&[])).expect_err("no cover at all");
        assert!(
            err.detail.contains("@0000009000!       patia:switch:migrate atom=123"),
            "violation quotes the trace line: {err}"
        );
    }
}
