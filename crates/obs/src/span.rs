//! Cycle-accounted tracing spans and the structured event log.
//!
//! Span timestamps are **cycles from [`machine::cost`]**, never wall
//! clock: under a fixed seed two runs of the same scenario produce
//! byte-identical traces, the same discipline `faultsim` applies to fault
//! timelines. Spans close into [`TraceEvent`]s in completion order, which
//! is itself deterministic, so [`Tracer::render`] and [`Tracer::digest`]
//! are stable across runs and platforms.

use crate::fnv1a;
use crate::Cycles;
use std::fmt::Write as _;

/// Handle to an open span, returned by [`Tracer::begin`] and consumed by
/// [`Tracer::end`]. Not `Copy`: a span ends exactly once.
#[derive(Debug, PartialEq, Eq)]
pub struct SpanId(pub(crate) usize);

/// What kind of record a [`TraceEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A closed span with a duration (Chrome trace phase `X`).
    Complete,
    /// A point-in-time marker with no duration (Chrome trace phase `i`).
    Instant,
}

/// One record in the structured event log.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Start timestamp in cycles.
    pub ts: Cycles,
    /// Duration in cycles (0 for instants).
    pub dur: Cycles,
    /// Category — the subsystem that emitted it (`gokernel`, `patia`, ...).
    pub cat: &'static str,
    /// Event name within the category.
    pub name: String,
    /// Complete span or instant marker.
    pub kind: EventKind,
    /// Structured key/value arguments, in emission order.
    pub args: Vec<(&'static str, String)>,
}

/// An open span not yet moved into the event log.
#[derive(Debug)]
struct OpenSpan {
    ts: Cycles,
    cat: &'static str,
    name: String,
}

/// The event log plus a small slab of open spans.
///
/// Nesting is supported (spans may begin and end in any well-bracketed or
/// overlapping order); the log records events in *completion* order.
#[derive(Debug, Default)]
pub struct Tracer {
    events: Vec<TraceEvent>,
    open: Vec<Option<OpenSpan>>,
    free: Vec<usize>,
}

impl Tracer {
    /// An empty tracer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty tracer with `capacity` event slots pre-allocated.
    ///
    /// Purely an allocation hint: the event log, its render, and its
    /// digest are functions of what was *recorded*, never of arena
    /// capacity — asserted by the digest-stability tests.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            events: Vec::with_capacity(capacity),
            open: Vec::with_capacity(capacity.min(64)),
            free: Vec::new(),
        }
    }

    /// Open a span starting at `ts`.
    pub fn begin_at(&mut self, cat: &'static str, name: impl Into<String>, ts: Cycles) -> SpanId {
        let span = OpenSpan { ts, cat, name: name.into() };
        match self.free.pop() {
            Some(slot) => {
                self.open[slot] = Some(span);
                SpanId(slot)
            }
            None => {
                self.open.push(Some(span));
                SpanId(self.open.len() - 1)
            }
        }
    }

    /// Close a span at `ts`, attaching `args`, and append it to the log.
    ///
    /// # Panics
    /// Panics if the span is already closed (impossible without forging a
    /// [`SpanId`]) or if `ts` precedes the span's start.
    pub fn end_at_with(&mut self, span: SpanId, ts: Cycles, args: Vec<(&'static str, String)>) {
        let open = self.open[span.0].take().expect("span closed twice");
        assert!(ts >= open.ts, "span '{}' ends before it starts", open.name);
        self.free.push(span.0);
        self.events.push(TraceEvent {
            ts: open.ts,
            dur: ts - open.ts,
            cat: open.cat,
            name: open.name,
            kind: EventKind::Complete,
            args,
        });
    }

    /// Close a span at `ts` with no arguments.
    pub fn end_at(&mut self, span: SpanId, ts: Cycles) {
        self.end_at_with(span, ts, Vec::new());
    }

    /// Record a point-in-time marker.
    pub fn instant(
        &mut self,
        cat: &'static str,
        name: impl Into<String>,
        ts: Cycles,
        args: Vec<(&'static str, String)>,
    ) {
        self.events.push(TraceEvent {
            ts,
            dur: 0,
            cat,
            name: name.into(),
            kind: EventKind::Instant,
            args,
        });
    }

    /// Closed events, in completion order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Spans begun but not yet ended.
    #[must_use]
    pub fn open_spans(&self) -> usize {
        self.open.len() - self.free.len()
    }

    /// Render the log as stable text, one event per line:
    /// `@{ts:010}+{dur:06} {cat}:{name} k=v ...` (instants use `!` in
    /// place of `+dur`). Byte-identical across runs of a seeded scenario.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            match e.kind {
                EventKind::Complete => {
                    let _ = write!(out, "@{:010}+{:06} {}:{}", e.ts, e.dur, e.cat, e.name);
                }
                EventKind::Instant => {
                    let _ = write!(out, "@{:010}!       {}:{}", e.ts, e.cat, e.name);
                }
            }
            for (k, v) in &e.args {
                let _ = write!(out, " {k}={v}");
            }
            out.push('\n');
        }
        out
    }

    /// FNV-1a fingerprint of [`Tracer::render`] — the trace digest the
    /// golden-trace tier asserts byte-identical across runs.
    #[must_use]
    pub fn digest(&self) -> u64 {
        fnv1a(self.render().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_close_in_completion_order() {
        let mut t = Tracer::new();
        let outer = t.begin_at("a", "outer", 0);
        let inner = t.begin_at("a", "inner", 10);
        t.end_at(inner, 30);
        t.end_at(outer, 50);
        let names: Vec<&str> = t.events().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["inner", "outer"], "completion order, not begin order");
        assert_eq!(t.events()[0].dur, 20);
        assert_eq!(t.events()[1].dur, 50);
        assert_eq!(t.open_spans(), 0);
    }

    #[test]
    fn slab_slots_are_reused() {
        let mut t = Tracer::new();
        let a = t.begin_at("c", "a", 0);
        t.end_at(a, 1);
        let b = t.begin_at("c", "b", 2);
        assert_eq!(b.0, 0, "freed slot is recycled");
        t.end_at(b, 3);
        assert_eq!(t.events().len(), 2);
    }

    #[test]
    fn render_format_is_stable() {
        let mut t = Tracer::new();
        let s = t.begin_at("gokernel", "invoke", 1_234);
        t.end_at_with(s, 1_307, vec![("cycles", "73".to_owned())]);
        t.instant("patia", "switch", 9_000, vec![("atom", "123".to_owned())]);
        assert_eq!(
            t.render(),
            "@0000001234+000073 gokernel:invoke cycles=73\n\
             @0000009000!       patia:switch atom=123\n"
        );
        let d = t.digest();
        assert_eq!(d, t.digest(), "digest is a pure function of the render");
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn span_cannot_end_in_the_past() {
        let mut t = Tracer::new();
        let s = t.begin_at("x", "bad", 100);
        t.end_at(s, 99);
    }

    /// Replay the same span storyline into a tracer built with the given
    /// arena capacity.
    fn replay(capacity: Option<usize>) -> Tracer {
        let mut t = capacity.map_or_else(Tracer::new, Tracer::with_capacity);
        for i in 0..10u64 {
            let tick = t.begin_at("patia", format!("tick:{i}"), i * 100);
            let inner = t.begin_at("compkit", "switch", i * 100 + 10);
            t.end_at_with(inner, i * 100 + 40, vec![("outcome", "committed".to_owned())]);
            t.instant("patia", "gauge:breach", i * 100 + 50, vec![("atom", "123".to_owned())]);
            t.end_at(tick, i * 100 + 90);
        }
        t
    }

    #[test]
    fn digest_is_independent_of_arena_capacity() {
        // Identical replays must fingerprint identically whether the
        // arena grows from empty, is exactly sized, or is grossly
        // over-provisioned: capacity is an allocation hint, not state.
        let baseline = replay(None);
        for capacity in [0, 1, 30, 4096] {
            let t = replay(Some(capacity));
            assert_eq!(t.render(), baseline.render(), "capacity {capacity} changed the render");
            assert_eq!(t.digest(), baseline.digest(), "capacity {capacity} changed the digest");
            assert_eq!(
                crate::fnv1a(t.render().as_bytes()),
                baseline.digest(),
                "digest stays the FNV-1a of the render"
            );
        }
    }
}
