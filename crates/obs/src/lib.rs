//! Deterministic observability substrate shared by every layer.
//!
//! The paper's Adaptation Framework is *monitors → gauges → session
//! manager*: adaptation is only as good as what the system can observe
//! about itself, and the Go!/SISR argument (Table 1) is made entirely in
//! CPU-cycle accounting. This crate gives the stack one substrate for
//! both:
//!
//! * [`span`] — tracing spans and instant events whose timestamps are
//!   **cycles from [`machine::cost`]**, never wall clock, so traces are
//!   byte-identical under a fixed seed (the `faultsim` discipline).
//! * [`metrics`] — a [`MetricsRegistry`] of counters/gauges/histograms
//!   with stable ordering and an FNV digest; `compkit`'s monitors→gauges
//!   pipeline ingests its gauges instead of hand-fed readings.
//! * [`chrome`] — a Chrome-trace-format JSON exporter for the event log
//!   (`bench figures --trace`).
//! * [`profile`] — a cycle-attribution profiler that folds the span
//!   stream into an aggregated call tree with self/total accounting and
//!   inferno-compatible folded stacks (`bench figures --flame`).
//! * [`query`] — a combinator query engine over the event log, used by
//!   tests to assert causal invariants (*precedes*, *within*,
//!   *encloses*) instead of eyeballing renders.
//! * [`diff`] — a minimal unified line diff so golden-trace and
//!   bench-gate failures show *what* drifted, not just digests.
//!
//! # Arming
//!
//! Instrumented components (`gokernel::Orb`, `patia::PatiaServer`,
//! `ubinet::Simulator`, `compkit::AdaptivityManager`) hold an
//! `Option<ObsHandle>`, exactly like the `faultsim` injector hooks:
//! disarmed is the default and costs one branch per hot path. One
//! [`ObsHandle`] is shared across layers, so a single trace interleaves
//! ORB invocations with Patia switches on one cycle axis.
//!
//! ```
//! use obs::{Obs, CostModel, Primitive};
//!
//! let obs = Obs::new(CostModel::pentium()).into_handle();
//! {
//!     let mut o = obs.borrow_mut();
//!     let span = o.begin("demo", "work");
//!     o.charge(Primitive::Alu);
//!     o.end(span);
//!     o.metrics.counter_add("demo.work", 1);
//! }
//! assert_eq!(obs.borrow().tracer.events().len(), 1);
//! ```

pub mod chrome;
pub mod diff;
pub mod metrics;
pub mod profile;
pub mod query;
pub mod span;

pub use machine::cost::{CostModel, Cycles, Primitive};
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use profile::{Profile, ProfileNode};
pub use query::{Query, Violation};
pub use span::{EventKind, SpanId, TraceEvent, Tracer};

use std::cell::RefCell;
use std::rc::Rc;

/// FNV-1a over a byte string — same constants as `faultsim`'s plan
/// digest, so every deterministic fingerprint in the workspace speaks one
/// dialect.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Shared handle to an [`Obs`]: the simulation is single-threaded, so a
/// plain `Rc<RefCell<_>>` is enough and keeps the crate free of unsafe
/// code and atomics.
pub type ObsHandle = Rc<RefCell<Obs>>;

/// The observability hub: a deterministic cycle clock, the tracing event
/// log, and the unified metrics registry.
#[derive(Debug)]
pub struct Obs {
    /// The cost model spans bill primitives against.
    pub model: CostModel,
    /// The tracing event log.
    pub tracer: Tracer,
    /// The unified metrics registry.
    pub metrics: MetricsRegistry,
    clock: Cycles,
}

impl Obs {
    /// A fresh hub at cycle 0.
    #[must_use]
    pub fn new(model: CostModel) -> Self {
        Self { model, tracer: Tracer::new(), metrics: MetricsRegistry::new(), clock: 0 }
    }

    /// Wrap into the shared handle instrumented components hold.
    #[must_use]
    pub fn into_handle(self) -> ObsHandle {
        Rc::new(RefCell::new(self))
    }

    /// Recover the hub from a handle once every instrumented component has
    /// been dropped (or disarmed). Returns the handle if other clones are
    /// still alive.
    ///
    /// # Errors
    /// Returns `Err(handle)` when the handle is still shared.
    pub fn try_unwrap(handle: ObsHandle) -> Result<Self, ObsHandle> {
        Rc::try_unwrap(handle).map(RefCell::into_inner)
    }

    /// The current cycle clock.
    #[must_use]
    pub fn clock(&self) -> Cycles {
        self.clock
    }

    /// Advance the clock by a pre-computed cycle bill.
    pub fn advance(&mut self, cycles: Cycles) {
        self.clock += cycles;
    }

    /// Bill one primitive under the cost model, advancing the clock by its
    /// cost, and return that cost.
    pub fn charge(&mut self, p: Primitive) -> Cycles {
        let c = p.cost(&self.model);
        self.clock += c;
        c
    }

    /// Bill `n` copies of one primitive in a single clock advance —
    /// cycle-identical to `n` [`Obs::charge`] calls (charging emits no
    /// events, so only the clock moves). Returns the total cost.
    pub fn charge_n(&mut self, p: Primitive, n: u64) -> Cycles {
        let c = p.cost(&self.model) * n;
        self.clock += c;
        c
    }

    /// Open a span at the current clock.
    pub fn begin(&mut self, cat: &'static str, name: impl Into<String>) -> SpanId {
        let ts = self.clock;
        self.tracer.begin_at(cat, name, ts)
    }

    /// Open a span at an explicit timestamp — used when a component keeps
    /// its own cycle counter (the ORB's CPU) and the span must match it
    /// exactly.
    pub fn begin_at(&mut self, cat: &'static str, name: impl Into<String>, ts: Cycles) -> SpanId {
        if ts > self.clock {
            self.clock = ts;
        }
        self.tracer.begin_at(cat, name, ts)
    }

    /// Close a span at the current clock.
    pub fn end(&mut self, span: SpanId) {
        let ts = self.clock;
        self.tracer.end_at(span, ts);
    }

    /// Close a span at the current clock with structured arguments.
    pub fn end_with(&mut self, span: SpanId, args: Vec<(&'static str, String)>) {
        let ts = self.clock;
        self.tracer.end_at_with(span, ts, args);
    }

    /// Close a span at an explicit timestamp (advancing the clock to it).
    pub fn end_at_with(&mut self, span: SpanId, ts: Cycles, args: Vec<(&'static str, String)>) {
        if ts > self.clock {
            self.clock = ts;
        }
        self.tracer.end_at_with(span, ts, args);
    }

    /// Record an instant event at the current clock.
    pub fn instant(
        &mut self,
        cat: &'static str,
        name: impl Into<String>,
        args: Vec<(&'static str, String)>,
    ) {
        let ts = self.clock;
        self.tracer.instant(cat, name, ts, args);
    }

    /// The combined fingerprint golden-trace tests assert: trace digest,
    /// metrics digest, event count.
    #[must_use]
    pub fn digests(&self) -> (u64, u64, usize) {
        (self.tracer.digest(), self.metrics.digest(), self.tracer.events().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn charge_advances_clock_by_model_cost() {
        let mut o = Obs::new(CostModel::pentium());
        let c = o.charge(Primitive::TrapEnter);
        assert!(c > 0);
        assert_eq!(o.clock(), c);
        o.advance(10);
        assert_eq!(o.clock(), c + 10);
    }

    #[test]
    fn spans_bill_in_cycles_not_wall_clock() {
        let run = || {
            let mut o = Obs::new(CostModel::pentium());
            let s = o.begin("t", "step");
            o.charge(Primitive::Load);
            o.charge(Primitive::Alu);
            o.end_with(s, vec![("k", "v".to_owned())]);
            o.metrics.counter_add("t.steps", 1);
            o.digests()
        };
        assert_eq!(run(), run(), "identical work yields identical digests");
    }

    #[test]
    fn begin_at_and_end_at_track_external_counters() {
        let mut o = Obs::new(CostModel::pentium());
        let s = o.begin_at("orb", "invoke", 1_000);
        o.end_at_with(s, 1_073, vec![("cycles", "73".to_owned())]);
        assert_eq!(o.clock(), 1_073, "clock follows the external counter");
        assert_eq!(o.tracer.events()[0].dur, 73);
    }

    #[test]
    fn handle_round_trips() {
        let h = Obs::new(CostModel::pentium()).into_handle();
        h.borrow_mut().metrics.counter_add("x", 1);
        let o = Obs::try_unwrap(h).expect("sole owner");
        assert_eq!(o.metrics.counter("x"), 1);
    }
}
