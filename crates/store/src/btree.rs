//! A B+tree index over atom keys: `u64` key → [`RecordId`].
//!
//! Arena-allocated (nodes live in a `Vec`, freed slots recycled), with
//! linked leaves so range scans walk sideways instead of re-descending.
//! Fanout is deliberately small (`MAX_KEYS` = 8) so the unit corpus and
//! the differential oracle exercise splits, borrows and merges constantly
//! rather than never. The engine bills one comparison batch per level per
//! descent.
//!
//! The oracle for this structure is `std::collections::BTreeMap` — the
//! `slow-props` differential suite replays seeded op streams against both
//! and demands identical answers plus intact structural invariants
//! ([`BTree::check`]) after every operation.

use crate::page::RecordId;

/// Maximum keys per node; a node splits when it would exceed this.
pub const MAX_KEYS: usize = 8;

/// Minimum keys per non-root node; fewer triggers borrow-or-merge.
/// Chosen so a merge of two minimal nodes plus a separator still fits:
/// `2 * MIN_KEYS + 1 <= MAX_KEYS`.
pub const MIN_KEYS: usize = 3;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Node {
    Leaf { keys: Vec<u64>, vals: Vec<RecordId>, next: Option<usize> },
    Branch { keys: Vec<u64>, kids: Vec<usize> },
    Free,
}

/// The B+tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BTree {
    nodes: Vec<Node>,
    free: Vec<usize>,
    root: usize,
    len: usize,
}

impl Default for BTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BTree {
    /// An empty tree.
    #[must_use]
    pub fn new() -> Self {
        Self {
            nodes: vec![Node::Leaf { keys: Vec::new(), vals: Vec::new(), next: None }],
            free: Vec::new(),
            root: 0,
            len: 0,
        }
    }

    /// Number of keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (a lone leaf is depth 1).
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut n = self.root;
        while let Node::Branch { kids, .. } = &self.nodes[n] {
            n = kids[0];
            d += 1;
        }
        d
    }

    fn alloc(&mut self, node: Node) -> usize {
        if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn dealloc(&mut self, i: usize) {
        self.nodes[i] = Node::Free;
        self.free.push(i);
    }

    /// Look up a key.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<RecordId> {
        let mut n = self.root;
        loop {
            match &self.nodes[n] {
                Node::Branch { keys, kids } => {
                    n = kids[keys.partition_point(|&k| k <= key)];
                }
                Node::Leaf { keys, vals, .. } => {
                    return keys.binary_search(&key).ok().map(|i| vals[i]);
                }
                Node::Free => unreachable!("descent reached a freed node"),
            }
        }
    }

    /// Insert or replace; returns the previous record id, if any.
    pub fn insert(&mut self, key: u64, val: RecordId) -> Option<RecordId> {
        let (old, split) = self.insert_at(self.root, key, val);
        if let Some((sep, right)) = split {
            let left = self.root;
            self.root = self.alloc(Node::Branch { keys: vec![sep], kids: vec![left, right] });
        }
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_at(
        &mut self,
        n: usize,
        key: u64,
        val: RecordId,
    ) -> (Option<RecordId>, Option<(u64, usize)>) {
        match &mut self.nodes[n] {
            Node::Leaf { keys, vals, next } => {
                match keys.binary_search(&key) {
                    Ok(i) => {
                        let old = std::mem::replace(&mut vals[i], val);
                        return (Some(old), None);
                    }
                    Err(i) => {
                        keys.insert(i, key);
                        vals.insert(i, val);
                    }
                }
                if keys.len() <= MAX_KEYS {
                    return (None, None);
                }
                let mid = keys.len() / 2;
                let rkeys = keys.split_off(mid);
                let rvals = vals.split_off(mid);
                let sep = rkeys[0];
                let old_next = *next;
                let right = self.alloc(Node::Leaf { keys: rkeys, vals: rvals, next: old_next });
                let Node::Leaf { next, .. } = &mut self.nodes[n] else { unreachable!() };
                *next = Some(right);
                (None, Some((sep, right)))
            }
            Node::Branch { keys, kids } => {
                let i = keys.partition_point(|&k| k <= key);
                let kid = kids[i];
                let (old, split) = self.insert_at(kid, key, val);
                if let Some((sep, right)) = split {
                    let Node::Branch { keys, kids } = &mut self.nodes[n] else { unreachable!() };
                    keys.insert(i, sep);
                    kids.insert(i + 1, right);
                    if keys.len() > MAX_KEYS {
                        let mid = keys.len() / 2;
                        let up = keys[mid];
                        let rkeys = keys.split_off(mid + 1);
                        keys.pop();
                        let rkids = kids.split_off(mid + 1);
                        let right = self.alloc(Node::Branch { keys: rkeys, kids: rkids });
                        return (old, Some((up, right)));
                    }
                }
                (old, None)
            }
            Node::Free => unreachable!("descent reached a freed node"),
        }
    }

    /// Remove a key; returns its record id, if present.
    pub fn remove(&mut self, key: u64) -> Option<RecordId> {
        let out = self.remove_at(self.root, key);
        if out.is_some() {
            self.len -= 1;
        }
        // A branch root left with a single child collapses.
        if let Node::Branch { kids, keys } = &self.nodes[self.root] {
            if keys.is_empty() {
                let only = kids[0];
                let old_root = self.root;
                self.root = only;
                self.dealloc(old_root);
            }
        }
        out
    }

    fn remove_at(&mut self, n: usize, key: u64) -> Option<RecordId> {
        match &mut self.nodes[n] {
            Node::Leaf { keys, vals, .. } => match keys.binary_search(&key) {
                Ok(i) => {
                    keys.remove(i);
                    Some(vals.remove(i))
                }
                Err(_) => None,
            },
            Node::Branch { keys, kids } => {
                let i = keys.partition_point(|&k| k <= key);
                let kid = kids[i];
                let out = self.remove_at(kid, key);
                if out.is_some() && self.node_underfull(kid) {
                    self.fix_child(n, i);
                }
                out
            }
            Node::Free => unreachable!("descent reached a freed node"),
        }
    }

    fn node_underfull(&self, n: usize) -> bool {
        match &self.nodes[n] {
            Node::Leaf { keys, .. } | Node::Branch { keys, .. } => keys.len() < MIN_KEYS,
            Node::Free => unreachable!("underfull check on a freed node"),
        }
    }

    fn node_keys(&self, n: usize) -> usize {
        match &self.nodes[n] {
            Node::Leaf { keys, .. } | Node::Branch { keys, .. } => keys.len(),
            Node::Free => unreachable!("key count of a freed node"),
        }
    }

    /// Rebalance `parent`'s `i`-th child after a removal left it underfull:
    /// borrow from a rich sibling, else merge with one.
    fn fix_child(&mut self, parent: usize, i: usize) {
        let Node::Branch { kids, .. } = &self.nodes[parent] else {
            unreachable!("fix_child parent is a branch")
        };
        let child = kids[i];
        let left_sib = if i > 0 { Some(kids[i - 1]) } else { None };
        let right_sib = kids.get(i + 1).copied();

        if let Some(l) = left_sib {
            if self.node_keys(l) > MIN_KEYS {
                self.borrow_from_left(parent, i, l, child);
                return;
            }
        }
        if let Some(r) = right_sib {
            if self.node_keys(r) > MIN_KEYS {
                self.borrow_from_right(parent, i, child, r);
                return;
            }
        }
        if let Some(l) = left_sib {
            self.merge(parent, i - 1, l, child);
        } else if let Some(r) = right_sib {
            self.merge(parent, i, child, r);
        }
    }

    fn borrow_from_left(&mut self, parent: usize, i: usize, left: usize, child: usize) {
        match std::mem::replace(&mut self.nodes[left], Node::Free) {
            Node::Leaf { mut keys, mut vals, next } => {
                let k = keys.pop().expect("rich sibling");
                let v = vals.pop().expect("rich sibling");
                self.nodes[left] = Node::Leaf { keys, vals, next };
                let Node::Leaf { keys, vals, .. } = &mut self.nodes[child] else {
                    unreachable!("sibling levels match")
                };
                keys.insert(0, k);
                vals.insert(0, v);
                let Node::Branch { keys, .. } = &mut self.nodes[parent] else { unreachable!() };
                keys[i - 1] = k;
            }
            Node::Branch { mut keys, mut kids } => {
                let k = keys.pop().expect("rich sibling");
                let kid = kids.pop().expect("rich sibling");
                self.nodes[left] = Node::Branch { keys, kids };
                let Node::Branch { keys: pkeys, .. } = &mut self.nodes[parent] else {
                    unreachable!()
                };
                let sep = std::mem::replace(&mut pkeys[i - 1], k);
                let Node::Branch { keys, kids } = &mut self.nodes[child] else {
                    unreachable!("sibling levels match")
                };
                keys.insert(0, sep);
                kids.insert(0, kid);
            }
            Node::Free => unreachable!("borrow from a freed node"),
        }
    }

    fn borrow_from_right(&mut self, parent: usize, i: usize, child: usize, right: usize) {
        match std::mem::replace(&mut self.nodes[right], Node::Free) {
            Node::Leaf { mut keys, mut vals, next } => {
                let k = keys.remove(0);
                let v = vals.remove(0);
                let new_sep = keys[0];
                self.nodes[right] = Node::Leaf { keys, vals, next };
                let Node::Leaf { keys, vals, .. } = &mut self.nodes[child] else {
                    unreachable!("sibling levels match")
                };
                keys.push(k);
                vals.push(v);
                let Node::Branch { keys, .. } = &mut self.nodes[parent] else { unreachable!() };
                keys[i] = new_sep;
            }
            Node::Branch { mut keys, mut kids } => {
                let k = keys.remove(0);
                let kid = kids.remove(0);
                self.nodes[right] = Node::Branch { keys, kids };
                let Node::Branch { keys: pkeys, .. } = &mut self.nodes[parent] else {
                    unreachable!()
                };
                let sep = std::mem::replace(&mut pkeys[i], k);
                let Node::Branch { keys, kids } = &mut self.nodes[child] else {
                    unreachable!("sibling levels match")
                };
                keys.push(sep);
                kids.push(kid);
            }
            Node::Free => unreachable!("borrow from a freed node"),
        }
    }

    /// Merge `parent`'s children `left` and `right` (adjacent, separator at
    /// `sep_i`) into `left`; `right` is freed.
    fn merge(&mut self, parent: usize, sep_i: usize, left: usize, right: usize) {
        let Node::Branch { keys, kids } = &mut self.nodes[parent] else { unreachable!() };
        let sep = keys.remove(sep_i);
        kids.remove(sep_i + 1);
        match std::mem::replace(&mut self.nodes[right], Node::Free) {
            Node::Leaf { keys: rkeys, vals: rvals, next } => {
                let Node::Leaf { keys, vals, next: lnext } = &mut self.nodes[left] else {
                    unreachable!("sibling levels match")
                };
                keys.extend(rkeys);
                vals.extend(rvals);
                *lnext = next;
            }
            Node::Branch { keys: rkeys, kids: rkids } => {
                let Node::Branch { keys, kids } = &mut self.nodes[left] else {
                    unreachable!("sibling levels match")
                };
                keys.push(sep);
                keys.extend(rkeys);
                kids.extend(rkids);
            }
            Node::Free => unreachable!("merge with a freed node"),
        }
        self.free.push(right);
    }

    /// All `(key, record)` pairs with `lo <= key <= hi`, in key order,
    /// via a sideways leaf walk.
    #[must_use]
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, RecordId)> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        let mut n = self.root;
        loop {
            match &self.nodes[n] {
                Node::Branch { keys, kids } => n = kids[keys.partition_point(|&k| k <= lo)],
                Node::Leaf { .. } => break,
                Node::Free => unreachable!("descent reached a freed node"),
            }
        }
        let mut leaf = Some(n);
        while let Some(l) = leaf {
            let Node::Leaf { keys, vals, next } = &self.nodes[l] else {
                unreachable!("leaf chain stays at leaf level")
            };
            for (i, &k) in keys.iter().enumerate() {
                if k > hi {
                    return out;
                }
                if k >= lo {
                    out.push((k, vals[i]));
                }
            }
            leaf = *next;
        }
        out
    }

    /// Every pair in key order.
    #[must_use]
    pub fn iter_all(&self) -> Vec<(u64, RecordId)> {
        self.range(0, u64::MAX)
    }

    /// Structural invariants, for the test tiers: sorted keys, uniform
    /// depth, separator correctness, minimum occupancy, intact leaf chain,
    /// and a `len` that matches the leaves.
    ///
    /// # Errors
    /// A description of the first violated invariant.
    pub fn check(&self) -> Result<(), String> {
        let mut leaf_keys = Vec::new();
        self.check_node(self.root, None, None, true, &mut leaf_keys)?;
        if leaf_keys.len() != self.len {
            return Err(format!("len {} but {} keys in leaves", self.len, leaf_keys.len()));
        }
        if !leaf_keys.windows(2).all(|w| w[0] < w[1]) {
            return Err("leaf keys not strictly increasing".to_owned());
        }
        // The leaf chain must visit exactly the in-order leaves.
        let mut n = self.root;
        loop {
            match &self.nodes[n] {
                Node::Branch { kids, .. } => n = kids[0],
                Node::Leaf { .. } => break,
                Node::Free => return Err("freed node on leftmost spine".to_owned()),
            }
        }
        let mut chained = Vec::new();
        let mut leaf = Some(n);
        while let Some(l) = leaf {
            let Node::Leaf { keys, next, .. } = &self.nodes[l] else {
                return Err("leaf chain left the leaf level".to_owned());
            };
            chained.extend_from_slice(keys);
            leaf = *next;
        }
        if chained != leaf_keys {
            return Err("leaf chain disagrees with in-order walk".to_owned());
        }
        Ok(())
    }

    fn check_node(
        &self,
        n: usize,
        lo: Option<u64>,
        hi: Option<u64>,
        is_root: bool,
        leaf_keys: &mut Vec<u64>,
    ) -> Result<usize, String> {
        match &self.nodes[n] {
            Node::Leaf { keys, vals, .. } => {
                if keys.len() != vals.len() {
                    return Err(format!("leaf {n}: {} keys, {} vals", keys.len(), vals.len()));
                }
                if !is_root && keys.len() < MIN_KEYS {
                    return Err(format!("leaf {n} underfull: {} keys", keys.len()));
                }
                if keys.len() > MAX_KEYS {
                    return Err(format!("leaf {n} overfull: {} keys", keys.len()));
                }
                for &k in keys {
                    if lo.is_some_and(|b| k < b) || hi.is_some_and(|b| k >= b) {
                        return Err(format!("leaf {n}: key {k} out of bounds"));
                    }
                }
                leaf_keys.extend_from_slice(keys);
                Ok(1)
            }
            Node::Branch { keys, kids } => {
                if kids.len() != keys.len() + 1 {
                    return Err(format!("branch {n}: {} keys, {} kids", keys.len(), kids.len()));
                }
                if !is_root && keys.len() < MIN_KEYS {
                    return Err(format!("branch {n} underfull: {} keys", keys.len()));
                }
                if keys.len() > MAX_KEYS {
                    return Err(format!("branch {n} overfull: {} keys", keys.len()));
                }
                if !keys.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("branch {n}: separators not increasing"));
                }
                let mut depth = None;
                for (i, &kid) in kids.iter().enumerate() {
                    let klo = if i == 0 { lo } else { Some(keys[i - 1]) };
                    let khi = if i == keys.len() { hi } else { Some(keys[i]) };
                    let d = self.check_node(kid, klo, khi, false, leaf_keys)?;
                    if *depth.get_or_insert(d) != d {
                        return Err(format!("branch {n}: ragged depth"));
                    }
                    // Separators may be *stale* (their key deleted) — they
                    // are routing bounds, not mins; the `klo`/`khi` bounds
                    // above are the real invariant.
                }
                Ok(depth.unwrap_or(0) + 1)
            }
            Node::Free => Err(format!("reachable freed node {n}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageId;

    fn rid(n: u32) -> RecordId {
        RecordId { page: PageId(n / 100), slot: (n % 100) as u16 }
    }

    #[test]
    fn insert_get_replace() {
        let mut t = BTree::new();
        assert_eq!(t.insert(5, rid(1)), None);
        assert_eq!(t.get(5), Some(rid(1)));
        assert_eq!(t.insert(5, rid(2)), Some(rid(1)));
        assert_eq!(t.get(5), Some(rid(2)));
        assert_eq!(t.len(), 1);
        t.check().unwrap();
    }

    #[test]
    fn grows_through_splits_and_stays_sound() {
        let mut t = BTree::new();
        for k in 0..200u64 {
            t.insert(k * 7 % 199, rid(k as u32));
            t.check().unwrap_or_else(|e| panic!("after insert {k}: {e}"));
        }
        assert_eq!(t.len(), 199, "k*7 mod 199 covers 0..199 with one repeat");
        assert!(t.depth() >= 3, "200 keys at fanout 8 must be at least 3 deep");
    }

    #[test]
    fn shrinks_through_merges_back_to_a_leaf() {
        let mut t = BTree::new();
        for k in 0..100u64 {
            t.insert(k, rid(k as u32));
        }
        for k in 0..100u64 {
            assert_eq!(t.remove(k), Some(rid(k as u32)), "key {k}");
            t.check().unwrap_or_else(|e| panic!("after remove {k}: {e}"));
        }
        assert!(t.is_empty());
        assert_eq!(t.depth(), 1, "the empty tree collapses to a single leaf");
        assert_eq!(t.remove(3), None);
    }

    #[test]
    fn removal_in_random_order_stays_sound() {
        let mut t = BTree::new();
        for k in 0..97u64 {
            t.insert(k, rid(k as u32));
        }
        // A fixed pseudo-shuffle: multiples of a coprime stride.
        for i in 0..97u64 {
            let k = i * 31 % 97;
            assert_eq!(t.remove(k), Some(rid(k as u32)));
            t.check().unwrap_or_else(|e| panic!("after remove {k}: {e}"));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn range_scans_walk_the_leaf_chain() {
        let mut t = BTree::new();
        for k in (0..100u64).step_by(2) {
            t.insert(k, rid(k as u32));
        }
        let got = t.range(10, 20);
        assert_eq!(got.iter().map(|&(k, _)| k).collect::<Vec<_>>(), vec![10, 12, 14, 16, 18, 20]);
        assert_eq!(t.range(3, 3), vec![]);
        assert_eq!(t.range(50, 10), vec![]);
        assert_eq!(t.iter_all().len(), 50);
    }
}
