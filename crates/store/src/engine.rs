//! The storage engine façade: slotted pages behind a buffer pool, a
//! B-tree index over keys, and a write-ahead log that is the store's only
//! durable history.
//!
//! # Durability model
//!
//! * The buffer pool's frames are **volatile**: a crash drops them, dirty
//!   pages and all. Stable storage behind the pool serves *capacity*
//!   (evicted pages can be faulted back), not durability.
//! * The WAL is **durable** and append-only. Commit forces the log
//!   ([`machine::cost::Primitive::LogForce`]); nothing else needs forcing
//!   — a steal/no-force pool with logical redo/undo images makes replay
//!   idempotent without page-LSN bookkeeping.
//! * Recovery replays the whole log: committed transactions' ops are
//!   redone in log order, uncommitted ones are discarded (each discard is
//!   an undo in the stats and a
//!   [`CrashSite::AfterRecoveryUndo`] crash site), and the surviving
//!   state is rebuilt into fresh pages. The replay length is exported as
//!   `store.wal.replay_len` and golden-gated by the crash matrix.
//!
//! # Billing
//!
//! With an [`obs`] hub armed, every pool miss and dirty writeback charges
//! [`machine::cost::Primitive::PageIo`] (accumulated in
//! `store.page.io_cycles`), every commit charges a log force, and
//! `store.pool.hit` / `store.pool.miss` count the pool's behaviour so the
//! bench gate can watch the hit rate. Disarmed, the engine costs one
//! branch per operation, like every other component.

use crate::btree::BTree;
use crate::page::{PageId, RecordId, MAX_RECORD};
use crate::pool::{Access, BufferPool, PolicyKind, PoolStats};
use crate::wal::{CrashHook, CrashSite, NoCrash, Wal, WalRecord};
use obs::{ObsHandle, Primitive};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Bytes of key prefix in every record body.
const KEY_BYTES: usize = 8;

/// One logical store operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreOp {
    /// Insert or overwrite `key`.
    Put {
        /// The record key.
        key: u64,
        /// The value written.
        value: Vec<u8>,
    },
    /// Remove `key` (a no-op if absent).
    Delete {
        /// The record key.
        key: u64,
    },
}

impl StoreOp {
    /// The key this op touches.
    #[must_use]
    pub fn key(&self) -> u64 {
        match self {
            StoreOp::Put { key, .. } | StoreOp::Delete { key } => *key,
        }
    }
}

/// Engine errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The value cannot fit one slotted page.
    RecordTooLarge {
        /// The offending key.
        key: u64,
        /// The value length.
        len: usize,
    },
    /// The engine is down (crashed); call [`StorageEngine::recover`].
    Down,
    /// A scripted crash fired; the engine is now down.
    Crashed,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::RecordTooLarge { key, len } => {
                write!(f, "record for key {key} is {len} bytes; max is {}", MAX_RECORD - KEY_BYTES)
            }
            StoreError::Down => f.write_str("engine is down; recover() first"),
            StoreError::Crashed => f.write_str("scripted crash fired"),
        }
    }
}

impl std::error::Error for StoreError {}

/// What a committed transaction did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnSummary {
    /// Transaction id.
    pub txn: u64,
    /// Ops applied and journalled.
    pub applied: usize,
}

/// What a recovery replay did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// WAL records scanned (the golden-gated replay length).
    pub replayed: usize,
    /// Committed ops re-applied.
    pub redone: usize,
    /// Uncommitted ops discarded.
    pub undone: usize,
    /// Pages materialised for the rebuilt state.
    pub pages_rebuilt: usize,
}

/// The storage engine.
#[derive(Debug, Clone)]
pub struct StorageEngine {
    pool: BufferPool,
    wal: Wal,
    index: BTree,
    next_page: u32,
    fill: Option<PageId>,
    down: bool,
    obs: Option<ObsHandle>,
    last_recovery: Option<RecoveryStats>,
}

impl StorageEngine {
    /// An engine whose pool has `pool_capacity` frames, default policy.
    #[must_use]
    pub fn new(pool_capacity: usize) -> Self {
        Self::with_policy(pool_capacity, PolicyKind::default())
    }

    /// An engine with an explicit pool replacement policy.
    #[must_use]
    pub fn with_policy(pool_capacity: usize, kind: PolicyKind) -> Self {
        Self {
            pool: BufferPool::with_policy(pool_capacity, kind),
            wal: Wal::new(),
            index: BTree::new(),
            next_page: 0,
            fill: None,
            down: false,
            obs: None,
            last_recovery: None,
        }
    }

    /// Arm observability: page IO, log forces and pool behaviour are
    /// billed and counted from here on.
    pub fn arm_obs(&mut self, handle: ObsHandle) {
        self.obs = Some(handle);
    }

    /// Drop the observability handle, so the hub it points at can be
    /// unwrapped while the engine lives on for introspection.
    pub fn disarm_obs(&mut self) {
        self.obs = None;
    }

    /// The buffer pool, read-only — the frame table behind `sys.pool`.
    #[must_use]
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Live record count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether the engine is down and needs [`Self::recover`].
    #[must_use]
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// The write-ahead log (read-only).
    #[must_use]
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Buffer-pool counters.
    #[must_use]
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// The pool's replacement policy.
    #[must_use]
    pub fn policy_kind(&self) -> PolicyKind {
        self.pool.policy_kind()
    }

    /// Stats of the most recent recovery, if any.
    #[must_use]
    pub fn last_recovery(&self) -> Option<RecoveryStats> {
        self.last_recovery
    }

    fn bill(&mut self, acc: Access) {
        let Some(h) = &self.obs else { return };
        let mut o = h.borrow_mut();
        if acc.hit {
            o.metrics.counter_add("store.pool.hit", 1);
            o.charge(Primitive::Load);
        } else if acc.read_io {
            o.metrics.counter_add("store.pool.miss", 1);
        }
        if acc.wrote_back {
            o.metrics.counter_add("store.pool.writeback", 1);
        }
        let ios = acc.ios();
        if ios > 0 {
            let spent = o.charge(Primitive::PageIo(ios));
            o.metrics.counter_add("store.page.io_cycles", spent);
        }
    }

    fn bill_log_force(&mut self) {
        if let Some(h) = &self.obs {
            let mut o = h.borrow_mut();
            o.charge(Primitive::LogForce);
            o.metrics.counter_add("store.wal.force", 1);
        }
    }

    fn bill_index_descent(&mut self) {
        if let Some(h) = &self.obs {
            h.borrow_mut().charge_n(Primitive::Alu, self.index.depth() as u64);
        }
    }

    /// Physically read a key's value. Bills the pool access.
    fn read(&mut self, key: u64) -> Option<(Vec<u8>, bool)> {
        self.bill_index_descent();
        let rid = self.index.get(key)?;
        let (page, acc) = self.pool.fetch(rid.page).expect("index points at live pages");
        let body = page.get(rid.slot).expect("index points at live slots");
        let value = body[KEY_BYTES..].to_vec();
        self.bill(acc);
        Some((value, acc.hit))
    }

    /// Physically write `key = value` (no WAL involvement).
    fn phys_put(&mut self, key: u64, value: &[u8]) {
        self.phys_delete(key);
        let mut body = Vec::with_capacity(KEY_BYTES + value.len());
        body.extend_from_slice(&key.to_le_bytes());
        body.extend_from_slice(value);
        let lsn = self.wal.len() as u64;
        // Try the current fill page; fall back to a fresh one.
        let pid = match self.fill {
            Some(pid) => {
                let (page, acc) = self.pool.fetch(pid).expect("fill page exists");
                let fits = page.fits(body.len());
                self.bill(acc);
                if fits {
                    pid
                } else {
                    self.fresh_page()
                }
            }
            None => self.fresh_page(),
        };
        let (page, acc) = self.pool.fetch_mut(pid).expect("fill page exists");
        let slot = page.insert(&body).expect("fill page was checked for space");
        page.set_lsn(lsn);
        self.bill(acc);
        self.fill = Some(pid);
        self.index.insert(key, RecordId { page: pid, slot });
    }

    fn fresh_page(&mut self) -> PageId {
        let pid = PageId(self.next_page);
        self.next_page += 1;
        let acc = self.pool.create(pid);
        self.bill(acc);
        pid
    }

    /// Physically remove `key` (no WAL involvement).
    fn phys_delete(&mut self, key: u64) -> bool {
        let Some(rid) = self.index.remove(key) else { return false };
        let (page, acc) = self.pool.fetch_mut(rid.page).expect("index points at live pages");
        page.delete(rid.slot);
        self.bill(acc);
        true
    }

    /// Read a value.
    ///
    /// # Errors
    /// [`StoreError::Down`] when the engine has crashed and not recovered.
    pub fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.get_traced(key)?.map(|(v, _)| v))
    }

    /// Read a value, also reporting whether the pool hit.
    ///
    /// # Errors
    /// [`StoreError::Down`] when the engine has crashed and not recovered.
    pub fn get_traced(&mut self, key: u64) -> Result<Option<(Vec<u8>, bool)>, StoreError> {
        if self.down {
            return Err(StoreError::Down);
        }
        Ok(self.read(key))
    }

    /// All `(key, value)` pairs in key order.
    ///
    /// # Errors
    /// [`StoreError::Down`] when the engine has crashed and not recovered.
    pub fn scan_all(&mut self) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        self.scan_range(0, u64::MAX)
    }

    /// `(key, value)` pairs with `lo <= key <= hi`, in key order, read
    /// through the buffer pool page by page.
    ///
    /// # Errors
    /// [`StoreError::Down`] when the engine has crashed and not recovered.
    pub fn scan_range(&mut self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        if self.down {
            return Err(StoreError::Down);
        }
        let rids = self.index.range(lo, hi);
        let mut out = Vec::with_capacity(rids.len());
        for (key, rid) in rids {
            let (page, acc) = self.pool.fetch(rid.page).expect("index points at live pages");
            let body = page.get(rid.slot).expect("index points at live slots");
            out.push((key, body[KEY_BYTES..].to_vec()));
            self.bill(acc);
        }
        Ok(out)
    }

    /// Keys in key order (no page reads — index only).
    #[must_use]
    pub fn keys(&self) -> Vec<u64> {
        self.index.iter_all().into_iter().map(|(k, _)| k).collect()
    }

    /// Keys with `lo <= key <= hi`, in key order (index only — record
    /// pages are left untouched, so scans can plan before paying IO).
    ///
    /// # Errors
    /// [`StoreError::Down`] when the engine has crashed and not recovered.
    pub fn scan_range_keys(&self, lo: u64, hi: u64) -> Result<Vec<u64>, StoreError> {
        if self.down {
            return Err(StoreError::Down);
        }
        Ok(self.index.range(lo, hi).into_iter().map(|(k, _)| k).collect())
    }

    /// A deterministic digest of the full logical state.
    ///
    /// # Errors
    /// [`StoreError::Down`] when the engine has crashed and not recovered.
    pub fn state_digest(&mut self) -> Result<u64, StoreError> {
        let mut bytes = Vec::new();
        for (k, v) in self.scan_all()? {
            bytes.extend_from_slice(&k.to_le_bytes());
            bytes.extend_from_slice(&(v.len() as u64).to_le_bytes());
            bytes.extend_from_slice(&v);
        }
        Ok(obs::fnv1a(&bytes))
    }

    fn validate(&self, ops: &[StoreOp]) -> Result<(), StoreError> {
        for op in ops {
            if let StoreOp::Put { key, value } = op {
                if value.len() + KEY_BYTES > MAX_RECORD {
                    return Err(StoreError::RecordTooLarge { key: *key, len: value.len() });
                }
            }
        }
        Ok(())
    }

    /// Apply `ops` as one committed transaction.
    ///
    /// # Errors
    /// [`StoreError::Down`] / [`StoreError::RecordTooLarge`]; never
    /// `Crashed` (the hook is [`NoCrash`]).
    pub fn apply(&mut self, ops: &[StoreOp]) -> Result<TxnSummary, StoreError> {
        self.apply_crashable(ops, &mut NoCrash)
    }

    /// Apply `ops` as one transaction under a crash hook. Each WAL record
    /// boundary is a [`CrashSite`]; if the hook fires, the engine crashes
    /// (volatile state gone) and `Err(Crashed)` is returned.
    ///
    /// # Errors
    /// [`StoreError::Crashed`] when the hook fires, plus the [`Self::apply`]
    /// errors.
    pub fn apply_crashable(
        &mut self,
        ops: &[StoreOp],
        hook: &mut dyn CrashHook,
    ) -> Result<TxnSummary, StoreError> {
        if self.down {
            return Err(StoreError::Down);
        }
        self.validate(ops)?;
        let txn = self.wal.begin();
        if hook.crash(&CrashSite::Intent) {
            self.crash();
            return Err(StoreError::Crashed);
        }
        for (i, op) in ops.iter().enumerate() {
            self.apply_one(txn, op);
            if hook.crash(&CrashSite::AfterStep { index: i }) {
                self.crash();
                return Err(StoreError::Crashed);
            }
        }
        if hook.crash(&CrashSite::BeforeCommit) {
            self.crash();
            return Err(StoreError::Crashed);
        }
        self.wal.append(WalRecord::Commit { txn });
        self.bill_log_force();
        if hook.crash(&CrashSite::AfterCommit) {
            self.crash();
            return Err(StoreError::Crashed);
        }
        Ok(TxnSummary { txn, applied: ops.len() })
    }

    /// Apply `ops`, then roll the transaction back in-place (before
    /// images restored in reverse order) and append its abort record.
    /// Each undo is a [`CrashSite::AfterUndo`] site.
    ///
    /// # Errors
    /// [`StoreError::Crashed`] when the hook fires, plus the [`Self::apply`]
    /// errors.
    pub fn apply_then_abort_crashable(
        &mut self,
        ops: &[StoreOp],
        hook: &mut dyn CrashHook,
    ) -> Result<TxnSummary, StoreError> {
        if self.down {
            return Err(StoreError::Down);
        }
        self.validate(ops)?;
        let txn = self.wal.begin();
        if hook.crash(&CrashSite::Intent) {
            self.crash();
            return Err(StoreError::Crashed);
        }
        let mut undo: Vec<(u64, Option<Vec<u8>>)> = Vec::with_capacity(ops.len());
        for (i, op) in ops.iter().enumerate() {
            undo.push((op.key(), self.apply_one(txn, op)));
            if hook.crash(&CrashSite::AfterStep { index: i }) {
                self.crash();
                return Err(StoreError::Crashed);
            }
        }
        for (undos, (key, before)) in undo.into_iter().rev().enumerate() {
            match before {
                Some(v) => self.phys_put(key, &v),
                None => {
                    self.phys_delete(key);
                }
            }
            if hook.crash(&CrashSite::AfterUndo { undos: undos + 1 }) {
                self.crash();
                return Err(StoreError::Crashed);
            }
        }
        self.wal.append(WalRecord::Abort { txn });
        Ok(TxnSummary { txn, applied: ops.len() })
    }

    /// Journal one op (before image captured first — write-ahead), then
    /// apply it physically. Returns the before image.
    fn apply_one(&mut self, txn: u64, op: &StoreOp) -> Option<Vec<u8>> {
        match op {
            StoreOp::Put { key, value } => {
                let before = self.read(*key).map(|(v, _)| v);
                self.wal.append(WalRecord::Put {
                    txn,
                    key: *key,
                    before: before.clone(),
                    after: value.clone(),
                });
                self.phys_put(*key, value);
                before
            }
            StoreOp::Delete { key } => {
                let before = self.read(*key).map(|(v, _)| v);
                if let Some(b) = &before {
                    self.wal.append(WalRecord::Delete { txn, key: *key, before: b.clone() });
                    self.phys_delete(*key);
                }
                before
            }
        }
    }

    /// The crash: every volatile structure — pool frames, index, fill
    /// pointer — vanishes. The WAL and stable pages survive, and the
    /// engine refuses service until [`Self::recover`].
    pub fn crash(&mut self) {
        self.pool.drop_volatile();
        self.index = BTree::new();
        self.fill = None;
        self.down = true;
        if let Some(h) = &self.obs {
            h.borrow_mut().metrics.counter_add("store.crash", 1);
        }
    }

    /// Replay the WAL and rebuild pages: committed transactions roll
    /// forward, uncommitted ones are discarded. Idempotent — replaying an
    /// already-recovered (or never-crashed) engine lands the same state.
    ///
    /// # Errors
    /// [`StoreError::Crashed`] when the hook kills recovery itself (at an
    /// [`CrashSite::AfterRecoveryUndo`] site); the engine stays down and
    /// a further recovery finishes the job.
    pub fn recover(&mut self, hook: &mut dyn CrashHook) -> Result<RecoveryStats, StoreError> {
        let committed: BTreeSet<u64> = self.wal.committed_txns().into_iter().collect();
        let mut stats = RecoveryStats::default();
        let mut state: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for rec in self.wal.records().to_vec() {
            stats.replayed += 1;
            if let Some(h) = &self.obs {
                h.borrow_mut().charge(Primitive::Load);
            }
            match rec {
                WalRecord::Put { txn, key, after, .. } if committed.contains(&txn) => {
                    state.insert(key, after);
                    stats.redone += 1;
                }
                WalRecord::Delete { txn, key, .. } if committed.contains(&txn) => {
                    state.remove(&key);
                    stats.redone += 1;
                }
                WalRecord::Put { .. } | WalRecord::Delete { .. } => {
                    stats.undone += 1;
                    if hook.crash(&CrashSite::AfterRecoveryUndo { undos: stats.undone }) {
                        self.crash();
                        return Err(StoreError::Crashed);
                    }
                }
                WalRecord::Begin { .. } | WalRecord::Commit { .. } | WalRecord::Abort { .. } => {}
            }
        }
        // Rebuild pages and index from the surviving state.
        self.pool = BufferPool::with_policy(self.pool.capacity(), self.pool.policy_kind());
        self.index = BTree::new();
        self.next_page = 0;
        self.fill = None;
        self.down = false;
        for (key, value) in state {
            self.phys_put(key, &value);
        }
        stats.pages_rebuilt = self.next_page as usize;
        self.last_recovery = Some(stats);
        if let Some(h) = &self.obs {
            let mut o = h.borrow_mut();
            o.metrics.counter_add("store.wal.replay_len", stats.replayed as u64);
            o.metrics.counter_add("store.recovery", 1);
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{CrashPoint, PlannedCrash};

    fn put(key: u64, v: &[u8]) -> StoreOp {
        StoreOp::Put { key, value: v.to_vec() }
    }

    fn del(key: u64) -> StoreOp {
        StoreOp::Delete { key }
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let mut e = StorageEngine::new(4);
        e.apply(&[put(1, b"one"), put(2, b"two")]).unwrap();
        assert_eq!(e.get(1).unwrap().unwrap(), b"one");
        e.apply(&[del(1), put(2, b"TWO")]).unwrap();
        assert_eq!(e.get(1).unwrap(), None);
        assert_eq!(e.get(2).unwrap().unwrap(), b"TWO");
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn committed_state_survives_a_crash() {
        let mut e = StorageEngine::new(2);
        e.apply(&[put(1, b"keep"), put(2, b"also")]).unwrap();
        e.crash();
        assert_eq!(e.get(1).unwrap_err(), StoreError::Down);
        let stats = e.recover(&mut NoCrash).unwrap();
        assert_eq!(stats.redone, 2);
        assert_eq!(stats.undone, 0);
        assert_eq!(e.scan_all().unwrap().len(), 2);
        assert_eq!(e.get(1).unwrap().unwrap(), b"keep");
    }

    #[test]
    fn uncommitted_ops_roll_back_on_recovery() {
        let mut e = StorageEngine::new(2);
        e.apply(&[put(1, b"base")]).unwrap();
        let mut hook = PlannedCrash::new(CrashPoint::BeforeCommit);
        let err = e.apply_crashable(&[put(1, b"doomed"), put(9, b"gone")], &mut hook);
        assert_eq!(err.unwrap_err(), StoreError::Crashed);
        e.recover(&mut NoCrash).unwrap();
        assert_eq!(e.get(1).unwrap().unwrap(), b"base", "the overwrite rolled back");
        assert_eq!(e.get(9).unwrap(), None, "the insert rolled back");
    }

    #[test]
    fn commit_record_makes_the_crash_survivable() {
        let mut e = StorageEngine::new(2);
        let mut hook = PlannedCrash::new(CrashPoint::AfterCommit);
        let err = e.apply_crashable(&[put(5, b"durable")], &mut hook);
        assert_eq!(err.unwrap_err(), StoreError::Crashed);
        e.recover(&mut NoCrash).unwrap();
        assert_eq!(e.get(5).unwrap().unwrap(), b"durable");
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut e = StorageEngine::new(2);
        e.apply(&[put(1, b"a"), put(2, b"b")]).unwrap();
        let mut hook = PlannedCrash::new(CrashPoint::MidPlan { after_steps: 1 });
        let _ = e.apply_crashable(&[put(3, b"c"), del(1)], &mut hook);
        let first = e.recover(&mut NoCrash).unwrap();
        let d1 = e.state_digest().unwrap();
        let second = e.recover(&mut NoCrash).unwrap();
        assert_eq!(first.replayed, second.replayed);
        assert_eq!(e.state_digest().unwrap(), d1);
    }

    #[test]
    fn clean_abort_restores_before_images() {
        let mut e = StorageEngine::new(2);
        e.apply(&[put(1, b"base")]).unwrap();
        e.apply_then_abort_crashable(&[put(1, b"temp"), put(2, b"temp2")], &mut NoCrash).unwrap();
        assert_eq!(e.get(1).unwrap().unwrap(), b"base");
        assert_eq!(e.get(2).unwrap(), None);
        assert_eq!(e.wal().records().last().unwrap().tag(), "abort");
    }

    #[test]
    fn crash_mid_rollback_still_recovers_clean() {
        let mut e = StorageEngine::new(2);
        e.apply(&[put(1, b"base")]).unwrap();
        let mut hook = PlannedCrash::new(CrashPoint::MidRollback { after_undos: 1 });
        let err = e.apply_then_abort_crashable(&[put(1, b"x"), put(2, b"y")], &mut hook);
        assert_eq!(err.unwrap_err(), StoreError::Crashed);
        e.recover(&mut NoCrash).unwrap();
        assert_eq!(e.get(1).unwrap().unwrap(), b"base");
        assert_eq!(e.get(2).unwrap(), None);
    }

    #[test]
    fn crash_during_recovery_is_reentrant() {
        let mut e = StorageEngine::new(2);
        e.apply(&[put(1, b"keep")]).unwrap();
        let mut hook = PlannedCrash::new(CrashPoint::BeforeCommit);
        let _ = e.apply_crashable(&[put(2, b"doomed")], &mut hook);
        let mut rhook = PlannedCrash::new(CrashPoint::DuringRecovery { after_undos: 1 });
        assert_eq!(e.recover(&mut rhook).unwrap_err(), StoreError::Crashed);
        assert!(e.is_down());
        e.recover(&mut NoCrash).unwrap();
        assert_eq!(e.get(1).unwrap().unwrap(), b"keep");
        assert_eq!(e.get(2).unwrap(), None);
    }

    #[test]
    fn oversized_records_are_rejected_before_journalling() {
        let mut e = StorageEngine::new(2);
        let wal_before = e.wal().len();
        let err = e.apply(&[put(1, &vec![0u8; MAX_RECORD])]);
        assert!(matches!(err.unwrap_err(), StoreError::RecordTooLarge { key: 1, .. }));
        assert_eq!(e.wal().len(), wal_before, "nothing was journalled");
    }

    #[test]
    fn deleting_an_absent_key_journals_nothing() {
        let mut e = StorageEngine::new(2);
        e.apply(&[del(42)]).unwrap();
        assert_eq!(
            e.wal().records().iter().filter(|r| r.tag() == "delete").count(),
            0,
            "no before image, no record"
        );
    }

    #[test]
    fn pool_pressure_spills_and_refetches() {
        // 1-frame pool, values big enough that each page holds two
        // records: every other access faults.
        let mut e = StorageEngine::new(1);
        let big = vec![7u8; 1500];
        e.apply(&[
            StoreOp::Put { key: 1, value: big.clone() },
            StoreOp::Put { key: 2, value: big.clone() },
            StoreOp::Put { key: 3, value: big.clone() },
            StoreOp::Put { key: 4, value: big.clone() },
        ])
        .unwrap();
        for k in 1..=4 {
            assert_eq!(e.get(k).unwrap().unwrap(), big);
        }
        let stats = e.pool_stats();
        assert!(stats.misses > 0, "a 1-frame pool must fault: {stats:?}");
        assert!(stats.writebacks > 0, "dirty victims must be written back");
    }

    #[test]
    fn scan_is_key_ordered() {
        let mut e = StorageEngine::new(4);
        e.apply(&[put(30, b"c"), put(10, b"a"), put(20, b"b")]).unwrap();
        let all = e.scan_all().unwrap();
        assert_eq!(all.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![10, 20, 30]);
        let mid = e.scan_range(10, 20).unwrap();
        assert_eq!(mid.len(), 2);
    }
}
