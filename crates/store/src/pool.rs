//! The buffer pool: a fixed set of frames between the record layer and
//! stable storage, with a pluggable replacement policy.
//!
//! Every fetch that misses costs a [`machine::cost::Primitive::PageIo`]
//! (billed by the engine, which also counts `store.pool.hit` /
//! `store.pool.miss` metrics); evicting a dirty victim costs a second page
//! IO for the writeback. The pool itself stays policy- and billing-free:
//! it reports what happened in an [`Access`] and the caller charges the
//! machine.
//!
//! The default policy is the clock (second-chance) sweep; LRU is always
//! compiled — the differential oracle suite runs every policy — and the
//! `lru-default` crate feature flips which one [`PolicyKind::default`]
//! picks. Policies are pluggable at construction: each is a
//! [`PolicyKind`] arm with its own per-frame state, chosen by
//! [`BufferPool::with_policy`].

use crate::page::{Page, PageId};
use std::collections::BTreeMap;
use std::fmt;

/// Which replacement policy a pool runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Clock / second-chance: one reference bit per frame, a sweeping hand.
    Clock,
    /// Least-recently-used by access stamp.
    Lru,
}

impl Default for PolicyKind {
    fn default() -> Self {
        if cfg!(feature = "lru-default") {
            PolicyKind::Lru
        } else {
            PolicyKind::Clock
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PolicyKind::Clock => "clock",
            PolicyKind::Lru => "lru",
        })
    }
}

/// Per-frame replacement state. A new policy is a new arm: implement
/// `touch` (frame accessed) and `victim` (choose an occupied frame to
/// evict; only called when every frame is occupied).
#[derive(Debug, Clone)]
enum Policy {
    Clock { referenced: Vec<bool>, hand: usize },
    Lru { stamp: Vec<u64>, tick: u64 },
}

impl Policy {
    fn new(kind: PolicyKind, capacity: usize) -> Self {
        match kind {
            PolicyKind::Clock => Policy::Clock { referenced: vec![false; capacity], hand: 0 },
            PolicyKind::Lru => Policy::Lru { stamp: vec![0; capacity], tick: 0 },
        }
    }

    fn touch(&mut self, frame: usize) {
        match self {
            Policy::Clock { referenced, .. } => referenced[frame] = true,
            Policy::Lru { stamp, tick } => {
                *tick += 1;
                stamp[frame] = *tick;
            }
        }
    }

    fn victim(&mut self) -> usize {
        match self {
            Policy::Clock { referenced, hand } => loop {
                let f = *hand;
                *hand = (*hand + 1) % referenced.len();
                if referenced[f] {
                    referenced[f] = false;
                } else {
                    return f;
                }
            },
            Policy::Lru { stamp, .. } => {
                let (f, _) = stamp
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, s)| s)
                    .expect("pool capacity is nonzero");
                f
            }
        }
    }
}

/// What one pool operation did — the caller bills page IO from this.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Access {
    /// The page was already resident.
    pub hit: bool,
    /// A page was read in from stable storage.
    pub read_io: bool,
    /// A dirty victim was written back to stable storage.
    pub wrote_back: bool,
}

impl Access {
    /// Page transfers this access performed.
    #[must_use]
    pub fn ios(&self) -> u32 {
        u32::from(self.read_io) + u32::from(self.wrote_back)
    }
}

/// Cumulative pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Fetches served from a resident frame.
    pub hits: u64,
    /// Fetches that had to read stable storage.
    pub misses: u64,
    /// Fresh pages materialised in a frame (no read IO).
    pub creates: u64,
    /// Dirty victims written back on eviction or flush.
    pub writebacks: u64,
}

impl PoolStats {
    /// Hit rate in whole percent (100 when there were no fetches).
    #[must_use]
    pub fn hit_pct(&self) -> u64 {
        let total = self.hits + self.misses;
        (self.hits * 100).checked_div(total).unwrap_or(100)
    }
}

/// One frame of the pool as the introspection layer sees it — the row
/// source behind `sys.pool`. `referenced`/`lru_stamp` expose whichever
/// policy's per-frame state is live; the other is `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// Frame index, `0..capacity`.
    pub frame: usize,
    /// The resident page, or `None` for an empty frame.
    pub page: Option<PageId>,
    /// Whether the frame holds unwritten changes.
    pub dirty: bool,
    /// The clock policy's reference bit (`None` under LRU).
    pub referenced: Option<bool>,
    /// The LRU policy's access stamp (`None` under clock).
    pub lru_stamp: Option<u64>,
}

/// Pool errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The page exists neither in a frame nor on stable storage.
    UnknownPage(PageId),
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::UnknownPage(p) => write!(f, "unknown page {p}"),
        }
    }
}

impl std::error::Error for PoolError {}

/// The buffer pool plus the stable storage behind it.
#[derive(Debug, Clone)]
pub struct BufferPool {
    capacity: usize,
    kind: PolicyKind,
    frames: Vec<Option<Page>>,
    dirty: Vec<bool>,
    resident: BTreeMap<PageId, usize>,
    policy: Policy,
    disk: BTreeMap<PageId, Page>,
    stats: PoolStats,
}

impl BufferPool {
    /// A pool of `capacity` frames under the default policy.
    ///
    /// # Panics
    /// When `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(capacity, PolicyKind::default())
    }

    /// A pool of `capacity` frames under an explicit policy.
    ///
    /// # Panics
    /// When `capacity` is zero.
    #[must_use]
    pub fn with_policy(capacity: usize, kind: PolicyKind) -> Self {
        assert!(capacity > 0, "a zero-frame pool cannot serve any page");
        Self {
            capacity,
            kind,
            frames: vec![None; capacity],
            dirty: vec![false; capacity],
            resident: BTreeMap::new(),
            policy: Policy::new(kind, capacity),
            disk: BTreeMap::new(),
            stats: PoolStats::default(),
        }
    }

    /// Frame count.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The replacement policy this pool runs.
    #[must_use]
    pub fn policy_kind(&self) -> PolicyKind {
        self.kind
    }

    /// Cumulative counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Whether the page exists anywhere (frame or stable storage).
    #[must_use]
    pub fn contains(&self, pid: PageId) -> bool {
        self.resident.contains_key(&pid) || self.disk.contains_key(&pid)
    }

    /// Pages on stable storage (flushed at least once).
    #[must_use]
    pub fn pages_on_disk(&self) -> usize {
        self.disk.len()
    }

    /// Resident pages (occupied frames).
    #[must_use]
    pub fn resident(&self) -> usize {
        self.resident.len()
    }

    /// Freeze the frame table: one [`FrameInfo`] per frame in frame-index
    /// order — the deterministic row source for `sys.pool`.
    #[must_use]
    pub fn frame_table(&self) -> Vec<FrameInfo> {
        (0..self.capacity)
            .map(|f| FrameInfo {
                frame: f,
                page: self.frames[f].as_ref().map(Page::id),
                dirty: self.dirty[f],
                referenced: match &self.policy {
                    Policy::Clock { referenced, .. } => Some(referenced[f]),
                    Policy::Lru { .. } => None,
                },
                lru_stamp: match &self.policy {
                    Policy::Clock { .. } => None,
                    Policy::Lru { stamp, .. } => Some(stamp[f]),
                },
            })
            .collect()
    }

    /// Find a frame for a new occupant, evicting if the pool is full.
    fn frame_for(&mut self) -> (usize, bool) {
        if let Some(f) = self.frames.iter().position(Option::is_none) {
            return (f, false);
        }
        let f = self.policy.victim();
        let old = self.frames[f].take().expect("victim frames are occupied");
        self.resident.remove(&old.id());
        let mut wrote_back = false;
        if self.dirty[f] {
            self.stats.writebacks += 1;
            self.disk.insert(old.id(), old);
            wrote_back = true;
        }
        self.dirty[f] = false;
        (f, wrote_back)
    }

    /// Materialise a brand-new page in a frame (dirty, no read IO).
    pub fn create(&mut self, pid: PageId) -> Access {
        debug_assert!(!self.contains(pid), "create of an existing page");
        let (f, wrote_back) = self.frame_for();
        self.frames[f] = Some(Page::new(pid));
        self.dirty[f] = true;
        self.resident.insert(pid, f);
        self.policy.touch(f);
        self.stats.creates += 1;
        Access { hit: false, read_io: false, wrote_back }
    }

    fn fault_in(&mut self, pid: PageId) -> Result<(usize, Access), PoolError> {
        if let Some(&f) = self.resident.get(&pid) {
            self.policy.touch(f);
            self.stats.hits += 1;
            return Ok((f, Access { hit: true, read_io: false, wrote_back: false }));
        }
        let page = self.disk.get(&pid).cloned().ok_or(PoolError::UnknownPage(pid))?;
        let (f, wrote_back) = self.frame_for();
        self.frames[f] = Some(page);
        self.dirty[f] = false;
        self.resident.insert(pid, f);
        self.policy.touch(f);
        self.stats.misses += 1;
        Ok((f, Access { hit: false, read_io: true, wrote_back }))
    }

    /// Fetch a page for reading.
    ///
    /// # Errors
    /// [`PoolError::UnknownPage`] when the page was never created.
    pub fn fetch(&mut self, pid: PageId) -> Result<(&Page, Access), PoolError> {
        let (f, acc) = self.fault_in(pid)?;
        Ok((self.frames[f].as_ref().expect("just faulted in"), acc))
    }

    /// Fetch a page for writing; the frame is marked dirty.
    ///
    /// # Errors
    /// [`PoolError::UnknownPage`] when the page was never created.
    pub fn fetch_mut(&mut self, pid: PageId) -> Result<(&mut Page, Access), PoolError> {
        let (f, acc) = self.fault_in(pid)?;
        self.dirty[f] = true;
        Ok((self.frames[f].as_mut().expect("just faulted in"), acc))
    }

    /// Write every dirty frame back to stable storage; returns how many
    /// pages were written.
    pub fn flush_all(&mut self) -> usize {
        let mut flushed = 0;
        for f in 0..self.capacity {
            if self.dirty[f] {
                let page = self.frames[f].clone().expect("dirty frames are occupied");
                self.disk.insert(page.id(), page);
                self.dirty[f] = false;
                self.stats.writebacks += 1;
                flushed += 1;
            }
        }
        flushed
    }

    /// The crash: frames are volatile and vanish — dirty pages are LOST.
    /// Stable storage survives. (Durability therefore belongs to the WAL,
    /// not to the pool.)
    pub fn drop_volatile(&mut self) {
        self.frames = vec![None; self.capacity];
        self.dirty = vec![false; self.capacity];
        self.resident.clear();
        self.policy = Policy::new(self.kind, self.capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(cap: usize, pages: u32, kind: PolicyKind) -> BufferPool {
        let mut pool = BufferPool::with_policy(cap, kind);
        for i in 0..pages {
            pool.create(PageId(i));
            let (p, _) = pool.fetch_mut(PageId(i)).unwrap();
            p.insert(&i.to_le_bytes()).unwrap();
        }
        pool
    }

    #[test]
    fn default_policy_is_clock_unless_feature_flipped() {
        let expect =
            if cfg!(feature = "lru-default") { PolicyKind::Lru } else { PolicyKind::Clock };
        assert_eq!(BufferPool::new(2).policy_kind(), expect);
    }

    #[test]
    fn resident_fetches_hit_without_io() {
        let mut pool = filled(4, 2, PolicyKind::Clock);
        let (_, acc) = pool.fetch(PageId(0)).unwrap();
        assert_eq!(acc, Access { hit: true, read_io: false, wrote_back: false });
        assert_eq!(acc.ios(), 0);
    }

    #[test]
    fn eviction_writes_back_dirty_pages_and_refetch_reads_them() {
        for kind in [PolicyKind::Clock, PolicyKind::Lru] {
            let mut pool = filled(2, 3, kind); // 3 pages through 2 frames
            assert!(pool.stats().writebacks >= 1, "{kind}: eviction must write back");
            for i in 0..3 {
                let (p, _) = pool.fetch(PageId(i)).unwrap();
                assert_eq!(p.get(0), Some(&i.to_le_bytes()[..]), "{kind}: page {i} intact");
            }
        }
    }

    #[test]
    fn crash_loses_dirty_frames_but_keeps_disk() {
        let mut pool = filled(4, 2, PolicyKind::Clock);
        pool.flush_all();
        let (p, _) = pool.fetch_mut(PageId(0)).unwrap();
        p.insert(b"lost-by-crash").unwrap();
        pool.drop_volatile();
        let (p, acc) = pool.fetch(PageId(0)).unwrap();
        assert!(acc.read_io, "post-crash fetch faults from disk");
        assert_eq!(p.live_records(), 1, "the unflushed insert vanished");
        assert!(!pool.contains(PageId(9)));
    }

    #[test]
    fn unknown_pages_error() {
        let mut pool = BufferPool::new(2);
        assert_eq!(pool.fetch(PageId(7)).unwrap_err(), PoolError::UnknownPage(PageId(7)));
    }

    #[test]
    fn hit_pct_is_total_when_idle() {
        assert_eq!(PoolStats::default().hit_pct(), 100);
        let s = PoolStats { hits: 3, misses: 1, ..Default::default() };
        assert_eq!(s.hit_pct(), 75);
    }

    #[test]
    fn clock_grants_second_chances() {
        let mut pool = filled(3, 3, PolicyKind::Clock);
        pool.flush_all();
        // All bits are set, so this first fault sweeps them clear and
        // evicts p0; only the new p3's bit is set afterwards.
        pool.create(PageId(3));
        // Re-reference p1: its bit alone protects it from the next sweep.
        pool.fetch(PageId(1)).unwrap();
        pool.create(PageId(4)); // must pass over p1 and take p2
        let (_, acc) = pool.fetch(PageId(1)).unwrap();
        assert!(acc.hit, "the re-referenced page survived the sweep");
        let (_, acc) = pool.fetch(PageId(2)).unwrap();
        assert!(!acc.hit, "the unreferenced neighbour was the victim");
    }

    #[test]
    fn frame_table_mirrors_residency_and_policy_state() {
        let mut pool = filled(3, 2, PolicyKind::Clock);
        let table = pool.frame_table();
        assert_eq!(table.len(), 3, "one row per frame, empty ones included");
        assert_eq!(table[0].page, Some(PageId(0)));
        assert!(table[0].dirty, "unflushed creates are dirty");
        assert_eq!(table[0].referenced, Some(true));
        assert_eq!(table[0].lru_stamp, None);
        assert_eq!(table[2].page, None, "the spare frame is empty");
        assert!(!table[2].dirty);
        assert_eq!(pool.resident(), 2);
        pool.flush_all();
        assert!(pool.frame_table().iter().all(|f| !f.dirty), "flush cleans every frame");

        let lru = filled(2, 1, PolicyKind::Lru);
        let table = lru.frame_table();
        assert_eq!(table[0].referenced, None);
        assert_eq!(table[0].lru_stamp, Some(2), "create + fetch_mut stamped twice");
    }

    #[test]
    fn lru_evicts_the_coldest_page() {
        let mut pool = filled(3, 3, PolicyKind::Lru);
        pool.flush_all();
        pool.fetch(PageId(1)).unwrap();
        pool.fetch(PageId(2)).unwrap();
        pool.fetch(PageId(0)).unwrap();
        pool.create(PageId(3)); // evicts p1, the least recently used
        let (_, acc) = pool.fetch(PageId(1)).unwrap();
        assert!(!acc.hit, "the coldest page was the victim");
    }
}
