//! The write-ahead log: redo/undo records for the page store.
//!
//! The record taxonomy mirrors compkit's adaptation journal — `Begin →
//! per-op redo/undo records → Commit/Abort` — and the crash model is
//! *shared with it outright*: the WAL re-uses
//! [`compkit::journal::CrashSite`], [`CrashPoint`], [`CrashHook`] and
//! [`PlannedCrash`], so the same scripted-crash harness that drives the
//! adaptation-journal conformance matrix drives the store's. The site
//! mapping (the unbundling seam Lomet et al. argue for — one transactional
//! component, many data components):
//!
//! | WAL boundary                 | [`CrashSite`]              |
//! |------------------------------|----------------------------|
//! | `Begin` appended             | `Intent`                   |
//! | op record `i` appended       | `AfterStep { index: i }`   |
//! | about to append `Commit`     | `BeforeCommit`             |
//! | `Commit` appended            | `AfterCommit`              |
//! | rollback undid `n` ops       | `AfterUndo { undos: n }`   |
//! | recovery skipped `n` ops     | `AfterRecoveryUndo { .. }` |
//!
//! Op records carry both images: `after` is the redo (applied for
//! committed transactions on replay), `before` is the undo (restored when
//! rolling an uncommitted transaction back). Both are *logical* — keyed by
//! atom key, not by page offset — which makes replay idempotent by
//! construction: "set key to after" and "restore key to before" land the
//! same state no matter how many times recovery runs.

pub use compkit::journal::{CrashHook, CrashPoint, CrashSite, NoCrash, PlannedCrash};

/// One WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A transaction opened.
    Begin {
        /// Transaction id (monotonic per log).
        txn: u64,
    },
    /// A key was written. `before` is `None` for a fresh insert.
    Put {
        /// Transaction id.
        txn: u64,
        /// The record key.
        key: u64,
        /// Undo image: the value this write replaced.
        before: Option<Vec<u8>>,
        /// Redo image: the value written.
        after: Vec<u8>,
    },
    /// A key was deleted.
    Delete {
        /// Transaction id.
        txn: u64,
        /// The record key.
        key: u64,
        /// Undo image: the value deleted.
        before: Vec<u8>,
    },
    /// The transaction committed (the log was forced here).
    Commit {
        /// Transaction id.
        txn: u64,
    },
    /// The transaction rolled back cleanly before the crash model was
    /// ever involved.
    Abort {
        /// Transaction id.
        txn: u64,
    },
}

impl WalRecord {
    /// The transaction this record belongs to.
    #[must_use]
    pub fn txn(&self) -> u64 {
        match self {
            WalRecord::Begin { txn }
            | WalRecord::Put { txn, .. }
            | WalRecord::Delete { txn, .. }
            | WalRecord::Commit { txn }
            | WalRecord::Abort { txn } => *txn,
        }
    }

    /// Short tag for rendered matrices and traces.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            WalRecord::Begin { .. } => "begin",
            WalRecord::Put { .. } => "put",
            WalRecord::Delete { .. } => "delete",
            WalRecord::Commit { .. } => "commit",
            WalRecord::Abort { .. } => "abort",
        }
    }
}

/// The append-only write-ahead log. Unlike the adaptation journal it is
/// *not* truncated after recovery: the log is the store's only durable
/// history (pages are rebuilt from it), so replay length is a meaningful,
/// golden-gated quantity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Wal {
    records: Vec<WalRecord>,
    next_txn: u64,
    appended_total: u64,
}

impl Wal {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a transaction: append its begin record, return its id.
    pub fn begin(&mut self) -> u64 {
        let txn = self.next_txn;
        self.next_txn += 1;
        self.append(WalRecord::Begin { txn });
        txn
    }

    /// Append one record.
    pub fn append(&mut self, r: WalRecord) {
        self.records.push(r);
        self.appended_total += 1;
    }

    /// All records, oldest first.
    #[must_use]
    pub fn records(&self) -> &[WalRecord] {
        &self.records
    }

    /// Current log length (also the LSN the next record will get).
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Transactions with a commit record, in first-commit order.
    #[must_use]
    pub fn committed_txns(&self) -> Vec<u64> {
        self.records
            .iter()
            .filter_map(|r| match r {
                WalRecord::Commit { txn } => Some(*txn),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_allocates_monotonic_txns() {
        let mut w = Wal::new();
        assert_eq!(w.begin(), 0);
        assert_eq!(w.begin(), 1);
        assert_eq!(w.len(), 2);
        assert_eq!(w.records()[0], WalRecord::Begin { txn: 0 });
    }

    #[test]
    fn committed_txns_scans_commit_records() {
        let mut w = Wal::new();
        let a = w.begin();
        w.append(WalRecord::Put { txn: a, key: 1, before: None, after: vec![1] });
        w.append(WalRecord::Commit { txn: a });
        let b = w.begin();
        w.append(WalRecord::Delete { txn: b, key: 1, before: vec![1] });
        w.append(WalRecord::Abort { txn: b });
        assert_eq!(w.committed_txns(), vec![a]);
    }

    #[test]
    fn shared_crash_model_fires_at_wal_boundaries() {
        // The compkit crash machinery drives WAL sites unchanged.
        let mut hook = PlannedCrash::new(CrashPoint::MidPlan { after_steps: 2 });
        assert!(!hook.crash(&CrashSite::Intent));
        assert!(!hook.crash(&CrashSite::AfterStep { index: 0 }));
        assert!(hook.crash(&CrashSite::AfterStep { index: 1 }));
        assert!(!hook.crash(&CrashSite::AfterStep { index: 1 }), "fires once");
    }

    #[test]
    fn record_tags_cover_the_taxonomy() {
        let r = WalRecord::Put { txn: 0, key: 9, before: Some(vec![1]), after: vec![2] };
        assert_eq!(r.tag(), "put");
        assert_eq!(r.txn(), 0);
        assert_eq!(WalRecord::Commit { txn: 3 }.tag(), "commit");
    }
}
