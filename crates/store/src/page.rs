//! The block/page layer: fixed-size pages with a slotted record format.
//!
//! A page is a real byte image — 4 KiB, the unit every transfer between
//! the buffer pool and stable storage is billed in ([`machine::cost::CostModel::page_io`]).
//! Records live in a classic slotted layout: a header and a slot directory
//! grow *up* from byte 0, record bodies grow *down* from the page end, and
//! the gap between them is the free space. Deleting a record tombstones its
//! slot; the body bytes are not compacted (recovery rebuilds pages from the
//! log, so fragmentation is bounded by a transaction's lifetime, not the
//! store's).
//!
//! Layout:
//!
//! ```text
//! 0         8          10        12              12+4*slots          free_end     4096
//! | lsn u64 | slots u16 | end u16 | slot dir ... |    free space    | record bodies |
//! ```
//!
//! Each slot-directory entry is `(offset u16, len u16)`; offset `0` (inside
//! the header, never a valid body) marks a tombstone.

use std::fmt;

/// Page size in bytes. Every page IO moves exactly this much.
pub const PAGE_SIZE: usize = 4096;

/// Page header bytes: lsn (8) + slot count (2) + free-end offset (2).
pub const HEADER_SIZE: usize = 12;

/// Bytes of directory bookkeeping per record.
pub const SLOT_SIZE: usize = 4;

/// The largest record body a page can hold (one slot, empty page).
pub const MAX_RECORD: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

/// A page identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A record address: page plus slot index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct RecordId {
    /// The page holding the record body.
    pub page: PageId,
    /// Slot index within the page's directory.
    pub slot: u16,
}

/// One fixed-size slotted page.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    id: PageId,
    data: Box<[u8; PAGE_SIZE]>,
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Page")
            .field("id", &self.id)
            .field("lsn", &self.lsn())
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .finish()
    }
}

impl Page {
    /// A fresh, empty page.
    #[must_use]
    pub fn new(id: PageId) -> Self {
        let mut p = Self { id, data: Box::new([0u8; PAGE_SIZE]) };
        p.set_free_end(PAGE_SIZE as u16);
        p
    }

    /// This page's id.
    #[must_use]
    pub fn id(&self) -> PageId {
        self.id
    }

    /// The page LSN: the index of the last WAL record whose effect this
    /// page image reflects.
    #[must_use]
    pub fn lsn(&self) -> u64 {
        u64::from_le_bytes(self.data[0..8].try_into().expect("8 header bytes"))
    }

    /// Stamp the page LSN.
    pub fn set_lsn(&mut self, lsn: u64) {
        self.data[0..8].copy_from_slice(&lsn.to_le_bytes());
    }

    /// Number of directory slots (live and tombstoned).
    #[must_use]
    pub fn slot_count(&self) -> u16 {
        u16::from_le_bytes(self.data[8..10].try_into().expect("2 header bytes"))
    }

    fn set_slot_count(&mut self, n: u16) {
        self.data[8..10].copy_from_slice(&n.to_le_bytes());
    }

    fn free_end(&self) -> u16 {
        u16::from_le_bytes(self.data[10..12].try_into().expect("2 header bytes"))
    }

    fn set_free_end(&mut self, v: u16) {
        self.data[10..12].copy_from_slice(&v.to_le_bytes());
    }

    fn slot(&self, slot: u16) -> Option<(u16, u16)> {
        if slot >= self.slot_count() {
            return None;
        }
        let base = HEADER_SIZE + SLOT_SIZE * slot as usize;
        let off = u16::from_le_bytes(self.data[base..base + 2].try_into().expect("slot bytes"));
        let len = u16::from_le_bytes(self.data[base + 2..base + 4].try_into().expect("slot bytes"));
        Some((off, len))
    }

    fn set_slot(&mut self, slot: u16, off: u16, len: u16) {
        let base = HEADER_SIZE + SLOT_SIZE * slot as usize;
        self.data[base..base + 2].copy_from_slice(&off.to_le_bytes());
        self.data[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Bytes available for one more record (body plus its slot entry).
    #[must_use]
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER_SIZE + SLOT_SIZE * self.slot_count() as usize;
        (self.free_end() as usize).saturating_sub(dir_end)
    }

    /// Whether a record of `len` body bytes fits.
    #[must_use]
    pub fn fits(&self, len: usize) -> bool {
        len <= MAX_RECORD && self.free_space() >= len + SLOT_SIZE
    }

    /// Insert a record body; returns its slot, or `None` when it does not
    /// fit (the caller allocates a fresh page).
    pub fn insert(&mut self, body: &[u8]) -> Option<u16> {
        if !self.fits(body.len()) {
            return None;
        }
        let slot = self.slot_count();
        let end = self.free_end() as usize;
        let off = end - body.len();
        self.data[off..end].copy_from_slice(body);
        self.set_free_end(off as u16);
        self.set_slot(slot, off as u16, body.len() as u16);
        self.set_slot_count(slot + 1);
        Some(slot)
    }

    /// Read a live record body.
    #[must_use]
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        let (off, len) = self.slot(slot)?;
        if off == 0 {
            return None; // tombstone
        }
        Some(&self.data[off as usize..off as usize + len as usize])
    }

    /// Tombstone a slot. Returns `false` if the slot was absent or already
    /// dead. Body bytes stay in place (no compaction).
    pub fn delete(&mut self, slot: u16) -> bool {
        match self.slot(slot) {
            Some((off, _)) if off != 0 => {
                self.set_slot(slot, 0, 0);
                true
            }
            _ => false,
        }
    }

    /// Live records, in slot order.
    pub fn records(&self) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|b| (s, b)))
    }

    /// Number of live (non-tombstoned) records.
    #[must_use]
    pub fn live_records(&self) -> usize {
        self.records().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut p = Page::new(PageId(1));
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s0), Some(&b"hello"[..]));
        assert_eq!(p.get(s1), Some(&b"world!"[..]));
        assert_eq!(p.live_records(), 2);
    }

    #[test]
    fn bodies_grow_down_directory_grows_up() {
        let mut p = Page::new(PageId(1));
        let before = p.free_space();
        p.insert(&[7u8; 100]).unwrap();
        assert_eq!(p.free_space(), before - 100 - SLOT_SIZE);
    }

    #[test]
    fn delete_tombstones_without_renumbering() {
        let mut p = Page::new(PageId(1));
        let s0 = p.insert(b"a").unwrap();
        let s1 = p.insert(b"b").unwrap();
        assert!(p.delete(s0));
        assert!(!p.delete(s0), "double delete is a no-op");
        assert_eq!(p.get(s0), None);
        assert_eq!(p.get(s1), Some(&b"b"[..]), "other slots keep their ids");
        assert_eq!(p.records().map(|(s, _)| s).collect::<Vec<_>>(), vec![s1]);
    }

    #[test]
    fn refuses_records_that_do_not_fit() {
        let mut p = Page::new(PageId(1));
        assert!(p.insert(&[0u8; MAX_RECORD + 1]).is_none());
        assert_eq!(p.insert(&[0u8; MAX_RECORD]).unwrap(), 0, "the max record fills the page");
        assert!(p.insert(b"x").is_none(), "and nothing else fits");
    }

    #[test]
    fn lsn_stamps_survive_edits() {
        let mut p = Page::new(PageId(9));
        p.set_lsn(41);
        p.insert(b"r").unwrap();
        assert_eq!(p.lsn(), 41);
        p.set_lsn(42);
        assert_eq!(p.lsn(), 42);
        assert_eq!(p.get(0), Some(&b"r"[..]));
    }

    #[test]
    fn out_of_range_slots_are_none() {
        let p = Page::new(PageId(1));
        assert_eq!(p.get(0), None);
        assert_eq!(p.get(99), None);
    }
}
