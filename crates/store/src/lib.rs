//! `store` — a cycle-billed storage engine under the Atoms.
//!
//! The paper's thesis is that the OS/adaptation layer should sit on
//! database machinery; until now our Atoms were in-memory metadata holders
//! and nothing below the adaptation journal survived a crash or cost
//! cycles. This crate is the missing data component, unbundled the way
//! Lomet/Fekete/Weikum argue transaction services should be:
//!
//! * [`page`] — fixed-size slotted pages, the unit of all IO billing;
//! * [`pool`] — a buffer pool with pluggable replacement (clock default,
//!   LRU always compiled; `lru-default` flips the default);
//! * [`wal`] — a redo/undo write-ahead log sharing compkit's crash-site
//!   machinery, so one scripted-crash harness drives both journals;
//! * [`btree`] — a B+tree index over atom keys with linked-leaf scans;
//! * [`engine`] — the façade tying them together, billing every page IO
//!   and log force through the machine cost model and `obs` metrics
//!   (`store.pool.hit`, `store.page.io_cycles`, `store.wal.replay_len`).
//!
//! Because the engine exists to be *verified*, each structural component
//! ships with a differential oracle: the buffer pool against an
//! unbounded-memory map, the B-tree against `std::collections::BTreeMap`
//! (both under `slow-props`, seeded by `adm-rng`), and the WAL under the
//! seeds × crash-points conformance matrix in
//! `tests/store_recovery_e2e.rs`.

pub mod btree;
pub mod engine;
pub mod page;
pub mod pool;
pub mod wal;

pub use btree::BTree;
pub use engine::{RecoveryStats, StorageEngine, StoreError, StoreOp, TxnSummary};
pub use page::{Page, PageId, RecordId, MAX_RECORD, PAGE_SIZE};
pub use pool::{Access, BufferPool, FrameInfo, PolicyKind, PoolStats};
pub use wal::{CrashHook, CrashPoint, CrashSite, NoCrash, PlannedCrash, Wal, WalRecord};

/// Differential oracle suites (satellite of the test tier): seeded op
/// streams replayed against both the real structure and a trivially
/// correct oracle, demanding identical answers at every step.
#[cfg(all(test, feature = "slow-props"))]
mod slow_props {
    use super::*;
    use adm_rng::{run_cases, Pcg32};
    use std::collections::BTreeMap;

    /// Buffer pool (every policy) vs. an unbounded-memory oracle: any
    /// interleaving of creates, writes and reads must read back exactly
    /// what the oracle holds, whatever the pool evicted in between.
    #[test]
    fn buffer_pool_matches_unbounded_oracle_under_any_policy() {
        for kind in [PolicyKind::Clock, PolicyKind::Lru] {
            run_cases(0xB00F + u64::from(kind == PolicyKind::Lru), 24, |rng: &mut Pcg32| {
                let cap = 1 + rng.below(6) as usize;
                let mut pool = BufferPool::with_policy(cap, kind);
                let mut oracle: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
                let mut created: Vec<u32> = Vec::new();
                for step in 0..u64::from(rng.range_u32(50, 400)) {
                    let _ = step;
                    match rng.below(4) {
                        0 => {
                            // Create a fresh page.
                            let pid = created.len() as u32;
                            pool.create(PageId(pid));
                            created.push(pid);
                            oracle.insert(pid, Vec::new());
                        }
                        1 if !created.is_empty() => {
                            // Append a record to a random page.
                            let pid = *rng.choose(&created);
                            let mut body = vec![0u8; 1 + rng.below(24) as usize];
                            rng.fill_bytes(&mut body);
                            let (page, _) = pool.fetch_mut(PageId(pid)).unwrap();
                            if page.insert(&body).is_some() {
                                oracle.get_mut(&pid).unwrap().push(body.len() as u8);
                                oracle.get_mut(&pid).unwrap().extend_from_slice(&body);
                            }
                        }
                        _ if !created.is_empty() => {
                            // Read a random page back and compare records.
                            let pid = *rng.choose(&created);
                            let (page, _) = pool.fetch(PageId(pid)).unwrap();
                            let mut expect = oracle[&pid].as_slice();
                            for (_, body) in page.records() {
                                let len = expect[0] as usize;
                                assert_eq!(
                                    body,
                                    &expect[1..1 + len],
                                    "{kind} cap={cap}: page {pid} record diverged"
                                );
                                expect = &expect[1 + len..];
                            }
                            assert!(expect.is_empty(), "{kind}: oracle has extra records");
                        }
                        _ => {}
                    }
                }
            });
        }
    }

    /// B-tree vs. `BTreeMap`: inserts, deletes and range scans from a
    /// seeded stream agree exactly, and the structural invariants hold
    /// after every mutation.
    #[test]
    fn btree_matches_std_btreemap() {
        run_cases(0xB7EE, 32, |rng: &mut Pcg32| {
            let mut tree = BTree::new();
            let mut oracle: BTreeMap<u64, RecordId> = BTreeMap::new();
            let key_space = 1 + u64::from(rng.range_u32(10, 120));
            for step in 0..u64::from(rng.range_u32(100, 600)) {
                let key = rng.below(key_space);
                match rng.below(5) {
                    0 | 1 | 2 => {
                        let rid = RecordId { page: PageId(step as u32), slot: (step % 7) as u16 };
                        assert_eq!(tree.insert(key, rid), oracle.insert(key, rid));
                    }
                    3 => {
                        assert_eq!(tree.remove(key), oracle.remove(&key));
                    }
                    _ => {
                        let lo = rng.below(key_space);
                        let hi = lo + rng.below(key_space / 2 + 1);
                        let got = tree.range(lo, hi);
                        let want: Vec<(u64, RecordId)> =
                            oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                        assert_eq!(got, want, "range [{lo}, {hi}] diverged");
                    }
                }
                assert_eq!(tree.get(key), oracle.get(&key).copied());
                assert_eq!(tree.len(), oracle.len());
                tree.check().unwrap_or_else(|e| panic!("step {step}: {e}"));
            }
            let all = tree.iter_all();
            let want: Vec<(u64, RecordId)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
            assert_eq!(all, want);
        });
    }

    /// End-to-end: the engine's committed state always equals a logical
    /// oracle replay, across random crashes and recoveries.
    #[test]
    fn engine_state_matches_logical_oracle_across_crashes() {
        run_cases(0x5709, 16, |rng: &mut Pcg32| {
            let kind = if rng.chance(0.5) { PolicyKind::Clock } else { PolicyKind::Lru };
            let mut eng = StorageEngine::with_policy(1 + rng.below(4) as usize, kind);
            let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
            for _ in 0..u64::from(rng.range_u32(5, 25)) {
                let mut ops = Vec::new();
                for _ in 0..u64::from(rng.range_u32(1, 6)) {
                    let key = rng.below(20);
                    if rng.chance(0.25) {
                        ops.push(StoreOp::Delete { key });
                    } else {
                        let mut v = vec![0u8; 1 + rng.below(40) as usize];
                        rng.fill_bytes(&mut v);
                        ops.push(StoreOp::Put { key, value: v });
                    }
                }
                if rng.chance(0.3) {
                    // Crash mid-transaction: the oracle never sees it.
                    let cut = rng.below(ops.len() as u64 + 1) as usize;
                    let mut hook = PlannedCrash::new(if cut == ops.len() {
                        CrashPoint::BeforeCommit
                    } else {
                        CrashPoint::MidPlan { after_steps: cut }
                    });
                    assert_eq!(
                        eng.apply_crashable(&ops, &mut hook).unwrap_err(),
                        StoreError::Crashed
                    );
                    eng.recover(&mut NoCrash).unwrap();
                } else {
                    eng.apply(&ops).unwrap();
                    for op in &ops {
                        match op {
                            StoreOp::Put { key, value } => {
                                oracle.insert(*key, value.clone());
                            }
                            StoreOp::Delete { key } => {
                                oracle.remove(key);
                            }
                        }
                    }
                }
                let got = eng.scan_all().unwrap();
                let want: Vec<(u64, Vec<u8>)> =
                    oracle.iter().map(|(&k, v)| (k, v.clone())).collect();
                assert_eq!(got, want, "engine diverged from the logical oracle");
            }
        });
    }
}
