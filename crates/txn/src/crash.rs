//! Coordinator/participant crash model for cross-shard transactions.
//!
//! The model extends [`compkit::journal`]'s single-journal discipline to
//! the two-phase-commit protocol: crashes strike only at *record
//! boundaries* of the shared transaction log, appends are atomic, and a
//! crash kills the in-flight control flow (coordinator and fan-out
//! alike) while the log and the shard runtimes survive. Recovery reads
//! the log back and finishes the protocol.
//!
//! [`TxnCrashSite`] enumerates every boundary the protocol crosses;
//! [`TxnCrashPoint`] is the plan-level vocabulary a scenario arms
//! (before-prepare, mid-prepare, after-prepare, before/after the commit
//! decision, mid commit/abort fan-out, mid rollback, during recovery).
//! [`PlannedTxnCrash`] fires its point exactly once, and exposes
//! [`PlannedTxnCrash::fired`] so scenario teardown can assert the point
//! was actually reached — an unreached crash site fails the matrix
//! instead of silently passing.

use std::fmt;

/// A protocol boundary the executing transaction just crossed. The
/// coordinator consults the crash hook at each one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnCrashSite {
    /// `Begin` appended; no shard has done any work.
    BeforePrepare,
    /// Shard `shard` applied (and logged) step `index` of its sub-plan.
    ShardStep {
        /// The shard.
        shard: u32,
        /// Zero-based step index.
        index: usize,
    },
    /// Shard `shard`'s `Prepared` vote was logged and forced.
    ShardPrepared {
        /// The voting shard.
        shard: u32,
    },
    /// All shards voted yes; the decision record is not yet written.
    BeforeDecision,
    /// The commit decision is logged and forced — the transaction is
    /// committed, but no shard has been told.
    AfterDecision,
    /// Commit fan-out reached shard `shard` (its record is logged).
    ShardCommitted {
        /// The shard.
        shard: u32,
    },
    /// Rollback compensated its `undos`-th step overall (1-based,
    /// counted across shards in rollback order).
    ShardUndone {
        /// The shard whose step was undone.
        shard: u32,
        /// Total undo count so far.
        undos: usize,
    },
    /// Abort fan-out reached shard `shard`.
    ShardAborted {
        /// The shard.
        shard: u32,
    },
    /// Recovery compensated its `undos`-th step overall (1-based).
    RecoveryUndo {
        /// Total recovery undo count so far.
        undos: usize,
    },
}

impl fmt::Display for TxnCrashSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnCrashSite::BeforePrepare => write!(f, "before-prepare"),
            TxnCrashSite::ShardStep { shard, index } => {
                write!(f, "shard-step s{shard}[{index}]")
            }
            TxnCrashSite::ShardPrepared { shard } => write!(f, "shard-prepared s{shard}"),
            TxnCrashSite::BeforeDecision => write!(f, "before-decision"),
            TxnCrashSite::AfterDecision => write!(f, "after-decision"),
            TxnCrashSite::ShardCommitted { shard } => write!(f, "shard-committed s{shard}"),
            TxnCrashSite::ShardUndone { shard, undos } => {
                write!(f, "shard-undone s{shard} undos={undos}")
            }
            TxnCrashSite::ShardAborted { shard } => write!(f, "shard-aborted s{shard}"),
            TxnCrashSite::RecoveryUndo { undos } => write!(f, "recovery-undo undos={undos}"),
        }
    }
}

/// A crash point a scenario plans ahead of time — one per protocol
/// boundary class. Nine points cover every seam of presumed-abort 2PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TxnCrashPoint {
    /// Die right after `Begin`, before any prepare work.
    BeforePrepare,
    /// Die once shard `shard` has applied `after_steps` steps.
    MidPrepare {
        /// The shard.
        shard: u32,
        /// Steps applied when the crash strikes (1-based).
        after_steps: usize,
    },
    /// Die right after shard `shard` votes yes.
    AfterPrepare {
        /// The shard.
        shard: u32,
    },
    /// Die with all votes in, before the decision record.
    BeforeDecision,
    /// Die right after the decision record — committed but untold.
    AfterDecision,
    /// Die mid commit fan-out, after shard `shard` learned the outcome.
    MidCommitFanout {
        /// The last shard told.
        shard: u32,
    },
    /// Die mid rollback, after `after_undos` compensations (1-based).
    MidUndo {
        /// Undo count when the crash strikes.
        after_undos: usize,
    },
    /// Die mid abort fan-out, after shard `shard`'s abort record.
    MidAbortFanout {
        /// The last shard told.
        shard: u32,
    },
    /// Die *during recovery*, after `after_undos` recovery
    /// compensations (1-based).
    DuringRecovery {
        /// Recovery undo count when the crash strikes.
        after_undos: usize,
    },
}

impl TxnCrashPoint {
    /// Does this planned point fire at `site`?
    #[must_use]
    pub fn matches(&self, site: &TxnCrashSite) -> bool {
        match (self, site) {
            (TxnCrashPoint::BeforePrepare, TxnCrashSite::BeforePrepare)
            | (TxnCrashPoint::BeforeDecision, TxnCrashSite::BeforeDecision)
            | (TxnCrashPoint::AfterDecision, TxnCrashSite::AfterDecision) => true,
            (
                TxnCrashPoint::MidPrepare { shard, after_steps },
                TxnCrashSite::ShardStep { shard: s, index },
            ) => shard == s && index + 1 == *after_steps,
            (TxnCrashPoint::AfterPrepare { shard }, TxnCrashSite::ShardPrepared { shard: s })
            | (
                TxnCrashPoint::MidCommitFanout { shard },
                TxnCrashSite::ShardCommitted { shard: s },
            )
            | (TxnCrashPoint::MidAbortFanout { shard }, TxnCrashSite::ShardAborted { shard: s }) => {
                shard == s
            }
            (TxnCrashPoint::MidUndo { after_undos }, TxnCrashSite::ShardUndone { undos, .. })
            | (
                TxnCrashPoint::DuringRecovery { after_undos },
                TxnCrashSite::RecoveryUndo { undos },
            ) => undos == after_undos,
            _ => false,
        }
    }
}

impl fmt::Display for TxnCrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnCrashPoint::BeforePrepare => write!(f, "before-prepare"),
            TxnCrashPoint::MidPrepare { shard, after_steps } => {
                write!(f, "mid-prepare-s{shard}-{after_steps}")
            }
            TxnCrashPoint::AfterPrepare { shard } => write!(f, "after-prepare-s{shard}"),
            TxnCrashPoint::BeforeDecision => write!(f, "before-decision"),
            TxnCrashPoint::AfterDecision => write!(f, "after-decision"),
            TxnCrashPoint::MidCommitFanout { shard } => write!(f, "mid-commit-s{shard}"),
            TxnCrashPoint::MidUndo { after_undos } => write!(f, "mid-undo-{after_undos}"),
            TxnCrashPoint::MidAbortFanout { shard } => write!(f, "mid-abort-s{shard}"),
            TxnCrashPoint::DuringRecovery { after_undos } => {
                write!(f, "during-recovery-{after_undos}")
            }
        }
    }
}

/// Consulted at every [`TxnCrashSite`]. Returning `true` kills the
/// in-flight protocol step there.
pub trait TxnCrashHook: fmt::Debug {
    /// Crash at `site`?
    fn crash(&mut self, _site: &TxnCrashSite) -> bool {
        false
    }
}

/// The default hook: never crashes.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTxnCrash;

impl TxnCrashHook for NoTxnCrash {}

/// Fires its planned point exactly once, and remembers whether it did —
/// the coverage witness scenario teardown asserts on.
#[derive(Debug, Clone)]
pub struct PlannedTxnCrash {
    point: TxnCrashPoint,
    fired: bool,
}

impl PlannedTxnCrash {
    /// Arm `point`.
    #[must_use]
    pub fn new(point: TxnCrashPoint) -> Self {
        Self { point, fired: false }
    }

    /// The armed point.
    #[must_use]
    pub fn point(&self) -> TxnCrashPoint {
        self.point
    }

    /// Whether the point was reached and the crash delivered.
    #[must_use]
    pub fn fired(&self) -> bool {
        self.fired
    }
}

impl TxnCrashHook for PlannedTxnCrash {
    fn crash(&mut self, site: &TxnCrashSite) -> bool {
        if !self.fired && self.point.matches(site) {
            self.fired = true;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planned_crash_fires_once_at_its_site() {
        let mut hook = PlannedTxnCrash::new(TxnCrashPoint::MidPrepare { shard: 1, after_steps: 2 });
        assert!(!hook.crash(&TxnCrashSite::ShardStep { shard: 1, index: 0 }));
        assert!(!hook.crash(&TxnCrashSite::ShardStep { shard: 0, index: 1 }));
        assert!(hook.crash(&TxnCrashSite::ShardStep { shard: 1, index: 1 }));
        assert!(hook.fired());
        assert!(!hook.crash(&TxnCrashSite::ShardStep { shard: 1, index: 1 }), "fires once");
    }

    #[test]
    fn unfired_hook_is_visible() {
        let hook = PlannedTxnCrash::new(TxnCrashPoint::AfterDecision);
        assert!(!hook.fired());
        assert_eq!(hook.point().to_string(), "after-decision");
    }

    #[test]
    fn every_point_renders_distinctly() {
        let points = [
            TxnCrashPoint::BeforePrepare,
            TxnCrashPoint::MidPrepare { shard: 0, after_steps: 1 },
            TxnCrashPoint::AfterPrepare { shard: 0 },
            TxnCrashPoint::BeforeDecision,
            TxnCrashPoint::AfterDecision,
            TxnCrashPoint::MidCommitFanout { shard: 0 },
            TxnCrashPoint::MidUndo { after_undos: 1 },
            TxnCrashPoint::MidAbortFanout { shard: 0 },
            TxnCrashPoint::DuringRecovery { after_undos: 1 },
        ];
        let rendered: std::collections::BTreeSet<String> =
            points.iter().map(ToString::to_string).collect();
        assert_eq!(rendered.len(), points.len());
    }

    #[test]
    fn fanout_points_match_their_shard_only() {
        let p = TxnCrashPoint::MidCommitFanout { shard: 2 };
        assert!(p.matches(&TxnCrashSite::ShardCommitted { shard: 2 }));
        assert!(!p.matches(&TxnCrashSite::ShardCommitted { shard: 1 }));
        assert!(!p.matches(&TxnCrashSite::ShardAborted { shard: 2 }));
    }
}
