//! The transactional component: one shared [`TransactionCore`] driving
//! presumed-abort two-phase commit over per-shard [`DataComponent`]s.
//!
//! The coordinator (the adaptivity manager's cross-shard face) runs the
//! protocol:
//!
//! ```text
//!   lint ─ lock ─ Begin ─┬─ per shard: Intent, Applied*, Prepared(force)
//!                        ├─ all voted: Commit(force)        ← commit point
//!                        ├─ fan-out: ShardCommitted*, End    → committed
//!                        └─ any failure before the decision:
//!                           Undone*, ShardAborted*, End      → rolled back
//! ```
//!
//! Presumed abort: the only decision ever logged is `Commit`. A crash
//! anywhere before it leaves prepared participants *in doubt*; on
//! recovery they query the shared log, and the absence of a decision is
//! the abort verdict — unresolved transactions roll back
//! deterministically, newest step first, then the log is reclaimed.
//! Recovery is idempotent (compensations are logged as `Undone`, so a
//! second pass finds nothing left to do) and crash-safe (a crash during
//! recovery keeps the partial progress; the next pass resumes).
//!
//! Everything is billed when an [`obs`] hub is armed: one `Store` per
//! log append, one `LogForce` per forced record (`Prepared` votes and
//! the decision), one `Load` per record recovery scans, `SchedSteps`
//! for executed/undone work, under `txn:cross_switch` / `txn:recover`
//! spans and `txn.*` metrics.

use crate::crash::{TxnCrashHook, TxnCrashSite};
use crate::lock::{LockManager, LockMode, LockOutcome};
use crate::log::{ShardId, TxnLog, TxnRecord};
use crate::shard::{DataComponent, PlanStep};
use adl::diff::ReconfigurationPlan;
use compkit::journal::{RecoveryOutcome, StepRecord};
use compkit::planlint::{PlanLintReport, PlanLinter};
use compkit::StepFaults;
use obs::{ObsHandle, Primitive};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Why a cross-shard switch did not commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// A sub-plan failed the static linter; nothing was locked or logged.
    LintRejected(PlanLintReport),
    /// A lock request conflicted with a live (or crashed-but-unrecovered)
    /// transaction; the new transaction aborted without shard work.
    LockConflict {
        /// The contested resource.
        resource: String,
        /// Who holds it.
        holders: Vec<u64>,
    },
    /// Deadlock: this transaction was chosen as the victim.
    Deadlock {
        /// The rendered wait-for cycle.
        cycle: String,
    },
    /// An injected fault failed a step; the transaction rolled back.
    Injected {
        /// The shard the step belonged to.
        shard: u32,
        /// The failed step, described.
        step: String,
        /// The injected reason.
        reason: String,
    },
    /// A step failed for a real reason; the transaction rolled back.
    StepFailed {
        /// The shard the step belonged to.
        shard: u32,
        /// The failed step, described.
        step: String,
        /// The failure.
        reason: String,
    },
    /// Store persistence failed after the commit point; the log stays
    /// open and recovery finishes the fan-out.
    Store {
        /// The shard whose engine failed.
        shard: u32,
        /// The failure.
        reason: String,
    },
    /// Rollback left residue; the log stays open for recovery to retry.
    RollbackIncomplete {
        /// The original failure.
        cause: String,
        /// The steps that would not undo.
        residue: Vec<String>,
    },
    /// The coordinator crashed at a protocol boundary; the log holds the
    /// open transaction and recovery settles it.
    Crashed {
        /// The boundary, rendered.
        site: String,
    },
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::LintRejected(r) => {
                write!(f, "lint rejected ({} diagnostics)", r.diagnostics.len())
            }
            TxnError::LockConflict { resource, holders } => {
                write!(f, "lock conflict on {resource} (held by {holders:?})")
            }
            TxnError::Deadlock { cycle } => write!(f, "deadlock victim: {cycle}"),
            TxnError::Injected { shard, step, reason } => {
                write!(f, "injected fault on s{shard} at '{step}': {reason}")
            }
            TxnError::StepFailed { shard, step, reason } => {
                write!(f, "step failed on s{shard} at '{step}': {reason}")
            }
            TxnError::Store { shard, reason } => {
                write!(f, "store persistence failed on s{shard}: {reason}")
            }
            TxnError::RollbackIncomplete { cause, residue } => {
                write!(f, "rollback incomplete after '{cause}': {} residue", residue.len())
            }
            TxnError::Crashed { site } => write!(f, "crashed at {site}"),
        }
    }
}

/// A committed cross-shard switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossShardReport {
    /// The global transaction id.
    pub gtxn: u64,
    /// Participating shards.
    pub shards: usize,
    /// Total steps applied across all shards.
    pub steps: usize,
    /// Virtual time the switch completed.
    pub completed_at: u64,
}

/// What one recovery pass did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnRecoveryReport {
    /// How the pass ended (forward dominates if a pass settles both a
    /// committed and an aborted transaction).
    pub outcome: RecoveryOutcome,
    /// Log records scanned.
    pub scanned: usize,
    /// Compensations performed.
    pub undone: usize,
    /// In-doubt participants (prepared, no fan-out) resolved by
    /// consulting the decision record — or its absence.
    pub in_doubt_resolved: usize,
    /// Transactions rolled forward.
    pub forward: usize,
    /// Transactions rolled back.
    pub back: usize,
    /// Undo failures left behind (empty in every healthy run).
    pub residue: Vec<String>,
}

impl TxnRecoveryReport {
    /// True when the pass found nothing to do — the idempotence witness.
    #[must_use]
    pub fn noop(&self) -> bool {
        self.outcome == RecoveryOutcome::Clean && self.undone == 0 && self.in_doubt_resolved == 0
    }
}

/// The shared transactional component: lock manager + transaction log +
/// the 2PC coordinator logic, unbundled from any one shard.
#[derive(Debug, Default)]
pub struct TransactionCore {
    locks: LockManager,
    log: TxnLog,
    obs: Option<ObsHandle>,
    committed: u64,
    aborted: u64,
    crashes: u64,
    recoveries: u64,
    in_doubt_resolved: u64,
}

impl TransactionCore {
    /// A fresh core: empty lock table, empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bill and trace against `hub` from now on.
    pub fn arm_obs(&mut self, hub: ObsHandle) {
        self.obs = Some(hub);
    }

    /// Stop billing.
    pub fn disarm_obs(&mut self) {
        self.obs = None;
    }

    /// The shared transaction log (what `sys.txns` serves).
    #[must_use]
    pub fn log(&self) -> &TxnLog {
        &self.log
    }

    /// The shared lock table.
    #[must_use]
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// Cross-shard switches committed.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Cross-shard switches rolled back.
    #[must_use]
    pub fn aborted(&self) -> u64 {
        self.aborted
    }

    /// Coordinator/participant crashes taken.
    #[must_use]
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Recovery passes that found work.
    #[must_use]
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// In-doubt participants resolved across all recoveries.
    #[must_use]
    pub fn in_doubt_resolved(&self) -> u64 {
        self.in_doubt_resolved
    }

    fn bill(&self, p: Primitive) {
        if let Some(o) = &self.obs {
            o.borrow_mut().charge(p);
        }
    }

    /// Execute `plans` (shard id → sub-plan) atomically across `shards`
    /// as one presumed-abort two-phase commit. `faults` injects step
    /// failures (driving the abort path); `hook` is consulted at every
    /// protocol boundary (driving the crash matrix).
    pub fn execute_cross_shard(
        &mut self,
        shards: &mut BTreeMap<u32, DataComponent>,
        plans: &BTreeMap<u32, ReconfigurationPlan>,
        now: u64,
        faults: &mut dyn StepFaults,
        hook: &mut dyn TxnCrashHook,
    ) -> Result<CrossShardReport, TxnError> {
        // Static gate first: nothing is locked or logged for a plan the
        // linter rejects.
        let linter = PlanLinter::new();
        let total_steps: usize = plans.values().map(ReconfigurationPlan::len).sum();
        if let Some(o) = &self.obs {
            let mut o = o.borrow_mut();
            for _ in 0..total_steps {
                o.charge(Primitive::Alu);
            }
            o.metrics.counter_add("txn.lint.plans", plans.len() as u64);
        }
        for plan in plans.values() {
            let report = linter.lint_one(plan);
            if report.has_errors() {
                if let Some(o) = &self.obs {
                    let mut o = o.borrow_mut();
                    o.instant("txn", "lint:rejected", Vec::new());
                    o.metrics.counter_add("txn.lint.rejected", 1);
                }
                return Err(TxnError::LintRejected(report));
            }
        }

        let shard_ids: Vec<ShardId> = plans.keys().map(|id| ShardId(*id)).collect();
        let gtxn = self.log.begin(shard_ids, now);
        self.bill(Primitive::Store);
        let span = self.obs.as_ref().map(|o| o.borrow_mut().begin("txn", "cross_switch"));

        // Growing phase: lock every touched instance, shard-qualified, in
        // global sorted order so the coordinator itself cannot deadlock.
        let mut resources: BTreeSet<String> = BTreeSet::new();
        for (id, plan) in plans {
            for step in PlanStep::decompose(plan) {
                for inst in step.footprint() {
                    resources.insert(format!("s{id}/{inst}"));
                }
            }
        }
        for r in &resources {
            self.bill(Primitive::Branch);
            match self.locks.acquire(gtxn, r, LockMode::Exclusive) {
                LockOutcome::Granted => {}
                LockOutcome::Waiting { holders } => {
                    // A single coordinator never waits: the conflict means a
                    // crashed-but-unrecovered transaction still holds the
                    // resource, or a genuine deadlock. Either way this
                    // transaction aborts without having touched any shard.
                    let verdict = self.locks.detect_deadlock();
                    self.locks.release_all(gtxn);
                    self.log.append(TxnRecord::End { gtxn });
                    self.bill(Primitive::Store);
                    self.log.truncate_ended();
                    self.aborted = self.aborted.saturating_add(1);
                    if let (Some(o), Some(span)) = (&self.obs, span) {
                        let mut o = o.borrow_mut();
                        o.end_with(
                            span,
                            vec![("outcome", "lock_conflict".to_owned()), ("resource", r.clone())],
                        );
                        o.metrics.counter_add("txn.lock.conflicts", 1);
                    }
                    return Err(match verdict {
                        Some(dl) if dl.victim == gtxn => TxnError::Deadlock { cycle: dl.cycle },
                        _ => TxnError::LockConflict { resource: r.clone(), holders },
                    });
                }
            }
        }
        if let Some(o) = &self.obs {
            o.borrow_mut().metrics.counter_add("txn.lock.granted", resources.len() as u64);
        }

        if hook.crash(&TxnCrashSite::BeforePrepare) {
            return self.crash_out(span, &TxnCrashSite::BeforePrepare, 0, 0);
        }

        // Prepare phase: every shard applies its sub-plan and votes.
        let mut applied: BTreeMap<u32, Vec<(usize, StepRecord)>> = BTreeMap::new();
        let mut intents: Vec<u32> = Vec::new();
        let mut forward_steps = 0usize;
        for (id, plan) in plans {
            let dc = shards.get_mut(id).expect("plan names an unknown shard");
            self.log.append(TxnRecord::Intent { gtxn, shard: ShardId(*id), steps: plan.len() });
            self.bill(Primitive::Store);
            intents.push(*id);
            for (index, step) in PlanStep::decompose(plan).iter().enumerate() {
                let injected = match step {
                    PlanStep::Unbind(b) => {
                        faults.fail_unbind(b).map(|r| (format!("unbind {} -- {}", b.from, b.to), r))
                    }
                    PlanStep::Stop(name, _) => {
                        faults.fail_stop(name).map(|r| (format!("stop {name}"), r))
                    }
                    PlanStep::Bind(b) => {
                        faults.fail_bind(b).map(|r| (format!("bind {} -- {}", b.from, b.to), r))
                    }
                    PlanStep::Start(..) => None,
                };
                if let Some((desc, reason)) = injected {
                    return self.abort_path(
                        shards,
                        span,
                        gtxn,
                        &intents,
                        &mut applied,
                        forward_steps,
                        TxnError::Injected { shard: *id, step: desc, reason },
                        faults,
                        hook,
                    );
                }
                let record = match dc.apply_step(step, now) {
                    Ok(r) => r,
                    Err(reason) => {
                        return self.abort_path(
                            shards,
                            span,
                            gtxn,
                            &intents,
                            &mut applied,
                            forward_steps,
                            TxnError::StepFailed { shard: *id, step: format!("{step:?}"), reason },
                            faults,
                            hook,
                        );
                    }
                };
                self.log.append(TxnRecord::Applied {
                    gtxn,
                    shard: ShardId(*id),
                    index,
                    step: record.clone(),
                });
                self.bill(Primitive::Store);
                applied.entry(*id).or_default().push((index, record));
                forward_steps += 1;
                let site = TxnCrashSite::ShardStep { shard: *id, index };
                if hook.crash(&site) {
                    return self.crash_out(span, &site, forward_steps, 0);
                }
            }
            // The vote is forced: a prepared shard must survive a crash.
            self.log.append(TxnRecord::Prepared { gtxn, shard: ShardId(*id) });
            self.bill(Primitive::Store);
            self.bill(Primitive::LogForce);
            if let Some(o) = &self.obs {
                o.borrow_mut().metrics.counter_add("txn.log.force", 1);
            }
            let site = TxnCrashSite::ShardPrepared { shard: *id };
            if hook.crash(&site) {
                return self.crash_out(span, &site, forward_steps, 0);
            }
        }

        // The commit point.
        if hook.crash(&TxnCrashSite::BeforeDecision) {
            return self.crash_out(span, &TxnCrashSite::BeforeDecision, forward_steps, 0);
        }
        self.log.append(TxnRecord::Commit { gtxn });
        self.bill(Primitive::Store);
        self.bill(Primitive::LogForce);
        if let Some(o) = &self.obs {
            o.borrow_mut().metrics.counter_add("txn.log.force", 1);
        }
        if hook.crash(&TxnCrashSite::AfterDecision) {
            return self.crash_out(span, &TxnCrashSite::AfterDecision, forward_steps, 0);
        }

        // Commit fan-out.
        for (id, records) in &applied {
            let dc = shards.get_mut(id).expect("shard vanished mid-fanout");
            let steps: Vec<StepRecord> = records.iter().map(|(_, s)| s.clone()).collect();
            if let Err(reason) = dc.persist_steps(&steps) {
                // Committed but not yet persisted everywhere: leave the log
                // open, recovery finishes the fan-out.
                self.crashes = self.crashes.saturating_add(1);
                if let (Some(o), Some(span)) = (&self.obs, span) {
                    let mut o = o.borrow_mut();
                    o.end_with(span, vec![("outcome", "store_failed".to_owned())]);
                    o.metrics.counter_add("txn.switch.crashed", 1);
                }
                return Err(TxnError::Store { shard: *id, reason });
            }
            self.log.append(TxnRecord::ShardCommitted { gtxn, shard: ShardId(*id) });
            self.bill(Primitive::Store);
            let site = TxnCrashSite::ShardCommitted { shard: *id };
            if hook.crash(&site) {
                return self.crash_out(span, &site, forward_steps, 0);
            }
        }
        self.log.append(TxnRecord::End { gtxn });
        self.bill(Primitive::Store);
        self.log.truncate_ended();
        let released = self.locks.release_all(gtxn);
        self.committed = self.committed.saturating_add(1);
        if let (Some(o), Some(span)) = (&self.obs, span) {
            let mut o = o.borrow_mut();
            o.charge(Primitive::SchedSteps(forward_steps as u32));
            o.end_with(
                span,
                vec![
                    ("outcome", "committed".to_owned()),
                    ("shards", plans.len().to_string()),
                    ("steps", forward_steps.to_string()),
                ],
            );
            o.metrics.counter_add("txn.switch.committed", 1);
            o.metrics.counter_add("txn.prepare.shards", plans.len() as u64);
            o.metrics.counter_add("txn.lock.released", released as u64);
        }
        Ok(CrossShardReport { gtxn, shards: plans.len(), steps: forward_steps, completed_at: now })
    }

    /// The abort path: compensate every applied step in reverse (newest
    /// shard first, newest step first), log the abort fan-out, end the
    /// transaction. Presumed abort — no decision record is written.
    #[allow(clippy::too_many_arguments)]
    fn abort_path(
        &mut self,
        shards: &mut BTreeMap<u32, DataComponent>,
        span: Option<obs::SpanId>,
        gtxn: u64,
        intents: &[u32],
        applied: &mut BTreeMap<u32, Vec<(usize, StepRecord)>>,
        forward_steps: usize,
        cause: TxnError,
        faults: &mut dyn StepFaults,
        hook: &mut dyn TxnCrashHook,
    ) -> Result<CrossShardReport, TxnError> {
        let mut undos = 0usize;
        let mut residue: Vec<String> = Vec::new();
        for id in intents.iter().rev() {
            let dc = shards.get_mut(id).expect("shard vanished mid-abort");
            for (index, record) in applied.remove(id).unwrap_or_default().into_iter().rev() {
                let desc = record.undo_describe();
                if let Some(reason) = faults.fail_rollback(&desc) {
                    residue.push(format!("s{id} {desc}: {reason}"));
                    continue;
                }
                if let Err(err) = dc.undo_step(&record) {
                    residue.push(format!("s{id} {desc}: {err}"));
                    continue;
                }
                undos += 1;
                self.log.append(TxnRecord::Undone { gtxn, shard: ShardId(*id), index });
                self.bill(Primitive::Store);
                let site = TxnCrashSite::ShardUndone { shard: *id, undos };
                if hook.crash(&site) {
                    return self.crash_out(span, &site, forward_steps, undos);
                }
            }
            self.log.append(TxnRecord::ShardAborted { gtxn, shard: ShardId(*id) });
            self.bill(Primitive::Store);
            let site = TxnCrashSite::ShardAborted { shard: *id };
            if hook.crash(&site) {
                return self.crash_out(span, &site, forward_steps, undos);
            }
        }
        if !residue.is_empty() {
            // Leave the log open: recovery retries the leftover undos.
            if let (Some(o), Some(span)) = (&self.obs, span) {
                let mut o = o.borrow_mut();
                o.charge(Primitive::SchedSteps((forward_steps + undos) as u32));
                o.end_with(
                    span,
                    vec![
                        ("outcome", "rollback_incomplete".to_owned()),
                        ("residue", residue.len().to_string()),
                    ],
                );
                o.metrics.counter_add("txn.switch.rollbacks_incomplete", 1);
            }
            return Err(TxnError::RollbackIncomplete { cause: cause.to_string(), residue });
        }
        self.log.append(TxnRecord::End { gtxn });
        self.bill(Primitive::Store);
        self.log.truncate_ended();
        let released = self.locks.release_all(gtxn);
        self.aborted = self.aborted.saturating_add(1);
        if let (Some(o), Some(span)) = (&self.obs, span) {
            let mut o = o.borrow_mut();
            // Forward steps ran AND were undone: bill both directions.
            o.charge(Primitive::SchedSteps((forward_steps + undos) as u32));
            o.end_with(
                span,
                vec![
                    ("outcome", "rolled_back".to_owned()),
                    ("undos", undos.to_string()),
                    ("cause", cause.to_string()),
                ],
            );
            o.metrics.counter_add("txn.switch.rolled_back", 1);
            o.metrics.counter_add("txn.lock.released", released as u64);
        }
        Err(cause)
    }

    /// A crash at `site`: no rollback, no lock release — the log is the
    /// ledger and recovery settles it.
    fn crash_out(
        &mut self,
        span: Option<obs::SpanId>,
        site: &TxnCrashSite,
        forward: usize,
        undos: usize,
    ) -> Result<CrossShardReport, TxnError> {
        self.crashes = self.crashes.saturating_add(1);
        if let (Some(o), Some(span)) = (&self.obs, span) {
            let mut o = o.borrow_mut();
            if forward + undos > 0 {
                o.charge(Primitive::SchedSteps((forward + undos) as u32));
            }
            o.end_with(span, vec![("outcome", "crashed".to_owned()), ("site", site.to_string())]);
            o.metrics.counter_add("txn.switch.crashed", 1);
        }
        Err(TxnError::Crashed { site: site.to_string() })
    }

    /// Replay the shared log after a crash. Every open transaction lands
    /// in exactly one of two global states: a decision record rolls it
    /// *forward* (missing fan-out is completed, store persistence
    /// replayed idempotently); no decision rolls it *back* (presumed
    /// abort — every applied-not-yet-undone step is compensated, newest
    /// first). In-doubt participants are resolved by that same log read.
    /// Idempotent: a settled log scans clean and touches nothing.
    pub fn recover(
        &mut self,
        shards: &mut BTreeMap<u32, DataComponent>,
        hook: &mut dyn TxnCrashHook,
    ) -> TxnRecoveryReport {
        let scanned = self.log.len();
        if scanned == 0 {
            return TxnRecoveryReport {
                outcome: RecoveryOutcome::Clean,
                scanned: 0,
                undone: 0,
                in_doubt_resolved: 0,
                forward: 0,
                back: 0,
                residue: Vec::new(),
            };
        }
        let span = self.obs.as_ref().map(|o| o.borrow_mut().begin("txn", "recover"));
        if let Some(o) = &self.obs {
            let mut o = o.borrow_mut();
            for _ in 0..scanned {
                o.charge(Primitive::Load);
            }
        }
        let mut undone = 0usize;
        let mut resolved = 0usize;
        let mut forward = 0usize;
        let mut back = 0usize;
        let mut residue: Vec<String> = Vec::new();
        let mut crashed = false;
        'txns: for t in self.log.open_txns() {
            let in_doubt = t.in_doubt().len();
            // Residue is tracked per transaction (residue[txn_mark..] is
            // this transaction's): one stuck undo must not block another
            // transaction's End, and a failed persist must keep *this*
            // transaction open — never appended as ended — so a later
            // pass retries the idempotent persist from the live log.
            let txn_mark = residue.len();
            if t.decided {
                // Roll forward: complete the commit fan-out.
                for sid in &t.shards {
                    let p = t.progress.get(sid).cloned().unwrap_or_default();
                    if p.committed {
                        continue;
                    }
                    if let Some(dc) = shards.get_mut(&sid.0) {
                        let steps: Vec<StepRecord> =
                            p.applied.iter().map(|(_, s)| s.clone()).collect();
                        if let Err(e) = dc.persist_steps(&steps) {
                            residue.push(format!("{sid} persist: {e}"));
                            continue;
                        }
                    }
                    self.log.append(TxnRecord::ShardCommitted { gtxn: t.gtxn, shard: *sid });
                    self.bill(Primitive::Store);
                    let site = TxnCrashSite::ShardCommitted { shard: sid.0 };
                    if hook.crash(&site) {
                        crashed = true;
                        break 'txns;
                    }
                }
                resolved += in_doubt;
                if residue.len() == txn_mark {
                    self.log.append(TxnRecord::End { gtxn: t.gtxn });
                    self.bill(Primitive::Store);
                    forward += 1;
                    self.committed = self.committed.saturating_add(1);
                }
            } else {
                // Presumed abort: the prepared shards queried the log and
                // found no decision — roll everything back.
                resolved += in_doubt;
                for sid in t.shards.iter().rev() {
                    let p = t.progress.get(sid).cloned().unwrap_or_default();
                    let shard_mark = residue.len();
                    if let Some(dc) = shards.get_mut(&sid.0) {
                        for (index, record) in p.pending_undo() {
                            if let Err(e) = dc.undo_step(&record) {
                                residue.push(format!("{sid} [{index}]: {e}"));
                                continue;
                            }
                            undone += 1;
                            self.log.append(TxnRecord::Undone { gtxn: t.gtxn, shard: *sid, index });
                            self.bill(Primitive::Store);
                            self.bill(Primitive::SchedSteps(1));
                            if hook.crash(&TxnCrashSite::RecoveryUndo { undos: undone }) {
                                crashed = true;
                                break 'txns;
                            }
                        }
                    }
                    // Abort fan-out reaches a shard only once its
                    // compensation completed: a shard whose undo left
                    // residue stays un-aborted in the log so the record
                    // order never claims more than actually happened.
                    if !p.aborted && residue.len() == shard_mark {
                        self.log.append(TxnRecord::ShardAborted { gtxn: t.gtxn, shard: *sid });
                        self.bill(Primitive::Store);
                    }
                }
                if residue.len() == txn_mark {
                    self.log.append(TxnRecord::End { gtxn: t.gtxn });
                    self.bill(Primitive::Store);
                    back += 1;
                    self.aborted = self.aborted.saturating_add(1);
                }
            }
            if residue.len() == txn_mark {
                self.locks.release_all(t.gtxn);
            }
        }
        if !crashed {
            self.log.truncate_ended();
        }
        let outcome = if crashed {
            RecoveryOutcome::Crashed
        } else if !residue.is_empty() {
            RecoveryOutcome::Incomplete
        } else if forward > 0 {
            RecoveryOutcome::RolledForward
        } else if back > 0 {
            RecoveryOutcome::RolledBack
        } else {
            RecoveryOutcome::Clean
        };
        self.recoveries = self.recoveries.saturating_add(1);
        self.in_doubt_resolved = self.in_doubt_resolved.saturating_add(resolved as u64);
        if let (Some(o), Some(span)) = (&self.obs, span) {
            let mut o = o.borrow_mut();
            o.end_with(
                span,
                vec![
                    ("outcome", outcome.to_string()),
                    ("scanned", scanned.to_string()),
                    ("undone", undone.to_string()),
                    ("in_doubt_resolved", resolved.to_string()),
                ],
            );
            o.metrics.counter_add("txn.recovery.runs", 1);
            o.metrics.counter_add("txn.recovery.records_scanned", scanned as u64);
            o.metrics.counter_add("txn.recovery.steps_undone", undone as u64);
            o.metrics.counter_add("txn.recovery.in_doubt_resolved", resolved as u64);
            o.metrics.counter_add("txn.log.replay_len", scanned as u64);
        }
        TxnRecoveryReport {
            outcome,
            scanned,
            undone,
            in_doubt_resolved: resolved,
            forward,
            back,
            residue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::{NoTxnCrash, PlannedTxnCrash, TxnCrashPoint};
    use adl::ast::{Binding, PortRef};
    use compkit::runtime::LiveComponent;
    use compkit::NoFaults;

    fn binding(fi: &str, fp: &str, ti: &str, tp: &str) -> Binding {
        Binding { from: PortRef::on(fi, fp), to: PortRef::on(ti, tp) }
    }

    /// Two shards: s0 runs `codec` bound to `route`; s1 runs `sink`.
    /// The cross-shard plan migrates `codec` from s0 to s1.
    fn world() -> (BTreeMap<u32, DataComponent>, BTreeMap<u32, ReconfigurationPlan>) {
        let mut shards = BTreeMap::new();
        let mut s0 = DataComponent::new(ShardId(0));
        s0.runtime_mut()
            .start("route", LiveComponent { ty: "Route".into(), state: vec![7], started_at: 0 })
            .unwrap();
        s0.runtime_mut()
            .start("codec", LiveComponent { ty: "Codec".into(), state: vec![1, 2], started_at: 0 })
            .unwrap();
        s0.runtime_mut().bind(binding("route", "out", "codec", "in")).unwrap();
        let mut s1 = DataComponent::new(ShardId(1));
        s1.runtime_mut()
            .start("sink", LiveComponent { ty: "Sink".into(), state: vec![9], started_at: 0 })
            .unwrap();
        shards.insert(0, s0);
        shards.insert(1, s1);
        let mut plans = BTreeMap::new();
        plans.insert(
            0,
            ReconfigurationPlan {
                unbind: vec![binding("route", "out", "codec", "in")],
                stop: vec![("codec".into(), "Codec".into())],
                ..Default::default()
            },
        );
        plans.insert(
            1,
            ReconfigurationPlan {
                start: vec![("codec".into(), "Codec".into())],
                bind: vec![binding("codec", "out", "sink", "in")],
                ..Default::default()
            },
        );
        (shards, plans)
    }

    fn digests(shards: &BTreeMap<u32, DataComponent>) -> Vec<u64> {
        shards.values().map(DataComponent::digest).collect()
    }

    #[test]
    fn clean_cross_shard_switch_commits_on_all_shards() {
        let (mut shards, plans) = world();
        let before = digests(&shards);
        let mut tc = TransactionCore::new();
        let report = tc
            .execute_cross_shard(&mut shards, &plans, 40, &mut NoFaults, &mut NoTxnCrash)
            .unwrap();
        assert_eq!(report.shards, 2);
        assert_eq!(report.steps, 4);
        assert_ne!(digests(&shards), before);
        assert!(shards[&0].runtime().component("codec").is_none());
        assert!(shards[&1].runtime().component("codec").is_some());
        assert_eq!(tc.committed(), 1);
        assert!(tc.log().is_empty(), "resolved txns are reclaimed");
        assert_eq!(tc.locks().held_total(), 0, "strict 2PL released everything");
    }

    #[test]
    fn injected_bind_fault_rolls_back_every_shard() {
        let (mut shards, plans) = world();
        let before = digests(&shards);
        let mut tc = TransactionCore::new();
        #[derive(Debug)]
        struct FailBind;
        impl StepFaults for FailBind {
            fn fail_bind(&mut self, _b: &Binding) -> Option<String> {
                Some("injected".into())
            }
        }
        let err = tc
            .execute_cross_shard(&mut shards, &plans, 40, &mut FailBind, &mut NoTxnCrash)
            .unwrap_err();
        assert!(matches!(err, TxnError::Injected { shard: 1, .. }));
        assert_eq!(digests(&shards), before, "all shards back to the initial state");
        assert_eq!(tc.aborted(), 1);
        assert!(tc.log().is_empty());
        assert_eq!(tc.locks().held_total(), 0);
    }

    #[test]
    fn crash_before_decision_recovers_to_rollback_everywhere() {
        let (mut shards, plans) = world();
        let before = digests(&shards);
        let mut tc = TransactionCore::new();
        let mut hook = PlannedTxnCrash::new(TxnCrashPoint::BeforeDecision);
        let err =
            tc.execute_cross_shard(&mut shards, &plans, 40, &mut NoFaults, &mut hook).unwrap_err();
        assert!(matches!(err, TxnError::Crashed { .. }));
        assert!(hook.fired());
        assert!(!tc.log().is_empty(), "the open txn survives the crash");
        assert!(tc.locks().held_total() > 0, "crashed txn still holds its locks");
        let report = tc.recover(&mut shards, &mut NoTxnCrash);
        assert_eq!(report.outcome, RecoveryOutcome::RolledBack);
        assert_eq!(report.in_doubt_resolved, 2, "both prepared shards were in doubt");
        assert_eq!(digests(&shards), before);
        assert_eq!(tc.locks().held_total(), 0);
        assert!(tc.recover(&mut shards, &mut NoTxnCrash).noop(), "second recovery is a noop");
    }

    #[test]
    fn crash_after_decision_recovers_to_commit_everywhere() {
        let (mut shards, plans) = world();
        let mut tc = TransactionCore::new();
        let committed_world = {
            let (mut s, p) = world();
            TransactionCore::new()
                .execute_cross_shard(&mut s, &p, 40, &mut NoFaults, &mut NoTxnCrash)
                .unwrap();
            s
        };
        let mut hook = PlannedTxnCrash::new(TxnCrashPoint::AfterDecision);
        tc.execute_cross_shard(&mut shards, &plans, 40, &mut NoFaults, &mut hook).unwrap_err();
        let report = tc.recover(&mut shards, &mut NoTxnCrash);
        assert_eq!(report.outcome, RecoveryOutcome::RolledForward);
        assert_eq!(report.in_doubt_resolved, 2);
        assert_eq!(digests(&shards), digests(&committed_world));
        assert_eq!(tc.committed(), 1);
    }

    #[test]
    fn crash_during_recovery_resumes_idempotently() {
        let (mut shards, plans) = world();
        let before = digests(&shards);
        let mut tc = TransactionCore::new();
        let mut hook = PlannedTxnCrash::new(TxnCrashPoint::BeforeDecision);
        tc.execute_cross_shard(&mut shards, &plans, 40, &mut NoFaults, &mut hook).unwrap_err();
        let mut rhook = PlannedTxnCrash::new(TxnCrashPoint::DuringRecovery { after_undos: 1 });
        let r1 = tc.recover(&mut shards, &mut rhook);
        assert_eq!(r1.outcome, RecoveryOutcome::Crashed);
        assert!(rhook.fired());
        let r2 = tc.recover(&mut shards, &mut NoTxnCrash);
        assert_eq!(r2.outcome, RecoveryOutcome::RolledBack);
        assert!(r2.undone < 4, "the undo done before the recovery crash is not redone");
        assert_eq!(digests(&shards), before);
        assert!(tc.recover(&mut shards, &mut NoTxnCrash).noop());
    }

    #[test]
    fn store_failure_during_roll_forward_keeps_txn_open_for_retry() {
        use compkit::journal::NoCrash;
        use store::StorageEngine;
        let (mut shards, plans) = world();
        shards.get_mut(&1).unwrap().attach_store(StorageEngine::new(8));
        let mut tc = TransactionCore::new();
        let mut hook = PlannedTxnCrash::new(TxnCrashPoint::AfterDecision);
        tc.execute_cross_shard(&mut shards, &plans, 40, &mut NoFaults, &mut hook).unwrap_err();
        // s1's engine is down when recovery tries to finish the fan-out.
        shards.get_mut(&1).unwrap().store_mut().unwrap().crash();
        let r1 = tc.recover(&mut shards, &mut NoTxnCrash);
        assert_eq!(r1.outcome, RecoveryOutcome::Incomplete);
        assert_eq!(r1.residue.len(), 1);
        assert_eq!(r1.forward, 0);
        assert_eq!(tc.committed(), 0, "not counted committed until the fan-out lands");
        assert!(!tc.log().is_empty(), "the decided txn stays open for retry");
        assert!(tc.locks().held_total() > 0, "its locks are held until it ends");
        // The engine comes back; a later pass retries the idempotent
        // persist and settles the transaction.
        shards.get_mut(&1).unwrap().store_mut().unwrap().recover(&mut NoCrash).unwrap();
        let r2 = tc.recover(&mut shards, &mut NoTxnCrash);
        assert_eq!(r2.outcome, RecoveryOutcome::RolledForward);
        assert_eq!(tc.committed(), 1);
        assert!(tc.log().is_empty());
        assert_eq!(tc.locks().held_total(), 0);
        let key = shards[&1].store_key("codec");
        assert!(
            shards.get_mut(&1).unwrap().store_mut().unwrap().get(key).unwrap().is_some(),
            "the committed shard's durable state survived the failed pass"
        );
        assert!(tc.recover(&mut shards, &mut NoTxnCrash).noop());
    }

    #[test]
    fn residue_in_one_txn_does_not_block_anothers_rollback() {
        let (mut shards, plans) = world();
        // An extra unbound instance gives the first txn a disjoint footprint.
        shards
            .get_mut(&0)
            .unwrap()
            .runtime_mut()
            .start("aux", LiveComponent { ty: "Aux".into(), state: vec![4], started_at: 0 })
            .unwrap();
        let mut tc = TransactionCore::new();
        let mut aux_plans = BTreeMap::new();
        aux_plans.insert(
            0,
            ReconfigurationPlan { stop: vec![("aux".into(), "Aux".into())], ..Default::default() },
        );
        let mut hook = PlannedTxnCrash::new(TxnCrashPoint::BeforeDecision);
        tc.execute_cross_shard(&mut shards, &aux_plans, 40, &mut NoFaults, &mut hook).unwrap_err();
        let mut hook = PlannedTxnCrash::new(TxnCrashPoint::BeforeDecision);
        tc.execute_cross_shard(&mut shards, &plans, 41, &mut NoFaults, &mut hook).unwrap_err();
        // Sabotage gtxn 0's compensation: restart `aux` out-of-band so
        // the undo (a start) collides.
        shards
            .get_mut(&0)
            .unwrap()
            .runtime_mut()
            .start("aux", LiveComponent { ty: "Aux".into(), state: vec![4], started_at: 9 })
            .unwrap();
        let r1 = tc.recover(&mut shards, &mut NoTxnCrash);
        assert_eq!(r1.outcome, RecoveryOutcome::Incomplete);
        assert_eq!(r1.residue.len(), 1);
        assert_eq!(r1.back, 1, "the clean txn still rolls back in the same pass");
        assert_eq!(tc.aborted(), 1);
        assert!(tc.locks().held_by(1).is_empty(), "the clean txn released its locks");
        assert!(!tc.locks().held_by(0).is_empty(), "the stuck txn keeps its locks");
        let live = tc.log().render();
        assert!(live.contains("gtxn=0"), "the stuck txn stays open");
        assert!(!live.contains("gtxn=1"), "the clean txn is reclaimed");
        assert!(
            !live.contains("shard-aborted gtxn=0"),
            "no abort fan-out is claimed for a shard whose undo left residue"
        );
        // Clear the sabotage; the next pass settles the stuck txn too.
        shards.get_mut(&0).unwrap().runtime_mut().stop("aux").unwrap();
        let r2 = tc.recover(&mut shards, &mut NoTxnCrash);
        assert_eq!(r2.outcome, RecoveryOutcome::RolledBack);
        assert_eq!(tc.aborted(), 2);
        assert_eq!(tc.locks().held_total(), 0);
        assert!(tc.recover(&mut shards, &mut NoTxnCrash).noop());
    }

    #[test]
    fn conflicting_transaction_aborts_while_crashed_txn_holds_locks() {
        let (mut shards, plans) = world();
        let mut tc = TransactionCore::new();
        let mut hook = PlannedTxnCrash::new(TxnCrashPoint::AfterPrepare { shard: 0 });
        tc.execute_cross_shard(&mut shards, &plans, 40, &mut NoFaults, &mut hook).unwrap_err();
        // A second switch touching the same instances cannot proceed.
        let err = tc
            .execute_cross_shard(&mut shards, &plans, 41, &mut NoFaults, &mut NoTxnCrash)
            .unwrap_err();
        assert!(matches!(err, TxnError::LockConflict { .. }));
        // Recovery releases the crashed transaction's locks; a retry works.
        tc.recover(&mut shards, &mut NoTxnCrash);
        tc.execute_cross_shard(&mut shards, &plans, 42, &mut NoFaults, &mut NoTxnCrash).unwrap();
        assert_eq!(tc.committed(), 1);
    }

    #[test]
    fn lint_rejection_logs_and_locks_nothing() {
        let (mut shards, _) = world();
        let mut tc = TransactionCore::new();
        // A plan binding a stopped instance is intrinsically broken.
        let mut plans = BTreeMap::new();
        plans.insert(
            0,
            ReconfigurationPlan {
                stop: vec![("codec".into(), "Codec".into())],
                bind: vec![binding("codec", "out", "route", "in")],
                ..Default::default()
            },
        );
        let err = tc
            .execute_cross_shard(&mut shards, &plans, 40, &mut NoFaults, &mut NoTxnCrash)
            .unwrap_err();
        assert!(matches!(err, TxnError::LintRejected(_)));
        assert!(tc.log().is_empty());
        assert_eq!(tc.locks().held_total(), 0);
    }
}
