//! Per-shard data components: the state half of the unbundling.
//!
//! A [`DataComponent`] owns one shard's [`Runtime`] (live component
//! instances and bindings), its [`StateManager`] archive, a component
//! factory, and — optionally — a [`StorageEngine`] for durable atom
//! state. It exposes *logged operations only*: the transaction core
//! decomposes a [`ReconfigurationPlan`] into [`PlanStep`]s, the shard
//! applies them one at a time and hands back the [`StepRecord`] that
//! goes into the shared log, and compensation replays those records
//! backwards. The shard itself holds no transaction state: whether its
//! work survives is decided entirely by the transactional component's
//! log, which is what makes in-doubt resolution a pure log read.
//!
//! Store interop: when a [`StorageEngine`] is attached, commit fan-out
//! persists the shard's switched component state through the engine's
//! own write-ahead log ([`DataComponent::persist_commit`]) — a store
//! transaction nested inside the cross-shard one, billed and recovered
//! by the store's machinery. Persistence is logical (put value / delete
//! key), so replaying it during roll-forward recovery is idempotent.

use crate::log::ShardId;
use adl::ast::Binding;
use adl::diff::ReconfigurationPlan;
use compkit::journal::StepRecord;
use compkit::runtime::{BasicFactory, ComponentFactory, Runtime};
use compkit::state::StateManager;
use store::{StorageEngine, StoreOp};

/// One step of a shard sub-plan, in execution order
/// (unbind → stop → start → bind).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanStep {
    /// Remove a binding.
    Unbind(Binding),
    /// Stop an instance (name, type), archiving its state.
    Stop(String, String),
    /// Start an instance (name, type).
    Start(String, String),
    /// Establish a binding.
    Bind(Binding),
}

impl PlanStep {
    /// Decompose `plan` into its ordered steps.
    #[must_use]
    pub fn decompose(plan: &ReconfigurationPlan) -> Vec<PlanStep> {
        let mut steps = Vec::with_capacity(plan.len());
        for b in &plan.unbind {
            steps.push(PlanStep::Unbind(b.clone()));
        }
        for (n, t) in &plan.stop {
            steps.push(PlanStep::Stop(n.clone(), t.clone()));
        }
        for (n, t) in &plan.start {
            steps.push(PlanStep::Start(n.clone(), t.clone()));
        }
        for b in &plan.bind {
            steps.push(PlanStep::Bind(b.clone()));
        }
        steps
    }

    /// The instances this step touches — the shard-local lock footprint
    /// (composite-own ports have no instance and lock nothing).
    #[must_use]
    pub fn footprint(&self) -> Vec<String> {
        match self {
            PlanStep::Unbind(b) | PlanStep::Bind(b) => {
                [&b.from, &b.to].iter().filter_map(|r| r.instance.clone()).collect()
            }
            PlanStep::Stop(n, _) | PlanStep::Start(n, _) => vec![n.clone()],
        }
    }
}

/// A shard: one runtime's worth of live state behind a logged-operation
/// interface.
#[derive(Debug)]
pub struct DataComponent {
    id: ShardId,
    runtime: Runtime,
    states: StateManager,
    factory: BasicFactory,
    store: Option<StorageEngine>,
}

impl DataComponent {
    /// An empty shard.
    #[must_use]
    pub fn new(id: ShardId) -> Self {
        Self {
            id,
            runtime: Runtime::new(),
            states: StateManager::new(),
            factory: BasicFactory,
            store: None,
        }
    }

    /// The shard id.
    #[must_use]
    pub fn id(&self) -> ShardId {
        self.id
    }

    /// The shard's runtime (read-only; mutation goes through steps).
    #[must_use]
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Direct runtime access for scenario *boot* only — transactional
    /// mutation must go through [`DataComponent::apply_step`].
    pub fn runtime_mut(&mut self) -> &mut Runtime {
        &mut self.runtime
    }

    /// The shard's state archive.
    #[must_use]
    pub fn states(&self) -> &StateManager {
        &self.states
    }

    /// Attach a storage engine for durable atom persistence.
    pub fn attach_store(&mut self, engine: StorageEngine) {
        self.store = Some(engine);
    }

    /// The attached storage engine, if any.
    #[must_use]
    pub fn store(&self) -> Option<&StorageEngine> {
        self.store.as_ref()
    }

    /// Mutable engine access (reads fault pages, so even `get` is `mut`).
    pub fn store_mut(&mut self) -> Option<&mut StorageEngine> {
        self.store.as_mut()
    }

    /// Apply one step, returning the log record that makes it redo- and
    /// undo-able. Mirrors the single-shard switch semantics exactly:
    /// stop archives state, start consults the factory.
    pub fn apply_step(&mut self, step: &PlanStep, now: u64) -> Result<StepRecord, String> {
        match step {
            PlanStep::Unbind(b) => {
                self.runtime.unbind(b).map_err(|e| e.to_string())?;
                Ok(StepRecord::Unbound(b.clone()))
            }
            PlanStep::Stop(name, _ty) => {
                let comp = self.runtime.stop(name).map_err(|e| e.to_string())?;
                self.states.archive(name, comp.state.clone());
                Ok(StepRecord::Stopped { name: name.clone(), comp })
            }
            PlanStep::Start(name, ty) => {
                let comp = self
                    .factory
                    .create(name, ty, now)
                    .map_err(|e| format!("create {}: {}", e.name, e.reason))?;
                self.runtime.start(name, comp).map_err(|e| e.to_string())?;
                Ok(StepRecord::Started { name: name.clone() })
            }
            PlanStep::Bind(b) => {
                self.runtime.bind(b.clone()).map_err(|e| e.to_string())?;
                Ok(StepRecord::Bound(b.clone()))
            }
        }
    }

    /// Compensate one applied step (the record knows how).
    pub fn undo_step(&mut self, record: &StepRecord) -> Result<(), String> {
        record.undo(&mut self.runtime, &mut self.states)
    }

    /// Deterministic digest of the shard's live state: instances with
    /// their full state bytes, then bindings, FNV-1a hashed.
    #[must_use]
    pub fn digest(&self) -> u64 {
        use std::fmt::Write as _;
        let mut text = String::new();
        let names: Vec<String> = self.runtime.instance_names().map(ToOwned::to_owned).collect();
        for name in names {
            if let Some(c) = self.runtime.component(&name) {
                let hex: String = c.state.iter().map(|b| format!("{b:02x}")).collect();
                let _ = writeln!(text, "{name}:{}@{}={hex}", c.ty, c.started_at);
            }
        }
        for b in self.runtime.bindings() {
            let _ = writeln!(text, "{} -- {}", b.from, b.to);
        }
        obs::fnv1a(text.as_bytes())
    }

    /// Durable key for an instance: shard-qualified so many shards can
    /// share one key space without colliding.
    #[must_use]
    pub fn store_key(&self, instance: &str) -> u64 {
        obs::fnv1a(format!("{}/{instance}", self.id).as_bytes())
    }

    /// Commit fan-out persistence: replay the transaction's applied
    /// [`StepRecord`]s against the attached engine — started instances'
    /// current state is written, stopped instances' keys are deleted —
    /// as one committed store transaction through the store WAL. The
    /// records are exactly what the transaction log holds, so recovery
    /// can roll a shard forward from the log alone; ops are logical and
    /// therefore idempotent. No-op without an attached store.
    pub fn persist_steps(&mut self, records: &[StepRecord]) -> Result<usize, String> {
        let Some(engine) = self.store.as_mut() else {
            return Ok(0);
        };
        let mut ops = Vec::new();
        for r in records {
            match r {
                StepRecord::Started { name } => {
                    if let Some(c) = self.runtime.component(name) {
                        let key = obs::fnv1a(format!("{}/{name}", self.id).as_bytes());
                        ops.push(StoreOp::Put { key, value: c.state.clone() });
                    }
                }
                StepRecord::Stopped { name, .. } => {
                    let key = obs::fnv1a(format!("{}/{name}", self.id).as_bytes());
                    let present = engine.get(key).map_err(|e| e.to_string())?.is_some();
                    if present {
                        ops.push(StoreOp::Delete { key });
                    }
                }
                StepRecord::Unbound(_) | StepRecord::Bound(_) => {}
            }
        }
        if ops.is_empty() {
            return Ok(0);
        }
        let n = ops.len();
        engine.apply(&ops).map_err(|e| e.to_string())?;
        Ok(n)
    }

    /// Digest of the durable store state (`None` without a store; reads
    /// fault pages, hence `mut`).
    pub fn store_digest(&mut self) -> Option<u64> {
        self.store.as_mut().and_then(|e| e.state_digest().ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adl::ast::PortRef;
    use compkit::runtime::LiveComponent;

    fn binding(fi: &str, fp: &str, ti: &str, tp: &str) -> Binding {
        Binding { from: PortRef::on(fi, fp), to: PortRef::on(ti, tp) }
    }

    fn booted() -> DataComponent {
        let mut dc = DataComponent::new(ShardId(0));
        let rt = dc.runtime_mut();
        rt.start("sm", LiveComponent { ty: "SM".into(), state: vec![1, 2], started_at: 0 })
            .unwrap();
        rt.start("opt", LiveComponent { ty: "Opt".into(), state: vec![3], started_at: 0 }).unwrap();
        rt.bind(binding("sm", "plan", "opt", "plan")).unwrap();
        dc
    }

    fn swap_plan() -> ReconfigurationPlan {
        ReconfigurationPlan {
            unbind: vec![binding("sm", "plan", "opt", "plan")],
            stop: vec![("opt".into(), "Opt".into())],
            start: vec![("wopt".into(), "WOpt".into())],
            bind: vec![binding("sm", "plan", "wopt", "plan")],
        }
    }

    #[test]
    fn decompose_orders_unbind_stop_start_bind() {
        let steps = PlanStep::decompose(&swap_plan());
        assert_eq!(steps.len(), 4);
        assert!(matches!(steps[0], PlanStep::Unbind(_)));
        assert!(matches!(steps[1], PlanStep::Stop(..)));
        assert!(matches!(steps[2], PlanStep::Start(..)));
        assert!(matches!(steps[3], PlanStep::Bind(_)));
        assert_eq!(steps[0].footprint(), vec!["sm".to_owned(), "opt".to_owned()]);
        assert_eq!(steps[2].footprint(), vec!["wopt".to_owned()]);
    }

    #[test]
    fn apply_then_undo_all_steps_restores_the_digest() {
        let mut dc = booted();
        let before = dc.digest();
        let steps = PlanStep::decompose(&swap_plan());
        let mut records = Vec::new();
        for s in &steps {
            records.push(dc.apply_step(s, 9).unwrap());
        }
        assert_ne!(dc.digest(), before);
        assert!(dc.runtime().component("wopt").is_some());
        for r in records.iter().rev() {
            dc.undo_step(r).unwrap();
        }
        assert_eq!(dc.digest(), before, "full compensation restores the shard byte-for-byte");
    }

    #[test]
    fn stop_archives_state_and_undo_restores_it() {
        let mut dc = booted();
        let rec = dc.apply_step(&PlanStep::Stop("opt".into(), "Opt".into()), 1).unwrap();
        assert!(dc.runtime().component("opt").is_none());
        dc.undo_step(&rec).unwrap();
        assert_eq!(dc.runtime().component("opt").unwrap().state, vec![3]);
    }

    #[test]
    fn apply_step_surfaces_runtime_errors() {
        let mut dc = booted();
        let err = dc.apply_step(&PlanStep::Stop("ghost".into(), "G".into()), 1);
        assert!(err.is_err());
    }

    #[test]
    fn persist_steps_writes_starts_and_deletes_stops() {
        let mut dc = booted();
        dc.attach_store(StorageEngine::new(8));
        let opt_key = dc.store_key("opt");
        let records = vec![
            dc.apply_step(&PlanStep::Stop("opt".into(), "Opt".into()), 1).unwrap(),
            dc.apply_step(&PlanStep::Start("wopt".into(), "WOpt".into()), 1).unwrap(),
        ];
        // opt was never in the store, so only the put lands.
        let n = dc.persist_steps(&records).unwrap();
        assert_eq!(n, 1);
        let wopt_key = dc.store_key("wopt");
        assert!(dc.store_mut().unwrap().get(wopt_key).unwrap().is_some());
        assert!(dc.store_mut().unwrap().get(opt_key).unwrap().is_none());
        // Replaying the persistence (roll-forward recovery) is idempotent.
        let d1 = dc.store_digest().unwrap();
        dc.persist_steps(&records).unwrap();
        assert_eq!(dc.store_digest().unwrap(), d1);
    }

    #[test]
    fn store_keys_are_shard_qualified() {
        let a = DataComponent::new(ShardId(0));
        let b = DataComponent::new(ShardId(1));
        assert_ne!(a.store_key("codec"), b.store_key("codec"));
    }
}
