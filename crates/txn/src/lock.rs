//! Two-phase lock manager — the concurrency-control half of the
//! transactional component.
//!
//! Resources are named strings (the convention used by the cross-shard
//! path is `s{shard}/{instance}`), held in [`LockMode::Shared`] or
//! [`LockMode::Exclusive`]. Discipline is *strict* two-phase locking:
//! transactions only acquire while running and release everything at
//! once through [`LockManager::release_all`] at commit or abort, so no
//! lock ever outlives its transaction.
//!
//! A transaction whose request conflicts does not spin: the manager
//! records a wait-for edge and reports [`LockOutcome::Waiting`]. Callers
//! then ask [`LockManager::detect_deadlock`], which renders the wait-for
//! graph as `(waiter, holder)` edges and feeds them to the same
//! [`adl::analysis::find_cycle`] the document analyser and the plan
//! linter use — one cycle detector for the whole platform. The victim is
//! deterministic: the *youngest* (highest-id) transaction on the cycle
//! dies, so every run of a seeded scenario aborts the same transaction.

use adl::analysis::find_cycle;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How a resource is locked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockMode {
    /// Readers share.
    Shared,
    /// Writers exclude everyone else.
    Exclusive,
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockMode::Shared => write!(f, "S"),
            LockMode::Exclusive => write!(f, "X"),
        }
    }
}

/// The answer to an acquire request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock is held; the transaction may proceed.
    Granted,
    /// The request conflicts; a wait-for edge was recorded.
    Waiting {
        /// The transactions currently blocking the request.
        holders: Vec<u64>,
    },
}

/// A detected deadlock: the rendered cycle plus the chosen victim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deadlock {
    /// The cycle as rendered by [`adl::analysis::find_cycle`], e.g.
    /// `txn:1 -> txn:2 -> txn:1`.
    pub cycle: String,
    /// The transaction chosen to die (the highest id on the cycle).
    pub victim: u64,
}

/// The shared lock table. One instance serves every shard — that is the
/// unbundling: concurrency control lives in the transactional component,
/// not in any one data component.
#[derive(Debug, Clone, Default)]
pub struct LockManager {
    /// resource -> holder txn -> mode.
    granted: BTreeMap<String, BTreeMap<u64, LockMode>>,
    /// txn -> the single request it is blocked on.
    waiting: BTreeMap<u64, (String, LockMode)>,
    /// txn -> resources it holds (reverse index for `release_all`).
    held: BTreeMap<u64, BTreeSet<String>>,
    grants: u64,
    conflicts: u64,
    deadlocks: u64,
    victims: u64,
}

impl LockManager {
    /// An empty lock table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `resource` in `mode` for `txn`. Re-entrant requests and
    /// Shared→Exclusive upgrades by a sole holder are granted in place.
    pub fn acquire(&mut self, txn: u64, resource: &str, mode: LockMode) -> LockOutcome {
        // Read-only lookup first: the granted map gains an entry only on
        // the grant path, so contested-but-never-granted names leave
        // nothing behind.
        let holders = self.granted.get(resource);
        let own = holders.and_then(|h| h.get(&txn)).copied();
        // Already strong enough?
        if own.is_some() && (own == Some(LockMode::Exclusive) || mode == LockMode::Shared) {
            return LockOutcome::Granted;
        }
        let blockers: Vec<u64> = holders
            .into_iter()
            .flatten()
            .filter(|(other, held_mode)| {
                **other != txn
                    && (mode == LockMode::Exclusive || **held_mode == LockMode::Exclusive)
            })
            .map(|(other, _)| *other)
            .collect();
        if blockers.is_empty() {
            self.granted.entry(resource.to_owned()).or_default().insert(txn, mode);
            self.held.entry(txn).or_default().insert(resource.to_owned());
            self.waiting.remove(&txn);
            self.grants = self.grants.saturating_add(1);
            LockOutcome::Granted
        } else {
            self.waiting.insert(txn, (resource.to_owned(), mode));
            self.conflicts = self.conflicts.saturating_add(1);
            LockOutcome::Waiting { holders: blockers }
        }
    }

    /// Release everything `txn` holds or waits for (strict 2PL shrink at
    /// commit/abort). Returns the number of locks released.
    pub fn release_all(&mut self, txn: u64) -> usize {
        self.waiting.remove(&txn);
        let resources = self.held.remove(&txn).unwrap_or_default();
        let mut released = 0;
        for r in &resources {
            if let Some(holders) = self.granted.get_mut(r) {
                if holders.remove(&txn).is_some() {
                    released += 1;
                }
                if holders.is_empty() {
                    self.granted.remove(r);
                }
            }
        }
        released
    }

    /// The wait-for graph as `(waiter, holder)` string edges, in the
    /// `txn:N` rendering [`find_cycle`] reports back.
    #[must_use]
    pub fn wait_for_edges(&self) -> Vec<(String, String)> {
        let mut edges = Vec::new();
        for (waiter, (resource, mode)) in &self.waiting {
            if let Some(holders) = self.granted.get(resource) {
                for (holder, held_mode) in holders {
                    let incompatible =
                        *mode == LockMode::Exclusive || *held_mode == LockMode::Exclusive;
                    if holder != waiter && incompatible {
                        edges.push((format!("txn:{waiter}"), format!("txn:{holder}")));
                    }
                }
            }
        }
        edges
    }

    /// Run deadlock detection over the wait-for graph. On a cycle, count
    /// it, pick the highest-id member as victim and count the victim; the
    /// caller is responsible for actually aborting it (and then calling
    /// [`LockManager::release_all`] on the victim).
    pub fn detect_deadlock(&mut self) -> Option<Deadlock> {
        let cycle = find_cycle(&self.wait_for_edges())?;
        let victim = cycle
            .split(" -> ")
            .filter_map(|m| m.strip_prefix("txn:"))
            .filter_map(|m| m.parse::<u64>().ok())
            .max()?;
        self.deadlocks = self.deadlocks.saturating_add(1);
        self.victims = self.victims.saturating_add(1);
        Some(Deadlock { cycle, victim })
    }

    /// Resources `txn` currently holds, sorted.
    #[must_use]
    pub fn held_by(&self, txn: u64) -> Vec<String> {
        self.held.get(&txn).map(|s| s.iter().cloned().collect()).unwrap_or_default()
    }

    /// Current holders of `resource`, sorted by transaction id.
    #[must_use]
    pub fn holders(&self, resource: &str) -> Vec<u64> {
        self.granted.get(resource).map(|h| h.keys().copied().collect()).unwrap_or_default()
    }

    /// Total locks currently granted across all transactions.
    #[must_use]
    pub fn held_total(&self) -> usize {
        self.granted.values().map(BTreeMap::len).sum()
    }

    /// Resources with a live granted entry. Invariant: never exceeds the
    /// resources actually held — contested-but-never-granted names leave
    /// no tracking state behind.
    #[must_use]
    pub fn resources_tracked(&self) -> usize {
        self.granted.len()
    }

    /// Transactions currently blocked, sorted.
    #[must_use]
    pub fn waiters(&self) -> Vec<u64> {
        self.waiting.keys().copied().collect()
    }

    /// Cumulative grants.
    #[must_use]
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Cumulative conflicting requests.
    #[must_use]
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Cumulative deadlocks detected.
    #[must_use]
    pub fn deadlocks(&self) -> u64 {
        self.deadlocks
    }

    /// Cumulative victims selected.
    #[must_use]
    pub fn victims(&self) -> u64 {
        self.victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_locks_coexist_exclusive_excludes() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(1, "r", LockMode::Shared), LockOutcome::Granted);
        assert_eq!(lm.acquire(2, "r", LockMode::Shared), LockOutcome::Granted);
        assert_eq!(
            lm.acquire(3, "r", LockMode::Exclusive),
            LockOutcome::Waiting { holders: vec![1, 2] }
        );
        assert_eq!(lm.holders("r"), vec![1, 2]);
        assert_eq!(lm.waiters(), vec![3]);
    }

    #[test]
    fn reentrant_and_upgrade_by_sole_holder() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(1, "r", LockMode::Shared), LockOutcome::Granted);
        assert_eq!(lm.acquire(1, "r", LockMode::Shared), LockOutcome::Granted);
        assert_eq!(lm.acquire(1, "r", LockMode::Exclusive), LockOutcome::Granted);
        assert_eq!(lm.acquire(1, "r", LockMode::Shared), LockOutcome::Granted, "X covers S");
        assert_eq!(lm.held_total(), 1);
    }

    #[test]
    fn upgrade_blocked_by_other_reader() {
        let mut lm = LockManager::new();
        lm.acquire(1, "r", LockMode::Shared);
        lm.acquire(2, "r", LockMode::Shared);
        assert_eq!(
            lm.acquire(1, "r", LockMode::Exclusive),
            LockOutcome::Waiting { holders: vec![2] }
        );
    }

    #[test]
    fn release_all_frees_every_lock_and_wait() {
        let mut lm = LockManager::new();
        lm.acquire(1, "a", LockMode::Exclusive);
        lm.acquire(1, "b", LockMode::Shared);
        lm.acquire(2, "a", LockMode::Exclusive); // waits
        assert_eq!(lm.release_all(1), 2);
        assert!(lm.held_by(1).is_empty());
        assert_eq!(lm.held_total(), 0);
        assert_eq!(lm.acquire(2, "a", LockMode::Exclusive), LockOutcome::Granted);
        assert!(lm.waiters().is_empty());
    }

    #[test]
    fn two_txn_cycle_is_detected_and_youngest_dies() {
        let mut lm = LockManager::new();
        lm.acquire(1, "a", LockMode::Exclusive);
        lm.acquire(2, "b", LockMode::Exclusive);
        lm.acquire(1, "b", LockMode::Exclusive); // 1 waits on 2
        lm.acquire(2, "a", LockMode::Exclusive); // 2 waits on 1 — cycle
        let dl = lm.detect_deadlock().expect("cycle");
        assert_eq!(dl.victim, 2, "youngest (highest id) dies");
        assert!(dl.cycle.contains("txn:1") && dl.cycle.contains("txn:2"));
        lm.release_all(dl.victim);
        assert!(lm.detect_deadlock().is_none());
        assert_eq!(lm.acquire(1, "b", LockMode::Exclusive), LockOutcome::Granted);
        assert_eq!(lm.deadlocks(), 1);
        assert_eq!(lm.victims(), 1);
    }

    #[test]
    fn no_cycle_without_mutual_waits() {
        let mut lm = LockManager::new();
        lm.acquire(1, "a", LockMode::Exclusive);
        lm.acquire(2, "a", LockMode::Exclusive); // 2 waits on 1, no cycle
        assert!(lm.detect_deadlock().is_none());
    }

    #[test]
    fn contested_requests_leave_no_tracking_state() {
        let mut lm = LockManager::new();
        lm.acquire(1, "a", LockMode::Exclusive);
        for txn in 2..10 {
            assert!(matches!(
                lm.acquire(txn, "a", LockMode::Exclusive),
                LockOutcome::Waiting { .. }
            ));
        }
        assert_eq!(lm.resources_tracked(), 1, "only the granted resource is tracked");
        lm.release_all(1);
        for txn in 2..10 {
            lm.release_all(txn);
        }
        assert_eq!(lm.resources_tracked(), 0, "no empty per-resource maps remain");
        assert_eq!(lm.held_total(), 0);
    }

    #[test]
    fn counters_accumulate() {
        let mut lm = LockManager::new();
        lm.acquire(1, "a", LockMode::Exclusive);
        lm.acquire(2, "a", LockMode::Exclusive);
        assert_eq!(lm.grants(), 1);
        assert_eq!(lm.conflicts(), 1);
    }
}

/// Randomized 2PL properties against a naive oracle (`--features
/// slow-props`): strict two-phase release leaks nothing, and every
/// induced wait-for cycle is found with exactly one deterministic victim.
#[cfg(all(test, feature = "slow-props"))]
mod props {
    use super::*;
    use adm_rng::Pcg32;

    /// Naive oracle: replay the operation history into a flat set of
    /// (txn, resource) holdings, ignoring modes (only grants recorded).
    #[derive(Default)]
    struct Oracle {
        holdings: BTreeSet<(u64, String)>,
    }

    impl Oracle {
        fn grant(&mut self, txn: u64, r: &str) {
            self.holdings.insert((txn, r.to_owned()));
        }
        fn release_all(&mut self, txn: u64) {
            self.holdings.retain(|(t, _)| *t != txn);
        }
        fn held_by(&self, txn: u64) -> usize {
            self.holdings.iter().filter(|(t, _)| *t == txn).count()
        }
    }

    /// Independent naive cycle check: DFS over the wait-for adjacency.
    fn naive_has_cycle(edges: &[(String, String)]) -> bool {
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (a, b) in edges {
            adj.entry(a).or_default().push(b);
        }
        fn dfs<'a>(
            n: &'a str,
            adj: &BTreeMap<&'a str, Vec<&'a str>>,
            active: &mut BTreeSet<&'a str>,
            done: &mut BTreeSet<&'a str>,
        ) -> bool {
            if done.contains(n) {
                return false;
            }
            if !active.insert(n) {
                return true;
            }
            for m in adj.get(n).map(Vec::as_slice).unwrap_or(&[]) {
                if dfs(m, adj, active, done) {
                    return true;
                }
            }
            active.remove(n);
            done.insert(n);
            false
        }
        let nodes: BTreeSet<&str> =
            edges.iter().flat_map(|(a, b)| [a.as_str(), b.as_str()]).collect();
        let mut done = BTreeSet::new();
        for n in nodes {
            let mut active = BTreeSet::new();
            if dfs(n, &adj, &mut active, &mut done) {
                return true;
            }
        }
        false
    }

    #[test]
    fn prop_release_all_leaks_no_lock() {
        for seed in 0..64u64 {
            let mut rng = Pcg32::new(0x51ab_0000 + seed);
            let mut lm = LockManager::new();
            let mut oracle = Oracle::default();
            for _ in 0..200 {
                let txn = rng.below(6);
                match rng.index(3) {
                    0 | 1 => {
                        let r = format!("r{}", rng.below(8));
                        let mode =
                            if rng.index(2) == 0 { LockMode::Shared } else { LockMode::Exclusive };
                        if lm.acquire(txn, &r, mode) == LockOutcome::Granted {
                            oracle.grant(txn, &r);
                        }
                    }
                    _ => {
                        // Commit or abort: strict 2PL shrink.
                        lm.release_all(txn);
                        oracle.release_all(txn);
                        assert!(
                            lm.held_by(txn).is_empty(),
                            "seed {seed}: txn {txn} leaked a lock after release_all"
                        );
                        assert!(lm.waiters().iter().all(|w| *w != txn));
                    }
                }
                // The reverse index always agrees with the oracle.
                for t in 0..6u64 {
                    assert_eq!(
                        lm.held_by(t).len(),
                        oracle.held_by(t),
                        "seed {seed}: held set diverged for txn {t}"
                    );
                }
            }
            // Drain everything; the table must come back empty.
            for t in 0..6u64 {
                lm.release_all(t);
            }
            assert_eq!(lm.held_total(), 0, "seed {seed}: locks leaked at drain");
        }
    }

    #[test]
    fn prop_every_induced_cycle_is_detected_with_one_victim() {
        for seed in 0..64u64 {
            let mut rng = Pcg32::new(0xdead_1000 + seed);
            let k = 2 + rng.index(5); // cycle length 2..=6
            let mut lm = LockManager::new();
            // txn i holds r_i exclusively, then requests r_{i+1 mod k}.
            for i in 0..k {
                assert_eq!(
                    lm.acquire(i as u64, &format!("r{i}"), LockMode::Exclusive),
                    LockOutcome::Granted
                );
            }
            for i in 0..k {
                let next = (i + 1) % k;
                assert!(matches!(
                    lm.acquire(i as u64, &format!("r{next}"), LockMode::Exclusive),
                    LockOutcome::Waiting { .. }
                ));
            }
            assert!(naive_has_cycle(&lm.wait_for_edges()), "oracle must agree a cycle exists");
            let dl = lm.detect_deadlock().expect("induced cycle must be detected");
            assert_eq!(dl.victim, (k - 1) as u64, "victim is the youngest on the cycle");
            // Aborting exactly the victim breaks the cycle.
            lm.release_all(dl.victim);
            assert!(lm.detect_deadlock().is_none(), "one victim suffices for one cycle");
            assert!(!naive_has_cycle(&lm.wait_for_edges()), "oracle agrees the cycle is gone");
        }
    }

    #[test]
    fn prop_detector_agrees_with_naive_oracle_on_random_tables() {
        for seed in 0..128u64 {
            let mut rng = Pcg32::new(0x0c1e_0000 + seed);
            let mut lm = LockManager::new();
            for _ in 0..40 {
                let txn = rng.below(5);
                let r = format!("r{}", rng.below(5));
                let _ = lm.acquire(txn, &r, LockMode::Exclusive);
            }
            let edges = lm.wait_for_edges();
            assert_eq!(
                find_cycle(&edges).is_some(),
                naive_has_cycle(&edges),
                "seed {seed}: detector and oracle disagree on {edges:?}"
            );
        }
    }
}
