//! Unbundled transaction services for the database machine.
//!
//! The paper makes every reconfiguration "a transaction in the database
//! sense" — but the original guarantee stops at a single server, where
//! journal, lock state and runtime are fused. This crate unbundles them
//! along the seam Lomet, Fekete and Weikum argue for ("Unbundling
//! Transaction Services in the Cloud"), with the decoupled concurrency
//! control of Zhou et al.:
//!
//! - **TC** — the shared [`TransactionCore`]: a strict two-phase
//!   [`LockManager`] (deadlock detection via the platform-wide
//!   [`adl::analysis::find_cycle`]) plus the unified [`TxnLog`], whose
//!   record taxonomy subsumes the adaptation journal and adds the
//!   two-phase-commit control records.
//! - **DC** — per-shard [`DataComponent`]s: one runtime's worth of live
//!   component state behind a logged-operation interface, optionally
//!   backed by a [`store::StorageEngine`] for durable atom state.
//!
//! On top rides **cross-shard SWITCH**: presumed-abort two-phase commit
//! ([`TransactionCore::execute_cross_shard`]) with in-doubt resolution
//! on recovery ([`TransactionCore::recover`]) — participants that
//! prepared but lost the coordinator query the shared log, and the
//! absence of a decision record *is* the deterministic abort verdict.
//! The [`crash`] module models coordinator/participant crashes at every
//! protocol boundary; `scenario::txnrep` (in `adm-core`) sweeps them as
//! a conformance matrix proving the never-hybrid guarantee holds across
//! shards.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core;
pub mod crash;
pub mod lock;
pub mod log;
pub mod shard;

pub use crate::core::{CrossShardReport, TransactionCore, TxnError, TxnRecoveryReport};
pub use crash::{NoTxnCrash, PlannedTxnCrash, TxnCrashHook, TxnCrashPoint, TxnCrashSite};
pub use lock::{Deadlock, LockManager, LockMode, LockOutcome};
pub use log::{OpenGlobalTxn, ShardId, ShardProgress, TxnLog, TxnRecord};
pub use shard::{DataComponent, PlanStep};
