//! The unified transaction log — the durability half of the
//! transactional component.
//!
//! One log serves every shard. Its record taxonomy subsumes the
//! adaptation journal's `Intent/Applied/Undone/Commit/Abort` (the
//! per-shard body of a transaction is exactly a journalled plan) and
//! adds the two-phase-commit control records on top:
//!
//! | record             | meaning                                           |
//! |--------------------|---------------------------------------------------|
//! | `Begin`            | global transaction opened over a shard set        |
//! | `Intent`           | a shard's sub-plan declared (step count)          |
//! | `Applied`          | one shard step done (carries its [`StepRecord`])  |
//! | `Undone`           | one applied shard step compensated                |
//! | `Prepared`         | shard vote: ready to commit (log forced here)     |
//! | `Commit`           | the coordinator's decision — *the commit point*   |
//! | `ShardCommitted`   | commit fan-out reached this shard                 |
//! | `ShardAborted`     | abort fan-out reached this shard                  |
//! | `End`              | all fan-out acknowledged; records reclaimable     |
//!
//! The protocol is **presumed abort**: there is no abort-decision
//! record. Recovery finding `Prepared` votes but no `Commit` record
//! rolls the transaction back deterministically — an in-doubt
//! participant "queries the TC log" and the absence of a decision *is*
//! the answer. Crashes strike only at record boundaries (the same model
//! as [`compkit::journal`] and the store WAL), appends are atomic, and
//! everything is deterministic: [`TxnLog::render`] golden-pins the whole
//! history.

use compkit::journal::StepRecord;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A shard (data component) identifier. Renders as `s{id}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShardId(pub u32);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One transaction-log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnRecord {
    /// A global transaction opened over `shards`.
    Begin {
        /// Global transaction id (monotonic per log).
        gtxn: u64,
        /// Participating shards, ascending.
        shards: Vec<ShardId>,
        /// Virtual time the transaction started.
        at: u64,
    },
    /// A shard declared its sub-plan.
    Intent {
        /// Global transaction id.
        gtxn: u64,
        /// The shard.
        shard: ShardId,
        /// Steps the sub-plan will apply.
        steps: usize,
    },
    /// A shard applied one step.
    Applied {
        /// Global transaction id.
        gtxn: u64,
        /// The shard.
        shard: ShardId,
        /// Step index within the shard's sub-plan.
        index: usize,
        /// What was done (redo/undo images live here).
        step: StepRecord,
    },
    /// A shard compensated one applied step.
    Undone {
        /// Global transaction id.
        gtxn: u64,
        /// The shard.
        shard: ShardId,
        /// The step index that was undone.
        index: usize,
    },
    /// A shard voted yes.
    Prepared {
        /// Global transaction id.
        gtxn: u64,
        /// The voting shard.
        shard: ShardId,
    },
    /// The coordinator's commit decision (presumed abort: the only
    /// decision ever logged).
    Commit {
        /// Global transaction id.
        gtxn: u64,
    },
    /// Commit fan-out reached a shard.
    ShardCommitted {
        /// Global transaction id.
        gtxn: u64,
        /// The shard.
        shard: ShardId,
    },
    /// Abort fan-out reached a shard.
    ShardAborted {
        /// Global transaction id.
        gtxn: u64,
        /// The shard.
        shard: ShardId,
    },
    /// The transaction is fully resolved; its records may be reclaimed.
    End {
        /// Global transaction id.
        gtxn: u64,
    },
}

impl TxnRecord {
    /// The global transaction this record belongs to.
    #[must_use]
    pub fn gtxn(&self) -> u64 {
        match self {
            TxnRecord::Begin { gtxn, .. }
            | TxnRecord::Intent { gtxn, .. }
            | TxnRecord::Applied { gtxn, .. }
            | TxnRecord::Undone { gtxn, .. }
            | TxnRecord::Prepared { gtxn, .. }
            | TxnRecord::Commit { gtxn }
            | TxnRecord::ShardCommitted { gtxn, .. }
            | TxnRecord::ShardAborted { gtxn, .. }
            | TxnRecord::End { gtxn } => *gtxn,
        }
    }

    /// Short tag for rendered matrices, traces and `sys.txns` rows.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            TxnRecord::Begin { .. } => "begin",
            TxnRecord::Intent { .. } => "intent",
            TxnRecord::Applied { .. } => "applied",
            TxnRecord::Undone { .. } => "undone",
            TxnRecord::Prepared { .. } => "prepared",
            TxnRecord::Commit { .. } => "commit",
            TxnRecord::ShardCommitted { .. } => "shard-committed",
            TxnRecord::ShardAborted { .. } => "shard-aborted",
            TxnRecord::End { .. } => "end",
        }
    }
}

impl fmt::Display for TxnRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnRecord::Begin { gtxn, shards, at } => {
                let list: Vec<String> = shards.iter().map(ToString::to_string).collect();
                write!(f, "begin gtxn={gtxn} shards=[{}] at={at}", list.join(","))
            }
            TxnRecord::Intent { gtxn, shard, steps } => {
                write!(f, "intent gtxn={gtxn} shard={shard} steps={steps}")
            }
            TxnRecord::Applied { gtxn, shard, index, step } => {
                write!(f, "applied gtxn={gtxn} shard={shard} [{index}] {}", step.describe())
            }
            TxnRecord::Undone { gtxn, shard, index } => {
                write!(f, "undone gtxn={gtxn} shard={shard} [{index}]")
            }
            TxnRecord::Prepared { gtxn, shard } => {
                write!(f, "prepared gtxn={gtxn} shard={shard}")
            }
            TxnRecord::Commit { gtxn } => write!(f, "commit gtxn={gtxn}"),
            TxnRecord::ShardCommitted { gtxn, shard } => {
                write!(f, "shard-committed gtxn={gtxn} shard={shard}")
            }
            TxnRecord::ShardAborted { gtxn, shard } => {
                write!(f, "shard-aborted gtxn={gtxn} shard={shard}")
            }
            TxnRecord::End { gtxn } => write!(f, "end gtxn={gtxn}"),
        }
    }
}

/// A shard's reconstructed progress inside an open transaction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardProgress {
    /// Declared step count, if the intent record landed.
    pub intent_steps: Option<usize>,
    /// Applied steps in log order.
    pub applied: Vec<(usize, StepRecord)>,
    /// Step indices already compensated.
    pub undone: BTreeSet<usize>,
    /// The shard voted yes.
    pub prepared: bool,
    /// Commit fan-out reached the shard.
    pub committed: bool,
    /// Abort fan-out reached the shard.
    pub aborted: bool,
}

impl ShardProgress {
    /// Applied steps not yet compensated, newest first — the exact undo
    /// work recovery owes this shard.
    #[must_use]
    pub fn pending_undo(&self) -> Vec<(usize, StepRecord)> {
        self.applied.iter().rev().filter(|(i, _)| !self.undone.contains(i)).cloned().collect()
    }
}

/// A begun-but-not-ended transaction reconstructed from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenGlobalTxn {
    /// Global transaction id.
    pub gtxn: u64,
    /// Virtual start time.
    pub at: u64,
    /// Participating shards, ascending.
    pub shards: Vec<ShardId>,
    /// Whether the commit decision landed (presumed abort otherwise).
    pub decided: bool,
    /// Per-shard progress.
    pub progress: BTreeMap<ShardId, ShardProgress>,
}

impl OpenGlobalTxn {
    /// Shards that voted yes but have seen no fan-out — the in-doubt set
    /// recovery must resolve by consulting the decision record.
    #[must_use]
    pub fn in_doubt(&self) -> Vec<ShardId> {
        self.progress
            .iter()
            .filter(|(_, p)| p.prepared && !p.committed && !p.aborted)
            .map(|(s, _)| *s)
            .collect()
    }
}

/// The shared, append-only transaction log. Resolved transactions are
/// reclaimed by [`TxnLog::truncate_ended`]; live (open) records are what
/// `sys.txns` serves.
#[derive(Debug, Clone, Default)]
pub struct TxnLog {
    records: Vec<TxnRecord>,
    next_gtxn: u64,
    appended_total: u64,
    truncations: u64,
}

impl TxnLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a global transaction over `shards` at virtual time `at`.
    pub fn begin(&mut self, shards: Vec<ShardId>, at: u64) -> u64 {
        let gtxn = self.next_gtxn;
        self.next_gtxn += 1;
        self.append(TxnRecord::Begin { gtxn, shards, at });
        gtxn
    }

    /// Append one record (atomic in the crash model).
    pub fn append(&mut self, r: TxnRecord) {
        self.records.push(r);
        self.appended_total = self.appended_total.saturating_add(1);
    }

    /// All live records, oldest first.
    #[must_use]
    pub fn records(&self) -> &[TxnRecord] {
        &self.records
    }

    /// Live record count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no live records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total records ever appended (survives truncation).
    #[must_use]
    pub fn appended_total(&self) -> u64 {
        self.appended_total
    }

    /// Times the log was truncated.
    #[must_use]
    pub fn truncations(&self) -> u64 {
        self.truncations
    }

    /// Reclaim the records of every ended transaction. Open transactions
    /// keep their history; transaction ids never restart.
    pub fn truncate_ended(&mut self) {
        let ended: BTreeSet<u64> = self
            .records
            .iter()
            .filter_map(|r| match r {
                TxnRecord::End { gtxn } => Some(*gtxn),
                _ => None,
            })
            .collect();
        if ended.is_empty() {
            return;
        }
        self.records.retain(|r| !ended.contains(&r.gtxn()));
        self.truncations = self.truncations.saturating_add(1);
    }

    /// Reconstruct every begun-but-not-ended transaction, ascending by
    /// id — the recovery work list.
    #[must_use]
    pub fn open_txns(&self) -> Vec<OpenGlobalTxn> {
        let mut open: BTreeMap<u64, OpenGlobalTxn> = BTreeMap::new();
        for r in &self.records {
            match r {
                TxnRecord::Begin { gtxn, shards, at } => {
                    let mut progress = BTreeMap::new();
                    for s in shards {
                        progress.insert(*s, ShardProgress::default());
                    }
                    open.insert(
                        *gtxn,
                        OpenGlobalTxn {
                            gtxn: *gtxn,
                            at: *at,
                            shards: shards.clone(),
                            decided: false,
                            progress,
                        },
                    );
                }
                TxnRecord::Intent { gtxn, shard, steps } => {
                    if let Some(t) = open.get_mut(gtxn) {
                        t.progress.entry(*shard).or_default().intent_steps = Some(*steps);
                    }
                }
                TxnRecord::Applied { gtxn, shard, index, step } => {
                    if let Some(t) = open.get_mut(gtxn) {
                        t.progress.entry(*shard).or_default().applied.push((*index, step.clone()));
                    }
                }
                TxnRecord::Undone { gtxn, shard, index } => {
                    if let Some(t) = open.get_mut(gtxn) {
                        t.progress.entry(*shard).or_default().undone.insert(*index);
                    }
                }
                TxnRecord::Prepared { gtxn, shard } => {
                    if let Some(t) = open.get_mut(gtxn) {
                        t.progress.entry(*shard).or_default().prepared = true;
                    }
                }
                TxnRecord::Commit { gtxn } => {
                    if let Some(t) = open.get_mut(gtxn) {
                        t.decided = true;
                    }
                }
                TxnRecord::ShardCommitted { gtxn, shard } => {
                    if let Some(t) = open.get_mut(gtxn) {
                        t.progress.entry(*shard).or_default().committed = true;
                    }
                }
                TxnRecord::ShardAborted { gtxn, shard } => {
                    if let Some(t) = open.get_mut(gtxn) {
                        t.progress.entry(*shard).or_default().aborted = true;
                    }
                }
                TxnRecord::End { gtxn } => {
                    open.remove(gtxn);
                }
            }
        }
        open.into_values().collect()
    }

    /// The live log as stable text — one record per line.
    #[must_use]
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(out, "{r}");
        }
        out
    }

    /// FNV-1a digest of [`TxnLog::render`].
    #[must_use]
    pub fn digest(&self) -> u64 {
        obs::fnv1a(self.render().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adl::ast::{Binding, PortRef};

    fn bind(from: &str, to: &str) -> Binding {
        let f: Vec<&str> = from.split('.').collect();
        let t: Vec<&str> = to.split('.').collect();
        Binding { from: PortRef::on(f[0], f[1]), to: PortRef::on(t[0], t[1]) }
    }

    #[test]
    fn begin_allocates_monotonic_gtxns() {
        let mut log = TxnLog::new();
        assert_eq!(log.begin(vec![ShardId(0), ShardId(1)], 10), 0);
        assert_eq!(log.begin(vec![ShardId(0)], 11), 1);
        assert_eq!(log.len(), 2);
        assert_eq!(log.appended_total(), 2);
    }

    #[test]
    fn open_txn_reconstructs_per_shard_progress() {
        let mut log = TxnLog::new();
        let g = log.begin(vec![ShardId(0), ShardId(1)], 5);
        log.append(TxnRecord::Intent { gtxn: g, shard: ShardId(0), steps: 2 });
        log.append(TxnRecord::Applied {
            gtxn: g,
            shard: ShardId(0),
            index: 0,
            step: StepRecord::Started { name: "codec".into() },
        });
        log.append(TxnRecord::Applied {
            gtxn: g,
            shard: ShardId(0),
            index: 1,
            step: StepRecord::Bound(bind("a.p", "codec.q")),
        });
        log.append(TxnRecord::Prepared { gtxn: g, shard: ShardId(0) });
        let open = log.open_txns();
        assert_eq!(open.len(), 1);
        let t = &open[0];
        assert!(!t.decided);
        assert_eq!(t.shards, vec![ShardId(0), ShardId(1)]);
        let p0 = &t.progress[&ShardId(0)];
        assert!(p0.prepared);
        assert_eq!(p0.intent_steps, Some(2));
        assert_eq!(p0.pending_undo().len(), 2);
        assert_eq!(p0.pending_undo()[0].0, 1, "undo newest first");
        assert_eq!(t.in_doubt(), vec![ShardId(0)]);
    }

    #[test]
    fn undone_records_shrink_pending_undo() {
        let mut log = TxnLog::new();
        let g = log.begin(vec![ShardId(0)], 0);
        log.append(TxnRecord::Applied {
            gtxn: g,
            shard: ShardId(0),
            index: 0,
            step: StepRecord::Started { name: "x".into() },
        });
        log.append(TxnRecord::Undone { gtxn: g, shard: ShardId(0), index: 0 });
        let open = log.open_txns();
        assert!(open[0].progress[&ShardId(0)].pending_undo().is_empty());
    }

    #[test]
    fn decision_record_flips_decided() {
        let mut log = TxnLog::new();
        let g = log.begin(vec![ShardId(0), ShardId(1)], 0);
        log.append(TxnRecord::Prepared { gtxn: g, shard: ShardId(0) });
        log.append(TxnRecord::Prepared { gtxn: g, shard: ShardId(1) });
        log.append(TxnRecord::Commit { gtxn: g });
        let open = log.open_txns();
        assert!(open[0].decided);
        assert_eq!(open[0].in_doubt(), vec![ShardId(0), ShardId(1)]);
    }

    #[test]
    fn truncate_reclaims_only_ended_txns() {
        let mut log = TxnLog::new();
        let a = log.begin(vec![ShardId(0)], 0);
        let b = log.begin(vec![ShardId(1)], 1);
        log.append(TxnRecord::Commit { gtxn: a });
        log.append(TxnRecord::End { gtxn: a });
        log.truncate_ended();
        assert_eq!(log.truncations(), 1);
        assert!(log.records().iter().all(|r| r.gtxn() == b));
        assert_eq!(log.open_txns().len(), 1);
        // Ids never restart.
        assert_eq!(log.begin(vec![ShardId(0)], 2), 2);
    }

    #[test]
    fn render_is_one_line_per_record_and_digest_is_stable() {
        let mut log = TxnLog::new();
        let g = log.begin(vec![ShardId(0), ShardId(2)], 7);
        log.append(TxnRecord::Prepared { gtxn: g, shard: ShardId(2) });
        let r = log.render();
        assert_eq!(r.lines().count(), 2);
        assert!(r.starts_with("begin gtxn=0 shards=[s0,s2] at=7"));
        assert!(r.contains("prepared gtxn=0 shard=s2"));
        assert_eq!(log.digest(), log.clone().digest());
    }
}
