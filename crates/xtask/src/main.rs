//! Workspace task runner, invoked as `cargo xtask <task>` (the alias
//! lives in `.cargo/config.toml`). Tasks:
//!
//! * `update-goldens` — regenerate every committed deterministic
//!   artifact: the golden-trace snapshots in `tests/goldens/` (one leg
//!   per CI chaos seed, replacing the raw
//!   `UPDATE_GOLDENS=1 CHAOS_SEED=<seed> cargo test …` incantation),
//!   the crash-replay recovery matrix (`tests/goldens/crashrep.txt`),
//!   the storage WAL crash matrix (`tests/goldens/storerep.txt`), the
//!   cross-shard transaction matrix (`tests/goldens/txnrep.txt`), the
//!   system-table query results (`tests/goldens/systab.txt`), and the
//!   benchmark-trajectory baseline `BENCH_adm.json`.
//! * `bench-gate` — replay the benchmark trajectory and compare it to
//!   the committed `BENCH_adm.json` under the gate tolerances; exits
//!   non-zero on drift (what the CI `bench-gate` job runs).
//! * `scale` — run the mega-crowd scale tier in release: ~10.5M requests
//!   through the event engine inside the wall-clock budget (what the CI
//!   `scale` job runs).
//! * `systab` — run the system-table tier: every committed scenario
//!   settled and queried through the `sys.*` tables, the query-vs-
//!   hardcoded SWITCH differential, and the `systab` crate's unit suite
//!   (what the CI `systab` job runs).
//! * `txn-matrix` — run the cross-shard transaction conformance tier:
//!   the (seed × crash site × topology) 2PC matrix of `txnrep_e2e` plus
//!   the `txn` crate's unit and property suites (what the CI
//!   `txn-matrix` job runs).

use std::path::PathBuf;
use std::process::Command;

/// The chaos seeds with committed goldens — keep in lockstep with the CI
/// matrix in `.github/workflows/ci.yml` and `tests/obs_e2e.rs`.
const GOLDEN_SEEDS: [u64; 3] = [17, 42, 20260806];

/// The workspace root (this crate lives at `<root>/crates/xtask`).
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Run one cargo invocation at the workspace root, echoing it first;
/// exits the whole task on failure so partial regenerations are loud.
fn run_cargo(args: &[&str], envs: &[(&str, String)]) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    let rendered: Vec<String> = envs.iter().map(|(k, v)| format!("{k}={v}")).collect();
    println!("$ {} {} {}", rendered.join(" "), cargo, args.join(" "));
    let status = Command::new(&cargo)
        .args(args)
        .envs(envs.iter().map(|(k, v)| (*k, v.as_str())))
        .current_dir(workspace_root())
        .status()
        .unwrap_or_else(|e| {
            println!("failed to spawn {cargo}: {e}");
            std::process::exit(1);
        });
    if !status.success() {
        println!("task step failed ({status}); stopping");
        std::process::exit(status.code().unwrap_or(1));
    }
}

/// Regenerate the golden-trace snapshots (one obs_e2e run per CI seed,
/// under `UPDATE_GOLDENS=1`), the crash-replay recovery matrix, and the
/// bench baseline.
fn update_goldens() {
    for seed in GOLDEN_SEEDS {
        run_cargo(
            &["test", "-q", "-p", "adm-core", "--test", "obs_e2e"],
            &[("UPDATE_GOLDENS", "1".to_owned()), ("CHAOS_SEED", seed.to_string())],
        );
    }
    run_cargo(
        &["test", "-q", "-p", "adm-core", "--test", "crashrep_e2e"],
        &[("UPDATE_GOLDENS", "1".to_owned())],
    );
    run_cargo(
        &["test", "-q", "-p", "adm-core", "--test", "store_recovery_e2e"],
        &[("UPDATE_GOLDENS", "1".to_owned())],
    );
    run_cargo(
        &["test", "-q", "-p", "adm-core", "--test", "txnrep_e2e"],
        &[("UPDATE_GOLDENS", "1".to_owned())],
    );
    run_cargo(
        &["test", "-q", "-p", "adm-core", "--test", "systab_e2e"],
        &[("UPDATE_GOLDENS", "1".to_owned())],
    );
    run_cargo(
        &["run", "--release", "-q", "-p", "adm-bench", "--bin", "bench", "--", "--update"],
        &[],
    );
    println!("goldens and BENCH_adm.json regenerated; review the diff before committing");
}

/// Run the benchmark-trajectory gate against the committed baseline.
fn bench_gate() {
    run_cargo(
        &["run", "--release", "-q", "-p", "adm-bench", "--bin", "bench", "--", "--check"],
        &[],
    );
}

/// Run planlint over every committed scenario configuration (the
/// `lint_plans` test tier): the plan corpus the scenarios generate must be
/// free of Error-severity findings, and the Adaptivity Manager's lint gate
/// must demonstrably refuse a broken plan. Exits non-zero on any finding
/// (what the CI lint job runs).
fn lint_plans() {
    run_cargo(&["test", "-q", "-p", "adm-core", "--test", "lint_plans"], &[]);
}

/// Run the scale tier (`tests/scale_e2e.rs`) in release — the wall-clock
/// budget there assumes optimised code.
fn scale() {
    run_cargo(&["test", "-q", "--release", "-p", "adm-core", "--test", "scale_e2e"], &[]);
}

/// Run the storage recovery tier: the WAL crash-matrix conformance test
/// (`tests/store_recovery_e2e.rs`) plus the store crate's own unit and
/// differential-oracle suites (what the CI `store-recovery` job runs).
fn store_recovery() {
    run_cargo(&["test", "-q", "-p", "adm-core", "--test", "store_recovery_e2e"], &[]);
    run_cargo(&["test", "-q", "-p", "store", "--features", "slow-props"], &[]);
}

/// Run the system-table tier: the `systab_e2e` invariant queries and
/// SWITCH-rule differential over every committed scenario, plus the
/// `systab` crate's unit suite (what the CI `systab` job runs).
fn systab() {
    run_cargo(&["test", "-q", "-p", "adm-core", "--test", "systab_e2e"], &[]);
    run_cargo(&["test", "-q", "-p", "systab"], &[]);
}

/// Run the cross-shard transaction tier: the 2PC coordinator/participant
/// crash matrix (`tests/txnrep_e2e.rs`) plus the `txn` crate's unit and
/// slow-props suites (what the CI `txn-matrix` job runs).
fn txn_matrix() {
    run_cargo(&["test", "-q", "-p", "adm-core", "--test", "txnrep_e2e"], &[]);
    run_cargo(&["test", "-q", "-p", "txn", "--features", "slow-props"], &[]);
}

fn main() {
    let task = std::env::args().nth(1);
    match task.as_deref() {
        Some("update-goldens") => update_goldens(),
        Some("bench-gate") => bench_gate(),
        Some("lint-plans") => lint_plans(),
        Some("scale") => scale(),
        Some("store-recovery") => store_recovery(),
        Some("systab") => systab(),
        Some("txn-matrix") => txn_matrix(),
        other => {
            if let Some(t) = other {
                println!("unknown task {t:?}\n");
            }
            println!(
                "usage: cargo xtask <task>\n\n\
                 tasks:\n  \
                 update-goldens  regenerate tests/goldens/ and BENCH_adm.json\n  \
                 bench-gate      compare a fresh bench run against BENCH_adm.json\n  \
                 lint-plans      planlint every committed scenario configuration\n  \
                 scale           run the mega-crowd scale tier (release, wall-clock budget)\n  \
                 store-recovery  run the WAL crash matrix and the store differential oracles\n  \
                 systab          query every scenario through the sys.* system tables\n  \
                 txn-matrix      run the cross-shard 2PC coordinator/participant crash matrix"
            );
            std::process::exit(2);
        }
    }
}
