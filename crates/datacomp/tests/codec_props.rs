//! Property tests: codecs must round-trip arbitrary bytes, and the XML
//! writer/parser must agree on arbitrary well-formed documents.
//!
//! Randomised suites are opt-in: `cargo test -p datacomp --features slow-props`.
#![cfg(feature = "slow-props")]

use adm_rng::{run_cases, Pcg32};
use datacomp::codec::{Codec, LzCodec, RleCodec};
use datacomp::xml::{parse_events, write_events, XmlEvent};

fn xml_name(rng: &mut Pcg32) -> String {
    let mut s = String::new();
    s.push((b'a' + rng.below(26) as u8) as char);
    for _ in 0..rng.index(7) {
        let c = match rng.below(38) {
            x if x < 26 => (b'a' + x as u8) as char,
            x if x < 36 => (b'0' + (x - 26) as u8) as char,
            36 => '_',
            _ => '-',
        };
        s.push(c);
    }
    s
}

fn printable(rng: &mut Pcg32, lo: usize, hi: usize) -> String {
    let n = rng.index(hi - lo + 1) + lo;
    (0..n).map(|_| (b' ' + rng.below(95) as u8) as char).collect()
}

fn attrs(rng: &mut Pcg32) -> Vec<(String, String)> {
    (0..rng.index(3)).map(|_| (xml_name(rng), printable(rng, 0, 12))).collect()
}

/// Generate a balanced event stream by recursive element construction.
fn element(rng: &mut Pcg32, depth: u32) -> Vec<XmlEvent> {
    let name = xml_name(rng);
    let attrs = attrs(rng);
    let mut ev = vec![XmlEvent::Start { name: name.clone(), attrs }];
    if depth == 0 {
        let text = printable(rng, 1, 20);
        if !text.trim().is_empty() {
            ev.push(XmlEvent::Text(text));
        }
    } else {
        for _ in 0..rng.index(3) {
            ev.extend(element(rng, depth - 1));
        }
    }
    ev.push(XmlEvent::End { name });
    ev
}

fn bytes(rng: &mut Pcg32, max_len: usize) -> Vec<u8> {
    let mut buf = vec![0u8; rng.index(max_len)];
    rng.fill_bytes(&mut buf);
    buf
}

#[test]
fn rle_roundtrips_arbitrary_bytes() {
    run_cases(0xdc1, 256, |rng| {
        let data = bytes(rng, 2000);
        let c = RleCodec;
        assert_eq!(c.decode(&c.encode(&data)).unwrap(), data);
    });
}

#[test]
fn lz_roundtrips_arbitrary_bytes() {
    run_cases(0xdc2, 256, |rng| {
        let data = bytes(rng, 2000);
        let c = LzCodec;
        assert_eq!(c.decode(&c.encode(&data)).unwrap(), data);
    });
}

/// Low-entropy inputs (the realistic sensor case) must not grow by more
/// than the token framing overhead under LZ.
#[test]
fn lz_compresses_repetitive_input() {
    run_cases(0xdc3, 256, |rng| {
        let byte = rng.below(256) as u8;
        let len = rng.index(2048 - 64) + 64;
        let data = vec![byte; len];
        let enc = LzCodec.encode(&data);
        assert!(enc.len() < data.len() / 4);
    });
}

#[test]
fn xml_write_parse_fixpoint() {
    run_cases(0xdc4, 512, |rng| {
        let ev = element(rng, 2);
        let s = write_events(&ev);
        let parsed = parse_events(&s);
        assert_eq!(parsed.as_ref().ok(), Some(&ev), "doc: {s}");
    });
}
