//! Property tests: codecs must round-trip arbitrary bytes, and the XML
//! writer/parser must agree on arbitrary well-formed documents.

use datacomp::codec::{Codec, LzCodec, RleCodec};
use datacomp::xml::{parse_events, write_events, XmlEvent};
use proptest::prelude::*;

fn xml_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_-]{0,6}".prop_map(|s| s)
}

/// Generate a balanced event stream by recursive element construction.
fn element(depth: u32) -> BoxedStrategy<Vec<XmlEvent>> {
    let attrs = prop::collection::vec((xml_name(), "[ -~]{0,12}"), 0..3);
    if depth == 0 {
        (xml_name(), attrs, "[ -~]{1,20}")
            .prop_map(|(name, attrs, text)| {
                let mut ev = vec![XmlEvent::Start { name: name.clone(), attrs }];
                if !text.trim().is_empty() {
                    ev.push(XmlEvent::Text(text));
                }
                ev.push(XmlEvent::End { name });
                ev
            })
            .boxed()
    } else {
        (xml_name(), attrs, prop::collection::vec(element(depth - 1), 0..3))
            .prop_map(|(name, attrs, kids)| {
                let mut ev = vec![XmlEvent::Start { name: name.clone(), attrs }];
                for k in kids {
                    ev.extend(k);
                }
                ev.push(XmlEvent::End { name });
                ev
            })
            .boxed()
    }
}

proptest! {
    #[test]
    fn rle_roundtrips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..2000)) {
        let c = RleCodec;
        prop_assert_eq!(c.decode(&c.encode(&data)).unwrap(), data);
    }

    #[test]
    fn lz_roundtrips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..2000)) {
        let c = LzCodec;
        prop_assert_eq!(c.decode(&c.encode(&data)).unwrap(), data);
    }

    /// Low-entropy inputs (the realistic sensor case) must not grow by more
    /// than the token framing overhead under LZ.
    #[test]
    fn lz_compresses_repetitive_input(byte in any::<u8>(), len in 64usize..2048) {
        let data = vec![byte; len];
        let enc = LzCodec.encode(&data);
        prop_assert!(enc.len() < data.len() / 4);
    }

    #[test]
    fn xml_write_parse_fixpoint(ev in element(2)) {
        let s = write_events(&ev);
        let parsed = parse_events(&s);
        prop_assert_eq!(parsed.as_ref().ok(), Some(&ev), "doc: {}", s);
    }
}
