//! Version-selection properties: `BEST` never violates its constraints and
//! always returns a minimum-cost candidate.
//!
//! Randomised suites are opt-in: `cargo test -p datacomp --features slow-props`.
#![cfg(feature = "slow-props")]

use adm_rng::{run_cases, Pcg32};
use datacomp::version::{SelectionConstraints, Version, VersionKind, VersionList};

fn kind(rng: &mut Pcg32) -> VersionKind {
    match rng.below(4) {
        0 => VersionKind::Replica,
        1 => VersionKind::Compressed { codec: "lz".into() },
        2 => VersionKind::Summary { fraction: 0.01 + rng.f64() * 0.99 },
        _ => VersionKind::LowerQuality { quality: 0.01 + rng.f64() * 0.99 },
    }
}

fn version_list(rng: &mut Pcg32) -> VersionList {
    let mut list = VersionList::new();
    for i in 0..rng.index(12) {
        list.add(Version {
            id: i as u32,
            location: format!("node{i}"),
            kind: kind(rng),
            size_bytes: rng.below(99_999) + 1,
            age: rng.below(100),
            bytes: None,
        });
    }
    list
}

fn constraints(rng: &mut Pcg32) -> SelectionConstraints {
    SelectionConstraints {
        max_age: rng.chance(0.5).then(|| rng.below(100)),
        min_quality: rng.f64(),
        bandwidth: 0.1 + rng.f64() * 9_999.9,
        decode_cost_per_byte: vec![("lz".into(), rng.f64() * 0.1)],
    }
}

/// A returned version satisfies every constraint and no eligible
/// version is strictly cheaper.
#[test]
fn best_is_feasible_and_minimal() {
    run_cases(0xdb1, 512, |rng| {
        let list = version_list(rng);
        let c = constraints(rng);
        match list.best(&c) {
            Ok(v) => {
                if let Some(a) = c.max_age {
                    assert!(v.age <= a);
                }
                assert!(v.kind.quality() >= c.min_quality);
                let cost = c.delivery_cost(v);
                for other in list.all() {
                    let eligible = c.max_age.is_none_or(|a| other.age <= a)
                        && other.kind.quality() >= c.min_quality;
                    if eligible {
                        assert!(
                            cost <= c.delivery_cost(other) + 1e-9,
                            "version {} (cost {cost}) beaten by {} (cost {})",
                            v.id,
                            other.id,
                            c.delivery_cost(other)
                        );
                    }
                }
            }
            Err(_) => {
                // Only legitimate when nothing is eligible.
                for other in list.all() {
                    let eligible = c.max_age.is_none_or(|a| other.age <= a)
                        && other.kind.quality() >= c.min_quality;
                    assert!(!eligible, "version {} was eligible", other.id);
                }
            }
        }
    });
}

/// Widening constraints never loses feasibility.
#[test]
fn relaxing_constraints_is_monotone() {
    run_cases(0xdb2, 512, |rng| {
        let list = version_list(rng);
        let c = constraints(rng);
        let relaxed = SelectionConstraints {
            max_age: None,
            min_quality: 0.0,
            bandwidth: c.bandwidth,
            decode_cost_per_byte: c.decode_cost_per_byte.clone(),
        };
        if list.best(&c).is_ok() {
            assert!(list.best(&relaxed).is_ok());
        }
    });
}
