//! Version-selection properties: `BEST` never violates its constraints and
//! always returns a minimum-cost candidate.

use datacomp::version::{SelectionConstraints, Version, VersionKind, VersionList};
use proptest::prelude::*;

fn kind() -> impl Strategy<Value = VersionKind> {
    prop_oneof![
        Just(VersionKind::Replica),
        Just(VersionKind::Compressed { codec: "lz".into() }),
        (0.01f64..1.0).prop_map(|fraction| VersionKind::Summary { fraction }),
        (0.01f64..1.0).prop_map(|quality| VersionKind::LowerQuality { quality }),
    ]
}

fn version_list() -> impl Strategy<Value = VersionList> {
    prop::collection::vec((kind(), 1u64..100_000, 0u64..100), 0..12).prop_map(|vs| {
        let mut list = VersionList::new();
        for (i, (kind, size_bytes, age)) in vs.into_iter().enumerate() {
            list.add(Version {
                id: i as u32,
                location: format!("node{i}"),
                kind,
                size_bytes,
                age,
                bytes: None,
            });
        }
        list
    })
}

fn constraints() -> impl Strategy<Value = SelectionConstraints> {
    (
        prop::option::of(0u64..100),
        0.0f64..1.0,
        0.1f64..10_000.0,
        0.0f64..0.1,
    )
        .prop_map(|(max_age, min_quality, bandwidth, lz_cost)| SelectionConstraints {
            max_age,
            min_quality,
            bandwidth,
            decode_cost_per_byte: vec![("lz".into(), lz_cost)],
        })
}

proptest! {
    /// A returned version satisfies every constraint and no eligible
    /// version is strictly cheaper.
    #[test]
    fn best_is_feasible_and_minimal(list in version_list(), c in constraints()) {
        match list.best(&c) {
            Ok(v) => {
                if let Some(a) = c.max_age {
                    prop_assert!(v.age <= a);
                }
                prop_assert!(v.kind.quality() >= c.min_quality);
                let cost = c.delivery_cost(v);
                for other in list.all() {
                    let eligible = c.max_age.is_none_or(|a| other.age <= a)
                        && other.kind.quality() >= c.min_quality;
                    if eligible {
                        prop_assert!(
                            cost <= c.delivery_cost(other) + 1e-9,
                            "version {} (cost {cost}) beaten by {} (cost {})",
                            v.id,
                            other.id,
                            c.delivery_cost(other)
                        );
                    }
                }
            }
            Err(_) => {
                // Only legitimate when nothing is eligible.
                for other in list.all() {
                    let eligible = c.max_age.is_none_or(|a| other.age <= a)
                        && other.kind.quality() >= c.min_quality;
                    prop_assert!(!eligible, "version {} was eligible", other.id);
                }
            }
        }
    }

    /// Widening constraints never loses feasibility.
    #[test]
    fn relaxing_constraints_is_monotone(list in version_list(), c in constraints()) {
        let relaxed = SelectionConstraints {
            max_age: None,
            min_quality: 0.0,
            bandwidth: c.bandwidth,
            decode_cost_per_byte: c.decode_cost_per_byte.clone(),
        };
        if list.best(&c).is_ok() {
            prop_assert!(list.best(&relaxed).is_ok());
        }
    }
}
