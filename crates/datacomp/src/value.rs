//! The value model: what lives in a relational cell, an OO field, or an XML
//! attribute. Deliberately small and totally ordered, so operators can sort,
//! hash and compare without panicking.

use std::cmp::Ordering;
use std::fmt;

/// A scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent/unknown.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. NaN is normalised to `Null` at construction via
    /// [`Value::float`].
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Construct a float, normalising NaN to `Null` so ordering is total.
    #[must_use]
    pub fn float(f: f64) -> Self {
        if f.is_nan() {
            Value::Null
        } else {
            Value::Float(f)
        }
    }

    /// Construct a string value.
    #[must_use]
    pub fn str(s: &str) -> Self {
        Value::Str(s.to_owned())
    }

    /// Whether this is `Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: ints and floats as f64, everything else `None`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Approximate serialised size in bytes (used for bandwidth/cost
    /// accounting).
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => s.len() as u64,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: Null < Bool < numerics (Int/Float compared numerically)
    /// < Str. NaN cannot occur (normalised at construction).
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) if a.rank() == 2 && b.rank() == 2 => {
                let (x, y) = (a.as_f64().unwrap_or(0.0), b.as_f64().unwrap_or(0.0));
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                // Hash ints and integral floats identically so Int(2) and
                // Float(2.0), which compare equal, hash equal.
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn nan_is_normalised_to_null() {
        assert_eq!(Value::float(f64::NAN), Value::Null);
        assert_eq!(Value::float(1.5), Value::Float(1.5));
    }

    #[test]
    fn total_order_across_types() {
        let mut vs = vec![
            Value::str("abc"),
            Value::Int(3),
            Value::Null,
            Value::Bool(true),
            Value::Float(2.5),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Float(2.5),
                Value::Int(3),
                Value::str("abc"),
            ]
        );
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(2).cmp(&Value::Float(2.0)), Ordering::Equal);
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(3.5) > Value::Int(3));
    }

    #[test]
    fn equal_numerics_hash_equal() {
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
        assert_ne!(h(&Value::Int(7)), h(&Value::Int(8)));
    }

    #[test]
    fn views_and_sizes() {
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
        assert_eq!(Value::str("hi").size_bytes(), 2);
        assert_eq!(Value::Int(0).size_bytes(), 8);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::str("x").to_string(), "x");
    }
}
