//! Metadata: "the standard metadata found in traditional databases e.g.
//! attribute statistics, triggers etc."
//!
//! The statistics carry a **staleness error** knob. Scenario 3 turns on it:
//! "the statistics provided by the metadata are not quite accurate enough
//! for the pre-optimisor to build the optimal plan". [`TableStats::fuzzed`]
//! produces the inaccurate view a pre-optimiser would see; the true stats
//! stay available to the execution feedback loop.

use crate::schema::Table;
use crate::value::Value;
use std::collections::BTreeSet;

/// Per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Non-null count.
    pub count: u64,
    /// Null count.
    pub nulls: u64,
    /// Distinct non-null values.
    pub distinct: u64,
    /// Minimum value, if any non-null.
    pub min: Option<Value>,
    /// Maximum value, if any non-null.
    pub max: Option<Value>,
}

impl ColumnStats {
    /// Estimated selectivity of an equality predicate on this column
    /// (uniformity assumption: 1/distinct).
    #[must_use]
    pub fn eq_selectivity(&self) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            1.0 / self.distinct as f64
        }
    }
}

/// Table-level statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Row count.
    pub rows: u64,
    /// Per-column stats, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Compute exact statistics from a table.
    #[must_use]
    pub fn compute(table: &Table) -> Self {
        let mut columns = Vec::with_capacity(table.schema().arity());
        for (idx, col) in table.schema().columns().iter().enumerate() {
            let mut distinct: BTreeSet<&Value> = BTreeSet::new();
            let mut nulls = 0u64;
            let mut min: Option<&Value> = None;
            let mut max: Option<&Value> = None;
            for row in table.rows() {
                let v = &row[idx];
                if v.is_null() {
                    nulls += 1;
                    continue;
                }
                distinct.insert(v);
                min = Some(min.map_or(v, |m| if v < m { v } else { m }));
                max = Some(max.map_or(v, |m| if v > m { v } else { m }));
            }
            columns.push(ColumnStats {
                name: col.name.clone(),
                count: table.len() as u64 - nulls,
                nulls,
                distinct: distinct.len() as u64,
                min: min.cloned(),
                max: max.cloned(),
            });
        }
        Self { rows: table.len() as u64, columns }
    }

    /// Stats for a named column.
    #[must_use]
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// The stale/misestimated view: row count and distinct counts scaled by
    /// `error` (2.0 = believes the table twice as large; 0.25 = a quarter).
    /// `error = 1.0` is the truth. Counts stay ≥ 1 where they were ≥ 1 so
    /// selectivities remain finite.
    #[must_use]
    pub fn fuzzed(&self, error: f64) -> Self {
        let scale = |v: u64| -> u64 {
            if v == 0 {
                0
            } else {
                ((v as f64 * error).round() as u64).max(1)
            }
        };
        Self {
            rows: scale(self.rows),
            columns: self
                .columns
                .iter()
                .map(|c| ColumnStats {
                    name: c.name.clone(),
                    count: scale(c.count),
                    nulls: c.nulls,
                    distinct: scale(c.distinct),
                    min: c.min.clone(),
                    max: c.max.clone(),
                })
                .collect(),
        }
    }
}

/// When a trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerEvent {
    /// On insert.
    Insert,
    /// On update.
    Update,
    /// On delete.
    Delete,
}

/// A trigger: standard DBMS metadata carried by the data component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trigger {
    /// Trigger name.
    pub name: String,
    /// Firing event.
    pub event: TriggerEvent,
    /// The action, interpreted by the embedding system (e.g. a rule id to
    /// re-evaluate, or a gauge to refresh).
    pub action: String,
}

/// The metadata block of Figure 2.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Metadata {
    /// Attribute statistics (present once computed).
    pub stats: Option<TableStats>,
    /// Triggers.
    pub triggers: Vec<Trigger>,
    /// How stale the statistics are relative to the data, expressed as the
    /// multiplicative error a pre-optimiser would suffer (1.0 = fresh).
    pub staleness_error: f64,
}

impl Metadata {
    /// Fresh metadata with exact stats.
    #[must_use]
    pub fn fresh(table: &Table) -> Self {
        Self { stats: Some(TableStats::compute(table)), triggers: Vec::new(), staleness_error: 1.0 }
    }

    /// The stats as a (possibly stale) pre-optimiser would see them.
    #[must_use]
    pub fn optimizer_view(&self) -> Option<TableStats> {
        self.stats.as_ref().map(|s| s.fuzzed(self.staleness_error))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};

    fn table() -> Table {
        let schema = Schema::new(&[("id", ColumnType::Int), ("city", ColumnType::Str)]).unwrap();
        let mut t = Table::new(schema);
        for (i, city) in [(1, "london"), (2, "london"), (3, "paris"), (4, "rome")].into_iter() {
            t.insert(vec![Value::Int(i), Value::str(city)]).unwrap();
        }
        t.insert(vec![Value::Int(5), Value::Null]).unwrap();
        t
    }

    #[test]
    fn stats_compute_counts_and_bounds() {
        let s = TableStats::compute(&table());
        assert_eq!(s.rows, 5);
        let city = s.column("city").unwrap();
        assert_eq!(city.count, 4);
        assert_eq!(city.nulls, 1);
        assert_eq!(city.distinct, 3);
        assert_eq!(city.min, Some(Value::str("london")));
        assert_eq!(city.max, Some(Value::str("rome")));
        let id = s.column("id").unwrap();
        assert_eq!(id.distinct, 5);
        assert_eq!(id.min, Some(Value::Int(1)));
    }

    #[test]
    fn eq_selectivity_uniform() {
        let s = TableStats::compute(&table());
        assert!((s.column("city").unwrap().eq_selectivity() - 1.0 / 3.0).abs() < 1e-12);
        let empty =
            ColumnStats { name: "x".into(), count: 0, nulls: 0, distinct: 0, min: None, max: None };
        assert_eq!(empty.eq_selectivity(), 0.0);
    }

    #[test]
    fn fuzz_scales_but_preserves_bounds() {
        let s = TableStats::compute(&table());
        let stale = s.fuzzed(4.0);
        assert_eq!(stale.rows, 20);
        assert_eq!(stale.column("city").unwrap().distinct, 12);
        assert_eq!(stale.column("city").unwrap().min, Some(Value::str("london")));
        let truth = s.fuzzed(1.0);
        assert_eq!(truth, s);
    }

    #[test]
    fn fuzz_never_zeroes_nonzero_counts() {
        let s = TableStats::compute(&table());
        let tiny = s.fuzzed(0.0001);
        assert_eq!(tiny.rows, 1);
        assert_eq!(tiny.column("id").unwrap().distinct, 1);
    }

    #[test]
    fn metadata_fresh_and_stale_views() {
        let t = table();
        let mut md = Metadata::fresh(&t);
        assert_eq!(md.optimizer_view().unwrap().rows, 5);
        md.staleness_error = 8.0;
        assert_eq!(md.optimizer_view().unwrap().rows, 40);
        assert_eq!(md.stats.as_ref().unwrap().rows, 5, "truth unchanged");
    }
}
