//! Relational schema and tables — one of the three Figure 2 payload shapes
//! ("a relational table used for transaction processing") and the substrate
//! the `query` crate's operators run over.

use crate::value::Value;
use std::fmt;

/// A column's declared type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// Booleans.
    Bool,
    /// 64-bit integers.
    Int,
    /// 64-bit floats.
    Float,
    /// Strings.
    Str,
}

impl ColumnType {
    /// Whether a value inhabits this type (`Null` inhabits every type).
    #[must_use]
    pub fn admits(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ColumnType::Bool, Value::Bool(_))
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Str, Value::Str(_))
        )
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name, unique within a schema.
    pub name: String,
    /// Declared type.
    pub ty: ColumnType,
}

/// A row: one value per schema column.
pub type Row = Vec<Value>;

/// A relation schema.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

/// Schema/typing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Duplicate column name.
    DuplicateColumn(String),
    /// A row has the wrong arity.
    Arity {
        /// Expected column count.
        expected: usize,
        /// Supplied value count.
        got: usize,
    },
    /// A value does not inhabit its column's type.
    TypeMismatch {
        /// The column.
        column: String,
        /// Rendered offending value.
        value: String,
    },
    /// Unknown column name.
    UnknownColumn(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateColumn(c) => write!(f, "duplicate column `{c}`"),
            SchemaError::Arity { expected, got } => {
                write!(f, "row arity {got}, schema has {expected} columns")
            }
            SchemaError::TypeMismatch { column, value } => {
                write!(f, "value `{value}` does not fit column `{column}`")
            }
            SchemaError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
        }
    }
}

impl std::error::Error for SchemaError {}

impl Schema {
    /// Build a schema from (name, type) pairs.
    ///
    /// # Errors
    /// [`SchemaError::DuplicateColumn`].
    pub fn new(cols: &[(&str, ColumnType)]) -> Result<Self, SchemaError> {
        let mut columns = Vec::with_capacity(cols.len());
        for (name, ty) in cols {
            if columns.iter().any(|c: &Column| c.name == *name) {
                return Err(SchemaError::DuplicateColumn((*name).to_owned()));
            }
            columns.push(Column { name: (*name).to_owned(), ty: *ty });
        }
        Ok(Self { columns })
    }

    /// The columns.
    #[must_use]
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    ///
    /// # Errors
    /// [`SchemaError::UnknownColumn`].
    pub fn index_of(&self, name: &str) -> Result<usize, SchemaError> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| SchemaError::UnknownColumn(name.to_owned()))
    }

    /// Typecheck one row.
    ///
    /// # Errors
    /// [`SchemaError::Arity`] or [`SchemaError::TypeMismatch`].
    pub fn check(&self, row: &Row) -> Result<(), SchemaError> {
        if row.len() != self.columns.len() {
            return Err(SchemaError::Arity { expected: self.columns.len(), got: row.len() });
        }
        for (col, v) in self.columns.iter().zip(row) {
            if !col.ty.admits(v) {
                return Err(SchemaError::TypeMismatch {
                    column: col.name.clone(),
                    value: v.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Concatenate two schemas (for join outputs), disambiguating duplicate
    /// names with a `right_` prefix.
    #[must_use]
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        for c in &other.columns {
            let name = if columns.iter().any(|e| e.name == c.name) {
                format!("right_{}", c.name)
            } else {
                c.name.clone()
            };
            columns.push(Column { name, ty: c.ty });
        }
        Schema { columns }
    }
}

/// A typed in-memory relation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    /// An empty table with the given schema.
    #[must_use]
    pub fn new(schema: Schema) -> Self {
        Self { schema, rows: Vec::new() }
    }

    /// The schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Insert a row, typechecking it.
    ///
    /// # Errors
    /// [`SchemaError`] on arity or type violations.
    pub fn insert(&mut self, row: Row) -> Result<(), SchemaError> {
        self.schema.check(&row)?;
        self.rows.push(row);
        Ok(())
    }

    /// The rows.
    #[must_use]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Row count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Approximate size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.rows.iter().flat_map(|r| r.iter().map(Value::size_bytes)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person_schema() -> Schema {
        Schema::new(&[("id", ColumnType::Int), ("name", ColumnType::Str), ("age", ColumnType::Int)])
            .unwrap()
    }

    #[test]
    fn build_and_index() {
        let s = person_schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("name").unwrap(), 1);
        assert!(matches!(s.index_of("ghost"), Err(SchemaError::UnknownColumn(_))));
    }

    #[test]
    fn duplicate_column_rejected() {
        assert!(matches!(
            Schema::new(&[("a", ColumnType::Int), ("a", ColumnType::Str)]),
            Err(SchemaError::DuplicateColumn(_))
        ));
    }

    #[test]
    fn insert_typechecks() {
        let mut t = Table::new(person_schema());
        t.insert(vec![Value::Int(1), Value::str("ada"), Value::Int(36)]).unwrap();
        assert!(matches!(
            t.insert(vec![Value::Int(2), Value::Int(9), Value::Int(1)]),
            Err(SchemaError::TypeMismatch { .. })
        ));
        assert!(matches!(
            t.insert(vec![Value::Int(2)]),
            Err(SchemaError::Arity { expected: 3, got: 1 })
        ));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn null_fits_any_column() {
        let mut t = Table::new(person_schema());
        t.insert(vec![Value::Null, Value::Null, Value::Null]).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn join_schema_disambiguates() {
        let a = Schema::new(&[("id", ColumnType::Int), ("x", ColumnType::Str)]).unwrap();
        let b = Schema::new(&[("id", ColumnType::Int), ("y", ColumnType::Str)]).unwrap();
        let j = a.join(&b);
        let names: Vec<&str> = j.columns().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["id", "x", "right_id", "y"]);
    }

    #[test]
    fn size_accounts_values() {
        let mut t = Table::new(person_schema());
        t.insert(vec![Value::Int(1), Value::str("ab"), Value::Int(3)]).unwrap();
        assert_eq!(t.size_bytes(), 8 + 2 + 8);
    }
}
