//! Compression codecs — the "associated decompression code" a compressed
//! version of a data component carries.
//!
//! Scenario 2's wireless optimiser "decides to send a compressed version of
//! the data thus using more resources on both the sensor and the Laptop
//! while saving communication time". That trade-off is real here: both
//! codecs are implemented from scratch, cost CPU proportional to input size,
//! and are benchmarked against link bandwidth in the scenario benches.
//!
//! * [`RleCodec`] — byte run-length encoding: cheap, effective on sensor
//!   streams full of repeated readings;
//! * [`LzCodec`] — an LZ77-style sliding-window coder: costlier, stronger on
//!   structured text like XML.

use std::fmt;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended mid-token.
    Truncated,
    /// A back-reference pointed before the start of output.
    BadReference {
        /// Offset of the bad token.
        at: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated compressed stream"),
            CodecError::BadReference { at } => write!(f, "bad back-reference at {at}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A compression codec.
pub trait Codec {
    /// The codec's wire name (stored in version metadata).
    fn name(&self) -> &'static str;

    /// Compress.
    fn encode(&self, data: &[u8]) -> Vec<u8>;

    /// Decompress.
    ///
    /// # Errors
    /// [`CodecError`] on malformed input.
    fn decode(&self, data: &[u8]) -> Result<Vec<u8>, CodecError>;

    /// Relative CPU cost per input byte (1.0 = RLE). Used by the scenarios
    /// to charge device CPU for choosing compression.
    fn cpu_cost_per_byte(&self) -> f64;
}

/// Byte run-length encoding: `(count, byte)` pairs, count ≥ 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct RleCodec;

impl Codec for RleCodec {
    fn name(&self) -> &'static str {
        "rle"
    }

    fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() / 2 + 8);
        let mut i = 0;
        while i < data.len() {
            let b = data[i];
            let mut run = 1usize;
            while i + run < data.len() && data[i + run] == b && run < 255 {
                run += 1;
            }
            out.push(run as u8);
            out.push(b);
            i += run;
        }
        out
    }

    fn decode(&self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
        if !data.len().is_multiple_of(2) {
            return Err(CodecError::Truncated);
        }
        let mut out = Vec::with_capacity(data.len());
        for pair in data.chunks_exact(2) {
            let (count, b) = (pair[0], pair[1]);
            if count == 0 {
                return Err(CodecError::BadReference { at: out.len() });
            }
            out.extend(std::iter::repeat_n(b, count as usize));
        }
        Ok(out)
    }

    fn cpu_cost_per_byte(&self) -> f64 {
        1.0
    }
}

/// An LZ77-style coder with a 4 KiB window.
///
/// Token format: `0x00 len <len literal bytes>` or `0x01 off_hi off_lo len`
/// (a back-reference of `len` bytes at distance `off`). Greedy longest-match
/// search; min match 4, max match 255, max literal run 255.
#[derive(Debug, Clone, Copy, Default)]
pub struct LzCodec;

const WINDOW: usize = 4096;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 255;

impl LzCodec {
    fn find_match(data: &[u8], pos: usize) -> Option<(usize, usize)> {
        let window_start = pos.saturating_sub(WINDOW);
        let max_len = (data.len() - pos).min(MAX_MATCH);
        if max_len < MIN_MATCH {
            return None;
        }
        let mut best: Option<(usize, usize)> = None;
        let needle = &data[pos..pos + MIN_MATCH];
        let mut cand = window_start;
        while cand < pos {
            if &data[cand..cand + MIN_MATCH] == needle {
                let mut len = MIN_MATCH;
                while len < max_len && data[cand + len] == data[pos + len] {
                    len += 1;
                }
                if best.is_none_or(|(_, bl)| len > bl) {
                    best = Some((pos - cand, len));
                    if len == max_len {
                        break;
                    }
                }
            }
            cand += 1;
        }
        best
    }
}

impl Codec for LzCodec {
    fn name(&self) -> &'static str {
        "lz"
    }

    fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() / 2 + 16);
        let mut lits: Vec<u8> = Vec::new();
        let flush = |lits: &mut Vec<u8>, out: &mut Vec<u8>| {
            for chunk in lits.chunks(255) {
                out.push(0x00);
                out.push(chunk.len() as u8);
                out.extend_from_slice(chunk);
            }
            lits.clear();
        };
        let mut i = 0;
        while i < data.len() {
            if let Some((off, len)) = Self::find_match(data, i) {
                flush(&mut lits, &mut out);
                out.push(0x01);
                out.push((off >> 8) as u8);
                out.push((off & 0xff) as u8);
                out.push(len as u8);
                i += len;
            } else {
                lits.push(data[i]);
                i += 1;
            }
        }
        flush(&mut lits, &mut out);
        out
    }

    fn decode(&self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::with_capacity(data.len() * 2);
        let mut i = 0;
        while i < data.len() {
            match data[i] {
                0x00 => {
                    let len = *data.get(i + 1).ok_or(CodecError::Truncated)? as usize;
                    let end = i + 2 + len;
                    if end > data.len() {
                        return Err(CodecError::Truncated);
                    }
                    out.extend_from_slice(&data[i + 2..end]);
                    i = end;
                }
                0x01 => {
                    if i + 3 >= data.len() {
                        return Err(CodecError::Truncated);
                    }
                    let off = ((data[i + 1] as usize) << 8) | data[i + 2] as usize;
                    let len = data[i + 3] as usize;
                    if off == 0 || off > out.len() {
                        return Err(CodecError::BadReference { at: i });
                    }
                    let start = out.len() - off;
                    for k in 0..len {
                        let b = out[start + k];
                        out.push(b);
                    }
                    i += 4;
                }
                _ => return Err(CodecError::BadReference { at: i }),
            }
        }
        Ok(out)
    }

    fn cpu_cost_per_byte(&self) -> f64 {
        6.0
    }
}

/// Look up a codec by wire name.
#[must_use]
pub fn by_name(name: &str) -> Option<Box<dyn Codec>> {
    match name {
        "rle" => Some(Box::new(RleCodec)),
        "lz" => Some(Box::new(LzCodec)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sensor_like() -> Vec<u8> {
        // Repetitive XML, the shape both codecs will really see.
        let mut s = String::new();
        for t in 0..200 {
            s.push_str(&format!(r#"<reading sensor="temp" t="{t}">21.{}</reading>"#, t % 10));
        }
        s.into_bytes()
    }

    #[test]
    fn rle_roundtrip() {
        let data = b"aaaabbbcccccccccccccd".to_vec();
        let c = RleCodec;
        assert_eq!(c.decode(&c.encode(&data)).unwrap(), data);
    }

    #[test]
    fn rle_compresses_runs() {
        let data = vec![7u8; 1000];
        let enc = RleCodec.encode(&data);
        assert!(enc.len() <= 8, "1000-byte run should encode in ≤4 pairs, got {}", enc.len());
    }

    #[test]
    fn lz_roundtrip_structured_text() {
        let data = sensor_like();
        let c = LzCodec;
        let enc = c.encode(&data);
        assert_eq!(c.decode(&enc).unwrap(), data);
        assert!(
            enc.len() < data.len() / 2,
            "LZ should halve repetitive XML: {} -> {}",
            data.len(),
            enc.len()
        );
    }

    #[test]
    fn lz_beats_rle_on_xml_and_costs_more_cpu() {
        let data = sensor_like();
        let lz = LzCodec.encode(&data);
        let rle = RleCodec.encode(&data);
        assert!(lz.len() < rle.len());
        assert!(LzCodec.cpu_cost_per_byte() > RleCodec.cpu_cost_per_byte());
    }

    #[test]
    fn empty_input_roundtrips() {
        for c in [&RleCodec as &dyn Codec, &LzCodec] {
            assert_eq!(c.encode(&[]), Vec::<u8>::new());
            assert_eq!(c.decode(&[]).unwrap(), Vec::<u8>::new());
        }
    }

    #[test]
    fn rle_rejects_truncated_and_zero_count() {
        assert_eq!(RleCodec.decode(&[3]), Err(CodecError::Truncated));
        assert!(matches!(RleCodec.decode(&[0, 65]), Err(CodecError::BadReference { .. })));
    }

    #[test]
    fn lz_rejects_malformed() {
        assert_eq!(LzCodec.decode(&[0x00, 5, 1, 2]), Err(CodecError::Truncated));
        assert!(matches!(LzCodec.decode(&[0x01, 0, 9, 4]), Err(CodecError::BadReference { .. })));
        assert!(matches!(LzCodec.decode(&[0x02]), Err(CodecError::BadReference { .. })));
        assert_eq!(LzCodec.decode(&[0x01, 0, 0]), Err(CodecError::Truncated));
    }

    #[test]
    fn lz_overlapping_reference_expands() {
        // "abcabcabc..." uses an overlapping back-reference (off 3, len >3).
        let data = b"abcabcabcabcabcabcabc".to_vec();
        let c = LzCodec;
        assert_eq!(c.decode(&c.encode(&data)).unwrap(), data);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("rle").unwrap().name(), "rle");
        assert_eq!(by_name("lz").unwrap().name(), "lz");
        assert!(by_name("zip").is_none());
    }
}
