//! A small XML event model — the sensor's stream format.
//!
//! The scenarios stream sensor data "in XML format"; the Patia server
//! delivers XML-described atoms. This module provides an event-based model
//! (start element with attributes, text, end element), a serialiser, and a
//! strict parser for the subset the system emits. Event-based rather than
//! tree-based because streams must be processable incrementally and cut at
//! safe points (whole-event boundaries).

use std::fmt;

/// One XML stream event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="v" ...>`
    Start {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attrs: Vec<(String, String)>,
    },
    /// Character data (entity-escaped on the wire).
    Text(String),
    /// `</name>`
    End {
        /// Element name.
        name: String,
    },
}

/// XML parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Unexpected end of input.
    Truncated,
    /// Malformed syntax at byte offset.
    Malformed {
        /// Byte offset of the problem.
        at: usize,
        /// What went wrong.
        what: &'static str,
    },
    /// An end tag did not match the open element.
    Mismatched {
        /// The open element.
        open: String,
        /// The closing tag found.
        close: String,
    },
    /// Input ended with elements still open.
    Unclosed(String),
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Truncated => write!(f, "truncated XML"),
            XmlError::Malformed { at, what } => write!(f, "malformed XML at byte {at}: {what}"),
            XmlError::Mismatched { open, close } => {
                write!(f, "mismatched tags: <{open}> closed by </{close}>")
            }
            XmlError::Unclosed(n) => write!(f, "unclosed element <{n}>"),
        }
    }
}

impl std::error::Error for XmlError {}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let mut matched = false;
        for (ent, ch) in [("&amp;", '&'), ("&lt;", '<'), ("&gt;", '>'), ("&quot;", '"')] {
            if let Some(stripped) = rest.strip_prefix(ent) {
                out.push(ch);
                rest = stripped;
                matched = true;
                break;
            }
        }
        if !matched {
            // Unknown entity: pass the ampersand through verbatim.
            out.push('&');
            rest = &rest[1..];
        }
    }
    out.push_str(rest);
    out
}

/// Serialise a sequence of events.
#[must_use]
pub fn write_events(events: &[XmlEvent]) -> String {
    let mut out = String::new();
    for e in events {
        match e {
            XmlEvent::Start { name, attrs } => {
                out.push('<');
                out.push_str(name);
                for (k, v) in attrs {
                    out.push(' ');
                    out.push_str(k);
                    out.push_str("=\"");
                    escape(v, &mut out);
                    out.push('"');
                }
                out.push('>');
            }
            XmlEvent::Text(t) => escape(t, &mut out),
            XmlEvent::End { name } => {
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
        }
    }
    out
}

fn is_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == ':'
}

/// Parse a document into events, checking well-formedness (balanced tags).
///
/// # Errors
/// [`XmlError`] on malformed or unbalanced input.
pub fn parse_events(src: &str) -> Result<Vec<XmlEvent>, XmlError> {
    let bytes = src.as_bytes();
    let mut events = Vec::new();
    let mut stack: Vec<String> = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'<' {
            if i + 1 >= bytes.len() {
                return Err(XmlError::Truncated);
            }
            if bytes[i + 1] == b'/' {
                // end tag
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'>' {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(XmlError::Truncated);
                }
                let name = src[start..j].trim().to_owned();
                if name.is_empty() || !name.chars().all(is_name_char) {
                    return Err(XmlError::Malformed { at: start, what: "bad end-tag name" });
                }
                match stack.pop() {
                    Some(open) if open == name => {}
                    Some(open) => return Err(XmlError::Mismatched { open, close: name }),
                    None => {
                        return Err(XmlError::Malformed {
                            at: i,
                            what: "end tag with no open element",
                        })
                    }
                }
                events.push(XmlEvent::End { name });
                i = j + 1;
            } else {
                // start tag
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'>' {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(XmlError::Truncated);
                }
                let inner = &src[start..j];
                let self_closing = inner.ends_with('/');
                let inner = inner.strip_suffix('/').unwrap_or(inner);
                let mut parts = inner.trim().splitn(2, char::is_whitespace);
                let name = parts.next().unwrap_or("").to_owned();
                if name.is_empty() || !name.chars().all(is_name_char) {
                    return Err(XmlError::Malformed { at: start, what: "bad start-tag name" });
                }
                let mut attrs = Vec::new();
                if let Some(attr_src) = parts.next() {
                    let mut rest = attr_src.trim();
                    while !rest.is_empty() {
                        let eq = rest.find('=').ok_or(XmlError::Malformed {
                            at: start,
                            what: "attribute without `=`",
                        })?;
                        let key = rest[..eq].trim().to_owned();
                        let after = rest[eq + 1..].trim_start();
                        if !after.starts_with('"') {
                            return Err(XmlError::Malformed {
                                at: start,
                                what: "unquoted attribute",
                            });
                        }
                        let close = after[1..].find('"').ok_or(XmlError::Truncated)?;
                        let val = unescape(&after[1..=close]);
                        attrs.push((key, val));
                        rest = after[close + 2..].trim_start();
                    }
                }
                events.push(XmlEvent::Start { name: name.clone(), attrs });
                if self_closing {
                    events.push(XmlEvent::End { name });
                } else {
                    stack.push(name);
                }
                i = j + 1;
            }
        } else {
            let mut j = i;
            while j < bytes.len() && bytes[j] != b'<' {
                j += 1;
            }
            let text = unescape(&src[i..j]);
            if !text.trim().is_empty() {
                events.push(XmlEvent::Text(text));
            }
            i = j;
        }
    }
    if let Some(open) = stack.pop() {
        return Err(XmlError::Unclosed(open));
    }
    Ok(events)
}

/// Build a sensor reading event triple: `<reading sensor="..." t="...">v</reading>`.
#[must_use]
pub fn sensor_reading(sensor: &str, tick: u64, value: f64) -> Vec<XmlEvent> {
    vec![
        XmlEvent::Start {
            name: "reading".into(),
            attrs: vec![("sensor".into(), sensor.into()), ("t".into(), tick.to_string())],
        },
        XmlEvent::Text(value.to_string()),
        XmlEvent::End { name: "reading".into() },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple_document() {
        let src = r#"<stream id="s1"><reading t="0">1.5</reading></stream>"#;
        let ev = parse_events(src).unwrap();
        assert_eq!(write_events(&ev), src);
        assert_eq!(ev.len(), 5);
    }

    #[test]
    fn attributes_parse_in_order() {
        let ev = parse_events(r#"<a x="1" y="two"/>"#).unwrap();
        match &ev[0] {
            XmlEvent::Start { name, attrs } => {
                assert_eq!(name, "a");
                assert_eq!(attrs, &[("x".into(), "1".into()), ("y".into(), "two".into())]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(ev[1], XmlEvent::End { name: "a".into() });
    }

    #[test]
    fn escaping_roundtrips() {
        let events = vec![
            XmlEvent::Start { name: "t".into(), attrs: vec![("q".into(), "a\"b&c".into())] },
            XmlEvent::Text("1 < 2 & 3 > 2".into()),
            XmlEvent::End { name: "t".into() },
        ];
        let s = write_events(&events);
        assert_eq!(parse_events(&s).unwrap(), events);
    }

    #[test]
    fn mismatched_tags_detected() {
        assert!(matches!(parse_events("<a><b></a></b>"), Err(XmlError::Mismatched { .. })));
    }

    #[test]
    fn unclosed_detected() {
        assert!(matches!(parse_events("<a><b></b>"), Err(XmlError::Unclosed(_))));
    }

    #[test]
    fn stray_end_tag_detected() {
        assert!(matches!(parse_events("</a>"), Err(XmlError::Malformed { .. })));
    }

    #[test]
    fn truncation_detected() {
        assert!(matches!(parse_events("<a"), Err(XmlError::Truncated)));
        assert_eq!(parse_events("<"), Err(XmlError::Truncated));
    }

    #[test]
    fn sensor_reading_helper_roundtrips() {
        let ev = sensor_reading("temp", 42, 21.5);
        let s = write_events(&ev);
        assert_eq!(s, r#"<reading sensor="temp" t="42">21.5</reading>"#);
        assert_eq!(parse_events(&s).unwrap(), ev);
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let ev = parse_events("<a>\n  <b></b>\n</a>").unwrap();
        assert!(ev.iter().all(|e| !matches!(e, XmlEvent::Text(_))));
    }

    #[test]
    fn unknown_entities_pass_through() {
        let ev = parse_events("<a>&unknown;</a>").unwrap();
        assert_eq!(ev[1], XmlEvent::Text("&unknown;".into()));
    }
}
