//! # datacomp — data components (the paper's Figure 2)
//!
//! > "The data is divided into the structure described in Figure 2. Example
//! > data could be OO structured data concerned with a person or a
//! > relational table used for transaction processing or an XML stream. The
//! > metadata represents the standard metadata found in traditional
//! > databases e.g. attribute statistics, triggers etc. The Adaptability
//! > Rules are the list of rules associated with the adaptivity constraints
//! > ... The list of versions is indications of where alternatives can be
//! > found. Versions are not necessarily exact replicas; they could be
//! > compressed versions of the data (perhaps with associated decompression
//! > code) or be out-of-date. They also could be lower quality versions or
//! > summaries of the data."
//!
//! Modules:
//!
//! * [`value`] / [`schema`] — the value model and relational schema shared
//!   with the `query` crate;
//! * [`payload`] — the three payload shapes: relational table, OO record,
//!   XML stream;
//! * [`xml`] — a small XML event parser/serialiser (the sensor "streams in
//!   XML format");
//! * [`codec`] — from-scratch compression codecs (RLE and an LZ77-style
//!   dictionary coder), the "associated decompression code" a compressed
//!   version carries;
//! * [`metadata`] — attribute statistics (with controllable *staleness
//!   error* for Scenario 3's misestimating optimiser) and triggers;
//! * [`version`] — the version list and constraint-driven version selection
//!   (`BEST` under bandwidth/staleness/quality constraints);
//! * [`component`] — the assembled [`component::DataComponent`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod component;
pub mod metadata;
pub mod payload;
pub mod schema;
pub mod value;
pub mod xml;

pub use codec::{Codec, LzCodec, RleCodec};
pub use component::DataComponent;
pub use metadata::{ColumnStats, Metadata, TableStats, Trigger};
pub use payload::Payload;
pub use schema::{Column, ColumnType, Row, Schema, Table};
pub use value::Value;
pub use version::{Version, VersionKind, VersionList};

pub mod version;
